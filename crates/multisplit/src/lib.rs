//! Device multisplit primitives (§IV-B of the paper).
//!
//! The distributed hash map reorders each GPU's key-value pairs into `m`
//! classes given by the partition function `p(k)` before the all-to-all
//! transposition. The paper deliberately uses a *simple* multisplit — `m`
//! consecutive binary splits (one class versus the rest), each compacting
//! its class with a **warp-aggregated atomic counter** (Adinetz's
//! technique, ref. \[23\]) — rather than Ashkiani's full GPU multisplit,
//! because the step accounts for only 2–4% of cascade runtime.
//!
//! * [`warp_agg`] — the warp-aggregated compaction building block,
//! * [`split`] — the m-pass binary multisplit on a simulated device,
//! * [`sort_split`] — a radix-sort-based multisplit standing in for the
//!   CUB approach the paper compares against (ablation A3),
//! * [`scan`] — exclusive prefix scans,
//! * [`table`] — the m×m partition table and its transposition algebra.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scan;
pub mod sort_split;
pub mod split;
pub mod table;
pub mod warp_agg;

pub use scan::{col_exclusive_scan, exclusive_scan, row_exclusive_scan};
pub use split::{device_multisplit, SplitResult};
pub use table::PartitionTable;
pub use warp_agg::warp_aggregated_compact;
