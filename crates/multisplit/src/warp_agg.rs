//! Warp-aggregated atomic compaction (Adinetz, ref. \[23\] of the paper).
//!
//! Filtering elements into a dense output with one `atomicAdd` *per
//! element* serializes on the counter; the warp-aggregated variant issues
//! one `atomicAdd` *per group*: the group ballots the predicate, the
//! leader reserves `popcount(mask)` output slots with a single atomic,
//! broadcasts the base offset, and every active lane writes to
//! `base + (number of active lanes below it)` — consecutive slots, hence a
//! coalesced store.

use gpu_sim::{DevSlice, Device, GroupCtx, GroupSize, KernelStats, LaunchOptions};

/// Compacts all words of `input` satisfying `pred` into `output`,
/// reserving space through the single-word atomic counter `counter`
/// (which must be zeroed by the caller; its final value is the number of
/// kept elements). Returns the kernel stats; the element order within the
/// output is nondeterministic across groups (as on real hardware) but
/// deterministic *within* a group.
///
/// # Panics
/// Panics if `output` is shorter than the number of kept elements
/// (detected at write time via slice bounds in debug builds; the caller
/// sizes `output` ≥ `input` in all our uses).
pub fn warp_aggregated_compact<P>(
    dev: &Device,
    input: DevSlice,
    output: DevSlice,
    counter: DevSlice,
    pred: P,
) -> KernelStats
where
    P: Fn(u64) -> bool + Sync,
{
    const G: u32 = 32; // compaction always runs at warp width
    let group_size = GroupSize::new(G);
    let num_groups = input.len().div_ceil(G as usize);
    dev.launch(
        "warp_aggregated_compact",
        num_groups,
        group_size,
        LaunchOptions::default(),
        |ctx: &GroupCtx| {
            let base_idx = ctx.group_id() * G as usize;
            let lanes = (input.len() - base_idx).min(G as usize) as u32;
            // streaming read of up to 32 consecutive elements
            let mut vals = [0u64; 32];
            for (r, val) in vals.iter_mut().enumerate().take(lanes as usize) {
                *val = ctx.read_stream(input, base_idx + r);
            }
            let mask = ctx.ballot(|r| r < lanes && pred(vals[r as usize]));
            let keep = mask.count_ones();
            if keep == 0 {
                return;
            }
            // leader reserves the whole group's slots with one atomic
            let base = ctx.atomic_add(counter, 0, u64::from(keep));
            // each active lane writes at base + rank-among-active
            let mut written = 0u64;
            for r in 0..lanes {
                if mask & (1 << r) != 0 {
                    ctx.write_stream(output, (base + written) as usize, vals[r as usize]);
                    written += 1;
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;

    fn setup(n: usize) -> (Device, DevSlice, DevSlice, DevSlice) {
        let dev = Device::with_words(0, 4 * n + 8);
        let input = dev.alloc(n).unwrap();
        let output = dev.alloc(n).unwrap();
        let counter = dev.alloc(1).unwrap();
        dev.mem().fill(counter, 0);
        (dev, input, output, counter)
    }

    #[test]
    fn keeps_exactly_the_matching_elements() {
        let n = 1000;
        let (dev, input, output, counter) = setup(n);
        let data: Vec<u64> = (0..n as u64).collect();
        dev.mem().h2d(input, &data);
        let stats = warp_aggregated_compact(&dev, input, output, counter, |w| w % 3 == 0);
        let kept = dev.mem().d2h(counter)[0] as usize;
        let expected: Vec<u64> = data.iter().copied().filter(|w| w % 3 == 0).collect();
        assert_eq!(kept, expected.len());
        let mut out = dev.mem().d2h(output)[..kept].to_vec();
        out.sort_unstable();
        assert_eq!(out, expected);
        assert!(stats.counters.atomic_ops > 0);
    }

    #[test]
    fn one_atomic_per_nonempty_group_not_per_element() {
        let n = 32 * 64; // 64 full warps
        let (dev, input, output, counter) = setup(n);
        let data: Vec<u64> = vec![1; n]; // everything matches
        dev.mem().h2d(input, &data);
        let stats = warp_aggregated_compact(&dev, input, output, counter, |w| w == 1);
        // 64 atomics, not 2048 — the whole point of the technique
        assert_eq!(stats.counters.atomic_ops, 64);
        assert_eq!(dev.mem().d2h(counter)[0], n as u64);
    }

    #[test]
    fn empty_match_issues_no_atomics() {
        let n = 256;
        let (dev, input, output, counter) = setup(n);
        dev.mem().h2d(input, &vec![7u64; n]);
        let stats = warp_aggregated_compact(&dev, input, output, counter, |w| w == 0);
        assert_eq!(stats.counters.atomic_ops, 0);
        assert_eq!(dev.mem().d2h(counter)[0], 0);
    }

    #[test]
    fn ragged_tail_handled() {
        let n = 100; // 3 warps + 4-lane tail
        let (dev, input, output, counter) = setup(n);
        let data: Vec<u64> = (0..n as u64).collect();
        dev.mem().h2d(input, &data);
        let _ = warp_aggregated_compact(&dev, input, output, counter, |w| w >= 96);
        let kept = dev.mem().d2h(counter)[0];
        assert_eq!(kept, 4);
        let mut out = dev.mem().d2h(output)[..4].to_vec();
        out.sort_unstable();
        assert_eq!(out, vec![96, 97, 98, 99]);
    }

    #[test]
    fn concurrent_groups_never_lose_elements() {
        // many groups hammer one counter; atomicity must hold
        let n = 32 * 500;
        let (dev, input, output, counter) = setup(n);
        let data: Vec<u64> = (0..n as u64).map(|i| i * 2_654_435_761 % 1000).collect();
        dev.mem().h2d(input, &data);
        let _ = warp_aggregated_compact(&dev, input, output, counter, |w| w < 500);
        let kept = dev.mem().d2h(counter)[0] as usize;
        let expected = data.iter().filter(|&&w| w < 500).count();
        assert_eq!(kept, expected);
        let mut out = dev.mem().d2h(output)[..kept].to_vec();
        let mut exp: Vec<u64> = data.into_iter().filter(|&w| w < 500).collect();
        out.sort_unstable();
        exp.sort_unstable();
        assert_eq!(out, exp);
    }
}
