//! The paper's m-pass binary multisplit.
//!
//! "Our approach is based on a simpler technique that consecutively
//! computes m binary splits (one class versus the rest) of keys in global
//! memory … using a warp-aggregated atomic counter" (§IV-B). Pass `c`
//! compacts all elements of class `c` behind the elements of classes
//! `< c` in the output buffer, so after `m` passes the buffer is
//! partition-ordered and the per-class counts/offsets fall out of the
//! counters.

use crate::scan::exclusive_scan;
use crate::warp_agg::warp_aggregated_compact;
use gpu_sim::{DevSlice, Device, KernelStats};

/// Outcome of a device multisplit.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// Partition-ordered output buffer (same length as the input).
    pub out: DevSlice,
    /// Number of elements in each class.
    pub counts: Vec<u64>,
    /// Exclusive offsets of each class within `out`.
    pub offsets: Vec<u64>,
    /// Merged stats over all passes (counters add, simulated times add).
    pub stats: KernelStats,
}

impl SplitResult {
    /// The sub-slice of `out` holding class `c`.
    #[must_use]
    pub fn class_slice(&self, c: usize) -> DevSlice {
        self.out
            .sub(self.offsets[c] as usize, self.counts[c] as usize)
    }
}

/// Splits the words of `input` into `m` classes given by `class_of`,
/// writing the partition-ordered result to `out` (a caller-allocated
/// double buffer of at least `input.len()` words, as in Fig. 4's
/// out-of-place scheme). `scratch` must hold ≥ 1 word for the aggregated
/// counter.
///
/// # Panics
/// Panics if `m == 0`, `out` is shorter than `input`, or `class_of`
/// returns a class ≥ `m`.
pub fn device_multisplit<F>(
    dev: &Device,
    input: DevSlice,
    out: DevSlice,
    scratch: DevSlice,
    m: usize,
    class_of: F,
) -> SplitResult
where
    F: Fn(u64) -> u32 + Sync,
{
    assert!(m > 0, "need at least one class");
    assert!(out.len() >= input.len(), "output buffer too small");
    assert!(!scratch.is_empty(), "need a counter word");
    let counter = scratch.sub(0, 1);

    let mut counts = Vec::with_capacity(m);
    let mut stats: Option<KernelStats> = None;
    let mut written = 0u64;
    for c in 0..m as u32 {
        dev.mem().fill(counter, 0);
        let remaining = out.len() - written as usize;
        let class_out = out.sub(written as usize, remaining);
        let pass = warp_aggregated_compact(dev, input, class_out, counter, |w| {
            let cls = class_of(w);
            assert!(cls < m as u32, "class {cls} out of range (m = {m})");
            cls == c
        });
        let kept = dev.mem().d2h(counter)[0];
        counts.push(kept);
        written += kept;
        stats = Some(match stats {
            None => pass,
            Some(s) => s.merged(&pass),
        });
    }
    assert_eq!(
        written as usize,
        input.len(),
        "classes must cover every element"
    );
    let offsets = exclusive_scan(&counts);
    SplitResult {
        out: out.sub(0, input.len()),
        counts,
        offsets,
        stats: stats.expect("m > 0 guarantees at least one pass"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use hashes::PartitionFn;

    fn run_split(data: &[u64], m: usize) -> (Device, SplitResult) {
        let dev = Device::with_words(0, 2 * data.len() + 8);
        let input = dev.alloc(data.len()).unwrap();
        let out = dev.alloc(data.len()).unwrap();
        let scratch = dev.alloc(1).unwrap();
        dev.mem().h2d(input, data);
        let p = PartitionFn::modulo(m as u32);
        let res = device_multisplit(&dev, input, out, scratch, m, move |w| p.part(w as u32));
        (dev, res)
    }

    #[test]
    fn partitions_are_contiguous_and_complete() {
        let data: Vec<u64> = (0..997u64).map(|i| i * 31 % 1000).collect();
        let m = 4;
        let (dev, res) = run_split(&data, m);
        let out = dev.mem().d2h(res.out);
        assert_eq!(out.len(), data.len());
        // classes contiguous in class order
        for c in 0..m {
            let lo = res.offsets[c] as usize;
            let hi = lo + res.counts[c] as usize;
            assert!(out[lo..hi]
                .iter()
                .all(|&w| (w as u32) % m as u32 == c as u32));
        }
        // multiset preserved
        let mut a = out.clone();
        let mut b = data.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // counts match ground truth
        for c in 0..m {
            let truth = data
                .iter()
                .filter(|&&w| (w as u32) % m as u32 == c as u32)
                .count() as u64;
            assert_eq!(res.counts[c], truth);
        }
    }

    #[test]
    fn class_slices_address_their_partition() {
        let data: Vec<u64> = (0..256u64).collect();
        let (dev, res) = run_split(&data, 2);
        let evens = dev.mem().d2h(res.class_slice(0));
        assert_eq!(evens.len(), 128);
        assert!(evens.iter().all(|&w| w % 2 == 0));
    }

    #[test]
    fn single_class_is_a_copy() {
        let data: Vec<u64> = vec![9, 8, 7, 6];
        let (dev, res) = run_split(&data, 1);
        let mut out = dev.mem().d2h(res.out);
        out.sort_unstable();
        assert_eq!(out, vec![6, 7, 8, 9]);
        assert_eq!(res.counts, vec![4]);
        assert_eq!(res.offsets, vec![0]);
    }

    #[test]
    fn empty_input_gives_empty_classes() {
        let (_, res) = run_split(&[], 3);
        assert_eq!(res.counts, vec![0, 0, 0]);
    }

    #[test]
    fn stats_accumulate_m_passes() {
        let data: Vec<u64> = (0..64u64).collect();
        let (_, res2) = run_split(&data, 2);
        let (_, res4) = run_split(&data, 4);
        // m passes re-read the input m times
        assert!(res4.counters_stream_bytes() > res2.counters_stream_bytes());
    }

    impl SplitResult {
        fn counters_stream_bytes(&self) -> u64 {
            self.stats.counters.stream_bytes
        }
    }
}
