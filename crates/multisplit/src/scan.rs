//! Exclusive prefix scans.
//!
//! The partition-table bookkeeping of §IV-B needs *row-wise* exclusive
//! scans over the m×m table for the senders and *column-wise* scans for
//! the receivers. The tables are tiny (m ≤ 4), so these run on the host;
//! they are exact counterparts of the device-side scans in the original
//! implementation.

/// Exclusive prefix scan: `out[i] = Σ_{j<i} xs[j]`, `out[0] = 0`.
#[must_use]
pub fn exclusive_scan(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0u64;
    for &x in xs {
        out.push(acc);
        acc += x;
    }
    out
}

/// Row-wise exclusive scan of a matrix (per-sender offsets).
#[must_use]
pub fn row_exclusive_scan(m: &[Vec<u64>]) -> Vec<Vec<u64>> {
    m.iter().map(|row| exclusive_scan(row)).collect()
}

/// Column-wise exclusive scan of a matrix (per-receiver offsets).
///
/// # Panics
/// Panics on ragged input.
#[must_use]
pub fn col_exclusive_scan(m: &[Vec<u64>]) -> Vec<Vec<u64>> {
    if m.is_empty() {
        return Vec::new();
    }
    let cols = m[0].len();
    assert!(m.iter().all(|r| r.len() == cols), "ragged matrix");
    let mut out = vec![vec![0u64; cols]; m.len()];
    for c in 0..cols {
        let mut acc = 0u64;
        for r in 0..m.len() {
            out[r][c] = acc;
            acc += m[r][c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exclusive_scan_basics() {
        assert_eq!(exclusive_scan(&[]), Vec::<u64>::new());
        assert_eq!(exclusive_scan(&[5]), vec![0]);
        assert_eq!(exclusive_scan(&[3, 1, 4, 1, 5]), vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn row_and_col_scans() {
        let m = vec![vec![1, 2], vec![3, 4]];
        assert_eq!(row_exclusive_scan(&m), vec![vec![0, 1], vec![0, 3]]);
        assert_eq!(col_exclusive_scan(&m), vec![vec![0, 0], vec![1, 2]]);
    }

    proptest! {
        #[test]
        fn scan_last_plus_last_is_total(xs in proptest::collection::vec(0u64..1000, 1..50)) {
            let s = exclusive_scan(&xs);
            let total: u64 = xs.iter().sum();
            prop_assert_eq!(s[s.len() - 1] + xs[xs.len() - 1], total);
        }

        #[test]
        fn scan_is_monotone(xs in proptest::collection::vec(0u64..1000, 1..50)) {
            let s = exclusive_scan(&xs);
            prop_assert!(s.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
