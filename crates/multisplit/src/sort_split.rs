//! Radix-sort-based multisplit (the CUB approach, ablation A3).
//!
//! §IV-B: "Single-GPU multisplit could be performed by sorting key-value
//! pairs according to the value of p(k) using massively parallel radix
//! sort as provided by CUB. However, Ashkiani et al. proved that the same
//! can be accomplished with less computational effort." This module
//! implements the sort-based alternative so the ablation can measure what
//! the paper saved: an LSD radix sort over the class bits with the same
//! transaction accounting as the real kernels.
//!
//! The sort is *stable*, unlike the binary-split multisplit — a property
//! the ablation table reports, because some downstream uses care.

use crate::scan::exclusive_scan;
use gpu_sim::{DevSlice, Device, GroupSize, KernelStats, LaunchOptions};

/// Result of the sort-based multisplit (same shape as
/// [`crate::SplitResult`] but stable).
#[derive(Debug, Clone)]
pub struct SortSplitResult {
    /// Partition-ordered (stably sorted by class) output buffer.
    pub out: DevSlice,
    /// Per-class element counts.
    pub counts: Vec<u64>,
    /// Exclusive per-class offsets.
    pub offsets: Vec<u64>,
    /// Stats modeling the radix passes.
    pub stats: KernelStats,
}

/// Stable counting sort of `input` by class, modeled as a CUB-style radix
/// sort: one 8-bit digit pass per byte of class range (m ≤ 256 → exactly
/// one pass: histogram read + scatter read/write).
///
/// # Panics
/// Panics if `m == 0 || m > 256`, if `out` is shorter than `input`, or if
/// `class_of` yields a class ≥ m.
pub fn sort_multisplit<F>(
    dev: &Device,
    input: DevSlice,
    out: DevSlice,
    m: usize,
    class_of: F,
) -> SortSplitResult
where
    F: Fn(u64) -> u32 + Sync,
{
    assert!(m > 0 && m <= 256, "sort split handles 1..=256 classes");
    assert!(out.len() >= input.len(), "output buffer too small");
    let n = input.len();

    // Pass 1: histogram. Modeled as a streaming read of the input with
    // per-block shared-memory histograms (negligible atomics at m ≤ 4
    // classes; we count the global reduction as one atomic per block).
    let hist_stats = dev.launch(
        "radix_histogram",
        n.div_ceil(32),
        GroupSize::WARP,
        LaunchOptions::default(),
        |ctx| {
            let base = ctx.group_id() * 32;
            let lanes = (n - base).min(32);
            for r in 0..lanes {
                let _ = ctx.read_stream(input, base + r);
            }
        },
    );

    // host-side exact histogram for the functional result
    let data = dev.mem().d2h(input);
    let mut counts = vec![0u64; m];
    for &w in &data {
        let c = class_of(w) as usize;
        assert!(c < m, "class {c} out of range (m = {m})");
        counts[c] += 1;
    }
    let offsets = exclusive_scan(&counts);

    // Pass 2: scatter. Streaming read + (mostly) coalesced class-bucketed
    // write; modeled as stream read + one 32-byte transaction per 4
    // written words per class run (the scatter of a radix pass is
    // sector-coalesced because consecutive inputs of one class write
    // consecutively).
    let mut cursors = offsets.clone();
    let scatter_stats = dev.launch(
        "radix_scatter",
        n.div_ceil(32),
        GroupSize::WARP,
        LaunchOptions::default(),
        |ctx| {
            let base = ctx.group_id() * 32;
            let lanes = (n - base).min(32);
            for r in 0..lanes {
                let _ = ctx.read_stream(input, base + r);
            }
            // model: each warp scatters its 32 elements into ≤ m class
            // runs; each run's stores are consecutive (sector-coalesced),
            // so bill ceil(lanes·8 / 32) transactions spread over the runs
            // plus one extra partial sector per run boundary
            let runs = m.min(lanes) as u64;
            ctx.bill_transactions((lanes as u64 * 8).div_ceil(32) + runs - 1);
        },
    );
    // functional stable scatter on the host mirror, then upload
    let mut sorted = vec![0u64; n];
    for &w in &data {
        let c = class_of(w) as usize;
        sorted[cursors[c] as usize] = w;
        cursors[c] += 1;
    }
    dev.mem().h2d(out.sub(0, n), &sorted);

    SortSplitResult {
        out: out.sub(0, n),
        counts,
        offsets,
        stats: hist_stats.merged(&scatter_stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(data: &[u64], m: usize) -> (Device, SortSplitResult) {
        let dev = Device::with_words(0, 2 * data.len().max(1) + 8);
        let input = dev.alloc(data.len()).unwrap();
        let out = dev.alloc(data.len().max(1)).unwrap();
        dev.mem().h2d(input, data);
        let res = sort_multisplit(&dev, input, out, m, move |w| (w % m as u64) as u32);
        (dev, res)
    }

    #[test]
    fn sorts_stably_by_class() {
        let data: Vec<u64> = vec![7, 2, 9, 4, 1, 6, 3, 8, 5, 0];
        let (dev, res) = run(&data, 2);
        let out = dev.mem().d2h(res.out);
        // evens in original order, then odds in original order
        assert_eq!(out, vec![2, 4, 6, 8, 0, 7, 9, 1, 3, 5]);
        assert_eq!(res.counts, vec![5, 5]);
        assert_eq!(res.offsets, vec![0, 5]);
    }

    #[test]
    fn agrees_with_binary_multisplit_on_counts() {
        let data: Vec<u64> = (0..500u64).map(|i| i * 37 % 97).collect();
        let m = 4;
        let (_, sorted) = run(&data, m);
        // independent ground truth
        for c in 0..m as u64 {
            let truth = data.iter().filter(|&&w| w % m as u64 == c).count() as u64;
            assert_eq!(sorted.counts[c as usize], truth);
        }
    }

    #[test]
    fn empty_input_ok() {
        let (_, res) = run(&[], 3);
        assert_eq!(res.counts, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "1..=256")]
    fn too_many_classes_rejected() {
        let _ = run(&[1], 300);
    }
}
