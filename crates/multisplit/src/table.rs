//! The m×m partition table and its transposition algebra (§IV-B, Fig. 4).
//!
//! After each GPU runs its local multisplit, `counts[gpu][part]` records
//! how many elements of partition `part` sit on GPU `gpu`. The all-to-all
//! phase transposes this table: afterwards GPU `i` exclusively holds the
//! keys with `p(k) = i`, concatenated over their source GPUs. "Matrix
//! transposition is an isomorphism and thus all-to-all communication is
//! reversible as well" — the query cascade uses the inverse transpose to
//! route results back, which is why [`PartitionTable::transposed`] being
//! an involution is property-tested.

/// Element counts of each (source GPU, partition) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionTable {
    /// Number of GPUs / partitions (square table).
    pub m: usize,
    /// `counts[gpu][part]`.
    pub counts: Vec<Vec<u64>>,
}

impl PartitionTable {
    /// Builds a table from per-GPU multisplit counts.
    ///
    /// # Panics
    /// Panics if `counts` is not square.
    #[must_use]
    pub fn new(counts: Vec<Vec<u64>>) -> Self {
        let m = counts.len();
        assert!(
            counts.iter().all(|r| r.len() == m),
            "partition table must be square"
        );
        Self { m, counts }
    }

    /// The transposed table `T^t[part, gpu]` describing the layout after
    /// the all-to-all phase.
    #[must_use]
    pub fn transposed(&self) -> PartitionTable {
        let m = self.m;
        let counts = (0..m)
            .map(|i| (0..m).map(|j| self.counts[j][i]).collect())
            .collect();
        PartitionTable { m, counts }
    }

    /// Bytes each ordered (source → target) transfer moves, for the
    /// all-to-all cost model. Diagonal entries are zero (data stays put).
    #[must_use]
    pub fn byte_matrix(&self, bytes_per_element: u64) -> Vec<Vec<u64>> {
        (0..self.m)
            .map(|i| {
                (0..self.m)
                    .map(|j| {
                        if i == j {
                            0
                        } else {
                            self.counts[i][j] * bytes_per_element
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Total elements per *target* GPU after transposition — what each
    /// local hash map will receive. Used to check load balance and VRAM
    /// headroom before committing to an insertion cascade.
    #[must_use]
    pub fn elements_per_target(&self) -> Vec<u64> {
        (0..self.m)
            .map(|part| (0..self.m).map(|gpu| self.counts[gpu][part]).sum())
            .collect()
    }

    /// Total elements in the table.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Receive offsets: where, inside target GPU `part`'s receive buffer,
    /// the chunk from source `gpu` begins (column-wise exclusive scan).
    #[must_use]
    pub fn recv_offsets(&self) -> Vec<Vec<u64>> {
        crate::scan::col_exclusive_scan(&self.counts)
    }

    /// Send offsets: where, inside source GPU `gpu`'s partition-ordered
    /// buffer, partition `part` begins (row-wise exclusive scan).
    #[must_use]
    pub fn send_offsets(&self) -> Vec<Vec<u64>> {
        crate::scan::row_exclusive_scan(&self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fig4_table() -> PartitionTable {
        // 4 GPUs × 7 keys each, p(k) = k mod 4 — an instance shaped like
        // the Fig. 4 example (28 keys total)
        PartitionTable::new(vec![
            vec![2, 2, 2, 1],
            vec![1, 3, 1, 2],
            vec![2, 1, 2, 2],
            vec![3, 1, 1, 2],
        ])
    }

    #[test]
    fn transpose_swaps_axes() {
        let t = fig4_table();
        let tt = t.transposed();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(t.counts[i][j], tt.counts[j][i]);
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let t = fig4_table();
        assert_eq!(t.transposed().transposed(), t);
    }

    #[test]
    fn per_target_sums_columns() {
        let t = fig4_table();
        assert_eq!(t.elements_per_target(), vec![8, 7, 6, 7]);
        assert_eq!(t.total(), 28);
    }

    #[test]
    fn byte_matrix_zeroes_diagonal() {
        let t = fig4_table();
        let b = t.byte_matrix(8);
        #[allow(clippy::needless_range_loop)] // (i, j) walks the square matrix
        for i in 0..4 {
            assert_eq!(b[i][i], 0);
            for j in 0..4 {
                if i != j {
                    assert_eq!(b[i][j], t.counts[i][j] * 8);
                }
            }
        }
    }

    #[test]
    fn offsets_are_consistent() {
        let t = fig4_table();
        let send = t.send_offsets();
        // offsets within a row increase by the counts
        for (row, offs) in t.counts.iter().zip(&send) {
            for j in 1..t.m {
                assert_eq!(offs[j], offs[j - 1] + row[j - 1]);
            }
        }
        let recv = t.recv_offsets();
        #[allow(clippy::needless_range_loop)] // column-major walk of a square matrix
        for j in 0..t.m {
            for i in 1..t.m {
                assert_eq!(recv[i][j], recv[i - 1][j] + t.counts[i - 1][j]);
            }
        }
    }

    proptest! {
        #[test]
        fn transpose_involution_holds_generally(
            cells in proptest::collection::vec(0u64..1000, 16)
        ) {
            let counts: Vec<Vec<u64>> = cells.chunks(4).map(<[u64]>::to_vec).collect();
            let t = PartitionTable::new(counts);
            prop_assert_eq!(t.transposed().transposed(), t.clone());
            // totals preserved under transposition
            prop_assert_eq!(t.transposed().total(), t.total());
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_table_rejected() {
        let _ = PartitionTable::new(vec![vec![1, 2], vec![3]]);
    }
}
