//! Robin Hood hashing on the GPU (García et al., ref. \[8\]).
//!
//! Linear probing with *displacement equalisation*: an inserting element
//! that has travelled farther from its home slot than the resident entry
//! evicts it ("takes from the rich"). García's implementation uses one
//! thread per pair in a lock-free manner, encoding the probe age in 4
//! spare key bits; we compute the displacement from the hash instead
//! (`d = (slot − h(key)) mod c`), which is the same invariant without the
//! key-width restriction. Each probe is an uncoalesced single-word
//! access, as in the original.
//!
//! The paper positions this as running "at comparable speed to
//! Alcantara's hash map" — the baseline table reproduces that.

use gpu_sim::{DevSlice, Device, GroupCtx, GroupSize, KernelStats, LaunchOptions};
use hashes::{HashFn32, Hasher32, Translated};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use warpdrive::{key_of, pack, value_of, EMPTY};

/// Outcome of a Robin Hood bulk insert.
#[derive(Debug, Clone)]
pub struct RobinHoodOutcome {
    /// Kernel stats.
    pub stats: KernelStats,
    /// Pairs that exceeded the probe bound.
    pub failed: u64,
}

/// A lock-free Robin Hood hash table on the simulated device.
#[derive(Debug)]
pub struct RobinHoodMap {
    dev: Arc<Device>,
    table: DevSlice,
    capacity: usize,
    /// Division-free `% capacity` for the per-probe home computation.
    fm: hashes::FastMod32,
    hash: Translated,
    max_probe: u32,
    occupied: AtomicU64,
}

impl RobinHoodMap {
    /// Allocates a table of `capacity` slots.
    ///
    /// # Errors
    /// Propagates device OOM.
    pub fn new(dev: Arc<Device>, capacity: usize, seed: u32) -> Result<Self, gpu_sim::OutOfMemory> {
        assert!(capacity > 0);
        let table = dev.alloc(capacity)?;
        dev.mem().fill(table, EMPTY);
        Ok(Self {
            dev,
            table,
            capacity,
            fm: hashes::FastMod32::new(capacity as u64),
            hash: Translated {
                base: HashFn32::Murmur,
                offset: seed,
            },
            max_probe: (capacity as u32).min(4096),
            occupied: AtomicU64::new(0),
        })
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.occupied.load(Relaxed)
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn home(&self, key: u32) -> usize {
        self.fm.rem(u64::from(self.hash.hash(key))) as usize
    }

    #[inline]
    fn displacement(&self, key: u32, slot: usize) -> usize {
        // slot and home are both < capacity, so the sum is < 2·capacity:
        // one conditional subtraction, bit-identical to the modulo
        let s = slot + self.capacity - self.home(key);
        if s >= self.capacity {
            s - self.capacity
        } else {
            s
        }
    }

    /// Bulk insert. Duplicate keys update in place (the displacement
    /// invariant puts equal keys on the same probe path).
    pub fn insert_pairs(&self, pairs: &[(u32, u32)]) -> RobinHoodOutcome {
        let words: Vec<u64> = pairs.iter().map(|&(k, v)| pack(k, v)).collect();
        let staging = self
            .dev
            .alloc_scratch(words.len().max(1))
            .expect("robin hood staging");
        let input = staging.slice().sub(0, words.len());
        self.dev.mem().h2d(input, &words);

        let failed = AtomicU64::new(0);
        let inserted = AtomicU64::new(0);
        let stats = self.dev.launch(
            "robin_hood_insert",
            words.len(),
            GroupSize::new(1),
            LaunchOptions::default().with_working_set(self.table.bytes()),
            |ctx: &GroupCtx| {
                let mut word = ctx.read_stream(input, ctx.group_id());
                let mut dist = 0usize;
                let mut pos = self.home(key_of(word));
                for _ in 0..self.max_probe {
                    let cur = ctx.read(self.table, pos);
                    if cur == EMPTY {
                        if ctx.cas(self.table, pos, EMPTY, word).is_ok() {
                            // exactly one slot went vacant → occupied
                            inserted.fetch_add(1, Relaxed);
                            return;
                        }
                        continue; // slot changed under us: re-read
                    }
                    if key_of(cur) == key_of(word) {
                        // duplicate: update value in place
                        if ctx.cas(self.table, pos, cur, word).is_ok() {
                            return;
                        }
                        continue;
                    }
                    let d_cur = self.displacement(key_of(cur), pos);
                    if dist > d_cur {
                        // rob the rich: swap and carry the evictee onward
                        if ctx.cas(self.table, pos, cur, word).is_ok() {
                            word = cur;
                            dist = d_cur;
                        }
                        continue; // re-examine (possibly changed) slot
                    }
                    pos += 1;
                    if pos == self.capacity {
                        pos = 0;
                    }
                    dist += 1;
                }
                failed.fetch_add(1, Relaxed);
            },
        );
        self.occupied.fetch_add(inserted.load(Relaxed), Relaxed);
        RobinHoodOutcome {
            stats,
            failed: failed.load(Relaxed),
        }
    }

    /// Bulk retrieval with a typed [`warpdrive::OpReport`]: linear probe
    /// from the home slot; EMPTY terminates.
    ///
    /// # Errors
    /// [`warpdrive::OpError::OutOfMemory`] if the query batch cannot be
    /// staged.
    pub fn try_retrieve(
        &self,
        keys: &[u32],
    ) -> Result<warpdrive::GetResponse, warpdrive::OpError> {
        let (values, stats) = self.retrieve_impl(keys)?;
        Ok(warpdrive::GetResponse {
            values,
            report: warpdrive::OpReport::from_kernel(&stats, keys.len() as u64),
        })
    }

    /// Bulk retrieval: linear probe from the home slot; EMPTY terminates.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve(&self, keys: &[u32]) -> (Vec<Option<u32>>, KernelStats) {
        self.retrieve_impl(keys).expect("rh staging")
    }

    fn retrieve_impl(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Option<u32>>, KernelStats), warpdrive::OpError> {
        let n = keys.len();
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let staging = self.dev.alloc_scratch(2 * n.max(1))?;
        let input = staging.slice().sub(0, n);
        let out = staging.slice().sub(n.max(1), n);
        self.dev.mem().h2d(input, &words);

        let stats = self.dev.launch(
            "robin_hood_retrieve",
            n,
            GroupSize::new(1),
            LaunchOptions::default().with_working_set(self.table.bytes()),
            |ctx: &GroupCtx| {
                let key = key_of(ctx.read_stream(input, ctx.group_id()));
                let mut pos = self.home(key);
                for dist in 0..self.max_probe as usize {
                    let w = ctx.read(self.table, pos);
                    if key_of(w) == key {
                        ctx.write_stream(out, ctx.group_id(), w);
                        return;
                    }
                    if w == EMPTY {
                        break;
                    }
                    // Robin Hood early exit: if the resident entry is
                    // (much) closer to home than we are, our key cannot be
                    // farther down the chain. The slack tolerates the
                    // transient invariant violations of lock-free swaps.
                    if self.displacement(key_of(w), pos) + 8 < dist {
                        break;
                    }
                    pos += 1;
                    if pos == self.capacity {
                        pos = 0;
                    }
                }
                ctx.write_stream(out, ctx.group_id(), EMPTY);
            },
        );
        let results = self
            .dev
            .mem()
            .d2h(out)
            .into_iter()
            .map(|w| (w != EMPTY).then(|| value_of(w)))
            .collect();
        Ok((results, stats))
    }

    /// Probe-length statistics over all live entries (host-side): Robin
    /// Hood's selling point is the *equalized* (low-variance) distribution.
    #[must_use]
    pub fn displacement_histogram(&self) -> Vec<u64> {
        let words = self.dev.mem().d2h(self.table);
        let mut hist = Vec::new();
        for (slot, &w) in words.iter().enumerate() {
            if w == EMPTY {
                continue;
            }
            let d = self.displacement(key_of(w), slot);
            if d >= hist.len() {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(capacity: usize) -> RobinHoodMap {
        let dev = Arc::new(Device::with_words(0, capacity * 4 + 256));
        RobinHoodMap::new(dev, capacity, 3).unwrap()
    }

    #[test]
    fn round_trip_at_high_load() {
        let m = map(1024);
        let pairs: Vec<(u32, u32)> = (0..973u32).map(|i| (i * 7 + 1, i)).collect(); // 0.95
        let out = m.insert_pairs(&pairs);
        assert_eq!(out.failed, 0);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([123_456_789]).collect();
        let res = m.try_retrieve(&keys).unwrap().values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1), "key {}", p.0);
        }
        assert_eq!(res[973], None);
    }

    #[test]
    fn duplicates_update() {
        let m = map(128);
        m.insert_pairs(&[(5, 1)]);
        m.insert_pairs(&[(5, 2)]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.try_retrieve(&[5]).unwrap().values[0], Some(2));
    }

    #[test]
    fn displacements_are_equalized() {
        // compare max displacement against plain linear probing's expected
        // long tails: Robin Hood keeps the maximum small at 0.9 load
        let m = map(2048);
        let pairs: Vec<(u32, u32)> = (0..1843u32).map(|i| (i * 11 + 3, i)).collect();
        let out = m.insert_pairs(&pairs);
        assert_eq!(out.failed, 0);
        let hist = m.displacement_histogram();
        let max_disp = hist.len() - 1;
        let total: u64 = hist.iter().sum();
        assert_eq!(total, 1843);
        // variance reduction: the vast majority sit within a few slots
        let near: u64 = hist.iter().take(16).sum();
        assert!(
            near as f64 / total as f64 > 0.80,
            "only {near}/{total} within 16 slots (max {max_disp})"
        );
    }

    #[test]
    fn concurrent_displacement_chains_preserve_all_entries() {
        // many racing evictions must not drop entries
        let m = map(512);
        let pairs: Vec<(u32, u32)> = (0..480u32).map(|i| (i + 1, i)).collect();
        let out = m.insert_pairs(&pairs);
        assert_eq!(out.failed, 0);
        let res = m.try_retrieve(&(1..=480).collect::<Vec<u32>>()).unwrap().values;
        let missing: Vec<u32> = res
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| i as u32 + 1)
            .collect();
        assert!(missing.is_empty(), "lost keys: {missing:?}");
    }
}
