//! A Folklore-style concurrent CPU hash map (Maier et al., ref. \[10\]).
//!
//! The CPU yardstick of the paper's §III: CAS on fixed-length machine
//! words, open addressing with linear probing, bulk operations
//! parallelised over all cores. Unlike every other baseline this is a
//! *real* data structure measured in wall-clock time (see the
//! `kernels` criterion bench), not a simulated one — it is what a
//! downstream user would reach for on a machine without GPUs.
//!
//! Guides note: per *Rust Atomics and Locks*, the packed 64-bit entry is
//! self-contained (no other memory is published through it), so all
//! accesses use `Relaxed` ordering; the bulk API's Rayon join provides
//! the cross-thread happens-before for readers that follow writers.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use warpdrive::{key_of, pack, value_of, EMPTY};

/// A fixed-capacity concurrent open-addressing hash map for 4+4-byte
/// pairs.
#[derive(Debug)]
pub struct FolkloreMap {
    cells: Box<[AtomicU64]>,
    mask: usize,
    occupied: AtomicU64,
}

/// Result of a bulk insert.
#[derive(Debug, Clone, Copy, Default)]
pub struct FolkloreInsertOutcome {
    /// Newly claimed slots.
    pub new_slots: u64,
    /// In-place value updates.
    pub updates: u64,
    /// Pairs that found no slot (table effectively full).
    pub failed: u64,
}

impl FolkloreMap {
    /// Creates a map with capacity rounded up to a power of two.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let cap = capacity.next_power_of_two();
        let mut v = Vec::with_capacity(cap);
        v.resize_with(cap, || AtomicU64::new(EMPTY));
        Self {
            cells: v.into_boxed_slice(),
            mask: cap - 1,
            occupied: AtomicU64::new(0),
        }
    }

    /// Slot count (power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.occupied.load(Relaxed)
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn home(&self, key: u32) -> usize {
        hashes::fmix32(key) as usize & self.mask
    }

    /// Inserts one pair; duplicate keys update. Lock-free.
    ///
    /// # Errors
    /// `Err(())` when the probe wrapped the whole table without finding a
    /// slot (table full).
    // Raw `compare_exchange` is the *point* here: Folklore is the real CPU
    // baseline measured in wall-clock time, not a simulated kernel, so the
    // kernel-crate ban on uncounted CAS (clippy.toml) does not apply.
    #[allow(clippy::disallowed_methods, clippy::result_unit_err)]
    pub fn insert(&self, key: u32, value: u32) -> Result<bool, ()> {
        debug_assert_ne!(key, u32::MAX, "key u32::MAX is reserved");
        let word = pack(key, value);
        let mut pos = self.home(key);
        for _ in 0..=self.mask {
            let cur = self.cells[pos].load(Relaxed);
            if cur == EMPTY {
                match self.cells[pos].compare_exchange(EMPTY, word, Relaxed, Relaxed) {
                    Ok(_) => {
                        self.occupied.fetch_add(1, Relaxed);
                        return Ok(true);
                    }
                    Err(_) => continue, // re-read the same slot
                }
            }
            if key_of(cur) == key {
                // update: CAS so a concurrent update is not lost silently
                if self.cells[pos]
                    .compare_exchange(cur, word, Relaxed, Relaxed)
                    .is_ok()
                {
                    return Ok(false);
                }
                continue;
            }
            pos = (pos + 1) & self.mask;
        }
        Err(())
    }

    /// Looks one key up. Lock-free, wait-free for bounded tables.
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u32> {
        let mut pos = self.home(key);
        for _ in 0..=self.mask {
            let cur = self.cells[pos].load(Relaxed);
            if cur == EMPTY {
                return None;
            }
            if key_of(cur) == key {
                return Some(value_of(cur));
            }
            pos = (pos + 1) & self.mask;
        }
        None
    }

    /// Parallel bulk insert over the Rayon pool.
    #[must_use]
    pub fn insert_bulk(&self, pairs: &[(u32, u32)]) -> FolkloreInsertOutcome {
        pairs
            .par_iter()
            .map(|&(k, v)| match self.insert(k, v) {
                Ok(true) => FolkloreInsertOutcome {
                    new_slots: 1,
                    ..Default::default()
                },
                Ok(false) => FolkloreInsertOutcome {
                    updates: 1,
                    ..Default::default()
                },
                Err(()) => FolkloreInsertOutcome {
                    failed: 1,
                    ..Default::default()
                },
            })
            .reduce(FolkloreInsertOutcome::default, |a, b| {
                FolkloreInsertOutcome {
                    new_slots: a.new_slots + b.new_slots,
                    updates: a.updates + b.updates,
                    failed: a.failed + b.failed,
                }
            })
    }

    /// Parallel bulk lookup.
    #[must_use]
    pub fn get_bulk(&self, keys: &[u32]) -> Vec<Option<u32>> {
        keys.par_iter().map(|&k| self.get(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bulk() {
        let m = FolkloreMap::new(4096);
        let pairs: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 7 + 1, i)).collect();
        let out = m.insert_bulk(&pairs);
        assert_eq!(out.new_slots, 3000);
        assert_eq!(out.failed, 0);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = m.get_bulk(&keys);
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1));
        }
        assert_eq!(m.get(999_999_999), None);
    }

    #[test]
    fn duplicates_update() {
        let m = FolkloreMap::new(64);
        assert_eq!(m.insert(1, 10), Ok(true));
        assert_eq!(m.insert(1, 20), Ok(false));
        assert_eq!(m.get(1), Some(20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FolkloreMap::new(1000).capacity(), 1024);
        assert_eq!(FolkloreMap::new(1024).capacity(), 1024);
    }

    #[test]
    fn survives_full_table() {
        let m = FolkloreMap::new(64); // rounds to 64
        let pairs: Vec<(u32, u32)> = (0..64u32).map(|i| (i + 1, i)).collect();
        let out = m.insert_bulk(&pairs);
        assert_eq!(out.new_slots, 64);
        // one more key cannot fit
        assert_eq!(m.insert(1000, 0), Err(()));
        // but updates still work
        assert_eq!(m.insert(1, 99), Ok(false));
    }

    #[test]
    fn concurrent_hammering_on_one_key() {
        let m = std::sync::Arc::new(FolkloreMap::new(256));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    let _ = m.insert(7, t * 10_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 1);
        assert!(m.get(7).is_some());
    }
}
