//! Sort-and-compress key-value store (§II's competing design).
//!
//! Keys are sorted together with their values (CUB-style radix sort),
//! equal-key runs are compressed with a prefix scan, and queries binary
//! search the sorted key array. The paper's critique, which this module
//! makes measurable:
//!
//! * **memory** — sorting needs an O(n) double buffer, "effectively
//!   reducing the capacity by a factor of two";
//! * **query time** — O(log n) probes versus the hash map's expected
//!   constant.
//!
//! The build is modeled as 4 radix passes over packed 64-bit pairs (8-bit
//! digits over the 32-bit key), each pass a streaming read + sector-
//! coalesced scatter; queries are billed one uncoalesced transaction per
//! binary-search step.

use gpu_sim::{DevSlice, Device, GroupCtx, GroupSize, KernelStats, LaunchOptions};
use std::sync::Arc;
use warpdrive::{key_of, pack, value_of, EMPTY};

/// Number of radix passes (8-bit digits over 32-bit keys).
const RADIX_PASSES: usize = 4;

/// An immutable sorted key-value store supporting multi-value keys.
#[derive(Debug)]
pub struct SortCompressStore {
    dev: Arc<Device>,
    /// Sorted packed pairs.
    sorted: DevSlice,
    n: usize,
    /// Words consumed including the auxiliary double buffer.
    pub footprint_words: usize,
}

impl SortCompressStore {
    /// Builds the store from `pairs`; returns it with the modeled build
    /// stats.
    ///
    /// # Errors
    /// Propagates device OOM (the build needs `2n` words — the §II
    /// auxiliary-memory cost).
    pub fn build(
        dev: Arc<Device>,
        pairs: &[(u32, u32)],
    ) -> Result<(Self, KernelStats), gpu_sim::OutOfMemory> {
        let n = pairs.len();
        let buf_a = dev.alloc(n.max(1))?;
        let buf_b = dev.alloc(n.max(1))?; // the O(n) auxiliary buffer
        let mut words: Vec<u64> = pairs.iter().map(|&(k, v)| pack(k, v)).collect();
        dev.mem().h2d(buf_a.sub(0, n), &words);

        // functional sort (stable by key) on the host mirror
        words.sort_by_key(|&w| key_of(w));
        dev.mem().h2d(buf_a.sub(0, n), &words);

        // model: RADIX_PASSES × (stream read + sector scatter + stream write)
        let mut stats: Option<KernelStats> = None;
        for pass in 0..RADIX_PASSES {
            let s = dev.launch(
                &format!("radix_pass_{pass}"),
                n.div_ceil(32),
                GroupSize::WARP,
                LaunchOptions::default(),
                |ctx: &GroupCtx| {
                    ctx.bill_stream_bytes(32 * 8); // read
                    ctx.bill_stream_bytes(32 * 8); // write
                                                   // scatter sector misalignment: one extra transaction
                                                   // per 256-bucket boundary a warp straddles (≈2)
                    ctx.bill_transactions(2);
                },
            );
            stats = Some(match stats {
                None => s,
                Some(acc) => acc.merged(&s),
            });
        }
        let stats = stats.expect("at least one pass");
        let _ = buf_b; // retained: the footprint is the point
        Ok((
            Self {
                dev,
                sorted: buf_a.sub(0, n),
                n,
                footprint_words: 2 * n.max(1),
            },
            stats,
        ))
    }

    /// Number of stored pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Binary-search queries with a typed [`warpdrive::OpReport`]:
    /// returns the value of the first matching run element per key (like
    /// the single-value hash map contract).
    ///
    /// # Errors
    /// [`warpdrive::OpError::OutOfMemory`] if the query batch cannot be
    /// staged.
    pub fn try_retrieve(
        &self,
        keys: &[u32],
    ) -> Result<warpdrive::GetResponse, warpdrive::OpError> {
        let (values, stats) = self.retrieve_impl(keys)?;
        Ok(warpdrive::GetResponse {
            values,
            report: warpdrive::OpReport::from_kernel(&stats, keys.len() as u64),
        })
    }

    /// Binary-search queries: returns the value of the first matching run
    /// element per key (like the single-value hash map contract).
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve(&self, keys: &[u32]) -> (Vec<Option<u32>>, KernelStats) {
        self.retrieve_impl(keys).expect("sc staging")
    }

    fn retrieve_impl(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Option<u32>>, KernelStats), warpdrive::OpError> {
        let nq = keys.len();
        let qwords: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let staging = self.dev.alloc_scratch(2 * nq.max(1))?;
        let input = staging.slice().sub(0, nq);
        let out = staging.slice().sub(nq.max(1), nq);
        self.dev.mem().h2d(input, &qwords);

        let sorted = self.sorted;
        let n = self.n;
        let stats = self.dev.launch(
            "sorted_binary_search",
            nq,
            GroupSize::new(1),
            LaunchOptions::default().with_working_set(sorted.bytes()),
            |ctx: &GroupCtx| {
                let key = key_of(ctx.read_stream(input, ctx.group_id()));
                let (mut lo, mut hi) = (0usize, n);
                let mut hit = EMPTY;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    let w = ctx.read(sorted, mid); // uncoalesced per step
                    match key_of(w).cmp(&key) {
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                        std::cmp::Ordering::Equal => {
                            hit = w;
                            hi = mid; // find the first of the run
                        }
                    }
                }
                ctx.write_stream(out, ctx.group_id(), hit);
            },
        );
        let results = self
            .dev
            .mem()
            .d2h(out)
            .into_iter()
            .map(|w| (w != EMPTY).then(|| value_of(w)))
            .collect();
        Ok((results, stats))
    }

    /// All values of one key (the multi-value capability): binary search
    /// plus a run scan. Host-convenience used by the k-mer example.
    #[must_use]
    pub fn retrieve_run(&self, key: u32) -> Vec<u32> {
        let words = self.dev.mem().d2h(self.sorted);
        let start = words.partition_point(|&w| key_of(w) < key);
        words[start..]
            .iter()
            .take_while(|&&w| key_of(w) == key)
            .map(|&w| value_of(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(pairs: &[(u32, u32)]) -> (SortCompressStore, KernelStats) {
        let dev = Arc::new(Device::with_words(0, pairs.len() * 6 + 256));
        SortCompressStore::build(dev, pairs).unwrap()
    }

    #[test]
    fn round_trip_with_misses() {
        let pairs: Vec<(u32, u32)> = (0..1000u32).map(|i| (i * 2 + 1, i)).collect();
        let (store, build_stats) = build(&pairs);
        assert!(build_stats.counters.stream_bytes > 0);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([0, 2, 4]).collect();
        let resp = store.try_retrieve(&keys).unwrap();
        let res = resp.values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1));
        }
        assert!(res[1000..].iter().all(Option::is_none));
        // O(log n) probes per query
        let per_query = resp.report.counters.transactions as f64 / keys.len() as f64;
        assert!(
            (8.0..=12.0).contains(&per_query),
            "binary search depth {per_query}"
        );
    }

    #[test]
    fn footprint_is_double() {
        let pairs: Vec<(u32, u32)> = (0..100u32).map(|i| (i, i)).collect();
        let (store, _) = build(&pairs);
        assert_eq!(store.footprint_words, 200);
    }

    #[test]
    fn multi_value_runs() {
        let pairs = vec![(5, 1), (3, 9), (5, 2), (5, 3), (7, 0)];
        let (store, _) = build(&pairs);
        let mut run = store.retrieve_run(5);
        run.sort_unstable();
        assert_eq!(run, vec![1, 2, 3]);
        assert_eq!(store.retrieve_run(4), Vec::<u32>::new());
        // single-value API returns the first of the run
        let res = store.try_retrieve(&[5, 3]).unwrap().values;
        assert!(res[0].is_some());
        assert_eq!(res[1], Some(9));
    }

    #[test]
    fn empty_store() {
        let (store, _) = build(&[]);
        assert!(store.is_empty());
        let res = store.try_retrieve(&[1]).unwrap().values;
        assert_eq!(res, vec![None]);
    }
}
