//! Stadium hashing (Khorasani et al., ref. \[9\]).
//!
//! An auxiliary **ticket board** — one availability bit per table slot,
//! packed 64 per word — gates accesses to the hash table: a thread probes
//! the (cheap, cache-resident) ticket board first and touches the big
//! table only when the bit says the slot is available (insert) or occupied
//! (query). Double hashing drives the probe sequence.
//!
//! Two placements of the main table are supported, as in the paper:
//!
//! * **in-core** — table in VRAM; Stadium runs ≈1.04–1.19× faster than
//!   GPU cuckoo at α = 0.8 on the authors' hardware;
//! * **out-of-core** — only the ticket board stays in VRAM, the table
//!   lives in host memory behind PCIe; throughput collapses to
//!   ≈100 M ops/s. This mode is WarpDrive's foil: §III argues multi-GPU
//!   distribution beats out-of-core host tables.
//!
//! Out-of-core table traffic is billed against PCIe bandwidth on top of
//! the kernel's simulated time.

use gpu_sim::{DevSlice, Device, GroupCtx, GroupSize, KernelStats, LaunchOptions};
use hashes::{DoubleHash, FastMod32, HashFamily};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use warpdrive::{key_of, pack, value_of, EMPTY};

/// Where the main table lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TablePlacement {
    /// Table in video memory (fast).
    InCore,
    /// Table in host memory behind PCIe (the out-of-core mode).
    OutOfCore {
        /// Effective PCIe bandwidth in bytes/s for table traffic.
        pcie_bandwidth: f64,
    },
}

/// Result of a Stadium bulk operation, including out-of-core PCIe billing.
#[derive(Debug, Clone)]
pub struct StadiumStats {
    /// On-device kernel stats (ticket board + in-core table traffic).
    pub kernel: KernelStats,
    /// Bytes of main-table traffic that crossed PCIe (0 when in-core).
    pub pcie_bytes: u64,
    /// Total simulated time: kernel time + PCIe table traffic.
    pub sim_time: f64,
    /// Pairs that exhausted the probe bound (inserts only).
    pub failed: u64,
}

/// A Stadium hash table.
#[derive(Debug)]
pub struct StadiumHash {
    dev: Arc<Device>,
    tickets: DevSlice,
    table: DevSlice,
    /// Division-free `% capacity` for the per-attempt probe slot (also
    /// carries the capacity itself via [`FastMod32::divisor`]).
    fm: FastMod32,
    placement: TablePlacement,
    dh: DoubleHash,
    max_probe: u32,
    occupied: AtomicU64,
}

impl StadiumHash {
    /// Allocates a table of `capacity` slots plus its ticket board
    /// (`capacity / 64` words).
    ///
    /// # Errors
    /// Propagates device OOM (out-of-core mode still allocates the table
    /// words in the simulation pool, but bills their traffic over PCIe).
    pub fn new(
        dev: Arc<Device>,
        capacity: usize,
        placement: TablePlacement,
        seed: u32,
    ) -> Result<Self, gpu_sim::OutOfMemory> {
        assert!(capacity > 0);
        let tickets = dev.alloc(capacity.div_ceil(64))?;
        let table = dev.alloc(capacity)?;
        dev.mem().fill(tickets, 0); // bit set = slot claimed
        dev.mem().fill(table, EMPTY);
        Ok(Self {
            dev,
            tickets,
            table,
            fm: FastMod32::new(capacity as u64),
            placement,
            dh: DoubleHash::from_seed(seed ^ 0x57ad_1030),
            max_probe: (capacity as u32).min(4096),
            occupied: AtomicU64::new(0),
        })
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.occupied.load(Relaxed)
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn probe_slot(&self, key: u32, attempt: u32) -> usize {
        self.fm.rem(u64::from(self.dh.member(attempt, key))) as usize
    }

    fn finish(&self, kernel: KernelStats, table_txns: u64, failed: u64) -> StadiumStats {
        let (pcie_bytes, extra) = match self.placement {
            TablePlacement::InCore => (0, 0.0),
            TablePlacement::OutOfCore { pcie_bandwidth } => {
                // each table transaction moves a 32-byte sector over PCIe
                let bytes = table_txns * 32;
                (bytes, bytes as f64 / pcie_bandwidth)
            }
        };
        StadiumStats {
            sim_time: kernel.sim_time + extra,
            kernel,
            pcie_bytes,
            failed,
        }
    }

    /// Bulk insert: claim a ticket bit, then write the slot (no table CAS
    /// needed — the ticket serializes claims).
    pub fn insert_pairs(&self, pairs: &[(u32, u32)]) -> StadiumStats {
        let words: Vec<u64> = pairs.iter().map(|&(k, v)| pack(k, v)).collect();
        let staging = self
            .dev
            .alloc_scratch(words.len().max(1))
            .expect("stadium staging");
        let input = staging.slice().sub(0, words.len());
        self.dev.mem().h2d(input, &words);

        let failed = AtomicU64::new(0);
        let inserted = AtomicU64::new(0);
        let table_txns = AtomicU64::new(0);
        let stats = self.dev.launch(
            "stadium_insert",
            words.len(),
            GroupSize::new(1),
            LaunchOptions::default().with_working_set(self.tickets.bytes()),
            |ctx: &GroupCtx| {
                let word = ctx.read_stream(input, ctx.group_id());
                let key = key_of(word);
                for a in 0..self.max_probe {
                    let slot = self.probe_slot(key, a);
                    let (tw, tb) = (slot / 64, slot % 64);
                    let bits = ctx.read(self.tickets, tw);
                    if bits & (1 << tb) != 0 {
                        continue; // ticket says occupied: rehash
                    }
                    let prev = ctx.atomic_or(self.tickets, tw, 1 << tb);
                    if prev & (1 << tb) != 0 {
                        continue; // lost the claim race
                    }
                    // we own the slot: plain store to the big table
                    ctx.write(self.table, slot, word);
                    table_txns.fetch_add(1, Relaxed);
                    inserted.fetch_add(1, Relaxed);
                    return;
                }
                failed.fetch_add(1, Relaxed);
            },
        );
        self.occupied.fetch_add(inserted.load(Relaxed), Relaxed);
        self.finish(stats, table_txns.load(Relaxed), failed.load(Relaxed))
    }

    /// Bulk retrieval with a typed [`warpdrive::OpReport`]: the ticket
    /// board screens absent slots; the table is touched only for occupied
    /// slots on the probe path. The report's `time` is the PCIe-inclusive
    /// modeled time ([`StadiumStats::sim_time`]).
    ///
    /// # Errors
    /// [`warpdrive::OpError::OutOfMemory`] if the query batch cannot be
    /// staged.
    pub fn try_retrieve(
        &self,
        keys: &[u32],
    ) -> Result<warpdrive::GetResponse, warpdrive::OpError> {
        let (values, st) = self.retrieve_impl(keys)?;
        let mut report = warpdrive::OpReport::from_kernel(&st.kernel, keys.len() as u64);
        report.time = st.sim_time;
        Ok(warpdrive::GetResponse { values, report })
    }

    /// Bulk retrieval: the ticket board screens absent slots; the table is
    /// touched only for occupied slots on the probe path.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve(&self, keys: &[u32]) -> (Vec<Option<u32>>, StadiumStats) {
        self.retrieve_impl(keys).expect("stadium staging")
    }

    fn retrieve_impl(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Option<u32>>, StadiumStats), warpdrive::OpError> {
        let n = keys.len();
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let staging = self.dev.alloc_scratch(2 * n.max(1))?;
        let input = staging.slice().sub(0, n);
        let out = staging.slice().sub(n.max(1), n);
        self.dev.mem().h2d(input, &words);

        let table_txns = AtomicU64::new(0);
        let stats = self.dev.launch(
            "stadium_retrieve",
            n,
            GroupSize::new(1),
            LaunchOptions::default().with_working_set(self.tickets.bytes()),
            |ctx: &GroupCtx| {
                let key = key_of(ctx.read_stream(input, ctx.group_id()));
                for a in 0..self.max_probe {
                    let slot = self.probe_slot(key, a);
                    let (tw, tb) = (slot / 64, slot % 64);
                    let bits = ctx.read(self.tickets, tw);
                    if bits & (1 << tb) == 0 {
                        break; // never claimed: key absent
                    }
                    let w = ctx.read(self.table, slot);
                    table_txns.fetch_add(1, Relaxed);
                    if key_of(w) == key {
                        ctx.write_stream(out, ctx.group_id(), w);
                        return;
                    }
                }
                ctx.write_stream(out, ctx.group_id(), EMPTY);
            },
        );
        let results = self
            .dev
            .mem()
            .d2h(out)
            .into_iter()
            .map(|w| (w != EMPTY).then(|| value_of(w)))
            .collect();
        Ok((results, self.finish(stats, table_txns.load(Relaxed), 0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(capacity: usize, placement: TablePlacement) -> StadiumHash {
        let dev = Arc::new(Device::with_words(0, capacity * 4 + 512));
        StadiumHash::new(dev, capacity, placement, 7).unwrap()
    }

    #[test]
    fn in_core_round_trip() {
        let t = table(1024, TablePlacement::InCore);
        let pairs: Vec<(u32, u32)> = (0..819u32).map(|i| (i * 5 + 2, i)).collect(); // 0.8
        let out = t.insert_pairs(&pairs);
        assert_eq!(out.failed, 0);
        assert_eq!(out.pcie_bytes, 0);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([404]).collect();
        let res = t.try_retrieve(&keys).unwrap().values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1), "key {}", p.0);
        }
        assert_eq!(res[819], None);
    }

    #[test]
    fn out_of_core_pays_pcie() {
        let pairs: Vec<(u32, u32)> = (0..800u32).map(|i| (i * 3 + 1, i)).collect();
        let incore = table(1024, TablePlacement::InCore);
        let i = incore.insert_pairs(&pairs);
        let oo = table(
            1024,
            TablePlacement::OutOfCore {
                pcie_bandwidth: 11.0e9,
            },
        );
        let o = oo.insert_pairs(&pairs);
        assert_eq!(o.failed, 0);
        assert!(o.pcie_bytes >= 800 * 32);
        assert!(
            o.sim_time > i.sim_time,
            "out-of-core {:.3e} vs in-core {:.3e}",
            o.sim_time,
            i.sim_time
        );
    }

    #[test]
    fn ticket_board_screens_misses_cheaply() {
        let t = table(4096, TablePlacement::InCore);
        let pairs: Vec<(u32, u32)> = (0..1000u32).map(|i| (i + 1, i)).collect();
        t.insert_pairs(&pairs);
        // query only absent keys: table reads should be rare relative to
        // probes because tickets answer most of them
        let miss_keys: Vec<u32> = (1_000_000..1_002_000).collect();
        let resp = t.try_retrieve(&miss_keys).unwrap();
        assert!(resp.values.iter().all(Option::is_none));
        assert!(resp.report.counters.transactions > 0);
    }

    #[test]
    fn ticket_claims_are_exclusive() {
        // duplicates are two independent claims (Stadium does not merge
        // keys) — both succeed in distinct slots
        let t = table(128, TablePlacement::InCore);
        let out = t.insert_pairs(&[(7, 1), (7, 2)]);
        assert_eq!(out.failed, 0);
        assert_eq!(t.len(), 2);
        // retrieval returns the first on the probe path
        let res = t.try_retrieve(&[7]).unwrap().values;
        assert!(res[0].is_some());
    }
}
