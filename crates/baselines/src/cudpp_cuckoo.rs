//! CUDPP-style cuckoo hashing (Alcantara et al., refs. \[2\]/\[7\]).
//!
//! The single-pass "GPU cuckoo hash": one *thread* (`|g| = 1`) inserts one
//! pair using fourth-degree cuckoo hashing on a single table. An insertion
//! `atomicExch`es its word into the first candidate slot; if the displaced
//! word is live, the thread adopts it and re-inserts it at *its* next
//! candidate position, bounding the chain at `max_iter ≈ 7·log₂ n` before
//! spilling to a small linearly-probed stash. Every probe is an
//! uncoalesced single-word access — one full 32-byte transaction for 8
//! useful bytes — which is precisely the traffic disadvantage WarpDrive's
//! coalesced windows remove.
//!
//! Like CUDPP, duplicate keys are **not** supported (two copies may land
//! in different candidate slots); the paper notes this when discussing the
//! Zipf experiment.

use gpu_sim::{DevSlice, Device, GroupCtx, GroupSize, KernelStats, LaunchOptions};
use hashes::{FastMod32, HashFn32, Hasher32, Translated};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use warpdrive::{key_of, pack, value_of, EMPTY};

/// Number of hash functions (fourth-degree cuckoo, as in CUDPP).
pub const DEGREE: usize = 4;

/// Maximum supported load factor (the paper: "CUDPP is constrained to a
/// maximum load of 97%").
pub const MAX_LOAD: f64 = 0.97;

/// Outcome of a cuckoo bulk insert.
#[derive(Debug, Clone)]
pub struct CuckooInsertOutcome {
    /// Kernel stats.
    pub stats: KernelStats,
    /// Pairs that exceeded the eviction-chain bound *and* found no stash
    /// slot (the table must be rebuilt with new functions).
    pub failed: u64,
    /// Pairs that landed in the stash.
    pub stashed: u64,
}

/// A GPU cuckoo hash table with stash.
#[derive(Debug)]
pub struct CuckooHash {
    dev: Arc<Device>,
    table: DevSlice,
    stash: DevSlice,
    capacity: usize,
    /// Division-free `% capacity` for the per-attempt location lookup.
    fm: FastMod32,
    hashes: [Translated; DEGREE],
    max_iter: u32,
    occupied: AtomicU64,
}

/// Stash size (CUDPP uses a small constant-size stash).
const STASH_SLOTS: usize = 101;

impl CuckooHash {
    /// Allocates a cuckoo table of `capacity` slots plus the stash.
    ///
    /// # Errors
    /// Propagates device OOM.
    pub fn new(dev: Arc<Device>, capacity: usize, seed: u32) -> Result<Self, gpu_sim::OutOfMemory> {
        assert!(capacity > 0);
        let table = dev.alloc(capacity)?;
        let stash = dev.alloc(STASH_SLOTS)?;
        dev.mem().fill(table, EMPTY);
        dev.mem().fill(stash, EMPTY);
        let hashes = std::array::from_fn(|i| Translated {
            base: if i % 2 == 0 {
                HashFn32::Murmur
            } else {
                HashFn32::Mueller
            },
            offset: seed
                .wrapping_add(i as u32)
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(i as u32),
        });
        let max_iter = 7 * (usize::BITS - capacity.leading_zeros()).max(4);
        Ok(Self {
            dev,
            table,
            stash,
            capacity,
            fm: FastMod32::new(capacity as u64),
            hashes,
            max_iter,
            occupied: AtomicU64::new(0),
        })
    }

    /// Slots in the main table.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.occupied.load(Relaxed)
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot(&self, which: usize, key: u32) -> usize {
        self.fm.rem(u64::from(self.hashes[which].hash(key))) as usize
    }

    /// Which hash function placed `key` at `pos`, if any.
    #[inline]
    fn placed_by(&self, key: u32, pos: usize) -> Option<usize> {
        (0..DEGREE).find(|&i| self.slot(i, key) == pos)
    }

    /// Bulk insert (device-resident packed pairs are staged internally).
    ///
    /// # Panics
    /// Panics if a key equals the reserved `u32::MAX`.
    pub fn insert_pairs(&self, pairs: &[(u32, u32)]) -> CuckooInsertOutcome {
        let words: Vec<u64> = pairs.iter().map(|&(k, v)| pack(k, v)).collect();
        let staging = self
            .dev
            .alloc_scratch(words.len().max(1))
            .expect("cuckoo staging");
        let input = staging.slice().sub(0, words.len());
        self.dev.mem().h2d(input, &words);

        let failed = AtomicU64::new(0);
        let stashed = AtomicU64::new(0);
        let inserted = AtomicU64::new(0);
        let stats = self.dev.launch(
            "cuckoo_insert",
            words.len(),
            GroupSize::new(1),
            LaunchOptions::default().with_working_set(self.table.bytes()),
            |ctx: &GroupCtx| {
                let mut word = ctx.read_stream(input, ctx.group_id());
                // start at h1; on eviction, continue from the evicted
                // key's next candidate
                let mut pos = self.slot(0, key_of(word));
                for _ in 0..self.max_iter {
                    let old = ctx.exchange(self.table, pos, word);
                    if old == EMPTY {
                        inserted.fetch_add(1, Relaxed);
                        return;
                    }
                    // adopt the evicted entry
                    word = old;
                    let k = key_of(word);
                    let came_from = self.placed_by(k, pos).unwrap_or(DEGREE - 1);
                    pos = self.slot((came_from + 1) % DEGREE, k);
                }
                // chain bound exceeded: spill to the stash
                for s in 0..STASH_SLOTS {
                    let idx = (key_of(word) as usize + s) % STASH_SLOTS;
                    let cur = ctx.read(self.stash, idx);
                    if cur == EMPTY && ctx.cas(self.stash, idx, EMPTY, word).is_ok() {
                        stashed.fetch_add(1, Relaxed);
                        inserted.fetch_add(1, Relaxed);
                        return;
                    }
                }
                failed.fetch_add(1, Relaxed);
            },
        );
        self.occupied.fetch_add(inserted.load(Relaxed), Relaxed);
        CuckooInsertOutcome {
            stats,
            failed: failed.load(Relaxed),
            stashed: stashed.load(Relaxed),
        }
    }

    /// Bulk retrieval with a typed [`warpdrive::OpReport`]: probes the
    /// ≤ 4 candidate slots, then the stash.
    ///
    /// # Errors
    /// [`warpdrive::OpError::OutOfMemory`] if the query batch cannot be
    /// staged.
    pub fn try_retrieve(
        &self,
        keys: &[u32],
    ) -> Result<warpdrive::GetResponse, warpdrive::OpError> {
        let (values, stats) = self.retrieve_impl(keys)?;
        Ok(warpdrive::GetResponse {
            values,
            report: warpdrive::OpReport::from_kernel(&stats, keys.len() as u64),
        })
    }

    /// Bulk retrieval: probes the ≤ 4 candidate slots, then the stash.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve(&self, keys: &[u32]) -> (Vec<Option<u32>>, KernelStats) {
        self.retrieve_impl(keys).expect("cuckoo staging")
    }

    fn retrieve_impl(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Option<u32>>, KernelStats), warpdrive::OpError> {
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let n = words.len();
        let staging = self.dev.alloc_scratch(2 * n.max(1))?;
        let input = staging.slice().sub(0, n);
        let out = staging.slice().sub(n.max(1), n);
        self.dev.mem().h2d(input, &words);

        let any_stashed = self.dev.mem().d2h(self.stash).iter().any(|&w| w != EMPTY);
        let stats = self.dev.launch(
            "cuckoo_retrieve",
            n,
            GroupSize::new(1),
            LaunchOptions::default().with_working_set(self.table.bytes()),
            |ctx: &GroupCtx| {
                let key = key_of(ctx.read_stream(input, ctx.group_id()));
                for i in 0..DEGREE {
                    let w = ctx.read(self.table, self.slot(i, key));
                    if key_of(w) == key {
                        ctx.write_stream(out, ctx.group_id(), w);
                        return;
                    }
                }
                if any_stashed {
                    for s in 0..STASH_SLOTS {
                        let idx = (key as usize + s) % STASH_SLOTS;
                        let w = ctx.read(self.stash, idx);
                        if key_of(w) == key {
                            ctx.write_stream(out, ctx.group_id(), w);
                            return;
                        }
                        if w == EMPTY {
                            break;
                        }
                    }
                }
                ctx.write_stream(out, ctx.group_id(), EMPTY);
            },
        );
        let results = self
            .dev
            .mem()
            .d2h(out)
            .into_iter()
            .map(|w| (w != EMPTY).then(|| value_of(w)))
            .collect();
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(capacity: usize) -> CuckooHash {
        let dev = Arc::new(Device::with_words(0, capacity * 4 + 512));
        CuckooHash::new(dev, capacity, 1).unwrap()
    }

    #[test]
    fn insert_and_retrieve_round_trip() {
        let t = table(1024);
        let pairs: Vec<(u32, u32)> = (0..800u32).map(|i| (i * 3 + 1, i)).collect();
        let out = t.insert_pairs(&pairs);
        assert_eq!(out.failed, 0, "failures at load 0.78");
        assert_eq!(t.len(), 800);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([999_999]).collect();
        let res = t.try_retrieve(&keys).unwrap().values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1), "key {}", p.0);
        }
        assert_eq!(res[800], None);
    }

    #[test]
    fn eviction_chains_grow_with_load() {
        // steps per insert (chain length) must grow with load factor
        let low = table(4096);
        let lo_pairs: Vec<(u32, u32)> = (0..1638u32).map(|i| (i + 1, i)).collect(); // 0.4
        let lo = low.insert_pairs(&lo_pairs);
        let hi_t = table(4096);
        let hi_pairs: Vec<(u32, u32)> = (0..3890u32).map(|i| (i + 1, i)).collect(); // 0.95
        let hi = hi_t.insert_pairs(&hi_pairs);
        let lo_steps = lo.stats.counters.steps_per_group();
        let hi_steps = hi.stats.counters.steps_per_group();
        assert!(
            hi_steps > lo_steps * 1.5,
            "chains: lo {lo_steps:.2}, hi {hi_steps:.2}"
        );
    }

    #[test]
    fn stash_catches_hard_cases() {
        // tiny table at extreme load forces stash usage
        let t = table(64);
        let pairs: Vec<(u32, u32)> = (0..62u32).map(|i| (i + 1, i)).collect();
        let out = t.insert_pairs(&pairs);
        // everything must land somewhere (stash or table)
        assert_eq!(out.failed + t.len(), 62);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = t.try_retrieve(&keys).unwrap().values;
        let found = res.iter().filter(|r| r.is_some()).count() as u64;
        assert_eq!(found, t.len());
    }

    #[test]
    fn retrieval_costs_at_most_degree_plus_stash_probes() {
        let t = table(512);
        let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i + 1, i)).collect();
        t.insert_pairs(&pairs);
        let keys: Vec<u32> = (1..=400).collect();
        let report = t.try_retrieve(&keys).unwrap().report;
        let per_query = report.counters.transactions as f64 / 400.0;
        assert!(
            (1.0..=4.0 + 0.01).contains(&per_query),
            "avg probes {per_query}"
        );
    }
}
