//! Competitor hash tables for the WarpDrive reproduction.
//!
//! §III/§V of the paper compare WarpDrive against four other designs; all
//! are reimplemented here **on the same simulated device substrate**, so
//! rates are apples-to-apples exactly as they were on the authors' P100:
//!
//! * [`cudpp_cuckoo`] — Alcantara's single-pass fourth-degree cuckoo hash
//!   as shipped in CUDPP; the paper's primary comparison (Figs. 7–8) and
//!   the source of the 2.8×/1.3× speedup claims. One thread per element,
//!   `atomicExch` eviction chains, a small stash, max load ≈ 0.97.
//! * [`robin_hood`] — García et al.'s coherent-hashing scheme: lock-free
//!   Robin Hood displacement with one thread per element.
//! * [`stadium`] — Khorasani et al.'s Stadium hash: an auxiliary *ticket
//!   board* gating accesses to the main table; supports an out-of-core
//!   mode where only the ticket board stays in VRAM (the configuration
//!   whose ≈100 M ops/s PCIe collapse motivates WarpDrive's multi-GPU
//!   alternative).
//! * [`sort_compress`] — the sort-and-compress key-value store of §II
//!   (CUB-style radix sort + compaction + binary-search queries) with its
//!   2× auxiliary memory cost.
//! * [`folklore`] — a real (not simulated) multicore CPU hash map in the
//!   spirit of Maier et al.'s Folklore: the CPU yardstick the paper cites
//!   at up to 300 M inserts/s on 48 threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cudpp_cuckoo;
pub mod folklore;
pub mod robin_hood;
pub mod sort_compress;
pub mod stadium;

pub use cudpp_cuckoo::CuckooHash;
pub use folklore::FolkloreMap;
pub use robin_hood::RobinHoodMap;
pub use sort_compress::SortCompressStore;
pub use stadium::StadiumHash;
