//! Cross-baseline behavioural tests: the competitor structures must be
//! correct (not just fast) under the conditions the paper compares them
//! in — high loads, adversarial inputs, mixed hit/miss queries.

use baselines::{
    stadium::TablePlacement, CuckooHash, FolkloreMap, RobinHoodMap, SortCompressStore, StadiumHash,
};
use std::sync::Arc;
use workloads::Distribution;

fn device(words: usize) -> Arc<gpu_sim::Device> {
    Arc::new(gpu_sim::Device::with_words(0, words))
}

#[test]
fn cuckoo_at_its_advertised_load_limit() {
    // 0.95 is near cuckoo's practical limit; stash must absorb the tail
    let n = 3891; // 0.95 × 4096
    let t = CuckooHash::new(device(1 << 15), 4096, 3).unwrap();
    let pairs = Distribution::Unique.generate(n, 5);
    let out = t.insert_pairs(&pairs);
    assert_eq!(out.failed, 0, "failures at 0.95 ({} stashed)", out.stashed);
    let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let res = t.try_retrieve(&keys).unwrap().values;
    assert!(res.iter().all(Option::is_some));
}

#[test]
fn cuckoo_rejects_beyond_the_threshold_gracefully() {
    // 4-ary cuckoo cannot sustain loads near 1.0: failures must be
    // reported, not looped on forever, and the table must stay readable
    let t = CuckooHash::new(device(1 << 13), 512, 1).unwrap();
    let pairs: Vec<(u32, u32)> = (0..512u32).map(|i| (i + 1, i)).collect();
    let out = t.insert_pairs(&pairs);
    let placed = t.len();
    assert_eq!(placed + out.failed, 512);
    let res = t.try_retrieve(&(1..=512).collect::<Vec<u32>>()).unwrap().values;
    assert_eq!(res.iter().filter(|r| r.is_some()).count() as u64, placed);
}

#[test]
fn robin_hood_handles_clustered_keys() {
    // keys that all hash near each other exercise the displacement logic
    let m = RobinHoodMap::new(device(1 << 13), 512, 7).unwrap();
    let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i.wrapping_mul(64) + 1, i)).collect();
    let out = m.insert_pairs(&pairs);
    assert_eq!(out.failed, 0);
    let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let res = m.try_retrieve(&keys).unwrap().values;
    for (i, r) in res.iter().enumerate() {
        assert_eq!(*r, Some(pairs[i].1), "key {}", pairs[i].0);
    }
}

#[test]
fn stadium_modes_agree_functionally() {
    let pairs = Distribution::Uniform.generate(1500, 9);
    let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([12345]).collect();
    let mut answers = Vec::new();
    let mut times = Vec::new();
    for placement in [
        TablePlacement::InCore,
        TablePlacement::OutOfCore {
            pcie_bandwidth: 11.0e9,
        },
    ] {
        let t = StadiumHash::new(device(1 << 14), 2048, placement, 2).unwrap();
        let out = t.insert_pairs(&pairs);
        assert_eq!(out.failed, 0);
        let resp = t.try_retrieve(&keys).unwrap();
        answers.push(resp.values);
        times.push(resp.report.time);
    }
    assert_eq!(answers[0], answers[1]);
    assert!(times[1] > times[0], "out-of-core must pay PCIe time");
}

#[test]
fn sort_compress_duplicates_and_order() {
    // the store keeps duplicates as runs and answers with the run head
    let pairs = vec![(9, 1), (3, 2), (9, 3), (1, 4), (9, 5), (3, 6)];
    let (store, _) = SortCompressStore::build(device(1 << 10), &pairs).unwrap();
    assert_eq!(store.len(), 6);
    assert_eq!(store.retrieve_run(9).len(), 3);
    assert_eq!(store.retrieve_run(3).len(), 2);
    assert_eq!(store.retrieve_run(1), vec![4]);
    let res = store.try_retrieve(&[9, 3, 1, 2]).unwrap().values;
    assert!(res[0].is_some() && res[1].is_some() && res[2] == Some(4));
    assert_eq!(res[3], None);
}

#[test]
fn folklore_mixed_insert_update_erasefree_workload() {
    let m = FolkloreMap::new(8192);
    let pairs = Distribution::paper_zipf().generate(6000, 1);
    let out = m.insert_bulk(&pairs);
    assert_eq!(out.failed, 0);
    let distinct: std::collections::HashSet<u32> = pairs.iter().map(|p| p.0).collect();
    assert_eq!(out.new_slots as usize, distinct.len());
    assert_eq!(out.updates as usize, pairs.len() - distinct.len());
    // every distinct key answers with *some* value that was inserted
    // under it
    let by_key: std::collections::HashMap<u32, Vec<u32>> =
        pairs.iter().fold(Default::default(), |mut m, &(k, v)| {
            m.entry(k).or_default().push(v);
            m
        });
    for (&k, vs) in by_key.iter().take(500) {
        let got = m.get(k).unwrap();
        assert!(vs.contains(&got), "key {k}: foreign value {got}");
    }
}

#[test]
fn all_baselines_reject_nothing_at_half_load() {
    // a shared sanity sweep: every structure must be loss-free at α=0.5
    let n = 1024;
    let pairs = Distribution::Unique.generate(n, 4);
    let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();

    let c = CuckooHash::new(device(1 << 14), 2048, 1).unwrap();
    assert_eq!(c.insert_pairs(&pairs).failed, 0);
    assert!(c.try_retrieve(&keys).unwrap().values.iter().all(Option::is_some));

    let r = RobinHoodMap::new(device(1 << 14), 2048, 2).unwrap();
    assert_eq!(r.insert_pairs(&pairs).failed, 0);
    assert!(r.try_retrieve(&keys).unwrap().values.iter().all(Option::is_some));

    let s = StadiumHash::new(device(1 << 14), 2048, TablePlacement::InCore, 3).unwrap();
    assert_eq!(s.insert_pairs(&pairs).failed, 0);
    assert!(s.try_retrieve(&keys).unwrap().values.iter().all(Option::is_some));

    let f = FolkloreMap::new(2048);
    assert_eq!(f.insert_bulk(&pairs).failed, 0);
    assert!(f.get_bulk(&keys).iter().all(Option::is_some));
}
