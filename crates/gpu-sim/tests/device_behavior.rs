//! Behavioural tests of the simulated device beyond the per-module units:
//! allocator alignment, launch edge cases, counter/timing consistency.

use gpu_sim::{Device, DeviceSpec, GroupSize, LaunchOptions, TimingModel};
use proptest::prelude::*;

#[test]
fn allocations_are_sector_aligned() {
    let dev = Device::with_words(0, 1024);
    // odd-sized allocations must not shift later ones off sector
    let _a = dev.alloc(3).unwrap();
    let b = dev.alloc(8).unwrap();
    let _c = dev.alloc(5).unwrap();
    let d = dev.alloc(8).unwrap();
    dev.mem().fill(b, 0);
    dev.mem().fill(d, 0);
    // verify via transaction counting: an 8-word window on an aligned
    // slice starting at index 0 touches exactly 2 sectors
    for slice in [b, d] {
        let stats = dev.launch(
            "probe",
            1,
            GroupSize::new(8),
            LaunchOptions::default().sequential(),
            |ctx| {
                let _ = ctx.read_window(slice, 0);
            },
        );
        assert_eq!(stats.counters.transactions, 2, "slice misaligned");
    }
}

#[test]
fn zero_group_launch_is_a_noop() {
    let dev = Device::with_words(0, 64);
    let stats = dev.launch(
        "empty",
        0,
        GroupSize::new(4),
        LaunchOptions::default(),
        |_| panic!("kernel must not run"),
    );
    assert_eq!(stats.counters.groups, 0);
    // only the fixed launch overhead remains
    assert!((stats.sim_time - dev.spec().launch_overhead).abs() < 1e-12);
}

#[test]
fn sequential_and_parallel_launches_agree_on_counters() {
    let dev = Device::with_words(0, 4096);
    let buf = dev.alloc(2048).unwrap();
    dev.mem().fill(buf, 0);
    let run = |sequential: bool| {
        let opts = if sequential {
            LaunchOptions::default().sequential()
        } else {
            LaunchOptions::default()
        };
        dev.launch("sweep", 256, GroupSize::new(8), opts, |ctx| {
            let _ = ctx.read_window(buf, ctx.group_id() * 8);
            let _ = ctx.read_stream(buf, ctx.group_id());
        })
    };
    let seq = run(true);
    let par = run(false);
    assert_eq!(seq.counters, par.counters);
    assert!((seq.sim_time - par.sim_time).abs() < 1e-15);
}

#[test]
fn concurrent_exchange_preserves_value_multiset() {
    // atomicExch chains: the set of values in slots ∪ {final carried} is
    // conserved — here every group deposits and the sum is checkable
    let dev = Device::with_words(0, 256);
    let slots = dev.alloc(16).unwrap();
    dev.mem().fill(slots, 0);
    dev.launch(
        "exch",
        1024,
        GroupSize::new(1),
        LaunchOptions::default(),
        |ctx| {
            // each group adds its id via an exchange-accumulate loop
            let mut carry = ctx.group_id() as u64 + 1;
            let slot = ctx.group_id() % 16;
            carry = ctx.exchange(slots, slot, carry);
            let _ = ctx.atomic_add(slots, (slot + 1) % 16, carry);
        },
    );
    // no assertion on exact distribution — just that the device survived
    // 2048 racing atomics and the words are readable
    let words = dev.mem().d2h(slots);
    assert_eq!(words.len(), 16);
}

#[test]
fn stats_name_and_groups_recorded() {
    let dev = Device::with_words(0, 64);
    let stats = dev.launch(
        "my_kernel",
        17,
        GroupSize::new(2),
        LaunchOptions::default(),
        |_| {},
    );
    assert_eq!(stats.name, "my_kernel");
    assert_eq!(stats.num_groups, 17);
    assert_eq!(stats.group_size.get(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Timing is monotone in every counter dimension.
    #[test]
    fn timing_is_monotone(
        txns in 0u64..1_000_000,
        stream in 0u64..1_000_000,
        cas in 0u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        let model = TimingModel::new(DeviceSpec::p100());
        let base = gpu_sim::CounterSnapshot {
            transactions: txns,
            stream_bytes: stream,
            cas_ops: cas,
            ..Default::default()
        };
        let t0 = model
            .kernel_time(base, GroupSize::new(4), 1024, 0)
            .total();
        for bump in 0..3 {
            let mut more = base;
            match bump {
                0 => more.transactions += extra,
                1 => more.stream_bytes += extra,
                _ => more.cas_ops += extra,
            }
            let t1 = model
                .kernel_time(more, GroupSize::new(4), 1024, 0)
                .total();
            prop_assert!(t1 >= t0);
        }
    }

    /// Window transaction counts equal the touched-sector count for any
    /// base/window combination.
    #[test]
    fn window_transactions_match_sector_math(
        base in 0usize..512,
        g in proptest::sample::select(vec![1u32, 2, 4, 8, 16, 32]),
    ) {
        let dev = Device::with_words(0, 1024);
        let slice = dev.alloc(512).unwrap(); // aligned offset
        dev.mem().fill(slice, 0);
        let stats = dev.launch(
            "w",
            1,
            GroupSize::new(g),
            LaunchOptions::default().sequential(),
            |ctx| {
                let _ = ctx.read_window(slice, base);
            },
        );
        // expected: number of distinct sectors covered by the (wrapped)
        // window of g slots starting at base % 512
        let start = base % 512;
        let mut sectors = std::collections::HashSet::new();
        for r in 0..g as usize {
            sectors.insert(((start + r) % 512) / 4);
        }
        prop_assert_eq!(stats.counters.transactions, sectors.len() as u64);
    }
}
