//! Device specifications and calibrated timing constants.

use serde::{Deserialize, Serialize};

/// Static description of a simulated CUDA device.
///
/// The default instance models the NVIDIA Tesla P100 boards of the paper's
/// Mogon II evaluation node (§V-A): 56 SMs @ 1.48 GHz, 16 GB HBM2 with
/// 720 GB/s peak bandwidth addressed via 8 memory interfaces.
///
/// Throughput constants are *calibrated*, not measured: they were chosen so
/// that the simulated WarpDrive kernels land inside the rate ranges the
/// paper reports (see DESIGN.md §4), and are then held fixed across all
/// experiments and baselines so every comparison is apples-to-apples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak HBM2 bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Fraction of peak bandwidth achievable for fully coalesced streams.
    pub stream_efficiency: f64,
    /// Fraction of peak bandwidth achievable for random 32-byte
    /// transactions (TLB / row-buffer limited).
    pub random_efficiency: f64,
    /// Memory transaction granularity in bytes (32 on Pascal).
    pub transaction_bytes: u64,
    /// Average global-memory round-trip latency in seconds.
    pub mem_latency: f64,
    /// Maximum resident threads across the device
    /// (`num_sms * 2048` on Pascal).
    pub max_resident_threads: u32,
    /// Peak throughput of 64-bit global atomic CAS on L2-resident lines
    /// (the WarpDrive pattern: CAS follows the window load), ops/second.
    pub cas_throughput: f64,
    /// Peak throughput of other warm global atomics (add/or on hot
    /// counter/ticket words), ops/second.
    pub atomic_throughput: f64,
    /// Throughput of *cold* atomics — RMWs on lines not in L2, each a
    /// DRAM round-trip (the cuckoo eviction pattern), ops/second.
    pub cold_atomic_throughput: f64,
    /// Working-set size above which lock-free CAS degrades because
    /// operations spread across several HBM2 memory interfaces — the
    /// artifact the paper identifies in §V-C to explain both the insert
    /// slowdown for n > 2³⁰ and the super-linear strong scaling.
    pub cas_degradation_threshold: u64,
    /// Multiplier (< 1) applied to CAS throughput above the threshold.
    pub cas_degradation_factor: f64,
    /// Fixed kernel launch overhead in seconds.
    pub launch_overhead: f64,
    /// Total video memory in bytes.
    pub vram_bytes: u64,
}

impl DeviceSpec {
    /// Tesla P100 (SXM2, 16 GB HBM2) as in the paper's testbed.
    #[must_use]
    pub fn p100() -> Self {
        Self {
            name: "Tesla P100-sim".to_owned(),
            num_sms: 56,
            clock_ghz: 1.48,
            mem_bandwidth: 720.0e9,
            stream_efficiency: 0.78,
            random_efficiency: 0.30,
            transaction_bytes: 32,
            mem_latency: 430.0e-9,
            max_resident_threads: 56 * 2048,
            cas_throughput: 4.00e9,
            atomic_throughput: 6.50e9,
            cold_atomic_throughput: 3.70e9,
            cas_degradation_threshold: 2 << 30, // 2 GiB
            cas_degradation_factor: 0.50,
            launch_overhead: 6.0e-6,
            vram_bytes: 16 << 30,
        }
    }

    /// A deliberately small device for unit tests: identical constants but
    /// tiny VRAM so out-of-memory paths can be exercised cheaply.
    #[must_use]
    pub fn test_small(vram_bytes: u64) -> Self {
        Self {
            name: "test-device".to_owned(),
            vram_bytes,
            ..Self::p100()
        }
    }

    /// Effective streaming bandwidth in bytes/second.
    #[must_use]
    pub fn stream_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.stream_efficiency
    }

    /// Effective random-transaction bandwidth in bytes/second.
    #[must_use]
    pub fn random_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.random_efficiency
    }

    /// CAS throughput for a kernel whose hot working set spans
    /// `working_set` bytes.
    ///
    /// §V-C/§VI: "single-GPU performance decreases *gradually* for
    /// capacities c > 2 GB", bottoming out at about half rate once CAS
    /// traffic spreads across all 8 HBM2 memory interfaces. Modeled as a
    /// linear ramp from full throughput at the threshold down to
    /// `cas_degradation_factor` at 4× the threshold.
    #[must_use]
    pub fn effective_cas_throughput(&self, working_set: u64) -> f64 {
        let t = self.cas_degradation_threshold as f64;
        let ws = working_set as f64;
        if ws <= t {
            return self.cas_throughput;
        }
        let ramp = ((ws / t - 1.0) / 1.2).min(1.0); // 0 at T, 1 at 2.2T
        let factor = 1.0 - (1.0 - self.cas_degradation_factor) * ramp;
        self.cas_throughput * factor
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::p100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_constants_sane() {
        let s = DeviceSpec::p100();
        assert_eq!(s.max_resident_threads, 114_688);
        assert!(s.stream_bandwidth() > 500.0e9);
        assert!(s.random_bandwidth() < s.stream_bandwidth());
        assert_eq!(s.vram_bytes, 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn cas_degradation_ramps_above_2gib() {
        let s = DeviceSpec::p100();
        assert_eq!(s.effective_cas_throughput(1 << 30), s.cas_throughput);
        assert_eq!(s.effective_cas_throughput(2 << 30), s.cas_throughput);
        let mid = s.effective_cas_throughput(3 << 30);
        assert!(mid < s.cas_throughput && mid > s.cas_throughput * 0.5);
        // floor at 2.5× the threshold and beyond
        let floor = s.effective_cas_throughput(6 << 30);
        assert!((floor - s.cas_throughput * 0.5).abs() < 1.0);
        assert!((s.effective_cas_throughput(12 << 30) - floor).abs() < 1.0);
    }

    #[test]
    fn test_small_overrides_vram_only() {
        let s = DeviceSpec::test_small(1 << 20);
        assert_eq!(s.vram_bytes, 1 << 20);
        assert_eq!(s.num_sms, DeviceSpec::p100().num_sms);
    }
}
