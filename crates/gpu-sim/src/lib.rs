//! Software SIMT substrate standing in for CUDA hardware.
//!
//! The WarpDrive paper targets CUDA GPUs; this reproduction runs on plain
//! CPUs, so the GPU is replaced by a *functional + analytical* simulator
//! (see DESIGN.md §1 for the substitution argument):
//!
//! * **Functional layer** — device global memory is a flat array of
//!   [`std::sync::atomic::AtomicU64`] words. Kernels are written against a
//!   [`simt::GroupCtx`] exposing the coalesced-group collectives of the
//!   paper (`ballot`, `any`, lane ranks, leader election via find-first-set)
//!   and execute *concurrently* on a Rayon pool using real
//!   `compare_exchange`, so all race behaviour the paper's algorithm has to
//!   survive (CAS failures, stale window copies, duplicate-key event
//!   horizons) is exercised for real.
//! * **Analytical layer** — every memory access records 32-byte
//!   transactions, streamed bytes, CAS operations and dependent probe
//!   steps in [`counters::KernelCounters`]; [`timing::TimingModel`]
//!   converts those into simulated seconds using constants calibrated to a
//!   Tesla P100 ([`spec::DeviceSpec::p100`]), including the paper's
//!   observed CAS-throughput degradation once a table spans more than
//!   ~2 GB of HBM2 (§V-C).
//!
//! The model is deliberately simple — three throughput terms and one
//! latency/occupancy term — because the paper's performance *shapes*
//! (load-factor curves, the group-size trade-off, super-linear strong
//! scaling) are all functions of access-pattern statistics that the
//! functional run measures exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod device;
pub mod fault;
pub mod mem;
pub mod sanitizer;
pub mod sched;
pub mod simt;
pub mod spec;
pub mod timing;

pub use clock::ResourceTimeline;
pub use counters::{CounterSnapshot, KernelCounters};
pub use device::{Device, KernelStats, LaunchOptions, LifetimeStats};
pub use fault::{FaultPlan, RetryPolicy};
pub use mem::{DevSlice, DeviceMemory, OutOfMemory, ScratchGuard};
pub use sanitizer::{Detector, Report, SanitizerSet};
pub use sched::{AdversarialMode, Schedule, StepSched};
pub use simt::{GroupCtx, GroupSize};
pub use spec::DeviceSpec;
pub use timing::{TimeBreakdown, TimingModel};
