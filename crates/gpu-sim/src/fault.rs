//! Deterministic fault injection — the `wd-chaos` plan layer.
//!
//! Real multi-GPU nodes fail in undramatic ways: a link trains down to a
//! lower rate, a transfer times out once and succeeds on retry, one GPU
//! runs hot and straggles, a kernel launch returns a transient error. The
//! simulator injects exactly these faults from a [`FaultPlan`]: a small
//! `Copy` value whose every decision is a **pure function of the plan
//! seed and the injection site** — no RNG state, no ordering dependence.
//! Two runs with the same plan (and the same `WD_SCHED_*` schedule)
//! observe bit-identical faults, so every chaos-test failure replays from
//! the `WD_FAULT`/`WD_FAULT_SEED` pair it prints, composing with the
//! scheduler's replay hints.
//!
//! The plan is armed three ways, mirroring [`crate::Schedule`]:
//! environment (`WD_FAULT=drop=0.2,launch=0.1 WD_FAULT_SEED=7`),
//! programmatically via builders, or per launch through
//! [`crate::LaunchOptions::fault`].
//!
//! What each knob injects (all disabled at 0 / `None`):
//!
//! * `transfer_drop` — probability that one attempt of an interconnect
//!   transfer (a directed all-to-all edge, or a PCIe switch batch) drops
//!   and must be retried. Decided per `(site, src, dst, attempt)`.
//! * `link_degrade` / `degrade_factor` — probability that a given link is
//!   *persistently* degraded (trained down), dividing its bandwidth by
//!   `degrade_factor`. Decided per link, stable for the whole run.
//! * `launch_fail` — probability that a kernel-launch attempt fails
//!   transiently before any work runs (the CUDA "launch returned an
//!   error, retry it" class). Decided per `(device, site, attempt)`.
//! * `straggler` / `straggler_factor` / `stall` — one device whose every
//!   launch runs `straggler_factor`× slower plus a fixed `stall` of
//!   simulated seconds (timing-model faults; functionally invisible).
//! * `kill` — one device that is *permanently lost*: every launch and
//!   transfer attempt involving it fails. This is what drives the
//!   quarantine/repartition path of the distributed map.

use crate::sched::Schedule;

/// A deterministic fault-injection plan (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every injection decision is derived.
    pub seed: u64,
    /// Per-attempt transfer-drop probability in `[0, 1]`.
    pub transfer_drop: f64,
    /// Per-link persistent degradation probability in `[0, 1]`.
    pub link_degrade: f64,
    /// Bandwidth divisor applied to degraded links (≥ 1).
    pub degrade_factor: f64,
    /// Per-attempt transient kernel-launch failure probability.
    pub launch_fail: f64,
    /// Device index that straggles, if any.
    pub straggler: Option<u32>,
    /// Slowdown multiplier of the straggler's launches (≥ 1).
    pub straggler_factor: f64,
    /// Fixed stall in simulated seconds added to the straggler's
    /// launches (a timing-model fault; functionally invisible).
    pub stall: f64,
    /// Device index that is permanently lost, if any.
    pub kill: Option<u32>,
}

impl Default for FaultPlan {
    /// The disarmed plan: no knob injects anything.
    fn default() -> Self {
        Self {
            seed: 0,
            transfer_drop: 0.0,
            link_degrade: 0.0,
            degrade_factor: 4.0,
            launch_fail: 0.0,
            straggler: None,
            straggler_factor: 2.0,
            stall: 0.0,
            kill: None,
        }
    }
}

/// Fowler-style site tags keeping decisions at distinct injection sites
/// independent even when their numeric ids coincide.
pub mod site {
    /// All-to-all transposition edge.
    pub const ALLTOALL: u64 = 0x_a11;
    /// Host→device PCIe batch.
    pub const H2D: u64 = 0x_42d;
    /// Device→host PCIe batch.
    pub const D2H: u64 = 0x_d24;
    /// Kernel launch.
    pub const LAUNCH: u64 = 0x_1a0;
}

/// SplitMix64 finalizer — the plan's only mixing primitive.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Whether any knob can inject anything. The disarmed plan is the
    /// identity: fault-aware code paths bill byte-identical counters to
    /// their pre-chaos versions (asserted in `tests/chaos_sweep.rs`).
    #[must_use]
    pub fn armed(&self) -> bool {
        self.transfer_drop > 0.0
            || self.link_degrade > 0.0
            || self.launch_fail > 0.0
            || self.straggler.is_some()
            || self.stall > 0.0
            || self.kill.is_some()
    }

    /// A deterministic Bernoulli roll: true with probability `p`, as a
    /// pure function of the seed and the site coordinates.
    fn roll(&self, p: f64, tag: u64, a: u64, b: u64, attempt: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // chained (not XOR-folded) so no two coordinates can cancel:
        // seed 1/attempt 0 and seed 0/attempt 1 land on distinct rolls
        let mut h = self.seed;
        for coord in [tag, a, b, attempt] {
            h = mix(h ^ coord);
        }
        (h as f64 / u64::MAX as f64) < p
    }

    /// Whether launch attempt `attempt` at `site` on `device` fails
    /// transiently (nothing ran; the caller retries). A killed device
    /// always fails.
    #[must_use]
    pub fn launch_fails(&self, device: usize, launch_site: u64, attempt: u32) -> bool {
        self.device_lost(device)
            || self.roll(
                self.launch_fail,
                site::LAUNCH ^ launch_site,
                device as u64,
                launch_site,
                u64::from(attempt),
            )
    }

    /// Whether transfer attempt `attempt` over the directed edge
    /// `src → dst` at `site` drops. Transfers touching a killed device
    /// always drop.
    #[must_use]
    pub fn transfer_drops(&self, src: usize, dst: usize, transfer_site: u64, attempt: u32) -> bool {
        self.device_lost(src)
            || self.device_lost(dst)
            || self.roll(
                self.transfer_drop,
                transfer_site,
                src as u64,
                dst as u64,
                u64::from(attempt),
            )
    }

    /// Persistent bandwidth divisor of the directed link `src → dst`
    /// (1.0 when the link trained at full rate).
    #[must_use]
    pub fn link_factor(&self, src: usize, dst: usize) -> f64 {
        if self.roll(self.link_degrade, site::ALLTOALL ^ 0x_deca, src as u64, dst as u64, 0) {
            self.degrade_factor.max(1.0)
        } else {
            1.0
        }
    }

    /// Persistent bandwidth divisor of PCIe switch `switch_idx`.
    #[must_use]
    pub fn switch_factor(&self, switch_idx: usize) -> f64 {
        if self.roll(self.link_degrade, site::H2D ^ 0x_deca, switch_idx as u64, 0, 0) {
            self.degrade_factor.max(1.0)
        } else {
            1.0
        }
    }

    /// Slowdown multiplier of `device`'s kernel launches (≥ 1).
    #[must_use]
    pub fn straggle_factor(&self, device: usize) -> f64 {
        if self.straggler == Some(device as u32) {
            self.straggler_factor.max(1.0)
        } else {
            1.0
        }
    }

    /// Fixed stall added to `device`'s kernel launches, in simulated
    /// seconds.
    #[must_use]
    pub fn launch_stall(&self, device: usize) -> f64 {
        if self.straggler == Some(device as u32) {
            self.stall.max(0.0)
        } else {
            0.0
        }
    }

    /// Whether `device` is permanently lost under this plan.
    #[must_use]
    pub fn device_lost(&self, device: usize) -> bool {
        self.kill == Some(device as u32)
    }

    // ---- construction ----------------------------------------------------

    /// Sets the plan seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-attempt transfer-drop probability.
    #[must_use]
    pub fn with_transfer_drop(mut self, p: f64) -> Self {
        self.transfer_drop = p;
        self
    }

    /// Sets the per-link degradation probability and bandwidth divisor.
    #[must_use]
    pub fn with_link_degrade(mut self, p: f64, factor: f64) -> Self {
        self.link_degrade = p;
        self.degrade_factor = factor;
        self
    }

    /// Sets the per-attempt transient launch-failure probability.
    #[must_use]
    pub fn with_launch_fail(mut self, p: f64) -> Self {
        self.launch_fail = p;
        self
    }

    /// Makes `device` a straggler: `factor`× slower launches plus a fixed
    /// `stall` of simulated seconds each.
    #[must_use]
    pub fn with_straggler(mut self, device: u32, factor: f64, stall: f64) -> Self {
        self.straggler = Some(device);
        self.straggler_factor = factor;
        self.stall = stall;
        self
    }

    /// Permanently kills `device`.
    #[must_use]
    pub fn with_kill(mut self, device: u32) -> Self {
        self.kill = Some(device);
        self
    }

    // ---- replay ----------------------------------------------------------

    /// The `WD_FAULT`/`WD_FAULT_SEED` pair that replays this plan —
    /// printed in chaos-test failures next to the scheduler's
    /// [`Schedule::replay_hint`], so one environment line reproduces the
    /// whole run.
    #[must_use]
    pub fn replay_hint(&self) -> String {
        if !self.armed() {
            return "WD_FAULT= (disarmed)".to_owned();
        }
        format!("WD_FAULT={} WD_FAULT_SEED={}", self.spec(), self.seed)
    }

    /// Replay hint composed with a schedule's: the full deterministic
    /// coordinates of a chaos run.
    #[must_use]
    pub fn replay_hint_with(&self, schedule: Schedule) -> String {
        format!("{} {}", self.replay_hint(), schedule.replay_hint())
    }

    /// The `WD_FAULT` spec string encoding this plan (without the seed).
    #[must_use]
    pub fn spec(&self) -> String {
        let mut parts = Vec::new();
        if self.transfer_drop > 0.0 {
            parts.push(format!("drop={}", self.transfer_drop));
        }
        if self.link_degrade > 0.0 {
            parts.push(format!("degrade={}", self.link_degrade));
            parts.push(format!("dfactor={}", self.degrade_factor));
        }
        if self.launch_fail > 0.0 {
            parts.push(format!("launch={}", self.launch_fail));
        }
        if let Some(d) = self.straggler {
            parts.push(format!("straggle={d}"));
            parts.push(format!("sfactor={}", self.straggler_factor));
            if self.stall > 0.0 {
                parts.push(format!("stall={}", self.stall));
            }
        }
        if let Some(d) = self.kill {
            parts.push(format!("kill={d}"));
        }
        parts.join(",")
    }

    /// Parses a `WD_FAULT` spec string (`drop=0.2,launch=0.1,kill=3,...`;
    /// unknown or malformed entries are ignored) with `seed`.
    #[must_use]
    pub fn from_spec(spec: &str, seed: u64) -> Self {
        let mut plan = Self::default().with_seed(seed);
        for kv in spec.split(',') {
            let Some((k, v)) = kv.split_once('=') else {
                continue;
            };
            let (k, v) = (k.trim(), v.trim());
            match k {
                "drop" => plan.transfer_drop = v.parse().unwrap_or(0.0),
                "degrade" => plan.link_degrade = v.parse().unwrap_or(0.0),
                "dfactor" => plan.degrade_factor = v.parse().unwrap_or(4.0),
                "launch" => plan.launch_fail = v.parse().unwrap_or(0.0),
                "straggle" => plan.straggler = v.parse().ok(),
                "sfactor" => plan.straggler_factor = v.parse().unwrap_or(2.0),
                "stall" => plan.stall = v.parse().unwrap_or(0.0),
                "kill" => plan.kill = v.parse().ok(),
                _ => {}
            }
        }
        plan
    }

    /// Builds the plan from `WD_FAULT` / `WD_FAULT_SEED`, for replaying a
    /// failing chaos run printed by a test. Unset → disarmed.
    #[must_use]
    pub fn from_env() -> Self {
        let seed = std::env::var("WD_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        match std::env::var("WD_FAULT") {
            Ok(spec) if !spec.trim().is_empty() => Self::from_spec(&spec, seed),
            _ => Self::default().with_seed(seed),
        }
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.armed() {
            write!(f, "fault({}, seed={})", self.spec(), self.seed)
        } else {
            write!(f, "fault(disarmed)")
        }
    }
}

/// Retry discipline for fault-aware operations: bounded idempotent
/// retries with exponential backoff and a per-operation time budget.
///
/// Backoff is *billed, not slept* — the simulator adds it to the
/// operation's modeled time (the `Backoff` cascade stage) while the
/// functional retry happens immediately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). Exhaustion
    /// surfaces as a typed error (`TransferError` / `DeviceLost`).
    pub max_attempts: u32,
    /// Backoff before the first retry, simulated seconds.
    pub base_backoff: f64,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Backoff ceiling, simulated seconds.
    pub max_backoff: f64,
    /// Per-operation retry-time budget, simulated seconds: once the
    /// backoff spent on one operation exceeds this, retrying stops even
    /// if attempts remain.
    pub op_budget: f64,
}

impl Default for RetryPolicy {
    /// The defaults documented in EXPERIMENTS.md: 4 attempts, 10 µs base
    /// backoff doubling to a 1 ms cap, 50 ms per-operation budget.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: 10e-6,
            multiplier: 2.0,
            max_backoff: 1e-3,
            op_budget: 50e-3,
        }
    }
}

impl RetryPolicy {
    /// Backoff billed before retry attempt `attempt` (attempt 0 is the
    /// first try: no backoff).
    #[must_use]
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            0.0
        } else {
            (self.base_backoff * self.multiplier.powi(attempt as i32 - 1)).min(self.max_backoff)
        }
    }

    /// Whether another attempt is allowed after `attempt` attempts have
    /// failed with `spent` seconds of backoff already billed.
    #[must_use]
    pub fn may_retry(&self, attempts_done: u32, spent: f64) -> bool {
        attempts_done < self.max_attempts && spent < self.op_budget
    }

    /// Sets the attempt bound.
    #[must_use]
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the per-operation retry-time budget.
    #[must_use]
    pub fn with_op_budget(mut self, seconds: f64) -> Self {
        self.op_budget = seconds;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_injects_nothing() {
        let p = FaultPlan::default();
        assert!(!p.armed());
        for dev in 0..8 {
            for att in 0..8 {
                assert!(!p.launch_fails(dev, 1, att));
                assert!(!p.transfer_drops(dev, (dev + 1) % 8, site::ALLTOALL, att));
            }
            assert_eq!(p.link_factor(dev, (dev + 1) % 8), 1.0);
            assert_eq!(p.straggle_factor(dev), 1.0);
            assert_eq!(p.launch_stall(dev), 0.0);
            assert!(!p.device_lost(dev));
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_seed() {
        let p = FaultPlan::default()
            .with_seed(42)
            .with_transfer_drop(0.5)
            .with_launch_fail(0.5)
            .with_link_degrade(0.5, 4.0);
        for src in 0..4 {
            for dst in 0..4 {
                for att in 0..4 {
                    assert_eq!(
                        p.transfer_drops(src, dst, site::ALLTOALL, att),
                        p.transfer_drops(src, dst, site::ALLTOALL, att),
                    );
                }
                assert_eq!(p.link_factor(src, dst), p.link_factor(src, dst));
            }
        }
        // attempts are independent coordinates: with p=0.5 over 64 rolls
        // both outcomes must appear
        let rolls: Vec<bool> = (0..64)
            .map(|att| p.transfer_drops(0, 1, site::ALLTOALL, att))
            .collect();
        assert!(rolls.iter().any(|&b| b) && rolls.iter().any(|&b| !b));
    }

    #[test]
    fn different_seeds_differ() {
        let hits = |seed: u64| -> u32 {
            let p = FaultPlan::default().with_seed(seed).with_transfer_drop(0.5);
            (0..64)
                .filter(|&att| p.transfer_drops(0, 1, site::ALLTOALL, att))
                .count() as u32
        };
        let distinct: std::collections::HashSet<u32> = (0..8).map(hits).collect();
        assert!(distinct.len() > 1, "seeds must change the plan");
    }

    #[test]
    fn probability_extremes() {
        let never = FaultPlan::default().with_seed(9);
        assert!(!never.roll(0.0, 1, 2, 3, 4));
        assert!(never.roll(1.0, 1, 2, 3, 4));
        let always = FaultPlan::default().with_seed(9).with_launch_fail(1.0);
        assert!((0..16).all(|att| always.launch_fails(0, 7, att)));
    }

    #[test]
    fn killed_device_fails_everything() {
        let p = FaultPlan::default().with_kill(2);
        assert!(p.armed());
        assert!(p.device_lost(2));
        assert!(p.launch_fails(2, 1, 0));
        assert!(p.transfer_drops(2, 0, site::ALLTOALL, 3));
        assert!(p.transfer_drops(0, 2, site::H2D, 3));
        assert!(!p.transfer_drops(0, 1, site::H2D, 3) || p.transfer_drop > 0.0);
    }

    #[test]
    fn straggler_scales_only_its_device() {
        let p = FaultPlan::default().with_straggler(1, 3.0, 1e-4);
        assert_eq!(p.straggle_factor(1), 3.0);
        assert_eq!(p.straggle_factor(0), 1.0);
        assert_eq!(p.launch_stall(1), 1e-4);
        assert_eq!(p.launch_stall(3), 0.0);
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let p = FaultPlan::default()
            .with_seed(77)
            .with_transfer_drop(0.25)
            .with_link_degrade(0.125, 8.0)
            .with_launch_fail(0.0625)
            .with_straggler(2, 3.0, 5e-5)
            .with_kill(1);
        let back = FaultPlan::from_spec(&p.spec(), p.seed);
        assert_eq!(p, back, "spec `{}` did not round-trip", p.spec());
        assert!(p.replay_hint().contains("WD_FAULT_SEED=77"));
        assert!(p
            .replay_hint_with(Schedule::Seeded(3))
            .contains("WD_SCHED_SEED=3"));
    }

    #[test]
    fn malformed_spec_entries_are_ignored() {
        let p = FaultPlan::from_spec("drop=0.5,nonsense,what=ever,launch=x", 1);
        assert_eq!(p.transfer_drop, 0.5);
        assert_eq!(p.launch_fail, 0.0);
    }

    #[test]
    fn retry_policy_backoff_grows_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_before(0), 0.0);
        assert!((r.backoff_before(1) - 10e-6).abs() < 1e-15);
        assert!((r.backoff_before(2) - 20e-6).abs() < 1e-15);
        assert_eq!(r.backoff_before(30), r.max_backoff);
        assert!(r.may_retry(1, 0.0));
        assert!(!r.may_retry(r.max_attempts, 0.0));
        assert!(!r.may_retry(1, r.op_budget));
    }
}
