//! Coalesced-group execution contexts — the simulated SIMT layer.
//!
//! The paper (§IV-A) expresses its kernels against *coalesced groups*
//! (CGs): `|g| ∈ {1, 2, 4, 8, 16, 32}` consecutive threads that execute in
//! lock-step (guaranteed on pre-Volta hardware, enforced with explicit
//! synchronization on Volta+). Because a CG is lock-step by definition,
//! the simulator executes each group as **one** unit of work whose
//! per-lane state lives in small stack arrays; the warp collectives
//! (`ballot`, `any`, leader election via find-first-set) become plain
//! bit-mask operations over those arrays. This is exactly the
//! warp-synchronous semantics the algorithm assumes, while different
//! *groups* race against each other for real on a Rayon thread pool.

use crate::counters::LocalCounters;
use crate::mem::{DevSlice, DeviceMemory};
use crate::sanitizer::racecheck::{AccessKind, GroupClock};
use crate::sanitizer::LaunchSanitizer;
use crate::sched::StepSched;
use std::cell::{Cell, RefCell};
use std::sync::atomic::Ordering;

/// A validated coalesced-group size: one of `{1, 2, 4, 8, 16, 32}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupSize(u32);

impl GroupSize {
    /// All legal group sizes, smallest first (the x-axis of Figs. 7–8).
    pub const ALL: [GroupSize; 6] = [
        GroupSize(1),
        GroupSize(2),
        GroupSize(4),
        GroupSize(8),
        GroupSize(16),
        GroupSize(32),
    ];

    /// A full warp (`|g| = 32`).
    pub const WARP: GroupSize = GroupSize(32);

    /// Creates a group size.
    ///
    /// # Panics
    /// Panics unless `n ∈ {1, 2, 4, 8, 16, 32}`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(
            matches!(n, 1 | 2 | 4 | 8 | 16 | 32),
            "coalesced group size must divide a warp: got {n}"
        );
        Self(n)
    }

    /// The raw size.
    #[inline]
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Number of sub-group probing windows per warp-sized span
    /// (`32 / |g|`, the inner-loop trip count of Fig. 3).
    #[inline]
    #[must_use]
    pub fn windows_per_warp(self) -> u32 {
        32 / self.0
    }
}

impl std::fmt::Display for GroupSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A window of up to 32 words read by one coalesced group.
///
/// `vals[r]` is the word loaded by lane `r`. Mirrors the register copies
/// `d_t` in the Fig. 3 pseudocode.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    vals: [u64; 32],
    size: u32,
}

impl Window {
    /// Word held by lane `rank`.
    #[inline]
    #[must_use]
    pub fn lane(&self, rank: u32) -> u64 {
        debug_assert!(rank < self.size);
        self.vals[rank as usize]
    }

    /// Updates the register copy of one lane (after a reload).
    #[inline]
    pub fn set_lane(&mut self, rank: u32, val: u64) {
        debug_assert!(rank < self.size);
        self.vals[rank as usize] = val;
    }

    /// Number of lanes.
    #[inline]
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Iterator over `(rank, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        (0..self.size).map(move |r| (r, self.vals[r as usize]))
    }
}

/// Execution context of one coalesced group inside a kernel launch.
///
/// All device-memory accessors perform transaction accounting; collectives
/// are pure bit operations (their hardware cost is negligible next to the
/// global-memory traffic, as in the paper).
pub struct GroupCtx<'a> {
    mem: &'a DeviceMemory,
    /// Scheduler-chunk accumulator: counted operations bump plain
    /// `Cell`s here (no atomics at all on the hot path). The launch
    /// driver owns the accumulator, shares it across every group of one
    /// scheduler chunk, and flushes the totals into a padded per-worker
    /// stripe of the launch's [`KernelCounters`] once per chunk — `u64`
    /// addition commutes, so totals are bit-identical to per-op updates.
    local: &'a LocalCounters,
    group_id: usize,
    size: GroupSize,
    /// Stepwise scheduler of the launch, when one is active. `None` on
    /// the pool/sequential paths, so the per-operation pacing check is a
    /// single predictable branch.
    sched: Option<&'a StepSched>,
    /// `wd-sanitizer` context of the launch. `None` — the default — keeps
    /// every memory op at one predictable branch of sanitizer overhead:
    /// no locks, no allocation, counters untouched.
    san: Option<&'a LaunchSanitizer<'a>>,
    /// Racecheck vector clock of this group (iff racecheck is active).
    clock: Option<RefCell<GroupClock>>,
    /// Remaining ops of this group's scheduler lease (chunked dispatch):
    /// counted ops decrement it lock-free and only a zero crosses into
    /// [`StepSched::yield_point`] for a real scheduling decision. Stays 0
    /// under per-op dispatch, so every op yields, as the legacy path did.
    lease: Cell<u64>,
    /// Running collective-site counter (synccheck report labels).
    sites: Cell<u32>,
}

impl<'a> GroupCtx<'a> {
    pub(crate) fn new(
        mem: &'a DeviceMemory,
        local: &'a LocalCounters,
        group_id: usize,
        size: GroupSize,
        san: Option<&'a LaunchSanitizer<'a>>,
    ) -> Self {
        Self {
            mem,
            local,
            group_id,
            size,
            sched: None,
            san,
            clock: san.and_then(|s| s.group_clock(group_id)),
            lease: Cell::new(0),
            sites: Cell::new(0),
        }
    }

    pub(crate) fn new_stepped(
        mem: &'a DeviceMemory,
        local: &'a LocalCounters,
        group_id: usize,
        size: GroupSize,
        sched: &'a StepSched,
        lease: u64,
        san: Option<&'a LaunchSanitizer<'a>>,
    ) -> Self {
        Self {
            mem,
            local,
            group_id,
            size,
            sched: Some(sched),
            san,
            clock: san.and_then(|s| s.group_clock(group_id)),
            lease: Cell::new(lease),
            sites: Cell::new(0),
        }
    }

    /// Sanitizer read hook (`idx` already resolved in-bounds).
    #[inline]
    fn san_read(&self, slice: DevSlice, idx: usize, kind: AccessKind, lane: Option<u32>) {
        if let Some(s) = self.san {
            s.on_read(slice, idx, kind, self.group_id, lane, self.clock.as_ref());
        }
    }

    /// Sanitizer write hook (`idx` already resolved in-bounds).
    #[inline]
    fn san_write(&self, slice: DevSlice, idx: usize, kind: AccessKind) {
        if let Some(s) = self.san {
            s.on_write(slice, idx, kind, self.group_id, None, self.clock.as_ref());
        }
    }

    /// Sanitizer atomic-RMW hook (`idx` already resolved in-bounds).
    #[inline]
    fn san_atomic(&self, slice: DevSlice, idx: usize) {
        if let Some(s) = self.san {
            s.on_atomic(slice, idx, self.group_id, self.clock.as_ref());
        }
    }

    /// Epoch advance + site bump at every collective; returns the site id
    /// of this collective for synccheck labels.
    #[inline]
    fn san_collective(&self) -> u32 {
        let site = self.sites.get();
        if let Some(s) = self.san {
            self.sites.set(site + 1);
            s.on_collective(self.clock.as_ref());
        }
        site
    }

    /// Preemption point: under a stepwise schedule, possibly hands
    /// execution to another group. Free (one `None` check) on the pool
    /// and sequential paths. Called at the top of every counted
    /// device-memory operation — the places where groups interact.
    ///
    /// Chunked dispatch: while the lease countdown is positive the op is
    /// already covered by a pre-computed scheduling decision, so no lock
    /// is taken. On expiry, any buffered racecheck release edges flush
    /// first — another group may run next and must observe them — then
    /// the scheduler makes a real decision and hands back a fresh lease
    /// (minus the op about to execute).
    #[inline]
    fn pace(&self) {
        if let Some(s) = self.sched {
            let left = self.lease.get();
            if left > 0 {
                self.lease.set(left - 1);
            } else {
                if let Some(san) = self.san {
                    san.flush_releases(self.clock.as_ref());
                }
                self.lease.set(s.yield_point(self.group_id).saturating_sub(1));
            }
        }
    }

    /// End-of-kernel bookkeeping for stepwise launches: publishes any
    /// still-buffered racecheck release edges (a later group may acquire
    /// them after this group retires) and returns the unused lease so
    /// the scheduler can rewind its pre-drawn decisions.
    pub(crate) fn retire(&self) -> u64 {
        if let Some(san) = self.san {
            san.flush_releases(self.clock.as_ref());
        }
        self.lease.get()
    }

    /// Identifier of this group within the launch (like
    /// `blockIdx * groupsPerBlock + groupIdx`).
    #[inline]
    #[must_use]
    pub fn group_id(&self) -> usize {
        self.group_id
    }

    /// Size of the coalesced group.
    #[inline]
    #[must_use]
    pub fn size(&self) -> GroupSize {
        self.size
    }

    // ---- collectives ----------------------------------------------------

    /// `g.ballot(pred)`: evaluates `pred(rank)` on every lane and returns
    /// the packed `|g|`-bit mask (implicitly synchronizing, as the paper's
    /// CG member function does).
    #[inline]
    #[must_use]
    pub fn ballot(&self, mut pred: impl FnMut(u32) -> bool) -> u32 {
        self.san_collective();
        let mut mask = 0u32;
        for rank in 0..self.size.get() {
            if pred(rank) {
                mask |= 1 << rank;
            }
        }
        mask
    }

    /// `g.any(pred)`: true if the predicate holds on any lane.
    #[inline]
    #[must_use]
    pub fn any(&self, pred: impl FnMut(u32) -> bool) -> bool {
        self.ballot(pred) != 0
    }

    /// `g.all(pred)`: true if the predicate holds on every lane.
    #[inline]
    #[must_use]
    pub fn all(&self, pred: impl FnMut(u32) -> bool) -> bool {
        self.san_collective();
        (0..self.size.get()).all(pred)
    }

    /// The participation mask with every lane of the group active.
    #[inline]
    #[must_use]
    pub fn full_mask(&self) -> u32 {
        u32::MAX >> (32 - self.size.get())
    }

    /// `g.ballot(pred)` restricted to the lanes of `active` — the masked
    /// collective a kernel reaches when *it believes* some lanes have
    /// exited. Under synccheck, a mask that differs from
    /// [`GroupCtx::full_mask`] is reported as a divergent collective
    /// (`compute-sanitizer --tool synccheck`'s "divergent thread(s) in
    /// warp"); lanes outside `active` do not evaluate the predicate.
    #[must_use]
    pub fn ballot_where(&self, active: u32, mut pred: impl FnMut(u32) -> bool) -> u32 {
        let site = self.sites.get();
        if let Some(s) = self.san {
            self.sites.set(site + 1);
            s.on_masked_collective(
                self.group_id,
                site,
                active,
                self.full_mask(),
                self.clock.as_ref(),
            );
        }
        let mut mask = 0u32;
        for rank in 0..self.size.get() {
            if active & (1 << rank) != 0 && pred(rank) {
                mask |= 1 << rank;
            }
        }
        mask
    }

    /// `g.any(pred)` restricted to the lanes of `active` (see
    /// [`GroupCtx::ballot_where`]).
    #[must_use]
    pub fn any_where(&self, active: u32, pred: impl FnMut(u32) -> bool) -> bool {
        self.ballot_where(active, pred) != 0
    }

    /// `__ffs(mask) - 1`: the lowest-ranked active lane — the *leader* in
    /// the paper's probing scheme ("leftmost position in the CG").
    #[inline]
    #[must_use]
    pub fn ffs(mask: u32) -> Option<u32> {
        if mask == 0 {
            None
        } else {
            Some(mask.trailing_zeros())
        }
    }

    // ---- counted memory accesses ----------------------------------------

    /// Coalesced group load of `|g|` consecutive slots starting at
    /// `base mod slice.len()` (each lane `r` loads slot
    /// `(base + r) mod len`, line 7–8 of Fig. 3).
    ///
    /// Counts the exact number of 32-byte transactions the access pattern
    /// touches — including the extra transaction when the window wraps
    /// around the end of the table — and one dependent round-trip.
    #[must_use]
    pub fn read_window(&self, slice: DevSlice, base: usize) -> Window {
        self.pace();
        let len = slice.len();
        debug_assert!(len > 0);
        let g = self.size.get() as usize;
        let start = fast_idx(base, len);
        let mut vals = [0u64; 32];
        if start + g <= len {
            // common case: the window does not wrap — straight-line
            // indices, no per-lane reduction at all
            for (r, val) in vals.iter_mut().enumerate().take(g) {
                *val = self.mem.word(slice, start + r).load(Ordering::Relaxed);
            }
        } else {
            let mut idx = start;
            for val in vals.iter_mut().take(g) {
                *val = self.mem.word(slice, idx).load(Ordering::Relaxed);
                idx += 1;
                if idx == len {
                    idx = 0; // wrap to the front of the table (mod len)
                }
            }
        }
        // window loads are *relaxed by design*: probing tolerates racing
        // CAS claims and annotated shared stores (stale data is
        // re-balloted), so racecheck only flags plain writes. The whole
        // window is checked in one batched call (one shadow lock).
        if let Some(s) = self.san {
            s.on_window_read(slice, start, g, self.group_id, self.clock.as_ref());
        }
        self.local
            .add_transactions(window_transactions(slice, start, g));
        self.local.add_steps(1);
        Window {
            vals,
            size: self.size.get(),
        }
    }

    /// Reloads a single lane's slot after a failed CAS (line 20 of
    /// Fig. 3). The hardware would reload the full window in one
    /// transaction; we count one transaction and one step.
    #[must_use]
    pub fn reload_window(&self, slice: DevSlice, base: usize) -> Window {
        // Semantically identical to read_window but kept separate so the
        // counters reflect that a reload is a fresh round trip.
        self.read_window(slice, base)
    }

    /// Uncoalesced single-word load (one full 32-byte transaction even
    /// though only 8 bytes are useful — this is what makes the `|g| = 1`
    /// naïve scheme and the cuckoo baselines bandwidth-hungry).
    #[must_use]
    pub fn read(&self, slice: DevSlice, idx: usize) -> u64 {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        let v = self.mem.word(slice, idx).load(Ordering::Relaxed);
        self.san_read(slice, idx, AccessKind::PlainRead, None);
        self.local.add_transactions(1);
        self.local.add_steps(1);
        v
    }

    /// Uncoalesced single-word store.
    pub fn write(&self, slice: DevSlice, idx: usize, val: u64) {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        self.san_write(slice, idx, AccessKind::PlainWrite);
        self.mem.word(slice, idx).store(val, Ordering::Relaxed);
        self.local.add_transactions(1);
    }

    /// Uncoalesced single-word load *annotated as intentionally relaxed*:
    /// the protocol tolerates racing [`GroupCtx::write_shared`] stores of
    /// the same word (e.g. reading an SOA value word that concurrent
    /// updaters overwrite last-writer-wins). Counted exactly like
    /// [`GroupCtx::read`]; only racecheck treats it differently.
    #[must_use]
    pub fn read_shared(&self, slice: DevSlice, idx: usize) -> u64 {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        let v = self.mem.word(slice, idx).load(Ordering::Relaxed);
        self.san_read(slice, idx, AccessKind::SharedRead, None);
        self.local.add_transactions(1);
        self.local.add_steps(1);
        v
    }

    /// Uncoalesced single-word store *annotated as intentionally relaxed*
    /// (last-writer-wins by protocol design, e.g. the SOA value-word
    /// update path). Counted exactly like [`GroupCtx::write`]; racecheck
    /// flags it only against unordered *plain* accesses — an unannotated
    /// plain store racing this one is still a finding.
    pub fn write_shared(&self, slice: DevSlice, idx: usize, val: u64) {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        self.san_write(slice, idx, AccessKind::SharedWrite);
        self.mem.word(slice, idx).store(val, Ordering::Relaxed);
        self.local.add_transactions(1);
    }

    /// Fully coalesced streaming load (bulk inputs: keys to insert or
    /// query). Counts 8 bytes at streaming bandwidth, no dependent step —
    /// these accesses are prefetch-friendly.
    #[must_use]
    pub fn read_stream(&self, slice: DevSlice, idx: usize) -> u64 {
        self.pace();
        self.local.add_stream_bytes(8);
        if let Some(s) = self.san {
            // streaming accesses index directly (no wrap) — the one place
            // a counted op can run off a slice. Memcheck reports and
            // *contains* the access: the load is skipped, returning 0.
            if !s.stream_in_bounds("read_stream", slice, idx, self.group_id) && s.contains_oob() {
                return 0;
            }
        }
        let v = self.mem.word(slice, idx).load(Ordering::Relaxed);
        self.san_read(slice, idx, AccessKind::PlainRead, None);
        v
    }

    /// Fully coalesced streaming store (bulk outputs: query results).
    pub fn write_stream(&self, slice: DevSlice, idx: usize, val: u64) {
        self.pace();
        self.local.add_stream_bytes(8);
        if let Some(s) = self.san {
            if !s.stream_in_bounds("write_stream", slice, idx, self.group_id) && s.contains_oob() {
                return;
            }
        }
        self.san_write(slice, idx, AccessKind::PlainWrite);
        self.mem.word(slice, idx).store(val, Ordering::Relaxed);
    }

    /// 64-bit `atomicCAS` on a table slot (line 13 of Fig. 3).
    ///
    /// Returns `Ok(())` on success and `Err(actual)` with the word that was
    /// found on failure, mirroring `compare_exchange`. The packed key-value
    /// word is self-contained — no other memory is published through it —
    /// so `Relaxed` ordering suffices (the AOS layout exists precisely to
    /// avoid cross-word publication; cf. the paper's SOA discussion).
    ///
    /// Billed as a *warm* atomic: in every WarpDrive kernel the CAS
    /// immediately follows the coalesced window load of the same sector,
    /// so the line is L2-resident and the RMW executes near the cache —
    /// no extra DRAM transaction.
    pub fn cas(&self, slice: DevSlice, idx: usize, current: u64, new: u64) -> Result<(), u64> {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        self.san_atomic(slice, idx);
        let r = self.mem.word(slice, idx).compare_exchange(
            current,
            new,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.local.add_cas(r.is_ok());
        self.local.add_steps(1);
        r.map(|_| ())
    }

    /// 64-bit `atomicExch` to a *cold* random address (the cuckoo
    /// baseline's eviction step): the line is not L2-resident, so the RMW
    /// pays a full sector fetch plus the cold-atomic round-trip.
    pub fn exchange(&self, slice: DevSlice, idx: usize, new: u64) -> u64 {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        self.san_atomic(slice, idx);
        let old = self.mem.word(slice, idx).swap(new, Ordering::Relaxed);
        self.local.add_cold_atomic();
        self.local.add_transactions(1); // sector fetch
        self.local.add_steps(1);
        old
    }

    /// 64-bit `atomicAdd` returning the previous value (multisplit
    /// counters, warp-aggregated compaction).
    pub fn atomic_add(&self, slice: DevSlice, idx: usize, delta: u64) -> u64 {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        self.san_atomic(slice, idx);
        let old = self.mem.word(slice, idx).fetch_add(delta, Ordering::Relaxed);
        self.local.add_atomic();
        self.local.add_steps(1);
        old
    }

    /// 64-bit `atomicOr` returning the previous value (ticket-board bit
    /// claims in the Stadium-hash baseline).
    pub fn atomic_or(&self, slice: DevSlice, idx: usize, bits: u64) -> u64 {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        self.san_atomic(slice, idx);
        let old = self.mem.word(slice, idx).fetch_or(bits, Ordering::Relaxed);
        self.local.add_atomic();
        self.local.add_steps(1);
        old
    }

    /// Bills `n` irregular 32-byte transactions without touching memory —
    /// a modeling hook for composite kernels whose functional work happens
    /// elsewhere (e.g. the radix-scatter pass of the sort-based
    /// multisplit, whose permutation is computed host-side but whose
    /// traffic must still be charged).
    pub fn bill_transactions(&self, n: u64) {
        self.pace();
        self.local.add_transactions(n);
        self.local.add_steps(1);
    }

    /// Bills `bytes` of coalesced streaming traffic without touching
    /// memory (modeling hook, cf. [`GroupCtx::bill_transactions`]).
    pub fn bill_stream_bytes(&self, bytes: u64) {
        self.local.add_stream_bytes(bytes);
    }

    /// 64-bit `atomicMax` (used by some baselines' stash bookkeeping).
    pub fn atomic_max(&self, slice: DevSlice, idx: usize, val: u64) -> u64 {
        self.pace();
        let idx = fast_idx(idx, slice.len());
        self.san_atomic(slice, idx);
        let old = self.mem.word(slice, idx).fetch_max(val, Ordering::Relaxed);
        self.local.add_atomic();
        self.local.add_steps(1);
        old
    }
}

/// Reduces an index into `[0, len)` without a hardware division on the
/// common path. Kernel call sites almost always pass an already-reduced
/// index (the probers reduce modulo capacity before dispatch), so the
/// branch is predictably not-taken and costs ~1 cycle where `idx % len`
/// costs a 64-bit `div`. Bit-identical to `idx % len` in every case.
#[inline]
fn fast_idx(idx: usize, len: usize) -> usize {
    if idx < len {
        idx
    } else {
        idx % len
    }
}

/// Number of 32-byte transactions touched by a `len`-slot window starting
/// at `start` (word indices relative to the slice), accounting for
/// wraparound at the slice end and for the slice's absolute alignment.
fn window_transactions(slice: DevSlice, start: usize, len: usize) -> u64 {
    const WORDS_PER_TXN: usize = 4; // 32 bytes / 8-byte words
    let table_len = slice.len();
    let seg_of = |abs_word: usize| abs_word / WORDS_PER_TXN;
    if start + len <= table_len {
        let first = seg_of(slice.offset + start);
        let last = seg_of(slice.offset + start + len - 1);
        (last - first + 1) as u64
    } else {
        // wrapped: [start, table_len) and [0, start+len-table_len)
        let head = table_len - start;
        let tail = len - head;
        window_transactions(slice, start, head) + window_transactions(slice, 0, tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::KernelCounters;
    use crate::mem::DeviceMemory;

    fn ctx<'a>(mem: &'a DeviceMemory, local: &'a LocalCounters, g: u32) -> GroupCtx<'a> {
        GroupCtx::new(mem, local, 0, GroupSize::new(g), None)
    }

    #[test]
    fn full_mask_matches_group_size() {
        let mem = DeviceMemory::new(8);
        let l = LocalCounters::new();
        assert_eq!(ctx(&mem, &l, 1).full_mask(), 0b1);
        assert_eq!(ctx(&mem, &l, 4).full_mask(), 0b1111);
        assert_eq!(ctx(&mem, &l, 32).full_mask(), u32::MAX);
    }

    #[test]
    fn masked_collectives_skip_inactive_lanes() {
        let mem = DeviceMemory::new(8);
        let l = LocalCounters::new();
        let g = ctx(&mem, &l, 4);
        // lane 2 inactive: its predicate must not run and cannot vote
        let mask = g.ballot_where(0b1011, |r| {
            assert_ne!(r, 2);
            r != 0
        });
        assert_eq!(mask, 0b1010);
        assert!(g.any_where(0b0001, |r| r == 0));
        assert!(!g.any_where(0b1110, |r| r == 0));
    }

    #[test]
    fn shared_accessors_bill_like_plain_ones() {
        let mem = DeviceMemory::new(8);
        let c = KernelCounters::new();
        let l = LocalCounters::new();
        let s = mem.alloc(4).unwrap();
        mem.fill(s, 7);
        let g = ctx(&mem, &l, 1);
        g.write_shared(s, 1, 9);
        assert_eq!(g.read_shared(s, 1), 9);
        drop(g);
        l.flush_into(&c); // chunk retirement: flush the accumulator
        let snap = c.snapshot();
        assert_eq!(snap.transactions, 2);
        assert_eq!(snap.group_steps, 1); // read pays the round-trip, write doesn't
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn invalid_group_size_rejected() {
        let _ = GroupSize::new(3);
    }

    #[test]
    fn windows_per_warp_is_inner_trip_count() {
        assert_eq!(GroupSize::new(1).windows_per_warp(), 32);
        assert_eq!(GroupSize::new(8).windows_per_warp(), 4);
        assert_eq!(GroupSize::WARP.windows_per_warp(), 1);
    }

    #[test]
    fn ballot_packs_lane_predicates() {
        let mem = DeviceMemory::new(64);
        let l = LocalCounters::new();
        let g = ctx(&mem, &l, 8);
        let mask = g.ballot(|r| r % 2 == 0);
        assert_eq!(mask, 0b0101_0101);
        assert!(g.any(|r| r == 7));
        assert!(!g.any(|r| r > 7));
        assert!(g.all(|r| r < 8));
    }

    #[test]
    fn ffs_finds_lowest_rank() {
        assert_eq!(GroupCtx::ffs(0), None);
        assert_eq!(GroupCtx::ffs(0b1000), Some(3));
        assert_eq!(GroupCtx::ffs(0b1001), Some(0));
    }

    #[test]
    fn read_window_wraps_around_table() {
        let mem = DeviceMemory::new(16);
        let l = LocalCounters::new();
        let s = mem.alloc(10).unwrap();
        let data: Vec<u64> = (100..110).collect();
        mem.h2d(s, &data);
        let g = ctx(&mem, &l, 4);
        let w = g.read_window(s, 8); // slots 8, 9, 0, 1
        assert_eq!(w.lane(0), 108);
        assert_eq!(w.lane(1), 109);
        assert_eq!(w.lane(2), 100);
        assert_eq!(w.lane(3), 101);
    }

    #[test]
    fn window_transaction_counting_aligned() {
        let mem = DeviceMemory::new(64);
        let c = KernelCounters::new();
        let l = LocalCounters::new();
        let s = mem.alloc(64).unwrap(); // offset 0, aligned
        let g8 = ctx(&mem, &l, 8);
        let _ = g8.read_window(s, 0); // words 0..8 → segments 0,1 → 2 txns
        drop(g8);
        l.flush_into(&c);
        assert_eq!(c.snapshot().transactions, 2);
        let g8 = ctx(&mem, &l, 8);
        let _ = g8.read_window(s, 2); // words 2..10 → segments 0,1,2 → 3 txns
        drop(g8);
        l.flush_into(&c);
        assert_eq!(c.snapshot().transactions, 5);
    }

    #[test]
    fn window_transaction_counting_wrapped() {
        let mem = DeviceMemory::new(64);
        let c = KernelCounters::new();
        let l = LocalCounters::new();
        let s = mem.alloc(16).unwrap();
        let g4 = ctx(&mem, &l, 4);
        let _ = g4.read_window(s, 14); // 14,15 + 0,1 → 2 segments
        drop(g4);
        l.flush_into(&c);
        assert_eq!(c.snapshot().transactions, 2);
    }

    #[test]
    fn cas_success_and_failure_paths() {
        let mem = DeviceMemory::new(8);
        let c = KernelCounters::new();
        let l = LocalCounters::new();
        let s = mem.alloc(4).unwrap();
        let g = ctx(&mem, &l, 1);
        assert!(g.cas(s, 2, 0, 42).is_ok());
        assert_eq!(g.cas(s, 2, 0, 43), Err(42));
        drop(g);
        l.flush_into(&c);
        let snap = c.snapshot();
        assert_eq!(snap.cas_ops, 2);
        assert_eq!(snap.cas_failed, 1);
        assert_eq!(mem.d2h(s)[2], 42);
    }

    #[test]
    fn atomic_add_returns_previous() {
        let mem = DeviceMemory::new(4);
        let c = KernelCounters::new();
        let l = LocalCounters::new();
        let s = mem.alloc(1).unwrap();
        let g = ctx(&mem, &l, 1);
        assert_eq!(g.atomic_add(s, 0, 5), 0);
        assert_eq!(g.atomic_add(s, 0, 7), 5);
        assert_eq!(mem.d2h(s)[0], 12);
        drop(g);
        l.flush_into(&c);
        assert_eq!(c.snapshot().atomic_ops, 2);
    }

    #[test]
    fn stream_accesses_count_bytes_not_transactions() {
        let mem = DeviceMemory::new(8);
        let c = KernelCounters::new();
        let l = LocalCounters::new();
        let s = mem.alloc(8).unwrap();
        let g = ctx(&mem, &l, 4);
        let _ = g.read_stream(s, 0);
        g.write_stream(s, 1, 9);
        drop(g);
        l.flush_into(&c);
        let snap = c.snapshot();
        assert_eq!(snap.stream_bytes, 16);
        assert_eq!(snap.transactions, 0);
        assert_eq!(snap.group_steps, 0);
    }

    #[test]
    fn exchange_swaps_and_counts() {
        let mem = DeviceMemory::new(4);
        let l = LocalCounters::new();
        let s = mem.alloc(1).unwrap();
        mem.h2d(s, &[11]);
        let g = ctx(&mem, &l, 1);
        assert_eq!(g.exchange(s, 0, 22), 11);
        assert_eq!(mem.d2h(s)[0], 22);
    }
}
