//! Simulated-time resource timelines.
//!
//! The asynchronous cascades of the paper (Fig. 5 / Fig. 11) overlap
//! stages that occupy *different hardware resources* — the PCIe bus, the
//! NVLink network, and video memory/compute. Real CPU threads drive the
//! pipeline; each simulated resource serializes the stages scheduled onto
//! it and advances its own busy-horizon, a classic resource-constrained
//! event simulation.
//!
//! The busy horizon is a single `f64` stored as its bit pattern in an
//! [`AtomicU64`] and advanced with a CAS loop, so scheduling a stage is a
//! handful of uncontended atomic ops instead of a mutex acquire/release on
//! the pipeline hot path. Non-negative `f64`s order the same as their bit
//! patterns, but the loop never relies on that: each iteration recomputes
//! `start = busy.max(ready)` from the freshly observed horizon, so the
//! granted intervals are exactly those the mutex version would grant.

use std::sync::atomic::{AtomicU64, Ordering};

/// A single serial resource on the simulated timeline (one PCIe switch,
/// the NVLink fabric, one GPU's memory system, …).
///
/// `Default` is a fresh idle resource: `AtomicU64::default()` is 0, and
/// the all-zero bit pattern is exactly `0.0f64`.
#[derive(Debug, Default)]
pub struct ResourceTimeline {
    /// Busy horizon in seconds, stored as `f64::to_bits`.
    busy_until: AtomicU64,
}

/// Scheduled interval returned by [`ResourceTimeline::schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Simulated start time (seconds).
    pub start: f64,
    /// Simulated end time (seconds).
    pub end: f64,
}

impl Interval {
    /// Interval duration.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

impl ResourceTimeline {
    /// A fresh, idle resource (busy horizon at t = 0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a stage that becomes *ready* at `ready` (its inputs are
    /// available) and occupies the resource for `duration` seconds.
    /// Returns the granted interval: starts when both the stage is ready
    /// and the resource is free.
    pub fn schedule(&self, ready: f64, duration: f64) -> Interval {
        assert!(duration >= 0.0, "negative duration");
        let mut cur = self.busy_until.load(Ordering::Acquire);
        loop {
            let busy = f64::from_bits(cur);
            let start = busy.max(ready);
            let end = start + duration;
            match self.busy_until.compare_exchange_weak(
                cur,
                end.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Interval { start, end },
                Err(observed) => cur = observed,
            }
        }
    }

    /// Current busy horizon (the earliest time a new stage could start).
    #[must_use]
    pub fn horizon(&self) -> f64 {
        f64::from_bits(self.busy_until.load(Ordering::Acquire))
    }

    /// Resets the timeline to idle at t = 0.
    pub fn reset(&self) {
        self.busy_until.store(0.0f64.to_bits(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_stages_serialize() {
        let r = ResourceTimeline::new();
        let a = r.schedule(0.0, 1.0);
        let b = r.schedule(0.0, 2.0);
        assert_eq!(
            a,
            Interval {
                start: 0.0,
                end: 1.0
            }
        );
        assert_eq!(
            b,
            Interval {
                start: 1.0,
                end: 3.0
            }
        );
        assert_eq!(r.horizon(), 3.0);
    }

    #[test]
    fn ready_time_delays_start() {
        let r = ResourceTimeline::new();
        let a = r.schedule(5.0, 1.0);
        assert_eq!(a.start, 5.0);
        let b = r.schedule(0.0, 1.0); // ready early but resource busy
        assert_eq!(b.start, 6.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let pcie = ResourceTimeline::new();
        let vram = ResourceTimeline::new();
        // batch 0: transfer then compute
        let t0 = pcie.schedule(0.0, 1.0);
        let c0 = vram.schedule(t0.end, 1.0);
        // batch 1: its transfer overlaps batch 0's compute
        let t1 = pcie.schedule(0.0, 1.0);
        let c1 = vram.schedule(t1.end, 1.0);
        assert_eq!(t1.start, 1.0); // PCIe serial
        assert_eq!(c0.start, 1.0);
        assert_eq!(c1.start, 2.0); // compute chains after both deps
                                   // total makespan 3 < 4 (sequential) — the Fig. 11 effect
        assert!(c1.end < 4.0);
    }

    #[test]
    fn reset_returns_to_idle() {
        let r = ResourceTimeline::new();
        let _ = r.schedule(0.0, 7.0);
        r.reset();
        assert_eq!(r.horizon(), 0.0);
    }

    #[test]
    fn concurrent_scheduling_is_consistent() {
        let r = std::sync::Arc::new(ResourceTimeline::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let mut sum = 0.0;
                for _ in 0..100 {
                    sum += r.schedule(0.0, 0.5).duration();
                }
                sum
            }));
        }
        for h in handles {
            let _ = h.join().unwrap();
        }
        // 800 stages × 0.5 s on one serial resource
        assert!((r.horizon() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_intervals_never_overlap() {
        // The CAS loop must hand out the same disjoint, back-to-back
        // intervals the mutex version did: every granted [start, end) is
        // exclusive, so sorting by start must tile the busy span exactly.
        let r = std::sync::Arc::new(ResourceTimeline::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                (0..64)
                    .map(|i| r.schedule(0.0, 0.25 + f64::from(t * 64 + i) * 1e-6))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Interval> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        let mut expected_start = 0.0;
        for iv in &all {
            assert_eq!(iv.start, expected_start, "gap or overlap at {iv:?}");
            expected_start = iv.end;
        }
        assert_eq!(r.horizon(), expected_start);
    }
}
