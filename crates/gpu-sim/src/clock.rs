//! Simulated-time resource timelines.
//!
//! The asynchronous cascades of the paper (Fig. 5 / Fig. 11) overlap
//! stages that occupy *different hardware resources* — the PCIe bus, the
//! NVLink network, and video memory/compute. Real CPU threads drive the
//! pipeline; each simulated resource serializes the stages scheduled onto
//! it and advances its own busy-horizon, a classic resource-constrained
//! event simulation.

use parking_lot::Mutex;

/// A single serial resource on the simulated timeline (one PCIe switch,
/// the NVLink fabric, one GPU's memory system, …).
#[derive(Debug, Default)]
pub struct ResourceTimeline {
    busy_until: Mutex<f64>,
}

/// Scheduled interval returned by [`ResourceTimeline::schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Simulated start time (seconds).
    pub start: f64,
    /// Simulated end time (seconds).
    pub end: f64,
}

impl Interval {
    /// Interval duration.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

impl ResourceTimeline {
    /// A fresh, idle resource (busy horizon at t = 0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a stage that becomes *ready* at `ready` (its inputs are
    /// available) and occupies the resource for `duration` seconds.
    /// Returns the granted interval: starts when both the stage is ready
    /// and the resource is free.
    pub fn schedule(&self, ready: f64, duration: f64) -> Interval {
        assert!(duration >= 0.0, "negative duration");
        let mut busy = self.busy_until.lock();
        let start = busy.max(ready);
        let end = start + duration;
        *busy = end;
        Interval { start, end }
    }

    /// Current busy horizon (the earliest time a new stage could start).
    #[must_use]
    pub fn horizon(&self) -> f64 {
        *self.busy_until.lock()
    }

    /// Resets the timeline to idle at t = 0.
    pub fn reset(&self) {
        *self.busy_until.lock() = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_stages_serialize() {
        let r = ResourceTimeline::new();
        let a = r.schedule(0.0, 1.0);
        let b = r.schedule(0.0, 2.0);
        assert_eq!(
            a,
            Interval {
                start: 0.0,
                end: 1.0
            }
        );
        assert_eq!(
            b,
            Interval {
                start: 1.0,
                end: 3.0
            }
        );
        assert_eq!(r.horizon(), 3.0);
    }

    #[test]
    fn ready_time_delays_start() {
        let r = ResourceTimeline::new();
        let a = r.schedule(5.0, 1.0);
        assert_eq!(a.start, 5.0);
        let b = r.schedule(0.0, 1.0); // ready early but resource busy
        assert_eq!(b.start, 6.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let pcie = ResourceTimeline::new();
        let vram = ResourceTimeline::new();
        // batch 0: transfer then compute
        let t0 = pcie.schedule(0.0, 1.0);
        let c0 = vram.schedule(t0.end, 1.0);
        // batch 1: its transfer overlaps batch 0's compute
        let t1 = pcie.schedule(0.0, 1.0);
        let c1 = vram.schedule(t1.end, 1.0);
        assert_eq!(t1.start, 1.0); // PCIe serial
        assert_eq!(c0.start, 1.0);
        assert_eq!(c1.start, 2.0); // compute chains after both deps
                                   // total makespan 3 < 4 (sequential) — the Fig. 11 effect
        assert!(c1.end < 4.0);
    }

    #[test]
    fn reset_returns_to_idle() {
        let r = ResourceTimeline::new();
        let _ = r.schedule(0.0, 7.0);
        r.reset();
        assert_eq!(r.horizon(), 0.0);
    }

    #[test]
    fn concurrent_scheduling_is_consistent() {
        let r = std::sync::Arc::new(ResourceTimeline::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let mut sum = 0.0;
                for _ in 0..100 {
                    sum += r.schedule(0.0, 0.5).duration();
                }
                sum
            }));
        }
        for h in handles {
            let _ = h.join().unwrap();
        }
        // 800 stages × 0.5 s on one serial resource
        assert!((r.horizon() - 400.0).abs() < 1e-9);
    }
}
