//! `wd-sanitizer` — a `compute-sanitizer` analogue for the SIMT engine.
//!
//! Real CUDA development leans on `compute-sanitizer`'s four tools to
//! catch protocol bugs that end-state tests miss; this module is the
//! software-simulator equivalent. Because every device-memory access
//! already flows through [`crate::simt::GroupCtx`], that API is a perfect
//! instrumentation choke point: shadow state is attached to every device
//! word and each counted memory operation is checked *at access time*.
//!
//! Four detectors, individually selectable via [`SanitizerSet`]:
//!
//! * **racecheck** ([`racecheck`]) — FastTrack-style happens-before
//!   detection of plain-load/write and write/write races between SIMT
//!   groups. CAS/atomic operations create release/acquire edges through a
//!   per-word sync vector clock; group epochs advance at releases (after
//!   the epoch is published) and at collectives (ballots) — per-access
//!   ticking buys no extra precision, see the [`racecheck`] module docs —
//!   so an unsynchronized plain publish store racing an annotated shared
//!   store is flagged even when the outcome happens to look correct.
//!   Under stepwise schedules release publication is batched and flushed
//!   at schedule-quantum boundaries.
//! * **initcheck** ([`initcheck`]) — a valid-bit shadow per device word,
//!   set by `h2d`/`fill`/`d2d`/kernel stores and cleared on (re)allocation,
//!   flags reads of never-written words (e.g. probing a table whose
//!   EMPTY-fill was skipped).
//! * **memcheck** ([`memcheck`]) — out-of-bounds streaming accesses are
//!   reported and *contained* (the access is skipped, reads return 0), and
//!   scratch allocations leaked past their guard (`mem::forget`) are
//!   reported when the device memory drops. `DeviceMemory::reset()` with
//!   outstanding [`crate::ScratchGuard`]s panics unconditionally.
//! * **synccheck** ([`synccheck`]) — masked collectives
//!   ([`crate::GroupCtx::ballot_where`]) flag lanes of one coalesced group
//!   reaching a group op with divergent participation masks.
//!
//! Enable globally with `WD_SANITIZE=race,init,mem,sync` (or `all`), which
//! attaches shadow state at [`crate::Device`] construction with the
//! fail-fast [`Policy::Panic`]; or per device with
//! [`crate::Device::sanitized`] / [`crate::Device::sanitized_collecting`];
//! or per launch with `LaunchOptions::sanitize` (lazy attachment marks
//! pre-existing memory valid to avoid initcheck false positives).
//!
//! Every [`Report`] carries the kernel label, group/lane ids, the absolute
//! word index and the launch's schedule — findings made under a
//! deterministic schedule replay bit-for-bit from the printed `WD_SCHED_*`
//! settings. With every detector off the hot path costs exactly one
//! predictable `Option` branch per operation: no locks, no allocation,
//! and the op counters are untouched either way.

pub mod initcheck;
pub mod memcheck;
pub mod racecheck;
pub mod synccheck;

use crate::mem::DevSlice;
use crate::sched::Schedule;
use initcheck::ValidBits;
use parking_lot::Mutex;
use racecheck::{AccessKind, GroupClock, RaceState};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which detectors are active — a small bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SanitizerSet(u8);

impl SanitizerSet {
    /// No detectors (the zero-cost default).
    pub const NONE: SanitizerSet = SanitizerSet(0);
    /// Happens-before race detection.
    pub const RACE: SanitizerSet = SanitizerSet(1);
    /// Uninitialised-read detection.
    pub const INIT: SanitizerSet = SanitizerSet(2);
    /// Out-of-bounds / leak detection.
    pub const MEM: SanitizerSet = SanitizerSet(4);
    /// Divergent-collective detection.
    pub const SYNC: SanitizerSet = SanitizerSet(8);
    /// All four detectors.
    pub const ALL: SanitizerSet = SanitizerSet(15);

    /// Union of two sets.
    #[must_use]
    pub fn union(self, other: SanitizerSet) -> SanitizerSet {
        SanitizerSet(self.0 | other.0)
    }

    /// Whether no detector is selected.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Racecheck selected?
    #[must_use]
    pub fn race(self) -> bool {
        self.0 & Self::RACE.0 != 0
    }

    /// Initcheck selected?
    #[must_use]
    pub fn init(self) -> bool {
        self.0 & Self::INIT.0 != 0
    }

    /// Memcheck selected?
    #[must_use]
    pub fn mem(self) -> bool {
        self.0 & Self::MEM.0 != 0
    }

    /// Synccheck selected?
    #[must_use]
    pub fn sync(self) -> bool {
        self.0 & Self::SYNC.0 != 0
    }

    /// Parses a comma-separated detector list: `race`, `init`, `mem`,
    /// `sync`, `all` (aliases: `racecheck`, `initcheck`, `memcheck`,
    /// `synccheck`). Empty strings, `0`, `off` and `none` select nothing;
    /// unknown tokens are ignored.
    #[must_use]
    pub fn parse(spec: &str) -> SanitizerSet {
        let mut set = SanitizerSet::NONE;
        for tok in spec.split(',') {
            set = set.union(match tok.trim() {
                "race" | "racecheck" => Self::RACE,
                "init" | "initcheck" => Self::INIT,
                "mem" | "memcheck" => Self::MEM,
                "sync" | "synccheck" => Self::SYNC,
                "all" | "full" => Self::ALL,
                _ => Self::NONE,
            });
        }
        set
    }

    /// Reads the detector set from the `WD_SANITIZE` environment variable
    /// (see [`SanitizerSet::parse`]); unset means none.
    #[must_use]
    pub fn from_env() -> SanitizerSet {
        std::env::var("WD_SANITIZE").map_or(Self::NONE, |v| Self::parse(&v))
    }
}

impl std::fmt::Display for SanitizerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        for (on, name) in [
            (self.race(), "race"),
            (self.init(), "init"),
            (self.mem(), "mem"),
            (self.sync(), "sync"),
        ] {
            if on {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// The detector that produced a [`Report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// Happens-before race detection.
    Race,
    /// Uninitialised-read detection.
    Init,
    /// Bounds / leak detection.
    Mem,
    /// Divergent-collective detection.
    Sync,
}

impl Detector {
    /// Tool-style name (`racecheck`, …).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Detector::Race => "racecheck",
            Detector::Init => "initcheck",
            Detector::Mem => "memcheck",
            Detector::Sync => "synccheck",
        }
    }
}

impl std::fmt::Display for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One sanitizer finding.
///
/// Carries everything needed to replay it: the kernel label, the group
/// (and lane, for per-lane accesses), the absolute device word, and the
/// schedule of the launch — under a deterministic schedule the printed
/// `WD_SCHED_*` settings reproduce the finding bit-for-bit.
#[derive(Debug, Clone)]
pub struct Report {
    /// Which detector fired.
    pub detector: Detector,
    /// Kernel label of the launch.
    pub kernel: String,
    /// Group id within the launch.
    pub group: usize,
    /// Lane rank within the group, when the access is per-lane.
    pub lane: Option<u32>,
    /// Absolute device word index, when the finding is about a word.
    pub word: Option<usize>,
    /// Schedule of the launch (e.g. `seeded(seed=7)`), plus the
    /// environment settings replaying it.
    pub schedule: String,
    /// Human-readable description of the finding.
    pub message: String,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] kernel=`{}` group={}",
            self.detector, self.kernel, self.group
        )?;
        if let Some(lane) = self.lane {
            write!(f, " lane={lane}")?;
        }
        if let Some(word) = self.word {
            write!(f, " word={word}")?;
        }
        write!(f, ": {} (schedule {})", self.message, self.schedule)
    }
}

/// What happens when a launch produced findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Panic at the end of the launch, printing every finding — the
    /// fail-fast mode `WD_SANITIZE` uses in CI.
    Panic,
    /// Keep collecting; findings are drained with
    /// [`crate::Device::take_sanitizer_reports`] (what the mutation-double
    /// tests use to assert on reports).
    Collect,
}

/// Findings kept before the sink saturates (further ones only count).
const REPORT_CAP: usize = 256;

/// Per-device sanitizer shadow state, attached once (first attachment
/// wins) and shared by every launch on the device.
#[derive(Debug)]
pub struct DeviceSanitizer {
    set: SanitizerSet,
    policy: Policy,
    valid: Option<ValidBits>,
    reports: Mutex<Vec<Report>>,
    dropped: AtomicUsize,
}

impl DeviceSanitizer {
    pub(crate) fn new(
        set: SanitizerSet,
        policy: Policy,
        words: usize,
        assume_valid: bool,
    ) -> Self {
        Self {
            set,
            policy,
            valid: set.init().then(|| ValidBits::new(words, assume_valid)),
            reports: Mutex::new(Vec::new()),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Detectors this device checks.
    #[must_use]
    pub fn set(&self) -> SanitizerSet {
        self.set
    }

    /// The failure policy.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The initcheck valid-bit shadow (present iff `init` is selected).
    pub(crate) fn valid(&self) -> Option<&ValidBits> {
        self.valid.as_ref()
    }

    /// Records a finding (capped; overflow only counts).
    pub(crate) fn submit(&self, report: Report) {
        let mut r = self.reports.lock();
        if r.len() < REPORT_CAP {
            r.push(report);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.reports.lock().len()
    }

    pub(crate) fn clone_reports(&self) -> Vec<Report> {
        self.reports.lock().clone()
    }

    pub(crate) fn take_reports(&self) -> Vec<Report> {
        std::mem::take(&mut *self.reports.lock())
    }

    /// Findings dropped past the cap.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Per-launch sanitizer context: borrows the device shadow, owns the
/// launch-scoped race state (races are checked within one launch — the
/// CUDA default-stream analogy; cross-launch hazards are out of scope),
/// and remembers the schedule string for reports.
pub(crate) struct LaunchSanitizer<'a> {
    dev: &'a DeviceSanitizer,
    set: SanitizerSet,
    kernel: &'a str,
    schedule: String,
    /// Stepwise launches batch release publication (see [`racecheck`]);
    /// pool/sequential launches publish eagerly.
    stepwise: bool,
    race: Option<RaceState>,
    baseline: usize,
}

impl<'a> LaunchSanitizer<'a> {
    pub(crate) fn new(
        dev: &'a DeviceSanitizer,
        set: SanitizerSet,
        kernel: &'a str,
        schedule: Schedule,
    ) -> Self {
        Self {
            dev,
            set,
            kernel,
            schedule: format!("{schedule} [replay: {}]", schedule.replay_hint()),
            stepwise: schedule.is_stepwise(),
            race: set.race().then(RaceState::new),
            baseline: dev.len(),
        }
    }

    /// The valid-bit shadow, iff this launch checks initcheck *and* the
    /// device shadow carries valid bits (the first attachment decides).
    fn valid(&self) -> Option<&ValidBits> {
        if self.set.init() {
            self.dev.valid()
        } else {
            None
        }
    }

    /// A fresh vector clock for one group, iff racecheck is on. Under a
    /// stepwise schedule the clock buffers release publication until the
    /// group yields (see [`LaunchSanitizer::flush_releases`]).
    pub(crate) fn group_clock(&self, group: usize) -> Option<RefCell<GroupClock>> {
        self.race.as_ref().map(|_| {
            let clock = GroupClock::new(group as u32);
            RefCell::new(if self.stepwise { clock.with_batching() } else { clock })
        })
    }

    /// Publishes any buffered release edge of `clock`. Called before a
    /// group yields the schedule token and at group retirement — the
    /// points where another group could next observe the release.
    pub(crate) fn flush_releases(&self, clock: Option<&RefCell<GroupClock>>) {
        if let (Some(rs), Some(clock)) = (self.race.as_ref(), clock) {
            rs.flush_releases(&mut clock.borrow_mut());
        }
    }

    fn report(
        &self,
        detector: Detector,
        group: usize,
        lane: Option<u32>,
        word: Option<usize>,
        message: String,
    ) {
        self.dev.submit(Report {
            detector,
            kernel: self.kernel.to_owned(),
            group,
            lane,
            word,
            schedule: self.schedule.clone(),
            message,
        });
    }

    /// Checks one read of `slice[idx]` (already resolved, in-bounds).
    pub(crate) fn on_read(
        &self,
        slice: DevSlice,
        idx: usize,
        kind: AccessKind,
        group: usize,
        lane: Option<u32>,
        clock: Option<&RefCell<GroupClock>>,
    ) {
        debug_assert!(kind.is_read());
        let abs = slice.offset + idx;
        if let Some(valid) = self.valid() {
            if self.set.init() && !valid.is_valid(abs) {
                // mark valid so each word reports at most once
                valid.set(abs);
                self.report(
                    Detector::Init,
                    group,
                    lane,
                    Some(abs),
                    format!(
                        "{} of never-written device word (slice offset={} len={}, idx={idx})",
                        kind.describe(),
                        slice.offset,
                        slice.len
                    ),
                );
            }
        }
        self.race_access(abs, slice, idx, kind, group, lane, clock);
    }

    /// Checks one write of `slice[idx]` and marks the word initialised.
    pub(crate) fn on_write(
        &self,
        slice: DevSlice,
        idx: usize,
        kind: AccessKind,
        group: usize,
        lane: Option<u32>,
        clock: Option<&RefCell<GroupClock>>,
    ) {
        debug_assert!(!kind.is_read());
        let abs = slice.offset + idx;
        self.race_access(abs, slice, idx, kind, group, lane, clock);
        if let Some(valid) = self.valid() {
            valid.set(abs);
        }
    }

    /// Checks one atomic read-modify-write of `slice[idx]`: initcheck
    /// treats it as read+write, racecheck as a synchronizing access.
    pub(crate) fn on_atomic(
        &self,
        slice: DevSlice,
        idx: usize,
        group: usize,
        clock: Option<&RefCell<GroupClock>>,
    ) {
        let abs = slice.offset + idx;
        if let Some(valid) = self.valid() {
            if self.set.init() && !valid.is_valid(abs) {
                valid.set(abs);
                self.report(
                    Detector::Init,
                    group,
                    None,
                    Some(abs),
                    format!(
                        "atomic read-modify-write of never-written device word \
                         (slice offset={} len={}, idx={idx})",
                        slice.offset, slice.len
                    ),
                );
            } else {
                valid.set(abs);
            }
        }
        self.race_access(abs, slice, idx, AccessKind::Atomic, group, None, clock);
    }

    #[allow(clippy::too_many_arguments)]
    fn race_access(
        &self,
        abs: usize,
        slice: DevSlice,
        idx: usize,
        kind: AccessKind,
        group: usize,
        lane: Option<u32>,
        clock: Option<&RefCell<GroupClock>>,
    ) {
        if let (Some(rs), Some(clock)) = (self.race.as_ref(), clock) {
            let mut clock = clock.borrow_mut();
            if let Some(prior) = rs.on_access(abs, &mut clock, kind) {
                self.report(
                    Detector::Race,
                    group,
                    lane,
                    Some(abs),
                    format!(
                        "{} races with {} by group {} (no happens-before edge; \
                         slice offset={} len={}, idx={idx})",
                        kind.describe(),
                        prior.kind.describe(),
                        prior.gid,
                        slice.offset,
                        slice.len
                    ),
                );
            }
        }
    }

    /// Checks a coalesced window read of `count` consecutive slots
    /// starting at `slice[start]`, wrapping at `slice.len` — the batched
    /// fast path behind [`crate::GroupCtx::read_window`]. Initcheck
    /// walks the words in lane order, exactly as per-lane
    /// [`LaunchSanitizer::on_read`] calls would; racecheck hands each
    /// contiguous absolute run to [`RaceState::on_window_reads`] so the
    /// whole window costs one shard lock + one page lookup instead of
    /// `count` of each. Verdicts and reports are identical to the
    /// per-word path.
    pub(crate) fn on_window_read(
        &self,
        slice: DevSlice,
        start: usize,
        count: usize,
        group: usize,
        clock: Option<&RefCell<GroupClock>>,
    ) {
        if self.valid().is_some() {
            let mut idx = start;
            for lane in 0..count {
                self.on_read(
                    slice,
                    idx,
                    AccessKind::RelaxedRead,
                    group,
                    Some(lane as u32),
                    None, // racecheck handled batched below
                );
                idx += 1;
                if idx == slice.len {
                    idx = 0;
                }
            }
        }
        if let (Some(rs), Some(clock)) = (self.race.as_ref(), clock) {
            let mut clk = clock.borrow_mut();
            // at most two contiguous runs: before and after the wrap
            let first = count.min(slice.len - start);
            for (run_start, lane0, run_count) in
                [(start, 0usize, first), (0, first, count - first)]
            {
                if run_count == 0 {
                    continue;
                }
                for (off, prior) in
                    rs.on_window_reads(slice.offset + run_start, run_count, &mut clk)
                {
                    let idx = run_start + off as usize;
                    self.report(
                        Detector::Race,
                        group,
                        Some((lane0 + off as usize) as u32),
                        Some(slice.offset + idx),
                        format!(
                            "{} races with {} by group {} (no happens-before edge; \
                             slice offset={} len={}, idx={idx})",
                            AccessKind::RelaxedRead.describe(),
                            prior.kind.describe(),
                            prior.gid,
                            slice.offset,
                            slice.len
                        ),
                    );
                }
            }
        }
    }

    /// Bounds check for streaming accesses (the only counted ops without
    /// a wrap). Returns `false` — and reports — when `idx` is out of
    /// bounds; the caller then *contains* the access by skipping it.
    pub(crate) fn stream_in_bounds(
        &self,
        op: &str,
        slice: DevSlice,
        idx: usize,
        group: usize,
    ) -> bool {
        if idx < slice.len {
            return true;
        }
        if self.set.mem() {
            self.report(
                Detector::Mem,
                group,
                None,
                Some(slice.offset + idx),
                memcheck::oob_message(op, slice, idx),
            );
        }
        false
    }

    /// Whether out-of-bounds containment is active (the access should be
    /// skipped rather than allowed to trip the debug assertion).
    pub(crate) fn contains_oob(&self) -> bool {
        self.set.mem()
    }

    /// Epoch advance at a collective (ballot/any/all): lanes of the group
    /// synchronize with each other here, so the group's clock ticks.
    pub(crate) fn on_collective(&self, clock: Option<&RefCell<GroupClock>>) {
        if let Some(clock) = clock {
            clock.borrow_mut().advance();
        }
    }

    /// Checks a masked collective's participation mask (synccheck).
    pub(crate) fn on_masked_collective(
        &self,
        group: usize,
        site: u32,
        active: u32,
        full: u32,
        clock: Option<&RefCell<GroupClock>>,
    ) {
        self.on_collective(clock);
        if self.set.sync() {
            if let Some(msg) = synccheck::divergence(site, active, full) {
                self.report(Detector::Sync, group, None, None, msg);
            }
        }
    }

    /// End-of-launch hook: under [`Policy::Panic`], any finding made
    /// during this launch aborts with a replayable message.
    ///
    /// # Panics
    /// Panics when the policy is `Panic` and the launch produced findings.
    pub(crate) fn finish(&self) {
        if self.dev.policy() != Policy::Panic {
            return;
        }
        let reports = self.dev.clone_reports();
        if reports.len() <= self.baseline {
            return;
        }
        let new = &reports[self.baseline..];
        let mut msg = format!(
            "wd-sanitizer: {} finding(s) in kernel `{}` (schedule {}):\n",
            new.len(),
            self.kernel,
            self.schedule
        );
        for r in new {
            msg.push_str(&format!("  {r}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_parses_detector_lists() {
        assert_eq!(SanitizerSet::parse("race,init,mem,sync"), SanitizerSet::ALL);
        assert_eq!(SanitizerSet::parse("all"), SanitizerSet::ALL);
        assert_eq!(SanitizerSet::parse(""), SanitizerSet::NONE);
        assert_eq!(SanitizerSet::parse("off"), SanitizerSet::NONE);
        let rm = SanitizerSet::parse("race, mem");
        assert!(rm.race() && rm.mem() && !rm.init() && !rm.sync());
        assert_eq!(rm.to_string(), "race,mem");
        assert_eq!(SanitizerSet::NONE.to_string(), "none");
    }

    #[test]
    fn set_union_and_accessors() {
        let s = SanitizerSet::RACE.union(SanitizerSet::SYNC);
        assert!(s.race() && s.sync() && !s.init() && !s.mem());
        assert!(SanitizerSet::NONE.is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn report_display_carries_replay_context() {
        let r = Report {
            detector: Detector::Race,
            kernel: "k".into(),
            group: 3,
            lane: Some(1),
            word: Some(42),
            schedule: "seeded(seed=7)".into(),
            message: "plain write races with plain write by group 0".into(),
        };
        let s = r.to_string();
        assert!(s.contains("[racecheck]"));
        assert!(s.contains("group=3"));
        assert!(s.contains("lane=1"));
        assert!(s.contains("word=42"));
        assert!(s.contains("seeded(seed=7)"));
    }

    #[test]
    fn report_sink_caps_and_counts_overflow() {
        let ds = DeviceSanitizer::new(SanitizerSet::MEM, Policy::Collect, 8, false);
        for _ in 0..REPORT_CAP + 5 {
            ds.submit(Report {
                detector: Detector::Mem,
                kernel: "k".into(),
                group: 0,
                lane: None,
                word: None,
                schedule: "pool".into(),
                message: "m".into(),
            });
        }
        assert_eq!(ds.len(), REPORT_CAP);
        assert_eq!(ds.dropped(), 5);
        assert_eq!(ds.take_reports().len(), REPORT_CAP);
        assert_eq!(ds.len(), 0);
    }
}
