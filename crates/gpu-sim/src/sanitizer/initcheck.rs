//! Valid-bit shadow memory for uninitialised-read detection (initcheck).
//!
//! One bit per device word, packed 64-per-`AtomicU64`. Bits are set by
//! every defining operation — `h2d`, `fill`, `d2d` (copying the source's
//! validity), kernel stores and atomic RMWs — and cleared whenever the
//! word is (re)allocated: `alloc`, `alloc_scratch`, and scratch release
//! (so a stale read through a dangling `DevSlice` into recycled scratch
//! is flagged as reading an undefined word).
//!
//! A device's pool is zero-*initialised* by the OS but that zero is not a
//! *defined value* in the CUDA model this simulates — `cudaMalloc`
//! returns garbage. A table constructor that forgets its EMPTY-sentinel
//! fill therefore reads "never-written" words even though they happen to
//! be zero; that is exactly the bug class this detector exists for.

use std::sync::atomic::{AtomicU64, Ordering};

/// Packed per-word valid bits.
pub(crate) struct ValidBits {
    bits: Box<[AtomicU64]>,
}

impl ValidBits {
    /// Shadow for `words` device words; `all_valid` marks everything
    /// defined up front (used when attaching lazily to a device that has
    /// already been written — avoids false positives at the cost of
    /// missing earlier undefined reads).
    pub(crate) fn new(words: usize, all_valid: bool) -> Self {
        let n = words.div_ceil(64);
        let init = if all_valid { u64::MAX } else { 0 };
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(init));
        Self {
            bits: v.into_boxed_slice(),
        }
    }

    /// Whether absolute word `idx` has ever been written.
    #[inline]
    pub(crate) fn is_valid(&self, idx: usize) -> bool {
        self.bits[idx / 64].load(Ordering::Relaxed) & (1 << (idx % 64)) != 0
    }

    /// Marks absolute word `idx` defined.
    #[inline]
    pub(crate) fn set(&self, idx: usize) {
        self.bits[idx / 64].fetch_or(1 << (idx % 64), Ordering::Relaxed);
    }

    /// Marks `[offset, offset+len)` defined (bulk h2d / fill).
    pub(crate) fn set_range(&self, offset: usize, len: usize) {
        for idx in offset..offset + len {
            self.set(idx);
        }
    }

    /// Marks `[offset, offset+len)` undefined (fresh allocation).
    pub(crate) fn clear_range(&self, offset: usize, len: usize) {
        for idx in offset..offset + len {
            self.bits[idx / 64].fetch_and(!(1 << (idx % 64)), Ordering::Relaxed);
        }
    }

    /// Copies validity of `[src, src+len)` onto `[dst, dst+len)` (d2d: a
    /// copy of an undefined word is still undefined).
    pub(crate) fn copy_range(&self, src: usize, dst: usize, len: usize) {
        for i in 0..len {
            if self.is_valid(src + i) {
                self.set(dst + i);
            } else {
                self.clear_range(dst + i, 1);
            }
        }
    }
}

impl std::fmt::Debug for ValidBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ValidBits({} words)", self.bits.len() * 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_shadow_is_all_undefined() {
        let v = ValidBits::new(130, false);
        assert!(!v.is_valid(0));
        assert!(!v.is_valid(129));
    }

    #[test]
    fn assume_valid_marks_everything() {
        let v = ValidBits::new(100, true);
        assert!(v.is_valid(0));
        assert!(v.is_valid(99));
    }

    #[test]
    fn set_and_clear_ranges() {
        let v = ValidBits::new(256, false);
        v.set_range(60, 10); // crosses the 64-bit boundary
        assert!(!v.is_valid(59));
        assert!(v.is_valid(60));
        assert!(v.is_valid(69));
        assert!(!v.is_valid(70));
        v.clear_range(64, 3);
        assert!(v.is_valid(63));
        assert!(!v.is_valid(64));
        assert!(!v.is_valid(66));
        assert!(v.is_valid(67));
    }

    #[test]
    fn copy_range_propagates_undefinedness() {
        let v = ValidBits::new(64, false);
        v.set_range(0, 2); // words 0,1 defined; 2,3 not
        v.set_range(10, 4); // destination previously defined
        v.copy_range(0, 10, 4);
        assert!(v.is_valid(10));
        assert!(v.is_valid(11));
        assert!(!v.is_valid(12), "copying an undefined word taints the dst");
        assert!(!v.is_valid(13));
    }
}
