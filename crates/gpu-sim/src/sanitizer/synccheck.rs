//! Divergent-collective detection (synccheck).
//!
//! A coalesced group is lock-step by definition: every lane must reach
//! every group op (ballot / any / leader election). Real kernels break
//! this when one lane exits a loop early and the rest re-ballot without
//! it — on Volta+ hardware that is a deadlock or an undefined-mask bug;
//! `compute-sanitizer --tool synccheck` flags it as "divergent thread(s)
//! in warp".
//!
//! The simulator executes a group as one unit of work, so true lockstep
//! divergence cannot *happen* — but it can be *expressed*: the masked
//! collectives ([`crate::GroupCtx::ballot_where`] /
//! [`crate::GroupCtx::any_where`]) take the participation mask the kernel
//! believes is active. Synccheck compares that mask against the full
//! group mask and flags any collective reached with missing (or phantom)
//! lanes, labelled by the group's running collective-site counter so the
//! report pinpoints *which* ballot diverged.

/// Checks the participation mask of collective site `site`; returns the
/// report text when lanes are missing from (or outside of) the group.
pub(crate) fn divergence(site: u32, active: u32, full: u32) -> Option<String> {
    if active == full {
        return None;
    }
    let missing = full & !active;
    let phantom = active & !full;
    let mut msg = format!(
        "divergent collective at site {site}: participation mask {active:#06x} \
         != full group mask {full:#06x}"
    );
    if missing != 0 {
        msg.push_str(&format!(" (lanes missing: {missing:#06x}"));
        msg.push(')');
    }
    if phantom != 0 {
        msg.push_str(&format!(" (lanes beyond the group: {phantom:#06x})"));
    }
    Some(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_is_convergent() {
        assert!(divergence(0, 0b1111, 0b1111).is_none());
        assert!(divergence(3, u32::MAX, u32::MAX).is_none());
    }

    #[test]
    fn missing_lane_is_flagged_with_site() {
        let m = divergence(7, 0b1110, 0b1111).unwrap();
        assert!(m.contains("site 7"));
        assert!(m.contains("missing"));
    }

    #[test]
    fn phantom_lane_is_flagged() {
        let m = divergence(0, 0b1_1111, 0b1111).unwrap();
        assert!(m.contains("beyond the group"));
    }
}
