//! Bounds and lifetime checking for device memory (memcheck).
//!
//! The table-probing accessors wrap indices modulo the slice length by
//! construction (circular probing), so the only counted operations that
//! can escape a slice are the *streaming* accessors
//! ([`crate::GroupCtx::read_stream`] / `write_stream`), which index
//! one-word-per-group buffers directly. Out-of-bounds streaming accesses
//! are reported and **contained**: the store is skipped and the load
//! returns 0 — matching `compute-sanitizer`'s report-and-continue mode,
//! and letting the launch finish so every finding of the launch is
//! visible at once.
//!
//! Lifetime checks live with the allocators in [`crate::mem`]:
//!
//! * `DeviceMemory::reset()` panics when scratch allocations are
//!   outstanding (use-after-reset through a live [`crate::ScratchGuard`]
//!   was a latent hazard — the guard's later drop would also corrupt the
//!   fresh allocator state);
//! * dropping the device memory with scratch allocations still registered
//!   (a `ScratchGuard` was `mem::forget`-ten) produces a leak report;
//! * released scratch has its valid bits cleared, so a *stale read*
//!   through a dangling `DevSlice` into recycled scratch is flagged by
//!   initcheck as reading an undefined word.

use crate::mem::DevSlice;

/// Report text for an out-of-bounds streaming access.
pub(crate) fn oob_message(op: &str, slice: DevSlice, idx: usize) -> String {
    format!(
        "{op} out of bounds: idx={idx} beyond slice of len {} (offset={}); \
         access contained (reads return 0, writes are dropped)",
        slice.len, slice.offset
    )
}

/// Report text for scratch allocations leaked past device-memory drop.
pub(crate) fn leak_message(leaked: &[DevSlice]) -> String {
    let mut msg = format!(
        "wd-sanitizer [memcheck]: device memory dropped with {} leaked scratch \
         allocation(s) (ScratchGuard never dropped):",
        leaked.len()
    );
    for s in leaked {
        msg.push_str(&format!(" [offset={} len={}]", s.offset, s.len));
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oob_message_names_op_and_bounds() {
        let s = DevSlice { offset: 96, len: 8 };
        let m = oob_message("read_stream", s, 8);
        assert!(m.contains("read_stream"));
        assert!(m.contains("idx=8"));
        assert!(m.contains("len 8"));
        assert!(m.contains("contained"));
    }

    #[test]
    fn leak_message_lists_regions() {
        let m = leak_message(&[DevSlice { offset: 40, len: 2 }]);
        assert!(m.contains("1 leaked scratch"));
        assert!(m.contains("offset=40"));
    }
}
