//! Happens-before race detection between SIMT groups (racecheck).
//!
//! A FastTrack-style detector specialized to the simulator's access
//! model. Each *group* (not thread — a coalesced group is the unit of
//! scheduling) carries a sparse vector clock; each device word that has
//! been accessed during the launch carries a shadow record of its last
//! write, its recent readers, and a *sync* vector clock.
//!
//! Happens-before edges come from two sources:
//!
//! * **program order** within one group. A group's clock is an *epoch*
//!   in the FastTrack sense: it advances only where another group could
//!   come to know about it — at every **release** (after the current
//!   epoch is published into the word's sync clock) and at every
//!   **collective** (ballots synchronize the lanes of a group, which is
//!   the epoch-advance the paper's CG semantics imply). All plain
//!   accesses between two releases share one epoch; since the only way
//!   another group can order itself after them is by acquiring the
//!   *next* release, per-access ticking buys no extra precision — the
//!   happens-before verdicts are identical, at a fraction of the
//!   bookkeeping.
//! * **release/acquire through atomics**: every CAS / atomicAdd / Or /
//!   Max / exchange on a word *releases* the group's clock into the
//!   word's sync clock and *acquires* the sync clock into the group —
//!   exactly the edge the claim-CAS/publish protocol relies on.
//!
//! Under a deterministic stepwise schedule, release publication is
//! additionally **batched**: only one group runs at a time, so a
//! release cannot be observed until the group yields the token. The
//! publication is buffered in the group's clock (coalescing repeated
//! releases through the same word — the hot-CAS loop) and flushed at
//! schedule-quantum boundaries, before the next acquire through a
//! different word, and at group retirement. The flush points are
//! exactly the places another group could next run or the releasing
//! group could next learn something new, so verdicts are identical to
//! eager publication (asserted by a unit test below).
//!
//! Accesses are classified by intent ([`AccessKind`]), mirroring how the
//! kernels are written:
//!
//! * `RelaxedRead` — coalesced window loads. Probing reads are *designed*
//!   to race with CAS claims and shared stores (stale windows are
//!   re-balloted), so they conflict only with plain writes.
//! * `PlainRead` / `PlainWrite` — ordinary loads/stores with no protocol
//!   annotation. Plain writes conflict with every unordered access;
//!   that's what catches a publish store downgraded from CAS to a plain
//!   store.
//! * `SharedRead` / `SharedWrite` — *annotated* intentionally-relaxed
//!   accesses (the SOA value-word update path): last-writer-wins by
//!   design, so they conflict only with unordered *plain* accesses.
//! * `Atomic` — never races (hardware serializes RMWs) but creates sync
//!   edges.
//!
//! The conflict matrix deliberately does **not** flag plain reads racing
//! atomics: the ticket-board and cuckoo baselines read words that other
//! groups concurrently RMW, which is well-defined on hardware.
//!
//! State is per-launch (the CUDA default-stream analogy): launch
//! boundaries are global barriers, so cross-launch accesses never
//! conflict and the shadow map is dropped when the launch returns.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// How many lock shards the shadow map is split over.
const SHARDS: usize = 64;

/// log2 of the words per shadow *page*. Shadow state is keyed by page —
/// 64 consecutive words, twice the span of the widest coalesced window,
/// so a window read usually touches one page (worst case two when it
/// straddles a boundary) and costs one shard lock and one hash lookup
/// instead of 32 of each (the dominant term of racecheck overhead).
const PAGE_BITS: usize = 6;

/// Words per shadow page.
const PAGE_WORDS: usize = 1 << PAGE_BITS;

/// Mask selecting the in-page slot of a word.
const PAGE_MASK: usize = PAGE_WORDS - 1;

/// Per-word reader records kept before the list is recycled.
const MAX_READS: usize = 32;

/// Distinct groups tracked in one word's sync (release) clock before it
/// *saturates*. Unbounded sync clocks make a single hot atomic counter
/// quadratic (every RMW joins a clock holding every prior accessor);
/// real detectors bound shadow precision the same way. Past the cap, new
/// groups' releases through that word are dropped — a word with this
/// many distinct synchronizing groups is a contended statistics counter,
/// not a publication protocol, so the precision loss is confined to
/// shapes the kernels don't use.
const SYNC_CAP: usize = 64;

/// Multiply-rotate hasher for the shadow maps' small-integer keys (word
/// indices and group ids). These maps sit on the hot path of every
/// sanitized access, where SipHash's per-lookup cost dominates; the
/// shadow state is not attacker-facing, so DoS resistance buys nothing.
#[derive(Debug, Default)]
pub(crate) struct WordHasher(u64);

impl WordHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for WordHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` over the non-cryptographic [`WordHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<WordHasher>>;

/// Classification of one device-memory access (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    /// Coalesced window load — tolerates racing CAS/shared stores.
    RelaxedRead,
    /// Unannotated single-word load.
    PlainRead,
    /// Annotated intentionally-relaxed load.
    SharedRead,
    /// Unannotated single-word store.
    PlainWrite,
    /// Annotated intentionally-relaxed store (last-writer-wins).
    SharedWrite,
    /// Atomic read-modify-write (CAS, add, or, max, exchange).
    Atomic,
}

impl AccessKind {
    /// Whether the access only reads.
    pub(crate) fn is_read(self) -> bool {
        matches!(
            self,
            AccessKind::RelaxedRead | AccessKind::PlainRead | AccessKind::SharedRead
        )
    }

    /// Human-readable label for reports.
    pub(crate) fn describe(self) -> &'static str {
        match self {
            AccessKind::RelaxedRead => "relaxed window read",
            AccessKind::PlainRead => "plain read",
            AccessKind::SharedRead => "shared (annotated relaxed) read",
            AccessKind::PlainWrite => "plain write",
            AccessKind::SharedWrite => "shared (annotated relaxed) write",
            AccessKind::Atomic => "atomic RMW",
        }
    }
}

/// An access epoch: group id + that group's clock at access time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Prior {
    /// Group that performed the prior access.
    pub gid: u32,
    /// The group's clock value at that access.
    pub clk: u32,
    /// What the access was.
    pub kind: AccessKind,
}

/// Sparse per-group vector clock.
#[derive(Debug)]
pub(crate) struct GroupClock {
    gid: u32,
    clk: u32,
    /// `vc[g]` = highest clock of group `g` this group has acquired.
    vc: FastMap<u32, u32>,
    /// Sync-clock version last acquired per word — re-acquiring an
    /// unchanged clock is a no-op, so it is skipped (the hot-counter
    /// fast path).
    acquired: FastMap<usize, u32>,
    /// Deferred release publication (stepwise batching): at most one
    /// word's release is buffered at a time, coalesced to the latest
    /// epoch. `None` unless [`GroupClock::with_batching`] armed it.
    pending: Option<(usize, u32)>,
    /// Whether releases may be buffered. Only sound under a stepwise
    /// schedule, where no other group runs between buffer and flush.
    batch: bool,
}

impl GroupClock {
    pub(crate) fn new(gid: u32) -> Self {
        Self {
            gid,
            clk: 1,
            vc: FastMap::default(),
            acquired: FastMap::default(),
            pending: None,
            batch: false,
        }
    }

    /// Arms release batching (stepwise schedules only — see module docs).
    #[must_use]
    pub(crate) fn with_batching(mut self) -> Self {
        self.batch = true;
        self
    }

    /// Ticks the group's own clock. Called after a release has published
    /// the current epoch, and at collectives — the only points another
    /// group could come to distinguish "before" from "after".
    pub(crate) fn advance(&mut self) {
        self.clk += 1;
    }

    /// Whether a release publication is currently buffered.
    #[cfg(test)]
    pub(crate) fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Whether `prior` happened-before this group's current epoch.
    fn saw(&self, prior: &Prior) -> bool {
        prior.gid == self.gid || self.vc.get(&prior.gid).copied().unwrap_or(0) >= prior.clk
    }
}

/// Bounded per-word release clock: a flat `(group, clock)` list. Words
/// are touched by a handful of synchronizing groups in every kernel
/// shape we model, so a linear scan over at most [`SYNC_CAP`] entries
/// beats a heap-allocated map.
#[derive(Debug, Default)]
struct SyncClock(Vec<(u32, u32)>);

impl SyncClock {
    #[inline]
    fn get_mut(&mut self, gid: u32) -> Option<&mut u32> {
        self.0.iter_mut().find(|(g, _)| *g == gid).map(|(_, c)| c)
    }

    #[inline]
    fn contains(&self, gid: u32) -> bool {
        self.0.iter().any(|(g, _)| *g == gid)
    }

    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// Recent readers of a word, promoted lazily: most words see either no
/// reader or a single group, so the common cases carry no heap
/// allocation (FastTrack's read-epoch → read-vector promotion).
#[derive(Debug, Default)]
enum ReadSet {
    #[default]
    Empty,
    One(Prior),
    Many(Vec<Prior>),
}

impl ReadSet {
    #[inline]
    fn as_slice(&self) -> &[Prior] {
        match self {
            ReadSet::Empty => &[],
            ReadSet::One(r) => std::slice::from_ref(r),
            ReadSet::Many(v) => v,
        }
    }

    fn clear(&mut self) {
        *self = ReadSet::Empty;
    }

    /// Records a read epoch: latest clock per group is exact for the HB
    /// test; the "strongest" kind is kept so a plain read isn't masked
    /// by a later relaxed one.
    fn record(&mut self, epoch: Prior) {
        let update = |r: &mut Prior| {
            r.clk = r.clk.max(epoch.clk);
            if epoch.kind == AccessKind::PlainRead {
                r.kind = AccessKind::PlainRead;
            }
        };
        match self {
            ReadSet::Empty => *self = ReadSet::One(epoch),
            ReadSet::One(r) if r.gid == epoch.gid => update(r),
            ReadSet::One(r) => *self = ReadSet::Many(vec![*r, epoch]),
            ReadSet::Many(v) => {
                if let Some(r) = v.iter_mut().find(|r| r.gid == epoch.gid) {
                    update(r);
                } else {
                    if v.len() >= MAX_READS {
                        v.clear(); // recycle (bounded memory beats recall)
                    }
                    v.push(epoch);
                }
            }
        }
    }
}

/// Shadow record of one device word.
#[derive(Debug, Default)]
struct WordState {
    last_write: Option<Prior>,
    reads: ReadSet,
    /// Release clock: join of every releasing (atomic) accessor's VC
    /// (bounded by [`SYNC_CAP`] distinct groups).
    sync: SyncClock,
    /// Bumped whenever `sync` changes, so acquirers can skip no-op joins.
    sync_version: u32,
    /// A word reports at most one race (dedup).
    reported: bool,
}

/// A shadow page: the [`WordState`]s of [`PAGE_WORDS`] consecutive
/// device words plus the page's epoch-compressed window-read log.
struct PageState {
    words: [WordState; PAGE_WORDS],
    /// Relaxed **window** reads over this page, one entry per
    /// `(group, epoch)` with a bitmask of the slots it covered — a
    /// 32-lane window read records here once instead of appending to 32
    /// per-word read lists (the dominant racecheck cost). Bounded like a
    /// [`ReadSet`]: recycled past [`MAX_READS`] entries.
    window_reads: Vec<(Prior, u64)>,
}

/// Boxed so map rehashing moves only pointers.
type Page = Box<PageState>;

fn new_page() -> Page {
    Box::new(PageState {
        words: std::array::from_fn(|_| WordState::default()),
        window_reads: Vec::new(),
    })
}

/// Per-launch race-detection state, sharded for pool-mode parallelism
/// and paged so coalesced windows amortize the lock + lookup.
pub(crate) struct RaceState {
    shards: Vec<Mutex<FastMap<usize, Page>>>,
}

impl RaceState {
    pub(crate) fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(FastMap::default())).collect(),
        }
    }

    /// Publishes a release — joins the group's VC plus `(gid, clk)` into
    /// the word's sync clock. A saturated clock not already tracking
    /// this group cannot change, so the whole publication is skipped
    /// (see [`SYNC_CAP`]). Locks the word's shard; the caller must not
    /// already hold it.
    fn publish(&self, word: usize, clk: u32, clock: &mut GroupClock) {
        let page = word >> PAGE_BITS;
        let mut shard = self.shards[page % SHARDS].lock();
        let st = &mut shard.entry(page).or_insert_with(new_page).words[word & PAGE_MASK];
        if st.sync.len() < SYNC_CAP || st.sync.contains(clock.gid) {
            let mut changed = false;
            for (&g, &c) in clock.vc.iter().chain([(&clock.gid, &clk)]) {
                if let Some(e) = st.sync.get_mut(g) {
                    if *e < c {
                        *e = c;
                        changed = true;
                    }
                } else if st.sync.len() < SYNC_CAP {
                    st.sync.0.push((g, c));
                    changed = true;
                }
            }
            if changed {
                st.sync_version = st.sync_version.wrapping_add(1);
            }
        }
        // Our own release is the only thing that changed the clock, and
        // everything in it was already acquired at the time the release
        // was issued — re-acquiring would be a no-op join, so mark the
        // new version as seen.
        clock.acquired.insert(word, st.sync_version);
    }

    /// Flushes a buffered release publication, if any. Must be called
    /// before the owning group yields the schedule token and at group
    /// retirement (the points where another group could next observe
    /// the release).
    pub(crate) fn flush_releases(&self, clock: &mut GroupClock) {
        if let Some((word, clk)) = clock.pending.take() {
            self.publish(word, clk, clock);
        }
    }

    /// Records one access and returns the conflicting prior access, if
    /// any (first conflict per word only).
    pub(crate) fn on_access(
        &self,
        word: usize,
        clock: &mut GroupClock,
        kind: AccessKind,
    ) -> Option<Prior> {
        // A buffered release through another word must be published
        // before this access acquires (acquisition may grow our VC, and
        // the buffered publication snapshot is "VC as of the release").
        // Done before taking the shard lock: the pending word may map to
        // the same (non-reentrant) shard.
        if kind == AccessKind::Atomic {
            if let Some((pw, pc)) = clock.pending {
                if pw != word {
                    clock.pending = None;
                    self.publish(pw, pc, clock);
                }
            }
        }

        let page = word >> PAGE_BITS;
        let slot = word & PAGE_MASK;
        let bit = 1u64 << slot;
        let mut shard = self.shards[page % SHARDS].lock();
        let PageState {
            words,
            window_reads,
        } = &mut **shard.entry(page).or_insert_with(new_page);
        let st = &mut words[slot];

        // -- conflict detection (the matrix from the module docs) --------
        let conflicts_with_write = |w: AccessKind| match kind {
            AccessKind::RelaxedRead | AccessKind::SharedRead | AccessKind::Atomic => {
                w == AccessKind::PlainWrite
            }
            AccessKind::PlainRead => {
                matches!(w, AccessKind::PlainWrite | AccessKind::SharedWrite)
            }
            AccessKind::PlainWrite => true, // any unordered write conflicts
            AccessKind::SharedWrite => w == AccessKind::PlainWrite,
        };
        let mut conflict = st
            .last_write
            .filter(|w| conflicts_with_write(w.kind) && !clock.saw(w));
        if conflict.is_none() && !kind.is_read() {
            // writes also conflict with unordered prior reads
            let read_conflicts = |r: AccessKind| match kind {
                AccessKind::PlainWrite => true,
                AccessKind::SharedWrite => r == AccessKind::PlainRead,
                _ => false, // Atomic never conflicts with reads
            };
            conflict = st
                .reads
                .as_slice()
                .iter()
                .find(|r| read_conflicts(r.kind) && !clock.saw(r))
                .copied();
            if conflict.is_none() && kind == AccessKind::PlainWrite {
                // ...including relaxed window reads of this slot, logged
                // epoch-compressed at page level
                conflict = window_reads
                    .iter()
                    .find(|(r, mask)| mask & bit != 0 && !clock.saw(r))
                    .map(|(r, _)| *r);
            }
        }
        let fire = conflict.filter(|_| !st.reported);
        if fire.is_some() {
            st.reported = true;
        }

        // -- sync edges: atomics release + acquire ------------------------
        if kind == AccessKind::Atomic {
            // acquire: join the word's release clock into the group
            // (skipped when it has not changed since our last acquire)
            if clock.acquired.get(&word).copied() != Some(st.sync_version) {
                for &(g, c) in &st.sync.0 {
                    if g != clock.gid {
                        let e = clock.vc.entry(g).or_insert(0);
                        *e = (*e).max(c);
                    }
                }
            }
            // release: publish the group's VC (and own epoch) into the
            // word — eagerly, or buffered until a flush point under a
            // stepwise schedule (coalescing same-word repeats to the
            // latest epoch; no other group can observe the word before
            // the flush, so verdicts are identical).
            if clock.batch {
                clock.pending = Some((word, clock.clk));
                clock.acquired.insert(word, st.sync_version);
            } else {
                if st.sync.len() < SYNC_CAP || st.sync.contains(clock.gid) {
                    let mut changed = false;
                    for (&g, &c) in clock.vc.iter().chain([(&clock.gid, &clock.clk)]) {
                        if let Some(e) = st.sync.get_mut(g) {
                            if *e < c {
                                *e = c;
                                changed = true;
                            }
                        } else if st.sync.len() < SYNC_CAP {
                            st.sync.0.push((g, c));
                            changed = true;
                        }
                    }
                    if changed {
                        st.sync_version = st.sync_version.wrapping_add(1);
                    }
                }
                clock.acquired.insert(word, st.sync_version);
            }
        }

        // -- record the access -------------------------------------------
        let epoch = Prior {
            gid: clock.gid,
            clk: clock.clk,
            kind,
        };
        if kind.is_read() {
            st.reads.record(epoch);
        } else {
            st.last_write = Some(epoch);
            if kind == AccessKind::PlainWrite {
                // a plain write supersedes (and was checked against) every
                // recorded read — per-word records and window-log entries
                st.reads.clear();
                if !window_reads.is_empty() {
                    for (_, mask) in window_reads.iter_mut() {
                        *mask &= !bit;
                    }
                    window_reads.retain(|(_, mask)| *mask != 0);
                }
            }
        }
        // FastTrack epoch advance: only a release makes the current
        // epoch observable to another group, so only a release (the
        // publication above, eager or buffered) ends it.
        if kind == AccessKind::Atomic {
            clock.advance();
        }
        fire
    }

    /// Records a run of consecutive **relaxed window reads** at absolute
    /// words `start..start + count` (no wraparound — the caller splits
    /// the window at the table boundary). Each page-sized stretch costs
    /// one shard lock and one map lookup; the per-word verdicts are
    /// exactly what [`RaceState::on_access`] would produce for
    /// [`AccessKind::RelaxedRead`]. Returns every word whose read fired,
    /// as `(offset into the run, conflicting prior)` — allocation-free
    /// unless something fires.
    pub(crate) fn on_window_reads(
        &self,
        start: usize,
        count: usize,
        clock: &mut GroupClock,
    ) -> Vec<(u32, Prior)> {
        let mut fired = Vec::new();
        let epoch = Prior {
            gid: clock.gid,
            clk: clock.clk,
            kind: AccessKind::RelaxedRead,
        };
        let mut off = 0usize;
        while off < count {
            let word = start + off;
            let slot = word & PAGE_MASK;
            let run = (PAGE_WORDS - slot).min(count - off);
            let page = word >> PAGE_BITS;
            let mut shard = self.shards[page % SHARDS].lock();
            let PageState {
                words,
                window_reads,
            } = &mut **shard.entry(page).or_insert_with(new_page);
            for (k, st) in words[slot..slot + run].iter_mut().enumerate() {
                // relaxed window reads conflict only with plain writes
                let conflict = st
                    .last_write
                    .filter(|w| w.kind == AccessKind::PlainWrite && !st.reported && !clock.saw(w));
                if let Some(prior) = conflict {
                    st.reported = true;
                    fired.push(((off + k) as u32, prior));
                }
            }
            // One epoch-compressed log entry covers the whole run: a mask
            // of the slots this (gid, clk) read. Consecutive probes by the
            // same group in the same epoch extend the previous entry.
            let run_mask = (u64::MAX >> (64 - run)) << slot;
            match window_reads.last_mut() {
                Some((r, mask)) if r.gid == epoch.gid && r.clk == epoch.clk => *mask |= run_mask,
                _ => {
                    if window_reads.len() >= MAX_READS {
                        // same recycling rule as the per-word read list
                        window_reads.clear();
                    }
                    window_reads.push((epoch, run_mask));
                }
            }
            off += run;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(gid: u32) -> GroupClock {
        GroupClock::new(gid)
    }

    #[test]
    fn plain_write_write_race_detected() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        assert!(rs.on_access(7, &mut a, AccessKind::PlainWrite).is_none());
        let c = rs.on_access(7, &mut b, AccessKind::PlainWrite);
        assert_eq!(c.unwrap().gid, 0);
    }

    #[test]
    fn plain_read_vs_plain_write_race_detected() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        assert!(rs.on_access(3, &mut a, AccessKind::PlainRead).is_none());
        let c = rs.on_access(3, &mut b, AccessKind::PlainWrite);
        assert_eq!(c.unwrap().kind, AccessKind::PlainRead);
    }

    #[test]
    fn atomics_never_race_each_other() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        for _ in 0..4 {
            assert!(rs.on_access(0, &mut a, AccessKind::Atomic).is_none());
            assert!(rs.on_access(0, &mut b, AccessKind::Atomic).is_none());
        }
    }

    #[test]
    fn relaxed_window_reads_tolerate_cas_and_shared_stores() {
        let rs = RaceState::new();
        let mut claimer = clock(0);
        let mut prober = clock(1);
        assert!(rs.on_access(5, &mut claimer, AccessKind::Atomic).is_none());
        assert!(rs
            .on_access(5, &mut prober, AccessKind::RelaxedRead)
            .is_none());
        assert!(rs
            .on_access(5, &mut claimer, AccessKind::SharedWrite)
            .is_none());
        assert!(rs
            .on_access(5, &mut prober, AccessKind::RelaxedRead)
            .is_none());
    }

    #[test]
    fn release_acquire_through_atomic_orders_plain_accesses() {
        // group 0: plain-write w, then release via atomic on s.
        // group 1: acquire via atomic on s, then plain-write w → ordered.
        let rs = RaceState::new();
        let (w, s) = (10, 11);
        let mut a = clock(0);
        let mut b = clock(1);
        assert!(rs.on_access(w, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(s, &mut a, AccessKind::Atomic).is_none());
        assert!(rs.on_access(s, &mut b, AccessKind::Atomic).is_none());
        assert!(
            rs.on_access(w, &mut b, AccessKind::PlainWrite).is_none(),
            "acquire edge must order the second plain write after the first"
        );
    }

    #[test]
    fn unsynchronized_plain_publish_vs_shared_update_races() {
        // The broken_publish_plain_store shape: claimer plain-stores the
        // value word; a racing updater shared-writes it. The updater only
        // saw the *key* word (relaxed), so there is no HB edge.
        let rs = RaceState::new();
        let mut claimer = clock(0);
        let mut updater = clock(1);
        assert!(rs
            .on_access(20, &mut claimer, AccessKind::PlainWrite)
            .is_none());
        let c = rs.on_access(20, &mut updater, AccessKind::SharedWrite);
        assert_eq!(c.unwrap().kind, AccessKind::PlainWrite);
    }

    #[test]
    fn plain_read_does_not_race_atomics() {
        // ticket-board shape: groups read a word others concurrently RMW
        let rs = RaceState::new();
        let mut reader = clock(0);
        let mut rmw = clock(1);
        assert!(rs.on_access(2, &mut rmw, AccessKind::Atomic).is_none());
        assert!(rs.on_access(2, &mut reader, AccessKind::PlainRead).is_none());
        assert!(rs.on_access(2, &mut rmw, AccessKind::Atomic).is_none());
    }

    #[test]
    fn each_word_reports_once() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        let mut c = clock(2);
        assert!(rs.on_access(9, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(9, &mut b, AccessKind::PlainWrite).is_some());
        assert!(rs.on_access(9, &mut c, AccessKind::PlainWrite).is_none());
    }

    #[test]
    fn release_acquire_is_transitive_across_words() {
        // A → B through word 2, B → C through word 3: C inherits A's edge.
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        let mut c = clock(2);
        assert!(rs.on_access(1, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(2, &mut a, AccessKind::Atomic).is_none());
        assert!(rs.on_access(2, &mut b, AccessKind::Atomic).is_none());
        assert!(rs.on_access(3, &mut b, AccessKind::Atomic).is_none());
        assert!(rs.on_access(3, &mut c, AccessKind::Atomic).is_none());
        assert!(
            rs.on_access(1, &mut c, AccessKind::PlainWrite).is_none(),
            "A's plain write must be ordered before C's via the atomic chain"
        );
    }

    #[test]
    fn sync_clock_saturates_without_quadratic_blowup() {
        // the hot-counter shape: many groups RMW one word; sync state and
        // per-group VCs must stay bounded by SYNC_CAP, with no reports
        let rs = RaceState::new();
        for g in 0..(SYNC_CAP as u32 * 4) {
            let mut c = clock(g);
            for _ in 0..4 {
                assert!(rs.on_access(0, &mut c, AccessKind::Atomic).is_none());
            }
            assert!(c.vc.len() <= SYNC_CAP, "group VC exceeded the sync cap");
        }
    }

    #[test]
    fn program_order_within_one_group_never_races() {
        let rs = RaceState::new();
        let mut a = clock(0);
        assert!(rs.on_access(1, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(1, &mut a, AccessKind::PlainRead).is_none());
        assert!(rs.on_access(1, &mut a, AccessKind::PlainWrite).is_none());
    }

    #[test]
    fn epoch_shared_by_accesses_between_releases() {
        // FastTrack epochs: plain accesses don't tick the clock; a
        // release publishes the current epoch and *then* ticks, so a
        // racing group that acquired the release has seen every access
        // of that epoch — and none of the next.
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        // a's epoch 1: two plain writes, then the publishing release.
        assert!(rs.on_access(30, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(31, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(32, &mut a, AccessKind::Atomic).is_none());
        // a's epoch 2: a write the release did NOT cover.
        assert!(rs.on_access(33, &mut a, AccessKind::PlainWrite).is_none());
        // b acquires the release: both epoch-1 writes are ordered...
        assert!(rs.on_access(32, &mut b, AccessKind::Atomic).is_none());
        assert!(rs.on_access(30, &mut b, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(31, &mut b, AccessKind::PlainWrite).is_none());
        // ...but the epoch-2 write is not.
        assert!(
            rs.on_access(33, &mut b, AccessKind::PlainWrite).is_some(),
            "a write after the release must not be covered by it"
        );
    }

    #[test]
    fn read_set_promotes_lazily_and_keeps_verdicts() {
        // One reader stays inline; a second promotes to the vector, and
        // a later plain write still finds both unordered reads.
        let rs = RaceState::new();
        let mut r1 = clock(0);
        let mut r2 = clock(1);
        let mut w = clock(2);
        assert!(rs.on_access(40, &mut r1, AccessKind::PlainRead).is_none());
        assert!(rs.on_access(40, &mut r2, AccessKind::PlainRead).is_none());
        let c = rs.on_access(40, &mut w, AccessKind::PlainWrite);
        assert_eq!(c.unwrap().kind, AccessKind::PlainRead);
    }

    /// Replays one access sequence through an eager and a batched
    /// detector (flushing at the simulated yield points, as the stepwise
    /// scheduler does) and asserts identical verdicts at every step.
    #[test]
    fn batched_releases_match_eager_publication() {
        use AccessKind::*;
        // (gid, word, kind); a yield boundary after every access — the
        // strictest flush cadence the per-op stepwise schedule produces.
        let trace: &[(u32, usize, AccessKind)] = &[
            (0, 10, PlainWrite),
            (0, 11, Atomic),
            (0, 11, Atomic), // same-word repeat: coalesced when batched
            (0, 12, Atomic), // different word: forces an inline flush
            (1, 11, Atomic),
            (1, 10, PlainWrite), // ordered via the acquired release
            (2, 10, SharedWrite), // unordered: must fire in both modes
            (2, 12, Atomic),
            (2, 10, PlainRead),
        ];
        let eager_rs = RaceState::new();
        let batch_rs = RaceState::new();
        let mut eager: Vec<GroupClock> = (0..3).map(GroupClock::new).collect();
        let mut batch: Vec<GroupClock> =
            (0..3).map(|g| GroupClock::new(g).with_batching()).collect();
        for &(gid, word, kind) in trace {
            let e = eager_rs.on_access(word, &mut eager[gid as usize], kind);
            let b = batch_rs.on_access(word, &mut batch[gid as usize], kind);
            assert_eq!(
                e.map(|p| (p.gid, p.clk, p.kind)),
                b.map(|p| (p.gid, p.clk, p.kind)),
                "verdict diverged at gid={gid} word={word} {kind:?}"
            );
            // the group yields the token after every op
            batch_rs.flush_releases(&mut batch[gid as usize]);
        }
        for c in &batch {
            assert!(!c.has_pending(), "flush must drain every buffer");
        }
    }
}
