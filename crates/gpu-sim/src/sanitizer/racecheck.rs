//! Happens-before race detection between SIMT groups (racecheck).
//!
//! A FastTrack-style detector specialized to the simulator's access
//! model. Each *group* (not thread — a coalesced group is the unit of
//! scheduling) carries a sparse vector clock; each device word that has
//! been accessed during the launch carries a shadow record of its last
//! write, its recent readers, and a *sync* vector clock.
//!
//! Happens-before edges come from two sources:
//!
//! * **program order** within one group (its own clock ticks at every
//!   access and at every collective — ballots synchronize the lanes of a
//!   group, which is the epoch-advance the paper's CG semantics imply);
//! * **release/acquire through atomics**: every CAS / atomicAdd / Or /
//!   Max / exchange on a word *releases* the group's clock into the
//!   word's sync clock and *acquires* the sync clock into the group —
//!   exactly the edge the claim-CAS/publish protocol relies on.
//!
//! Accesses are classified by intent ([`AccessKind`]), mirroring how the
//! kernels are written:
//!
//! * `RelaxedRead` — coalesced window loads. Probing reads are *designed*
//!   to race with CAS claims and shared stores (stale windows are
//!   re-balloted), so they conflict only with plain writes.
//! * `PlainRead` / `PlainWrite` — ordinary loads/stores with no protocol
//!   annotation. Plain writes conflict with every unordered access;
//!   that's what catches a publish store downgraded from CAS to a plain
//!   store.
//! * `SharedRead` / `SharedWrite` — *annotated* intentionally-relaxed
//!   accesses (the SOA value-word update path): last-writer-wins by
//!   design, so they conflict only with unordered *plain* accesses.
//! * `Atomic` — never races (hardware serializes RMWs) but creates sync
//!   edges.
//!
//! The conflict matrix deliberately does **not** flag plain reads racing
//! atomics: the ticket-board and cuckoo baselines read words that other
//! groups concurrently RMW, which is well-defined on hardware.
//!
//! State is per-launch (the CUDA default-stream analogy): launch
//! boundaries are global barriers, so cross-launch accesses never
//! conflict and the shadow map is dropped when the launch returns.

use parking_lot::Mutex;
use std::collections::HashMap;

/// How many lock shards the per-word shadow map is split over.
const SHARDS: usize = 64;

/// Per-word reader records kept before the list is recycled.
const MAX_READS: usize = 32;

/// Distinct groups tracked in one word's sync (release) clock before it
/// *saturates*. Unbounded sync clocks make a single hot atomic counter
/// quadratic (every RMW joins a clock holding every prior accessor);
/// real detectors bound shadow precision the same way. Past the cap, new
/// groups' releases through that word are dropped — a word with this
/// many distinct synchronizing groups is a contended statistics counter,
/// not a publication protocol, so the precision loss is confined to
/// shapes the kernels don't use.
const SYNC_CAP: usize = 64;

/// Classification of one device-memory access (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    /// Coalesced window load — tolerates racing CAS/shared stores.
    RelaxedRead,
    /// Unannotated single-word load.
    PlainRead,
    /// Annotated intentionally-relaxed load.
    SharedRead,
    /// Unannotated single-word store.
    PlainWrite,
    /// Annotated intentionally-relaxed store (last-writer-wins).
    SharedWrite,
    /// Atomic read-modify-write (CAS, add, or, max, exchange).
    Atomic,
}

impl AccessKind {
    /// Whether the access only reads.
    pub(crate) fn is_read(self) -> bool {
        matches!(
            self,
            AccessKind::RelaxedRead | AccessKind::PlainRead | AccessKind::SharedRead
        )
    }

    /// Human-readable label for reports.
    pub(crate) fn describe(self) -> &'static str {
        match self {
            AccessKind::RelaxedRead => "relaxed window read",
            AccessKind::PlainRead => "plain read",
            AccessKind::SharedRead => "shared (annotated relaxed) read",
            AccessKind::PlainWrite => "plain write",
            AccessKind::SharedWrite => "shared (annotated relaxed) write",
            AccessKind::Atomic => "atomic RMW",
        }
    }
}

/// An access epoch: group id + that group's clock at access time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Prior {
    /// Group that performed the prior access.
    pub gid: u32,
    /// The group's clock value at that access.
    pub clk: u32,
    /// What the access was.
    pub kind: AccessKind,
}

/// Sparse per-group vector clock.
#[derive(Debug)]
pub(crate) struct GroupClock {
    gid: u32,
    clk: u32,
    /// `vc[g]` = highest clock of group `g` this group has acquired.
    vc: HashMap<u32, u32>,
    /// Sync-clock version last acquired per word — re-acquiring an
    /// unchanged clock is a no-op, so it is skipped (the hot-counter
    /// fast path).
    acquired: HashMap<usize, u32>,
}

impl GroupClock {
    pub(crate) fn new(gid: u32) -> Self {
        Self {
            gid,
            clk: 1,
            vc: HashMap::new(),
            acquired: HashMap::new(),
        }
    }

    /// Ticks the group's own clock (each access / collective is an epoch).
    pub(crate) fn advance(&mut self) {
        self.clk += 1;
    }

    /// Whether `prior` happened-before this group's current epoch.
    fn saw(&self, prior: &Prior) -> bool {
        prior.gid == self.gid || self.vc.get(&prior.gid).copied().unwrap_or(0) >= prior.clk
    }
}

/// Shadow record of one device word.
#[derive(Debug, Default)]
struct WordState {
    last_write: Option<Prior>,
    reads: Vec<Prior>,
    /// Release clock: join of every releasing (atomic) accessor's VC
    /// (bounded by [`SYNC_CAP`] distinct groups).
    sync: HashMap<u32, u32>,
    /// Bumped whenever `sync` changes, so acquirers can skip no-op joins.
    sync_version: u32,
    /// A word reports at most one race (dedup).
    reported: bool,
}

/// Per-launch race-detection state, sharded for pool-mode parallelism.
pub(crate) struct RaceState {
    shards: Vec<Mutex<HashMap<usize, WordState>>>,
}

impl RaceState {
    pub(crate) fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Records one access and returns the conflicting prior access, if
    /// any (first conflict per word only).
    pub(crate) fn on_access(
        &self,
        word: usize,
        clock: &mut GroupClock,
        kind: AccessKind,
    ) -> Option<Prior> {
        let mut shard = self.shards[word % SHARDS].lock();
        let st = shard.entry(word).or_default();

        // -- conflict detection (the matrix from the module docs) --------
        let conflicts_with_write = |w: AccessKind| match kind {
            AccessKind::RelaxedRead | AccessKind::SharedRead | AccessKind::Atomic => {
                w == AccessKind::PlainWrite
            }
            AccessKind::PlainRead => {
                matches!(w, AccessKind::PlainWrite | AccessKind::SharedWrite)
            }
            AccessKind::PlainWrite => true, // any unordered write conflicts
            AccessKind::SharedWrite => w == AccessKind::PlainWrite,
        };
        let mut conflict = st
            .last_write
            .filter(|w| conflicts_with_write(w.kind) && !clock.saw(w));
        if conflict.is_none() && !kind.is_read() {
            // writes also conflict with unordered prior reads
            let read_conflicts = |r: AccessKind| match kind {
                AccessKind::PlainWrite => true,
                AccessKind::SharedWrite => r == AccessKind::PlainRead,
                _ => false, // Atomic never conflicts with reads
            };
            conflict = st
                .reads
                .iter()
                .find(|r| read_conflicts(r.kind) && !clock.saw(r))
                .copied();
        }
        let fire = conflict.filter(|_| !st.reported);
        if fire.is_some() {
            st.reported = true;
        }

        // -- sync edges: atomics release + acquire ------------------------
        if kind == AccessKind::Atomic {
            // acquire: join the word's release clock into the group
            // (skipped when it has not changed since our last acquire)
            if clock.acquired.get(&word).copied() != Some(st.sync_version) {
                for (&g, &c) in &st.sync {
                    if g != clock.gid {
                        let e = clock.vc.entry(g).or_insert(0);
                        *e = (*e).max(c);
                    }
                }
            }
            // release: join the group's VC (and own epoch) into the word.
            // A saturated clock not already tracking this group cannot
            // change, so the whole release is skipped (see SYNC_CAP).
            if st.sync.len() < SYNC_CAP || st.sync.contains_key(&clock.gid) {
                let mut changed = false;
                for (&g, &c) in clock.vc.iter().chain([(&clock.gid, &clock.clk)]) {
                    if let Some(e) = st.sync.get_mut(&g) {
                        if *e < c {
                            *e = c;
                            changed = true;
                        }
                    } else if st.sync.len() < SYNC_CAP {
                        st.sync.insert(g, c);
                        changed = true;
                    }
                }
                if changed {
                    st.sync_version = st.sync_version.wrapping_add(1);
                }
            }
            clock.acquired.insert(word, st.sync_version);
        }

        // -- record the access -------------------------------------------
        let epoch = Prior {
            gid: clock.gid,
            clk: clock.clk,
            kind,
        };
        if kind.is_read() {
            if let Some(r) = st.reads.iter_mut().find(|r| r.gid == clock.gid) {
                // latest epoch per group is exact for the HB test; keep the
                // "strongest" kind so a plain read isn't masked by a later
                // relaxed one
                r.clk = r.clk.max(clock.clk);
                if kind == AccessKind::PlainRead {
                    r.kind = AccessKind::PlainRead;
                }
            } else {
                if st.reads.len() >= MAX_READS {
                    st.reads.clear(); // recycle (bounded memory beats recall)
                }
                st.reads.push(epoch);
            }
        } else {
            st.last_write = Some(epoch);
            if kind == AccessKind::PlainWrite {
                // a plain write supersedes (and was checked against) every
                // recorded read
                st.reads.clear();
            }
        }
        clock.advance();
        fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(gid: u32) -> GroupClock {
        GroupClock::new(gid)
    }

    #[test]
    fn plain_write_write_race_detected() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        assert!(rs.on_access(7, &mut a, AccessKind::PlainWrite).is_none());
        let c = rs.on_access(7, &mut b, AccessKind::PlainWrite);
        assert_eq!(c.unwrap().gid, 0);
    }

    #[test]
    fn plain_read_vs_plain_write_race_detected() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        assert!(rs.on_access(3, &mut a, AccessKind::PlainRead).is_none());
        let c = rs.on_access(3, &mut b, AccessKind::PlainWrite);
        assert_eq!(c.unwrap().kind, AccessKind::PlainRead);
    }

    #[test]
    fn atomics_never_race_each_other() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        for _ in 0..4 {
            assert!(rs.on_access(0, &mut a, AccessKind::Atomic).is_none());
            assert!(rs.on_access(0, &mut b, AccessKind::Atomic).is_none());
        }
    }

    #[test]
    fn relaxed_window_reads_tolerate_cas_and_shared_stores() {
        let rs = RaceState::new();
        let mut claimer = clock(0);
        let mut prober = clock(1);
        assert!(rs.on_access(5, &mut claimer, AccessKind::Atomic).is_none());
        assert!(rs
            .on_access(5, &mut prober, AccessKind::RelaxedRead)
            .is_none());
        assert!(rs
            .on_access(5, &mut claimer, AccessKind::SharedWrite)
            .is_none());
        assert!(rs
            .on_access(5, &mut prober, AccessKind::RelaxedRead)
            .is_none());
    }

    #[test]
    fn release_acquire_through_atomic_orders_plain_accesses() {
        // group 0: plain-write w, then release via atomic on s.
        // group 1: acquire via atomic on s, then plain-write w → ordered.
        let rs = RaceState::new();
        let (w, s) = (10, 11);
        let mut a = clock(0);
        let mut b = clock(1);
        assert!(rs.on_access(w, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(s, &mut a, AccessKind::Atomic).is_none());
        assert!(rs.on_access(s, &mut b, AccessKind::Atomic).is_none());
        assert!(
            rs.on_access(w, &mut b, AccessKind::PlainWrite).is_none(),
            "acquire edge must order the second plain write after the first"
        );
    }

    #[test]
    fn unsynchronized_plain_publish_vs_shared_update_races() {
        // The broken_publish_plain_store shape: claimer plain-stores the
        // value word; a racing updater shared-writes it. The updater only
        // saw the *key* word (relaxed), so there is no HB edge.
        let rs = RaceState::new();
        let mut claimer = clock(0);
        let mut updater = clock(1);
        assert!(rs
            .on_access(20, &mut claimer, AccessKind::PlainWrite)
            .is_none());
        let c = rs.on_access(20, &mut updater, AccessKind::SharedWrite);
        assert_eq!(c.unwrap().kind, AccessKind::PlainWrite);
    }

    #[test]
    fn plain_read_does_not_race_atomics() {
        // ticket-board shape: groups read a word others concurrently RMW
        let rs = RaceState::new();
        let mut reader = clock(0);
        let mut rmw = clock(1);
        assert!(rs.on_access(2, &mut rmw, AccessKind::Atomic).is_none());
        assert!(rs.on_access(2, &mut reader, AccessKind::PlainRead).is_none());
        assert!(rs.on_access(2, &mut rmw, AccessKind::Atomic).is_none());
    }

    #[test]
    fn each_word_reports_once() {
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        let mut c = clock(2);
        assert!(rs.on_access(9, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(9, &mut b, AccessKind::PlainWrite).is_some());
        assert!(rs.on_access(9, &mut c, AccessKind::PlainWrite).is_none());
    }

    #[test]
    fn release_acquire_is_transitive_across_words() {
        // A → B through word 2, B → C through word 3: C inherits A's edge.
        let rs = RaceState::new();
        let mut a = clock(0);
        let mut b = clock(1);
        let mut c = clock(2);
        assert!(rs.on_access(1, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(2, &mut a, AccessKind::Atomic).is_none());
        assert!(rs.on_access(2, &mut b, AccessKind::Atomic).is_none());
        assert!(rs.on_access(3, &mut b, AccessKind::Atomic).is_none());
        assert!(rs.on_access(3, &mut c, AccessKind::Atomic).is_none());
        assert!(
            rs.on_access(1, &mut c, AccessKind::PlainWrite).is_none(),
            "A's plain write must be ordered before C's via the atomic chain"
        );
    }

    #[test]
    fn sync_clock_saturates_without_quadratic_blowup() {
        // the hot-counter shape: many groups RMW one word; sync state and
        // per-group VCs must stay bounded by SYNC_CAP, with no reports
        let rs = RaceState::new();
        for g in 0..(SYNC_CAP as u32 * 4) {
            let mut c = clock(g);
            for _ in 0..4 {
                assert!(rs.on_access(0, &mut c, AccessKind::Atomic).is_none());
            }
            assert!(c.vc.len() <= SYNC_CAP, "group VC exceeded the sync cap");
        }
    }

    #[test]
    fn program_order_within_one_group_never_races() {
        let rs = RaceState::new();
        let mut a = clock(0);
        assert!(rs.on_access(1, &mut a, AccessKind::PlainWrite).is_none());
        assert!(rs.on_access(1, &mut a, AccessKind::PlainRead).is_none());
        assert!(rs.on_access(1, &mut a, AccessKind::PlainWrite).is_none());
    }
}
