//! Access-pattern counters recorded by the functional execution.
//!
//! Hot-path design. Every simulated memory operation used to `fetch_add`
//! straight into one shared set of eight contiguous `AtomicU64`s — a
//! single cache line hammered by every Rayon worker (false sharing) and
//! one locked RMW per counted operation even when uncontended. The
//! current scheme has two layers:
//!
//! 1. each [`crate::GroupCtx`] accumulates into plain cells
//!    ([`LocalCounters`], `Cell<u64>` — no atomics at all) owned by the
//!    launch driver and shared by every group of one scheduler chunk;
//!    the accumulator flushes **once per chunk**;
//! 2. the flush lands in a per-worker, cache-line-padded *stripe* of the
//!    shared [`KernelCounters`], so concurrent retirements on different
//!    workers never touch the same line.
//!
//! [`KernelCounters::snapshot`] sums the stripes after the launch joins
//! (the join provides the happens-before edge; stripe increments are
//! `Relaxed` statistics, not synchronization). Totals are bit-identical
//! to the old per-op scheme — `u64` addition is associative and
//! commutative — so modeled times, replay hints and the sanitizer's
//! off-mode billing assertions are unchanged.
//!
//! Snapshots must be *quiesced*: summing stripes while a launch is in
//! flight could observe, say, `cas_ops` incremented but `cas_failed` not
//! (a torn multi-field read). [`KernelCounters::snapshot`] debug-asserts
//! that no [`LaunchGuard`] is outstanding.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::OnceLock;

/// One cache-line-padded stripe of live counters. 128-byte alignment
/// covers the adjacent-line prefetcher pairing on x86 and the 128-byte
/// lines of some ARM parts.
#[derive(Debug, Default)]
#[repr(align(128))]
struct CounterCell {
    transactions: AtomicU64,
    stream_bytes: AtomicU64,
    cas_ops: AtomicU64,
    cas_failed: AtomicU64,
    atomic_ops: AtomicU64,
    cold_atomics: AtomicU64,
    group_steps: AtomicU64,
    groups: AtomicU64,
}

/// Number of stripes: the worker-thread count rounded up to a power of
/// two (cheap masking), capped so a per-launch `KernelCounters` stays a
/// few KiB. Computed once — it only affects contention, never totals.
fn stripe_count() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .next_power_of_two()
            .clamp(1, 64)
    })
}

/// Stable per-thread stripe index. Worker threads are assigned
/// round-robin on first use; the id is masked by the stripe count, so
/// short-lived threads (the rayon shim spawns scoped workers per
/// operation) cycle through the stripes instead of piling onto one.
fn stripe_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut id = s.get();
        if id == usize::MAX {
            id = NEXT.fetch_add(1, Relaxed);
            s.set(id);
        }
        id
    })
}

/// Live counters for one kernel launch, striped per worker.
#[derive(Debug)]
pub struct KernelCounters {
    cells: Box<[CounterCell]>,
    /// Launches currently executing against these counters (see
    /// [`KernelCounters::launch_guard`]).
    in_flight: AtomicU64,
}

impl Default for KernelCounters {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII marker for a launch executing against a [`KernelCounters`];
/// while any guard is alive, [`KernelCounters::snapshot`] is a torn
/// multi-field read and debug-asserts.
#[derive(Debug)]
pub struct LaunchGuard<'c> {
    counters: &'c KernelCounters,
}

impl Drop for LaunchGuard<'_> {
    fn drop(&mut self) {
        self.counters.in_flight.fetch_sub(1, Relaxed);
    }
}

impl KernelCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        let n = stripe_count();
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, CounterCell::default);
        Self {
            cells: cells.into_boxed_slice(),
            in_flight: AtomicU64::new(0),
        }
    }

    /// Marks a launch as executing against these counters until the
    /// returned guard drops. [`KernelCounters::snapshot`] debug-asserts
    /// no guard is outstanding (quiesce-before-snapshot).
    #[must_use]
    pub fn launch_guard(&self) -> LaunchGuard<'_> {
        self.in_flight.fetch_add(1, Relaxed);
        LaunchGuard { counters: self }
    }

    /// The calling thread's stripe.
    #[inline]
    fn cell(&self) -> &CounterCell {
        // stripe_count() is a power of two and cells.len() == stripe_count()
        &self.cells[stripe_id() & (self.cells.len() - 1)]
    }

    /// Records `n` irregular 32-byte transactions (also one dependent step).
    #[inline]
    pub fn add_transactions(&self, n: u64) {
        self.cell().transactions.fetch_add(n, Relaxed);
    }

    /// Records `bytes` of fully coalesced streaming traffic.
    #[inline]
    pub fn add_stream_bytes(&self, bytes: u64) {
        self.cell().stream_bytes.fetch_add(bytes, Relaxed);
    }

    /// Records one CAS, with success flag.
    #[inline]
    pub fn add_cas(&self, success: bool) {
        let cell = self.cell();
        cell.cas_ops.fetch_add(1, Relaxed);
        if !success {
            cell.cas_failed.fetch_add(1, Relaxed);
        }
    }

    /// Records one warm (L2-resident) non-CAS global atomic.
    #[inline]
    pub fn add_atomic(&self) {
        self.cell().atomic_ops.fetch_add(1, Relaxed);
    }

    /// Records one cold non-CAS global atomic.
    #[inline]
    pub fn add_cold_atomic(&self) {
        self.cell().cold_atomics.fetch_add(1, Relaxed);
    }

    /// Records `n` dependent round-trips for the issuing group.
    #[inline]
    pub fn add_steps(&self, n: u64) {
        self.cell().group_steps.fetch_add(n, Relaxed);
    }

    /// Records that a group ran to completion.
    #[inline]
    pub fn add_group(&self) {
        self.cell().groups.fetch_add(1, Relaxed);
    }

    /// Records that `n` groups ran to completion (one RMW for a whole
    /// scheduler chunk).
    #[inline]
    pub fn add_groups(&self, n: u64) {
        self.cell().groups.fetch_add(n, Relaxed);
    }

    /// Immutable snapshot for the timing model.
    ///
    /// Must be taken *quiesced* — after every launch against these
    /// counters has joined. A snapshot concurrent with a live launch is a
    /// torn multi-field read (it can observe `cas_ops` incremented but
    /// `cas_failed` not); debug builds assert against it.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        debug_assert_eq!(
            self.in_flight.load(Relaxed),
            0,
            "KernelCounters::snapshot() while a launch is in flight — \
             the multi-field read would be torn; join the launch first"
        );
        let mut s = CounterSnapshot::default();
        for cell in &self.cells {
            s.transactions += cell.transactions.load(Relaxed);
            s.stream_bytes += cell.stream_bytes.load(Relaxed);
            s.cas_ops += cell.cas_ops.load(Relaxed);
            s.cas_failed += cell.cas_failed.load(Relaxed);
            s.atomic_ops += cell.atomic_ops.load(Relaxed);
            s.cold_atomics += cell.cold_atomics.load(Relaxed);
            s.group_steps += cell.group_steps.load(Relaxed);
            s.groups += cell.groups.load(Relaxed);
        }
        s
    }
}

/// Per-group counter accumulator: plain `Cell<u64>`s a single
/// [`crate::GroupCtx`] increments without any atomic traffic, flushed
/// once into a [`KernelCounters`] stripe when the group retires.
#[derive(Debug, Default)]
pub struct LocalCounters {
    transactions: Cell<u64>,
    stream_bytes: Cell<u64>,
    cas_ops: Cell<u64>,
    cas_failed: Cell<u64>,
    atomic_ops: Cell<u64>,
    cold_atomics: Cell<u64>,
    group_steps: Cell<u64>,
}

/// `cell += n` on a `Cell<u64>`.
#[inline]
fn bump(cell: &Cell<u64>, n: u64) {
    cell.set(cell.get().wrapping_add(n));
}

impl LocalCounters {
    /// Fresh zeroed accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` irregular 32-byte transactions.
    #[inline]
    pub fn add_transactions(&self, n: u64) {
        bump(&self.transactions, n);
    }

    /// Records `bytes` of fully coalesced streaming traffic.
    #[inline]
    pub fn add_stream_bytes(&self, bytes: u64) {
        bump(&self.stream_bytes, bytes);
    }

    /// Records one CAS, with success flag.
    #[inline]
    pub fn add_cas(&self, success: bool) {
        bump(&self.cas_ops, 1);
        if !success {
            bump(&self.cas_failed, 1);
        }
    }

    /// Records one warm (L2-resident) non-CAS global atomic.
    #[inline]
    pub fn add_atomic(&self) {
        bump(&self.atomic_ops, 1);
    }

    /// Records one cold non-CAS global atomic.
    #[inline]
    pub fn add_cold_atomic(&self) {
        bump(&self.cold_atomics, 1);
    }

    /// Records `n` dependent round-trips for the issuing group.
    #[inline]
    pub fn add_steps(&self, n: u64) {
        bump(&self.group_steps, n);
    }

    /// Flushes the accumulated values into `sink`'s stripe for the
    /// calling worker and zeroes the accumulator. Zero fields are
    /// skipped, so a group that never issued a CAS costs no CAS-counter
    /// RMW at all.
    pub fn flush_into(&self, sink: &KernelCounters) {
        let cell = sink.cell();
        let pairs: [(&Cell<u64>, &AtomicU64); 7] = [
            (&self.transactions, &cell.transactions),
            (&self.stream_bytes, &cell.stream_bytes),
            (&self.cas_ops, &cell.cas_ops),
            (&self.cas_failed, &cell.cas_failed),
            (&self.atomic_ops, &cell.atomic_ops),
            (&self.cold_atomics, &cell.cold_atomics),
            (&self.group_steps, &cell.group_steps),
        ];
        for (local, shared) in pairs {
            let v = local.take();
            if v != 0 {
                shared.fetch_add(v, Relaxed);
            }
        }
    }
}

/// Frozen counter values after a launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Irregular 32-byte transactions.
    pub transactions: u64,
    /// Coalesced streaming bytes.
    pub stream_bytes: u64,
    /// CAS operations issued.
    pub cas_ops: u64,
    /// CAS operations that lost their race.
    pub cas_failed: u64,
    /// Warm non-CAS global atomics.
    pub atomic_ops: u64,
    /// Cold non-CAS global atomics.
    pub cold_atomics: u64,
    /// Dependent round-trips summed over groups.
    pub group_steps: u64,
    /// Groups executed.
    pub groups: u64,
}

impl CounterSnapshot {
    /// Total bytes attributable to irregular transactions
    /// (`transactions × 32`).
    #[must_use]
    pub fn random_bytes(&self, transaction_bytes: u64) -> u64 {
        self.transactions * transaction_bytes
    }

    /// Mean dependent steps per group — the simulated probe-chain length.
    #[must_use]
    pub fn steps_per_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.group_steps as f64 / self.groups as f64
        }
    }

    /// Element-wise sum, used when a logical operation spans several
    /// launches (e.g. the m passes of the binary multisplit).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            transactions: self.transactions + other.transactions,
            stream_bytes: self.stream_bytes + other.stream_bytes,
            cas_ops: self.cas_ops + other.cas_ops,
            cas_failed: self.cas_failed + other.cas_failed,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            cold_atomics: self.cold_atomics + other.cold_atomics,
            group_steps: self.group_steps + other.group_steps,
            groups: self.groups + other.groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let c = KernelCounters::new();
        c.add_transactions(3);
        c.add_stream_bytes(128);
        c.add_cas(true);
        c.add_cas(false);
        c.add_atomic();
        c.add_steps(5);
        c.add_group();
        let s = c.snapshot();
        assert_eq!(s.transactions, 3);
        assert_eq!(s.stream_bytes, 128);
        assert_eq!(s.cas_ops, 2);
        assert_eq!(s.cas_failed, 1);
        assert_eq!(s.atomic_ops, 1);
        assert_eq!(s.group_steps, 5);
        assert_eq!(s.groups, 1);
        assert_eq!(s.random_bytes(32), 96);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = CounterSnapshot {
            transactions: 1,
            stream_bytes: 2,
            cas_ops: 3,
            cas_failed: 1,
            atomic_ops: 4,
            cold_atomics: 2,
            group_steps: 5,
            groups: 6,
        };
        let b = a;
        let m = a.merged(b);
        assert_eq!(m.transactions, 2);
        assert_eq!(m.groups, 12);
    }

    #[test]
    fn steps_per_group_handles_zero_groups() {
        let s = CounterSnapshot::default();
        assert_eq!(s.steps_per_group(), 0.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(KernelCounters::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.add_transactions(1);
                    c.add_steps(2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.transactions, 4000);
        assert_eq!(s.group_steps, 8000);
    }

    #[test]
    fn local_counters_flush_exact_totals() {
        let c = KernelCounters::new();
        let l = LocalCounters::new();
        l.add_transactions(7);
        l.add_stream_bytes(64);
        l.add_cas(true);
        l.add_cas(false);
        l.add_atomic();
        l.add_cold_atomic();
        l.add_steps(3);
        l.flush_into(&c);
        // second flush is a no-op: the accumulator was drained
        l.flush_into(&c);
        let s = c.snapshot();
        assert_eq!(s.transactions, 7);
        assert_eq!(s.stream_bytes, 64);
        assert_eq!(s.cas_ops, 2);
        assert_eq!(s.cas_failed, 1);
        assert_eq!(s.atomic_ops, 1);
        assert_eq!(s.cold_atomics, 1);
        assert_eq!(s.group_steps, 3);
    }

    #[test]
    fn flushes_from_many_threads_sum_exactly() {
        // the per-worker stripes must never lose an increment, whatever
        // stripe each thread lands on
        let c = std::sync::Arc::new(KernelCounters::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let l = LocalCounters::new();
                    l.add_transactions(2);
                    l.add_cas(false);
                    l.flush_into(&c);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.transactions, 8000);
        assert_eq!(s.cas_ops, 4000);
        assert_eq!(s.cas_failed, 4000);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn snapshot_during_live_launch_is_rejected() {
        // regression: a snapshot taken concurrently with a launch is a
        // torn multi-field read (cas_ops without cas_failed); with a
        // LaunchGuard outstanding it must debug-assert
        let c = KernelCounters::new();
        let guard = c.launch_guard();
        let torn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.snapshot()));
        assert!(torn.is_err(), "unquiesced snapshot must be rejected");
        drop(guard);
        let _ = c.snapshot(); // quiesced: fine
    }

    #[test]
    fn launch_guard_nesting_quiesces_only_when_all_drop() {
        let c = KernelCounters::new();
        let a = c.launch_guard();
        let b = c.launch_guard();
        drop(a);
        drop(b);
        let s = c.snapshot();
        assert_eq!(s, CounterSnapshot::default());
    }
}
