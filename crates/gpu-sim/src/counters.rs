//! Access-pattern counters recorded by the functional execution.
//!
//! Counters are incremented with `Relaxed` atomics from every simulated
//! group; they are statistics, not synchronization, so relaxed ordering is
//! sufficient (the final read happens after the Rayon join, which provides
//! the necessary happens-before edge).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Live counters for one kernel launch.
#[derive(Debug, Default)]
pub struct KernelCounters {
    /// Number of 32-byte memory transactions issued for *irregular*
    /// (probing) accesses.
    pub transactions: AtomicU64,
    /// Bytes moved by fully coalesced streaming accesses (bulk input
    /// reads, result writes).
    pub stream_bytes: AtomicU64,
    /// 64-bit compare-and-swap operations (successful or not).
    pub cas_ops: AtomicU64,
    /// CAS operations that failed (lost a race) — diagnostic only.
    pub cas_failed: AtomicU64,
    /// Warm global atomics (fetch-add / or / max on L2-resident lines).
    pub atomic_ops: AtomicU64,
    /// Cold atomics (RMW on lines not recently touched — a full DRAM
    /// round-trip each, e.g. cuckoo's eviction `atomicExch`).
    pub cold_atomics: AtomicU64,
    /// Dependent memory round-trips accumulated across all groups; the
    /// latency-bound term divides this by the number of groups in flight.
    pub group_steps: AtomicU64,
    /// Number of groups executed.
    pub groups: AtomicU64,
}

impl KernelCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` irregular 32-byte transactions (also one dependent step).
    #[inline]
    pub fn add_transactions(&self, n: u64) {
        self.transactions.fetch_add(n, Relaxed);
    }

    /// Records `bytes` of fully coalesced streaming traffic.
    #[inline]
    pub fn add_stream_bytes(&self, bytes: u64) {
        self.stream_bytes.fetch_add(bytes, Relaxed);
    }

    /// Records one CAS, with success flag.
    #[inline]
    pub fn add_cas(&self, success: bool) {
        self.cas_ops.fetch_add(1, Relaxed);
        if !success {
            self.cas_failed.fetch_add(1, Relaxed);
        }
    }

    /// Records one warm (L2-resident) non-CAS global atomic.
    #[inline]
    pub fn add_atomic(&self) {
        self.atomic_ops.fetch_add(1, Relaxed);
    }

    /// Records one cold non-CAS global atomic.
    #[inline]
    pub fn add_cold_atomic(&self) {
        self.cold_atomics.fetch_add(1, Relaxed);
    }

    /// Records `n` dependent round-trips for the issuing group.
    #[inline]
    pub fn add_steps(&self, n: u64) {
        self.group_steps.fetch_add(n, Relaxed);
    }

    /// Records that a group ran to completion.
    #[inline]
    pub fn add_group(&self) {
        self.groups.fetch_add(1, Relaxed);
    }

    /// Immutable snapshot for the timing model.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            transactions: self.transactions.load(Relaxed),
            stream_bytes: self.stream_bytes.load(Relaxed),
            cas_ops: self.cas_ops.load(Relaxed),
            cas_failed: self.cas_failed.load(Relaxed),
            atomic_ops: self.atomic_ops.load(Relaxed),
            cold_atomics: self.cold_atomics.load(Relaxed),
            group_steps: self.group_steps.load(Relaxed),
            groups: self.groups.load(Relaxed),
        }
    }
}

/// Frozen counter values after a launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Irregular 32-byte transactions.
    pub transactions: u64,
    /// Coalesced streaming bytes.
    pub stream_bytes: u64,
    /// CAS operations issued.
    pub cas_ops: u64,
    /// CAS operations that lost their race.
    pub cas_failed: u64,
    /// Warm non-CAS global atomics.
    pub atomic_ops: u64,
    /// Cold non-CAS global atomics.
    pub cold_atomics: u64,
    /// Dependent round-trips summed over groups.
    pub group_steps: u64,
    /// Groups executed.
    pub groups: u64,
}

impl CounterSnapshot {
    /// Total bytes attributable to irregular transactions
    /// (`transactions × 32`).
    #[must_use]
    pub fn random_bytes(&self, transaction_bytes: u64) -> u64 {
        self.transactions * transaction_bytes
    }

    /// Mean dependent steps per group — the simulated probe-chain length.
    #[must_use]
    pub fn steps_per_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.group_steps as f64 / self.groups as f64
        }
    }

    /// Element-wise sum, used when a logical operation spans several
    /// launches (e.g. the m passes of the binary multisplit).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            transactions: self.transactions + other.transactions,
            stream_bytes: self.stream_bytes + other.stream_bytes,
            cas_ops: self.cas_ops + other.cas_ops,
            cas_failed: self.cas_failed + other.cas_failed,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            cold_atomics: self.cold_atomics + other.cold_atomics,
            group_steps: self.group_steps + other.group_steps,
            groups: self.groups + other.groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let c = KernelCounters::new();
        c.add_transactions(3);
        c.add_stream_bytes(128);
        c.add_cas(true);
        c.add_cas(false);
        c.add_atomic();
        c.add_steps(5);
        c.add_group();
        let s = c.snapshot();
        assert_eq!(s.transactions, 3);
        assert_eq!(s.stream_bytes, 128);
        assert_eq!(s.cas_ops, 2);
        assert_eq!(s.cas_failed, 1);
        assert_eq!(s.atomic_ops, 1);
        assert_eq!(s.group_steps, 5);
        assert_eq!(s.groups, 1);
        assert_eq!(s.random_bytes(32), 96);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = CounterSnapshot {
            transactions: 1,
            stream_bytes: 2,
            cas_ops: 3,
            cas_failed: 1,
            atomic_ops: 4,
            cold_atomics: 2,
            group_steps: 5,
            groups: 6,
        };
        let b = a;
        let m = a.merged(b);
        assert_eq!(m.transactions, 2);
        assert_eq!(m.groups, 12);
    }

    #[test]
    fn steps_per_group_handles_zero_groups() {
        let s = CounterSnapshot::default();
        assert_eq!(s.steps_per_group(), 0.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(KernelCounters::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.add_transactions(1);
                    c.add_steps(2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.transactions, 4000);
        assert_eq!(s.group_steps, 8000);
    }
}
