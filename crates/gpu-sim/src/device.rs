//! The simulated device: memory + kernel launcher + timing.

use crate::counters::{CounterSnapshot, KernelCounters};
use crate::mem::{DevSlice, DeviceMemory, OutOfMemory};
use crate::sched::{self, Schedule};
use crate::simt::{GroupCtx, GroupSize};
use crate::spec::DeviceSpec;
use crate::timing::{TimeBreakdown, TimingModel};
use rayon::prelude::*;

/// Options for a kernel launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchOptions {
    /// Bytes of the kernel's hot working set **at modeled scale** — used
    /// for the >2 GB CAS degradation artifact. When experiments run
    /// functionally scaled down, pass the full-scale footprint here.
    /// `None` means "use the actual footprint is unknown; no degradation".
    pub modeled_working_set: Option<u64>,
    /// Run groups sequentially on the calling thread (deterministic order
    /// for tests; production launches use the Rayon pool). Equivalent to
    /// `schedule = Schedule::Sequential` and kept for compatibility; it
    /// wins over `schedule` when set.
    pub sequential: bool,
    /// How groups interleave: the racing pool (default), sequential, or
    /// one of the deterministic stepwise schedules (see
    /// [`crate::sched`]).
    pub schedule: Schedule,
}

impl LaunchOptions {
    /// Sets the modeled working set.
    #[must_use]
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.modeled_working_set = Some(bytes);
        self
    }

    /// Forces deterministic sequential execution.
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Selects the group schedule for this launch.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The schedule this launch will actually use (`sequential` wins).
    #[must_use]
    pub fn effective_schedule(&self) -> Schedule {
        if self.sequential {
            Schedule::Sequential
        } else {
            self.schedule
        }
    }
}

/// Result of a kernel launch: measured counters and modeled time.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Kernel name (for reports).
    pub name: String,
    /// Access-pattern counters from the functional run.
    pub counters: CounterSnapshot,
    /// Per-term time breakdown from the analytical model.
    pub breakdown: TimeBreakdown,
    /// Simulated seconds (breakdown total).
    pub sim_time: f64,
    /// Group size of the launch.
    pub group_size: GroupSize,
    /// Number of groups launched.
    pub num_groups: u64,
}

impl KernelStats {
    /// Simulated operation rate, given the number of logical operations
    /// the launch performed.
    #[must_use]
    pub fn ops_per_sec(&self, ops: u64) -> f64 {
        ops as f64 / self.sim_time
    }

    /// Merges stats of a multi-launch logical operation: counters add,
    /// simulated times add, the name and group size of `self` win.
    #[must_use]
    pub fn merged(mut self, other: &KernelStats) -> KernelStats {
        self.counters = self.counters.merged(other.counters);
        self.sim_time += other.sim_time;
        self.num_groups += other.num_groups;
        self
    }
}

/// One simulated CUDA device: global memory, a calibrated spec and a
/// kernel launcher.
#[derive(Debug)]
pub struct Device {
    /// Device identifier within a node (0-based).
    pub id: usize,
    mem: DeviceMemory,
    timing: TimingModel,
}

impl Device {
    /// Creates device `id` with the full VRAM of `spec` available.
    #[must_use]
    pub fn new(id: usize, spec: DeviceSpec) -> Self {
        let words = (spec.vram_bytes / 8) as usize;
        Self {
            id,
            mem: DeviceMemory::new(words),
            timing: TimingModel::new(spec),
        }
    }

    /// Creates a small test device with `words` words of memory.
    #[must_use]
    pub fn with_words(id: usize, words: usize) -> Self {
        Self {
            id,
            mem: DeviceMemory::new(words),
            timing: TimingModel::new(DeviceSpec::test_small((words as u64) * 8)),
        }
    }

    /// The device's memory (host-side, uncounted access).
    #[must_use]
    pub fn mem(&self) -> &DeviceMemory {
        &self.mem
    }

    /// The device specification.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        self.timing.spec()
    }

    /// The timing model.
    #[must_use]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Allocates `len` words of global memory.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] when VRAM is exhausted — the capacity limit
    /// whose removal motivates the paper's multi-GPU scheme.
    pub fn alloc(&self, len: usize) -> Result<DevSlice, OutOfMemory> {
        self.mem.alloc(len)
    }

    /// Allocates transient scratch (reclaimed when the guard drops) —
    /// staging buffers for host-API bulk operations.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] when scratch would collide with persistent
    /// allocations.
    pub fn alloc_scratch(&self, len: usize) -> Result<crate::mem::ScratchGuard<'_>, OutOfMemory> {
        self.mem.alloc_scratch(len)
    }

    /// Launches `num_groups` coalesced groups of size `group_size` running
    /// `kernel`, returning measured counters and modeled time.
    ///
    /// Groups execute concurrently on the Rayon pool (or sequentially with
    /// [`LaunchOptions::sequential`]); every inter-group interleaving is a
    /// legal schedule of the corresponding CUDA grid.
    pub fn launch<F>(
        &self,
        name: &str,
        num_groups: usize,
        group_size: GroupSize,
        opts: LaunchOptions,
        kernel: F,
    ) -> KernelStats
    where
        F: Fn(&GroupCtx) + Sync,
    {
        let counters = KernelCounters::new();
        match opts.effective_schedule() {
            Schedule::Sequential => {
                for gid in 0..num_groups {
                    let ctx = GroupCtx::new(&self.mem, &counters, gid, group_size);
                    kernel(&ctx);
                    counters.add_group();
                }
            }
            Schedule::Pool => {
                // Chunk groups so per-task overhead stays negligible even
                // for millions of tiny groups (perf-book: amortize
                // par_iter tasks).
                const CHUNK: usize = 1024;
                (0..num_groups)
                    .into_par_iter()
                    .with_min_len(CHUNK)
                    .for_each(|gid| {
                        let ctx = GroupCtx::new(&self.mem, &counters, gid, group_size);
                        kernel(&ctx);
                        counters.add_group();
                    });
            }
            stepwise => {
                sched::run_stepwise(stepwise, num_groups, |gid, step| {
                    let ctx =
                        GroupCtx::new_stepped(&self.mem, &counters, gid, group_size, step);
                    kernel(&ctx);
                    counters.add_group();
                });
            }
        }
        let snapshot = counters.snapshot();
        let working_set = opts.modeled_working_set.unwrap_or(0);
        let breakdown =
            self.timing
                .kernel_time(snapshot, group_size, num_groups as u64, working_set);
        KernelStats {
            name: name.to_owned(),
            counters: snapshot,
            breakdown,
            sim_time: breakdown.total(),
            group_size,
            num_groups: num_groups as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn launch_runs_every_group_once() {
        let dev = Device::with_words(0, 1024);
        let hits = AtomicU64::new(0);
        let stats = dev.launch(
            "count",
            500,
            GroupSize::new(4),
            LaunchOptions::default(),
            |_ctx| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(stats.counters.groups, 500);
        assert!(stats.sim_time > 0.0);
    }

    #[test]
    fn sequential_launch_is_ordered() {
        let dev = Device::with_words(0, 1024);
        let order = std::sync::Mutex::new(Vec::new());
        dev.launch(
            "seq",
            16,
            GroupSize::new(1),
            LaunchOptions::default().sequential(),
            |ctx| order.lock().unwrap().push(ctx.group_id()),
        );
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_groups_share_memory_atomically() {
        let dev = Device::with_words(0, 64);
        let counter = dev.alloc(1).unwrap();
        dev.launch(
            "inc",
            10_000,
            GroupSize::new(1),
            LaunchOptions::default(),
            |ctx| {
                let _ = ctx.atomic_add(counter, 0, 1);
            },
        );
        assert_eq!(dev.mem().d2h(counter)[0], 10_000);
    }

    #[test]
    fn stats_expose_rates_and_merge() {
        let dev = Device::with_words(0, 1024);
        let buf = dev.alloc(512).unwrap();
        let s1 = dev.launch(
            "a",
            128,
            GroupSize::new(4),
            LaunchOptions::default(),
            |ctx| {
                let _ = ctx.read_window(buf, ctx.group_id() * 4);
            },
        );
        let s2 = s1.clone().merged(&s1);
        assert_eq!(s2.counters.transactions, 2 * s1.counters.transactions);
        assert!((s2.sim_time - 2.0 * s1.sim_time).abs() < 1e-12);
        assert!(s1.ops_per_sec(128) > 0.0);
    }

    #[test]
    fn working_set_option_changes_cas_bound_time() {
        let dev = Device::with_words(0, 1024);
        let slot = dev.alloc(1).unwrap();
        let run = |ws: u64| {
            dev.launch(
                "cas",
                100_000,
                GroupSize::new(1),
                LaunchOptions::default().with_working_set(ws),
                |ctx| {
                    // hammer CAS so it binds
                    for _ in 0..4 {
                        let _ = ctx.cas(slot, 0, 0, 0);
                    }
                },
            )
        };
        let small = run(1 << 20);
        let large = run(16 << 30);
        assert!(large.breakdown.cas > small.breakdown.cas * 1.5);
    }
}
