//! The simulated device: memory + kernel launcher + timing.

use crate::counters::{CounterSnapshot, KernelCounters, LocalCounters};
use crate::fault::FaultPlan;
use crate::mem::{DevSlice, DeviceMemory, OutOfMemory};
use crate::sanitizer::{LaunchSanitizer, Policy, Report, SanitizerSet};
use crate::sched::{self, Schedule};
use crate::simt::{GroupCtx, GroupSize};
use crate::spec::DeviceSpec;
use crate::timing::{TimeBreakdown, TimingModel};
use rayon::prelude::*;

/// Options for a kernel launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchOptions {
    /// Bytes of the kernel's hot working set **at modeled scale** — used
    /// for the >2 GB CAS degradation artifact. When experiments run
    /// functionally scaled down, pass the full-scale footprint here.
    /// `None` means "use the actual footprint is unknown; no degradation".
    pub modeled_working_set: Option<u64>,
    /// Run groups sequentially on the calling thread (deterministic order
    /// for tests; production launches use the Rayon pool). Equivalent to
    /// `schedule = Schedule::Sequential` and kept for compatibility; it
    /// wins over `schedule` when set.
    pub sequential: bool,
    /// How groups interleave: the racing pool (default), sequential, or
    /// one of the deterministic stepwise schedules (see
    /// [`crate::sched`]).
    pub schedule: Schedule,
    /// `wd-sanitizer` detectors for this launch, unioned with whatever is
    /// attached to the device (via `WD_SANITIZE` or
    /// [`Device::sanitized`]). When this launch is the first to request
    /// sanitizing, shadow state attaches lazily with all existing memory
    /// assumed initialised.
    pub sanitize: SanitizerSet,
    /// Fault plan for this launch's *timing* faults (straggler slowdown
    /// and stalls). `None` falls back to the device's plan (armed via
    /// `WD_FAULT`/`WD_FAULT_SEED` or [`Device::with_fault_plan`]).
    /// Transient launch *failures* are decided by the orchestration layer
    /// before any kernel runs, so `launch` itself never fails.
    pub fault: Option<FaultPlan>,
    /// Force per-op dispatch (`Some(true)`) or chunked dispatch
    /// (`Some(false)`) for stepwise schedules on this launch. `None`
    /// falls back to the process default (`WD_SCHED_CHUNK`, chunked
    /// unless set to `0`). Both modes produce bit-identical
    /// interleavings, counters and reports; the knob exists so
    /// equivalence tests can A/B them within one process.
    pub per_op_dispatch: Option<bool>,
}

impl LaunchOptions {
    /// Sets the modeled working set.
    #[must_use]
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.modeled_working_set = Some(bytes);
        self
    }

    /// Forces deterministic sequential execution.
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Selects the group schedule for this launch.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Selects `wd-sanitizer` detectors for this launch (see the field
    /// docs on [`LaunchOptions::sanitize`]).
    #[must_use]
    pub fn sanitize(mut self, set: SanitizerSet) -> Self {
        self.sanitize = set;
        self
    }

    /// Selects the fault plan for this launch's timing faults (see the
    /// field docs on [`LaunchOptions::fault`]).
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Forces a scheduling decision at every counted op for stepwise
    /// schedules (see the field docs on
    /// [`LaunchOptions::per_op_dispatch`]).
    #[must_use]
    pub fn with_per_op_dispatch(mut self, per_op: bool) -> Self {
        self.per_op_dispatch = Some(per_op);
        self
    }

    /// The schedule this launch will actually use (`sequential` wins).
    #[must_use]
    pub fn effective_schedule(&self) -> Schedule {
        if self.sequential {
            Schedule::Sequential
        } else {
            self.schedule
        }
    }
}

/// Result of a kernel launch: measured counters and modeled time.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Kernel name (for reports).
    pub name: String,
    /// Access-pattern counters from the functional run.
    pub counters: CounterSnapshot,
    /// Per-term time breakdown from the analytical model.
    pub breakdown: TimeBreakdown,
    /// Simulated seconds (breakdown total).
    pub sim_time: f64,
    /// Group size of the launch.
    pub group_size: GroupSize,
    /// Number of groups launched.
    pub num_groups: u64,
}

impl KernelStats {
    /// Simulated operation rate, given the number of logical operations
    /// the launch performed.
    #[must_use]
    pub fn ops_per_sec(&self, ops: u64) -> f64 {
        ops as f64 / self.sim_time
    }

    /// Merges stats of a multi-launch logical operation: counters add,
    /// simulated times add, the name and group size of `self` win.
    #[must_use]
    pub fn merged(mut self, other: &KernelStats) -> KernelStats {
        self.counters = self.counters.merged(other.counters);
        self.sim_time += other.sim_time;
        self.num_groups += other.num_groups;
        self
    }
}

/// Cumulative per-device counters over every launch since construction.
///
/// Unlike the per-launch [`KernelStats`], which callers may drop (e.g. a
/// convenience single-key `get` discarding its stats), these accumulate
/// unconditionally inside [`Device::launch`] — a telemetry layer reading
/// them never undercounts, whatever path issued the kernels.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LifetimeStats {
    /// Kernel launches completed on this device.
    pub launches: u64,
    /// Element-wise sum of every completed launch's counter snapshot.
    pub counters: CounterSnapshot,
    /// Sum of every completed launch's modeled time (seconds).
    pub sim_time: f64,
}

/// One simulated CUDA device: global memory, a calibrated spec and a
/// kernel launcher.
#[derive(Debug)]
pub struct Device {
    /// Device identifier within a node (0-based).
    pub id: usize,
    mem: DeviceMemory,
    timing: TimingModel,
    fault: FaultPlan,
    /// Cumulative counters over all launches (see [`LifetimeStats`]).
    lifetime: std::sync::Mutex<LifetimeStats>,
}

impl Device {
    /// Creates device `id` with the full VRAM of `spec` available.
    #[must_use]
    pub fn new(id: usize, spec: DeviceSpec) -> Self {
        let words = (spec.vram_bytes / 8) as usize;
        Self {
            id,
            mem: DeviceMemory::new(words),
            timing: TimingModel::new(spec),
            fault: FaultPlan::from_env(),
            lifetime: std::sync::Mutex::new(LifetimeStats::default()),
        }
        .with_env_sanitizer()
    }

    /// Creates a small test device with `words` words of memory.
    #[must_use]
    pub fn with_words(id: usize, words: usize) -> Self {
        Self {
            id,
            mem: DeviceMemory::new(words),
            timing: TimingModel::new(DeviceSpec::test_small((words as u64) * 8)),
            fault: FaultPlan::from_env(),
            lifetime: std::sync::Mutex::new(LifetimeStats::default()),
        }
        .with_env_sanitizer()
    }

    /// Cumulative counters over every launch completed on this device.
    ///
    /// These accumulate inside [`Device::launch`] itself, so they count
    /// kernels whose per-launch [`KernelStats`] the caller discarded —
    /// the authoritative source for service-layer telemetry.
    ///
    /// # Panics
    /// Panics if the internal lock was poisoned (a kernel panicked while
    /// retiring its stats).
    #[must_use]
    pub fn lifetime_stats(&self) -> LifetimeStats {
        *self.lifetime.lock().expect("lifetime stats lock")
    }

    /// Replaces the device's fault plan (default: `WD_FAULT` from the
    /// environment, mirroring [`Device::with_env_sanitizer`]'s pattern).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// The device's fault plan.
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        self.fault
    }

    /// Attaches the `WD_SANITIZE` detector set (fail-fast), if any. Runs
    /// at construction, before any memory is written, so initcheck tracks
    /// the full lifetime of every word.
    fn with_env_sanitizer(self) -> Self {
        let set = SanitizerSet::from_env();
        if !set.is_empty() {
            self.mem.attach_sanitizer(set, Policy::Panic, false);
        }
        self
    }

    /// Attaches `set` with the fail-fast [`Policy::Panic`]: any finding
    /// aborts at the end of the offending launch. First attachment wins —
    /// under `WD_SANITIZE` the environment's set is already in place.
    #[must_use]
    pub fn sanitized(self, set: SanitizerSet) -> Self {
        self.mem.attach_sanitizer(set, Policy::Panic, false);
        self
    }

    /// Attaches `set` with [`Policy::Collect`]: findings accumulate and
    /// are drained with [`Device::take_sanitizer_reports`] — what tests
    /// asserting on specific reports use.
    #[must_use]
    pub fn sanitized_collecting(self, set: SanitizerSet) -> Self {
        self.mem.attach_sanitizer(set, Policy::Collect, false);
        self
    }

    /// Clones the sanitizer findings collected so far (empty when no
    /// sanitizer is attached).
    #[must_use]
    pub fn sanitizer_reports(&self) -> Vec<Report> {
        self.mem
            .sanitizer()
            .map(crate::sanitizer::DeviceSanitizer::clone_reports)
            .unwrap_or_default()
    }

    /// Drains the sanitizer findings collected so far.
    pub fn take_sanitizer_reports(&self) -> Vec<Report> {
        self.mem
            .sanitizer()
            .map(crate::sanitizer::DeviceSanitizer::take_reports)
            .unwrap_or_default()
    }

    /// The device's memory (host-side, uncounted access).
    #[must_use]
    pub fn mem(&self) -> &DeviceMemory {
        &self.mem
    }

    /// The device specification.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        self.timing.spec()
    }

    /// The timing model.
    #[must_use]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Allocates `len` words of global memory.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] when VRAM is exhausted — the capacity limit
    /// whose removal motivates the paper's multi-GPU scheme.
    pub fn alloc(&self, len: usize) -> Result<DevSlice, OutOfMemory> {
        self.mem.alloc(len)
    }

    /// Allocates transient scratch (reclaimed when the guard drops) —
    /// staging buffers for host-API bulk operations.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] when scratch would collide with persistent
    /// allocations.
    pub fn alloc_scratch(&self, len: usize) -> Result<crate::mem::ScratchGuard<'_>, OutOfMemory> {
        self.mem.alloc_scratch(len)
    }

    /// Reserves (or reuses) the device-lifetime scratch arena — a staging
    /// buffer that survives [`DeviceMemory::reset`] so measurement sweeps
    /// stop re-allocating per point. See
    /// [`DeviceMemory::arena_reserve`].
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] when the arena would collide with
    /// persistent allocations.
    pub fn arena_reserve(&self, len: usize) -> Result<DevSlice, OutOfMemory> {
        self.mem.arena_reserve(len)
    }

    /// Releases the scratch arena (see [`DeviceMemory::arena_release`]).
    pub fn arena_release(&self) {
        self.mem.arena_release();
    }

    /// Launches `num_groups` coalesced groups of size `group_size` running
    /// `kernel`, returning measured counters and modeled time.
    ///
    /// Groups execute concurrently on the Rayon pool (or sequentially with
    /// [`LaunchOptions::sequential`]); every inter-group interleaving is a
    /// legal schedule of the corresponding CUDA grid.
    pub fn launch<F>(
        &self,
        name: &str,
        num_groups: usize,
        group_size: GroupSize,
        opts: LaunchOptions,
        kernel: F,
    ) -> KernelStats
    where
        F: Fn(&GroupCtx) + Sync,
    {
        let counters = KernelCounters::new();
        let schedule = opts.effective_schedule();
        // Launch-effective detector set: whatever is attached to the
        // device, plus this launch's request. A launch-only request
        // attaches lazily with pre-existing memory assumed initialised
        // (there is no history for it), mirroring attaching
        // compute-sanitizer to a running process.
        let dev_set = self
            .mem
            .sanitizer()
            .map_or(SanitizerSet::NONE, |s| s.set());
        let eff = dev_set.union(opts.sanitize);
        let san = if eff.is_empty() {
            None
        } else {
            let ds = self.mem.attach_sanitizer(eff, Policy::Panic, true);
            Some(LaunchSanitizer::new(ds, eff, name, schedule))
        };
        let san = san.as_ref();
        // Mark the launch in flight for its whole execution span so a
        // concurrent `snapshot()` (a torn multi-field read) is rejected in
        // debug builds; the guard drops before the quiescent snapshot below.
        let in_flight = counters.launch_guard();
        match schedule {
            Schedule::Sequential => {
                // One accumulator for the whole launch: the counted ops
                // bump plain cells and a single flush settles the totals.
                let local = LocalCounters::new();
                for gid in 0..num_groups {
                    let ctx = GroupCtx::new(&self.mem, &local, gid, group_size, san);
                    kernel(&ctx);
                }
                local.flush_into(&counters);
                counters.add_groups(num_groups as u64);
            }
            Schedule::Pool => {
                // Chunk groups so per-task overhead stays negligible even
                // for millions of tiny groups (perf-book: amortize
                // par_iter tasks). Each chunk shares one plain-cell
                // accumulator and flushes it once — `u64` addition
                // commutes, so totals stay bit-identical to per-op (and
                // per-group) updates under every interleaving.
                const CHUNK: usize = 1024;
                let chunks = num_groups.div_ceil(CHUNK);
                (0..chunks).into_par_iter().for_each(|chunk| {
                    let lo = chunk * CHUNK;
                    let hi = (lo + CHUNK).min(num_groups);
                    let local = LocalCounters::new();
                    for gid in lo..hi {
                        let ctx = GroupCtx::new(&self.mem, &local, gid, group_size, san);
                        kernel(&ctx);
                    }
                    local.flush_into(&counters);
                    counters.add_groups((hi - lo) as u64);
                });
            }
            stepwise => {
                let chunked = opts
                    .per_op_dispatch
                    .map_or_else(sched::chunked_dispatch_default, |per_op| !per_op);
                sched::run_stepwise(stepwise, num_groups, chunked, |gid, step, lease| {
                    let local = LocalCounters::new();
                    let ctx = GroupCtx::new_stepped(
                        &self.mem, &local, gid, group_size, step, lease, san,
                    );
                    kernel(&ctx);
                    let unused = ctx.retire();
                    drop(ctx);
                    local.flush_into(&counters);
                    counters.add_group();
                    unused
                });
            }
        }
        if let Some(san) = san {
            san.finish();
        }
        drop(in_flight);
        let snapshot = counters.snapshot();
        let working_set = opts.modeled_working_set.unwrap_or(0);
        let mut breakdown =
            self.timing
                .kernel_time(snapshot, group_size, num_groups as u64, working_set);
        // timing faults: a straggler device runs `factor`× slower plus a
        // fixed stall — modeled as an additive stall term so the healthy
        // breakdown stays bit-identical when the plan is disarmed
        let plan = opts.fault.unwrap_or(self.fault);
        let factor = plan.straggle_factor(self.id);
        let stall = plan.launch_stall(self.id);
        if factor > 1.0 || stall > 0.0 {
            breakdown.stall = (factor - 1.0) * breakdown.total() + stall;
        }
        {
            let mut lt = self.lifetime.lock().expect("lifetime stats lock");
            lt.launches += 1;
            lt.counters = lt.counters.merged(snapshot);
            lt.sim_time += breakdown.total();
        }
        KernelStats {
            name: name.to_owned(),
            counters: snapshot,
            breakdown,
            sim_time: breakdown.total(),
            group_size,
            num_groups: num_groups as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sanitizer::Detector;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn launch_runs_every_group_once() {
        let dev = Device::with_words(0, 1024);
        let hits = AtomicU64::new(0);
        let stats = dev.launch(
            "count",
            500,
            GroupSize::new(4),
            LaunchOptions::default(),
            |_ctx| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(stats.counters.groups, 500);
        assert!(stats.sim_time > 0.0);
    }

    #[test]
    fn lifetime_stats_accumulate_across_launches() {
        let dev = Device::with_words(0, 1024);
        assert_eq!(dev.lifetime_stats(), LifetimeStats::default());
        let s1 = dev.launch("a", 8, GroupSize::new(4), LaunchOptions::default(), |ctx| {
            ctx.bill_stream_bytes(64);
        });
        let s2 = dev.launch("b", 4, GroupSize::new(4), LaunchOptions::default(), |ctx| {
            ctx.bill_transactions(2);
        });
        let lt = dev.lifetime_stats();
        assert_eq!(lt.launches, 2);
        assert_eq!(lt.counters, s1.counters.merged(s2.counters));
        assert!((lt.sim_time - (s1.sim_time + s2.sim_time)).abs() < 1e-15);
    }

    #[test]
    fn sequential_launch_is_ordered() {
        let dev = Device::with_words(0, 1024);
        let order = std::sync::Mutex::new(Vec::new());
        dev.launch(
            "seq",
            16,
            GroupSize::new(1),
            LaunchOptions::default().sequential(),
            |ctx| order.lock().unwrap().push(ctx.group_id()),
        );
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_groups_share_memory_atomically() {
        let dev = Device::with_words(0, 64);
        let counter = dev.alloc(1).unwrap();
        dev.mem().fill(counter, 0);
        dev.launch(
            "inc",
            10_000,
            GroupSize::new(1),
            LaunchOptions::default(),
            |ctx| {
                let _ = ctx.atomic_add(counter, 0, 1);
            },
        );
        assert_eq!(dev.mem().d2h(counter)[0], 10_000);
    }

    #[test]
    fn stats_expose_rates_and_merge() {
        let dev = Device::with_words(0, 1024);
        let buf = dev.alloc(512).unwrap();
        dev.mem().fill(buf, 0);
        let s1 = dev.launch(
            "a",
            128,
            GroupSize::new(4),
            LaunchOptions::default(),
            |ctx| {
                let _ = ctx.read_window(buf, ctx.group_id() * 4);
            },
        );
        let s2 = s1.clone().merged(&s1);
        assert_eq!(s2.counters.transactions, 2 * s1.counters.transactions);
        assert!((s2.sim_time - 2.0 * s1.sim_time).abs() < 1e-12);
        assert!(s1.ops_per_sec(128) > 0.0);
    }

    #[test]
    fn launch_level_sanitize_flags_uninit_read() {
        // lazy launch-level attachment (or the env-attached set when the
        // suite runs under WD_SANITIZE) must flag a read of a word that
        // was never written after the attach point
        let dev = Device::with_words(0, 64);
        let buf = dev.alloc(4).unwrap();
        // a second allocation is written after attach, so it is valid
        // even under lazy assume_valid attachment
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch(
                "first",
                1,
                GroupSize::new(1),
                LaunchOptions::default()
                    .sequential()
                    .sanitize(SanitizerSet::INIT),
                |_| {},
            );
            let fresh = dev.alloc(4).unwrap();
            dev.launch(
                "uninit_read",
                1,
                GroupSize::new(1),
                LaunchOptions::default()
                    .sequential()
                    .sanitize(SanitizerSet::INIT),
                |ctx| {
                    let _ = ctx.read(fresh, 0);
                },
            );
        }));
        match caught {
            // Panic policy (env or lazy attach): the launch aborted
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                assert!(msg.contains("initcheck"), "unexpected panic: {msg}");
            }
            Ok(()) => panic!("uninitialised read went undetected"),
        }
        let _ = buf;
    }

    #[test]
    fn collecting_sanitizer_reports_instead_of_panicking() {
        let dev = Device::with_words(0, 64).sanitized_collecting(SanitizerSet::ALL);
        let buf = dev.alloc(4).unwrap();
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch(
                "uninit_read",
                1,
                GroupSize::new(1),
                LaunchOptions::default().sequential(),
                |ctx| {
                    let _ = ctx.read(buf, 0);
                },
            );
        }));
        // an Err means the env's Panic attachment won (WD_SANITIZE was
        // set) — that equally proves the read was flagged
        if ran.is_ok() {
            // Collect policy took effect (first attachment was ours)
            let reports = dev.take_sanitizer_reports();
            assert!(
                reports
                    .iter()
                    .any(|r| r.detector == Detector::Init && r.kernel == "uninit_read"),
                "expected an initcheck report, got {reports:?}"
            );
            assert!(dev.sanitizer_reports().is_empty(), "take must drain");
        }
    }

    #[test]
    fn unsanitized_launch_reports_nothing() {
        // no WD_SANITIZE guard needed: this asserts only that *no report
        // sink* exists when nothing was attached by this test itself
        let dev = Device::with_words(0, 64);
        let buf = dev.alloc(4).unwrap();
        dev.mem().fill(buf, 7);
        dev.launch(
            "clean",
            4,
            GroupSize::new(1),
            LaunchOptions::default().sequential(),
            |ctx| {
                let _ = ctx.read(buf, ctx.group_id());
            },
        );
        assert!(dev.sanitizer_reports().is_empty());
    }

    #[test]
    fn working_set_option_changes_cas_bound_time() {
        let dev = Device::with_words(0, 1024);
        let slot = dev.alloc(1).unwrap();
        dev.mem().fill(slot, 0);
        let run = |ws: u64| {
            dev.launch(
                "cas",
                100_000,
                GroupSize::new(1),
                LaunchOptions::default().with_working_set(ws),
                |ctx| {
                    // hammer CAS so it binds
                    for _ in 0..4 {
                        let _ = ctx.cas(slot, 0, 0, 0);
                    }
                },
            )
        };
        let small = run(1 << 20);
        let large = run(16 << 30);
        assert!(large.breakdown.cas > small.breakdown.cas * 1.5);
    }

    #[test]
    fn straggler_fault_scales_launch_time() {
        let plan = FaultPlan::default().with_straggler(0, 3.0, 1e-4);
        let run = |fault: Option<FaultPlan>| {
            let dev = Device::with_words(0, 1024);
            let buf = dev.alloc(512).unwrap();
            dev.mem().fill(buf, 0);
            let mut opts = LaunchOptions::default().sequential();
            if let Some(p) = fault {
                opts = opts.with_fault(p);
            }
            dev.launch("probe", 128, GroupSize::new(4), opts, |ctx| {
                let _ = ctx.read_window(buf, ctx.group_id() * 4);
            })
        };
        let healthy = run(None);
        let slow = run(Some(plan));
        // same counters, 3× the time plus the fixed stall
        assert_eq!(healthy.counters, slow.counters);
        let want = 3.0 * healthy.sim_time + 1e-4;
        assert!(
            (slow.sim_time - want).abs() < 1e-12,
            "straggler time {} want {want}",
            slow.sim_time
        );
        // a plan aimed at another device is the identity
        let other = run(Some(FaultPlan::default().with_straggler(3, 5.0, 1.0)));
        assert_eq!(other.sim_time.to_bits(), healthy.sim_time.to_bits());
    }
}
