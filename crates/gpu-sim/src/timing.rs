//! Analytical timing model converting access-pattern counters into
//! simulated seconds.
//!
//! A kernel's simulated execution time combines four throughput terms and
//! one latency term plus a fixed launch overhead:
//!
//! ```text
//! t_throughput = stream_bytes / BW_stream       -- coalesced streaming
//!              + transactions·32 / BW_random    -- irregular probing
//!              + cas_ops / R_cas(working_set)   -- warm CAS serialization
//!              + atomic_ops / R_atomic          -- warm atomic RMWs
//!              + cold_atomics / R_cold          -- cold (DRAM) RMWs
//! t = max(t_throughput, group_steps·L / groups_in_flight) + t_launch
//! ```
//!
//! Throughput terms *add*: atomics and irregular transactions contend for
//! the same memory pipeline, so a CAS-heavy insert pays both its sector
//! traffic and its serialization (this additive structure is what bends
//! the paper's Fig. 7 insert curves down as the load factor grows, while
//! queries — CAS-free — stay traffic-bound). The latency term captures
//! the occupancy trade-off of the Fig. 7 discussion: small groups put
//! more groups in flight (`max_resident_threads / |g|`) but probe more
//! windows; large groups probe fewer windows but expose less memory-level
//! parallelism and move more bytes per probe.

use crate::counters::CounterSnapshot;
use crate::simt::GroupSize;
use crate::spec::DeviceSpec;

/// Timing model bound to a device specification.
#[derive(Debug, Clone)]
pub struct TimingModel {
    spec: DeviceSpec,
}

/// Breakdown of a kernel-time estimate (useful for reports and tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeBreakdown {
    /// Streaming-bandwidth term, seconds.
    pub stream: f64,
    /// Random-transaction bandwidth term, seconds.
    pub random: f64,
    /// CAS-throughput term, seconds.
    pub cas: f64,
    /// Warm-atomics term, seconds.
    pub atomic: f64,
    /// Cold-atomics term, seconds.
    pub cold: f64,
    /// Latency/occupancy term, seconds.
    pub latency: f64,
    /// Fixed launch overhead, seconds.
    pub overhead: f64,
    /// Injected fault stall (straggler slowdown + fixed stall from a
    /// [`crate::FaultPlan`]), seconds. Zero on healthy runs, so the
    /// fault-off total is bit-identical to the pre-chaos model.
    pub stall: f64,
}

impl TimeBreakdown {
    /// Sum of the throughput (pipeline-contention) terms.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.stream + self.random + self.cas + self.atomic + self.cold
    }

    /// Total simulated kernel time.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.throughput().max(self.latency) + self.overhead + self.stall
    }

    /// Name of the binding (dominant) term.
    #[must_use]
    pub fn binding_term(&self) -> &'static str {
        let terms = [
            (self.stream, "stream"),
            (self.random, "random"),
            (self.cas, "cas"),
            (self.atomic, "atomic"),
            (self.cold, "cold"),
            (self.latency, "latency"),
        ];
        terms
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map_or("none", |t| t.1)
    }
}

impl TimingModel {
    /// Builds a model for `spec`.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec }
    }

    /// The underlying device specification.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Estimates the simulated time of one kernel launch.
    ///
    /// * `counters` — what the functional execution measured.
    /// * `group_size` — coalesced-group size of the launch (occupancy).
    /// * `num_groups` — groups launched (informational; the latency term
    ///   assumes a *saturated* grid — `max_resident_threads / |g|` groups
    ///   in flight — because experiments launch element-proportional
    ///   grids and scaled-down functional runs must extrapolate linearly
    ///   to paper-scale grids).
    /// * `working_set` — bytes of the hot data structure **at modeled
    ///   scale**; drives the >2 GB CAS degradation artifact. Pass the
    ///   functional size when no scaling is in effect.
    #[must_use]
    pub fn kernel_time(
        &self,
        counters: CounterSnapshot,
        group_size: GroupSize,
        num_groups: u64,
        working_set: u64,
    ) -> TimeBreakdown {
        let s = &self.spec;
        let _ = num_groups;
        let resident_groups =
            (u64::from(s.max_resident_threads) / u64::from(group_size.get())).max(1) as f64;
        TimeBreakdown {
            stream: counters.stream_bytes as f64 / s.stream_bandwidth(),
            random: counters.random_bytes(s.transaction_bytes) as f64 / s.random_bandwidth(),
            cas: counters.cas_ops as f64 / s.effective_cas_throughput(working_set),
            atomic: counters.atomic_ops as f64 / s.atomic_throughput,
            cold: counters.cold_atomics as f64 / s.cold_atomic_throughput,
            latency: counters.group_steps as f64 * s.mem_latency / resident_groups,
            overhead: s.launch_overhead,
            stall: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> CounterSnapshot {
        CounterSnapshot {
            transactions: 1_000_000,
            stream_bytes: 8_000_000,
            cas_ops: 500_000,
            cas_failed: 10_000,
            atomic_ops: 0,
            group_steps: 2_000_000,
            groups: 1_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn total_combines_terms_plus_overhead() {
        let m = TimingModel::new(DeviceSpec::p100());
        let b = m.kernel_time(snap(), GroupSize::new(4), 1_000_000, 1 << 20);
        let expected =
            (b.stream + b.random + b.cas + b.atomic + b.cold).max(b.latency) + b.overhead;
        assert!((b.total() - expected).abs() < 1e-15);
        assert!(b.throughput() > 0.0);
    }

    #[test]
    fn more_transactions_is_never_faster() {
        let m = TimingModel::new(DeviceSpec::p100());
        let a = m.kernel_time(snap(), GroupSize::new(4), 1_000_000, 1 << 20);
        let mut s2 = snap();
        s2.transactions *= 10;
        let b = m.kernel_time(s2, GroupSize::new(4), 1_000_000, 1 << 20);
        assert!(b.total() >= a.total());
    }

    #[test]
    fn cas_degradation_slows_large_working_sets() {
        let m = TimingModel::new(DeviceSpec::p100());
        let mut s = snap();
        s.cas_ops = 100_000_000; // make CAS the binding term
        let small = m.kernel_time(s, GroupSize::new(4), 1_000_000, 1 << 30);
        let large = m.kernel_time(s, GroupSize::new(4), 1_000_000, 8 << 30);
        assert!(large.total() > small.total() * 1.8);
        assert_eq!(large.binding_term(), "cas");
    }

    #[test]
    fn small_groups_expose_more_latency_parallelism() {
        let m = TimingModel::new(DeviceSpec::p100());
        let s = snap();
        let g1 = m.kernel_time(s, GroupSize::new(1), u64::MAX, 1 << 20);
        let g32 = m.kernel_time(s, GroupSize::new(32), u64::MAX, 1 << 20);
        // same steps, 32× fewer groups in flight → 32× the latency term
        assert!((g32.latency / g1.latency - 32.0).abs() < 1e-9);
    }

    #[test]
    fn latency_term_is_grid_size_invariant() {
        // scaled-down runs must extrapolate linearly: the same counters
        // yield the same latency estimate regardless of grid size
        let m = TimingModel::new(DeviceSpec::p100());
        let s = snap();
        let many = m.kernel_time(s, GroupSize::new(1), u64::MAX, 1 << 20);
        let few = m.kernel_time(s, GroupSize::new(1), 64, 1 << 20);
        assert_eq!(few.latency, many.latency);
    }

    #[test]
    fn binding_term_names_dominant_resource() {
        let m = TimingModel::new(DeviceSpec::p100());
        let s = CounterSnapshot {
            stream_bytes: 1 << 40,
            ..Default::default()
        };
        let b = m.kernel_time(s, GroupSize::new(4), 1024, 0);
        assert_eq!(b.binding_term(), "stream");
    }
}
