//! Simulated device global memory.
//!
//! Global memory is a flat array of [`AtomicU64`] words, mirroring the
//! 64-bit word granularity the paper's hash map relies on (CUDA atomics
//! are limited to 64-bit words, §II, so key-value pairs are packed AOS
//! into one word). Two allocators share the pool:
//!
//! * a **bump allocator** growing from the bottom for long-lived
//!   structures (the hash table, distributed double buffers) — no free,
//!   like a `cudaMalloc` arena held for the experiment's lifetime;
//! * a **scratch stack** growing from the top for per-call staging
//!   buffers (host-API inputs/outputs), released RAII-style via
//!   [`ScratchGuard`] so repeated bulk operations don't leak VRAM.
//!
//! Functional accesses go through [`crate::simt::GroupCtx`] (which
//! performs transaction accounting); the raw accessors here are for
//! host-side setup and verification and are *not* counted.

use crate::sanitizer::{memcheck, DeviceSanitizer, Policy, SanitizerSet};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Error returned when a device allocation exceeds the remaining VRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Words requested by the failing allocation.
    pub requested_words: usize,
    /// Words still available.
    pub available_words: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} words, {} available",
            self.requested_words, self.available_words
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A handle to a contiguous region of device words.
///
/// Deliberately does not borrow the memory: kernels receive copies and
/// resolve them against the device they run on, like raw device pointers
/// in CUDA (but bounds-checked at access time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevSlice {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl DevSlice {
    /// Number of 64-bit words in the slice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.len as u64) * 8
    }

    /// Sub-slice `[start, start+len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the slice.
    #[must_use]
    pub fn sub(&self, start: usize, len: usize) -> DevSlice {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "sub-slice [{start}, {start}+{len}) out of bounds for slice of {} words",
            self.len
        );
        DevSlice {
            offset: self.offset + start,
            len,
        }
    }
}

#[derive(Debug)]
struct AllocState {
    /// First free word above the bump region.
    next_free: usize,
    /// Live scratch allocations (offsets of the descending stack).
    scratch_live: Vec<DevSlice>,
    /// Lowest offset handed to scratch (== pool size when none live).
    scratch_floor: usize,
    /// Device-lifetime scratch arena pinned at the very top of the pool
    /// (see [`DeviceMemory::arena_reserve`]). Unlike the transient stack
    /// it survives [`DeviceMemory::reset`], so sweep loops reuse one
    /// staging buffer across measurement points instead of re-carving
    /// (and re-validating) `3n` words per point.
    arena: Option<DevSlice>,
}

impl AllocState {
    /// Lowest offset transient scratch may fall back to when the stack
    /// empties: the arena's base when one is reserved, else the pool top.
    fn scratch_base(&self, pool_words: usize) -> usize {
        self.arena.map_or(pool_words, |a| a.offset)
    }
}

/// Global memory of one simulated device.
#[derive(Debug)]
pub struct DeviceMemory {
    words: Box<[AtomicU64]>,
    state: Mutex<AllocState>,
    /// `wd-sanitizer` shadow state, attached at most once (first
    /// attachment wins). `None` — the default — keeps every access path
    /// free of sanitizer work beyond one predictable branch.
    sanitizer: OnceLock<DeviceSanitizer>,
}

impl DeviceMemory {
    /// Allocates a memory pool of `words` 64-bit words, zero-initialised.
    #[must_use]
    pub fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        Self {
            words: v.into_boxed_slice(),
            state: Mutex::new(AllocState {
                next_free: 0,
                scratch_live: Vec::new(),
                scratch_floor: words,
                arena: None,
            }),
            sanitizer: OnceLock::new(),
        }
    }

    /// Attaches `wd-sanitizer` shadow state (idempotent: the first
    /// attachment wins and later calls return it unchanged).
    /// `assume_valid` marks all existing memory as initialised — used for
    /// lazy per-launch attachment so words written before the sanitizer
    /// existed don't produce initcheck false positives.
    pub(crate) fn attach_sanitizer(
        &self,
        set: SanitizerSet,
        policy: Policy,
        assume_valid: bool,
    ) -> &DeviceSanitizer {
        self.sanitizer
            .get_or_init(|| DeviceSanitizer::new(set, policy, self.words.len(), assume_valid))
    }

    /// The attached sanitizer, if any.
    pub(crate) fn sanitizer(&self) -> Option<&DeviceSanitizer> {
        self.sanitizer.get()
    }

    /// The initcheck valid-bit shadow, when initcheck is attached.
    #[inline]
    fn valid_bits(&self) -> Option<&crate::sanitizer::initcheck::ValidBits> {
        self.sanitizer.get().and_then(DeviceSanitizer::valid)
    }

    /// Total pool size in words.
    #[must_use]
    pub fn capacity_words(&self) -> usize {
        self.words.len()
    }

    /// Words not claimed by either allocator.
    #[must_use]
    pub fn available_words(&self) -> usize {
        let s = self.state.lock();
        s.scratch_floor - s.next_free
    }

    /// Bump-allocates `len` words for the lifetime of the device.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] if the pool is exhausted. There is no
    /// per-allocation free: experiments allocate long-lived structures up
    /// front, like `cudaMalloc` arenas (use [`DeviceMemory::alloc_scratch`]
    /// for transient staging buffers, or [`DeviceMemory::reset`]).
    pub fn alloc(&self, len: usize) -> Result<DevSlice, OutOfMemory> {
        let mut s = self.state.lock();
        // align to 32-byte sectors (4 words), like cudaMalloc: keeps the
        // transaction accounting of aligned windows exact
        let offset = s.next_free.div_ceil(4) * 4;
        let end = offset.checked_add(len).filter(|&e| e <= s.scratch_floor);
        match end {
            Some(end) => {
                s.next_free = end;
                // freshly allocated words are *undefined* (cudaMalloc
                // returns garbage; the pool's zero bytes don't count)
                if let Some(v) = self.valid_bits() {
                    v.clear_range(offset, len);
                }
                Ok(DevSlice { offset, len })
            }
            None => Err(OutOfMemory {
                requested_words: len,
                available_words: s.scratch_floor.saturating_sub(s.next_free),
            }),
        }
    }

    /// Allocates `len` words from the scratch stack at the top of the
    /// pool; the region is reclaimed when the returned guard drops.
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] when scratch would collide with the bump
    /// region.
    pub fn alloc_scratch(&self, len: usize) -> Result<ScratchGuard<'_>, OutOfMemory> {
        let mut s = self.state.lock();
        let offset = s
            .scratch_floor
            .checked_sub(len)
            .map(|o| o / 4 * 4) // sector alignment, cf. alloc
            .filter(|&o| o >= s.next_free)
            .ok_or(OutOfMemory {
                requested_words: len,
                available_words: s.scratch_floor - s.next_free,
            })?;
        let slice = DevSlice { offset, len };
        s.scratch_live.push(slice);
        s.scratch_floor = offset;
        if let Some(v) = self.valid_bits() {
            v.clear_range(offset, len);
        }
        Ok(ScratchGuard { mem: self, slice })
    }

    /// Reserves a device-lifetime scratch **arena** of at least `len`
    /// words at the top of the pool, or returns the existing reservation
    /// when it is already large enough. The returned slice is valid until
    /// [`DeviceMemory::arena_release`] — in particular it **survives
    /// [`DeviceMemory::reset`]**, which is the point: bench sweeps reserve
    /// one staging buffer, then `reset()` between measurement points
    /// without re-allocating (or tripping the outstanding-scratch panic
    /// that guards transient [`ScratchGuard`]s).
    ///
    /// The words are *undefined* on every reservation (initcheck clears
    /// their valid bits); callers fill what they use, as with
    /// [`DeviceMemory::alloc_scratch`].
    ///
    /// # Errors
    /// Returns [`OutOfMemory`] when the arena would collide with the bump
    /// region.
    ///
    /// # Panics
    /// Panics when growing the arena while transient scratch allocations
    /// are live — the carve would move the floor out from under them.
    pub fn arena_reserve(&self, len: usize) -> Result<DevSlice, OutOfMemory> {
        let mut s = self.state.lock();
        if let Some(a) = s.arena {
            if a.len >= len {
                // Reuse the standing reservation; contents are undefined
                // again for this round of use.
                if let Some(v) = self.valid_bits() {
                    v.clear_range(a.offset, len);
                }
                return Ok(DevSlice {
                    offset: a.offset,
                    len,
                });
            }
        }
        assert!(
            s.scratch_live.is_empty(),
            "DeviceMemory::arena_reserve() growing under {} live transient scratch \
             allocation(s) — reserve the arena before any ScratchGuard",
            s.scratch_live.len()
        );
        let offset = (self.words.len().checked_sub(len))
            .map(|o| o / 4 * 4) // sector alignment, cf. alloc
            .filter(|&o| o >= s.next_free)
            .ok_or(OutOfMemory {
                requested_words: len,
                available_words: self.words.len() - s.next_free,
            })?;
        // The reservation spans [offset, pool top): alignment slack at the
        // top stays inside the arena rather than leaking to the stack.
        let arena = DevSlice {
            offset,
            len: self.words.len() - offset,
        };
        s.arena = Some(arena);
        s.scratch_floor = offset;
        if let Some(v) = self.valid_bits() {
            v.clear_range(arena.offset, arena.len);
        }
        Ok(DevSlice { offset, len })
    }

    /// Releases the arena reservation (no-op when none is held). Any
    /// slices previously returned by [`DeviceMemory::arena_reserve`]
    /// become dangling; initcheck marks the words undefined so stale reads
    /// through them are flagged.
    ///
    /// # Panics
    /// Panics when transient scratch is still stacked on the arena floor.
    pub fn arena_release(&self) {
        let mut s = self.state.lock();
        let Some(a) = s.arena.take() else { return };
        assert!(
            s.scratch_live.is_empty(),
            "DeviceMemory::arena_release() with {} live transient scratch \
             allocation(s) stacked on the arena floor",
            s.scratch_live.len()
        );
        s.scratch_floor = self.words.len();
        if let Some(v) = self.valid_bits() {
            v.clear_range(a.offset, a.len);
        }
    }

    fn release_scratch(&self, slice: DevSlice) {
        let mut s = self.state.lock();
        let pos = s
            .scratch_live
            .iter()
            .position(|l| *l == slice)
            .expect("scratch guard released twice");
        s.scratch_live.swap_remove(pos);
        let base = s.scratch_base(self.words.len());
        s.scratch_floor = s
            .scratch_live
            .iter()
            .map(|l| l.offset)
            .min()
            .unwrap_or(base);
        // released scratch is undefined again: a stale read through a
        // dangling DevSlice into recycled scratch is flagged by initcheck
        if let Some(v) = self.valid_bits() {
            v.clear_range(slice.offset, slice.len);
        }
    }

    /// Resets both allocators, invalidating all outstanding slices
    /// (contents are *not* cleared; callers fill what they allocate).
    /// An arena reservation ([`DeviceMemory::arena_reserve`]) is
    /// deliberately **preserved** — it is the reuse mechanism that lets
    /// sweep loops reset between measurement points.
    ///
    /// # Panics
    /// Panics when scratch allocations are outstanding: resetting under a
    /// live [`ScratchGuard`] would let kernels keep writing through a
    /// slice the allocator has reclaimed, and the guard's eventual drop
    /// would corrupt the fresh allocator state. Drop every guard first.
    pub fn reset(&self) {
        let mut s = self.state.lock();
        assert!(
            s.scratch_live.is_empty(),
            "DeviceMemory::reset() with {} outstanding scratch allocation(s) — \
             drop every ScratchGuard before resetting (wd-sanitizer memcheck)",
            s.scratch_live.len()
        );
        s.next_free = 0;
        s.scratch_floor = s.scratch_base(self.words.len());
    }

    /// Memcheck leak report: scratch allocations still registered (their
    /// [`ScratchGuard`] was leaked with `mem::forget`), when the `mem`
    /// detector is attached. Printed to stderr when the memory drops.
    #[must_use]
    pub fn leak_report(&self) -> Option<String> {
        let san = self.sanitizer.get()?;
        if !san.set().mem() {
            return None;
        }
        let s = self.state.lock();
        if s.scratch_live.is_empty() {
            return None;
        }
        Some(memcheck::leak_message(&s.scratch_live))
    }

    /// Direct word access (host-side / uncounted).
    #[inline]
    pub(crate) fn word(&self, slice: DevSlice, idx: usize) -> &AtomicU64 {
        debug_assert!(
            idx < slice.len,
            "index {idx} out of slice len {}",
            slice.len
        );
        &self.words[slice.offset + idx]
    }

    /// Host → device copy (uncounted; transfer time is modeled by the
    /// `interconnect` crate, not here).
    ///
    /// # Panics
    /// Panics if `data.len() != slice.len()`.
    pub fn h2d(&self, slice: DevSlice, data: &[u64]) {
        assert_eq!(data.len(), slice.len, "h2d length mismatch");
        for (i, &w) in data.iter().enumerate() {
            self.words[slice.offset + i].store(w, Ordering::Relaxed);
        }
        if let Some(v) = self.valid_bits() {
            v.set_range(slice.offset, slice.len);
        }
    }

    /// Device → host copy (uncounted).
    #[must_use]
    pub fn d2h(&self, slice: DevSlice) -> Vec<u64> {
        (0..slice.len)
            .map(|i| self.words[slice.offset + i].load(Ordering::Relaxed))
            .collect()
    }

    /// Device → device copy within one device (uncounted raw move; kernels
    /// bill their own traffic, inter-device transfers bill via the
    /// interconnect model).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn d2d(&self, src: DevSlice, dst: DevSlice) {
        assert_eq!(src.len, dst.len, "d2d length mismatch");
        for i in 0..src.len {
            let w = self.words[src.offset + i].load(Ordering::Relaxed);
            self.words[dst.offset + i].store(w, Ordering::Relaxed);
        }
        if let Some(v) = self.valid_bits() {
            v.copy_range(src.offset, dst.offset, src.len);
        }
    }

    /// Fills a slice with a constant word (e.g. the EMPTY sentinel).
    pub fn fill(&self, slice: DevSlice, value: u64) {
        for i in 0..slice.len {
            self.words[slice.offset + i].store(value, Ordering::Relaxed);
        }
        if let Some(v) = self.valid_bits() {
            v.set_range(slice.offset, slice.len);
        }
    }
}

impl Drop for DeviceMemory {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return; // don't pile a leak report onto an unwinding failure
        }
        if let Some(msg) = self.leak_report() {
            eprintln!("{msg}");
        }
    }
}

/// RAII guard for a scratch allocation (see
/// [`DeviceMemory::alloc_scratch`]).
#[derive(Debug)]
pub struct ScratchGuard<'m> {
    mem: &'m DeviceMemory,
    slice: DevSlice,
}

impl ScratchGuard<'_> {
    /// The allocated region (copy the handle into kernels freely; it must
    /// simply not outlive the guard).
    #[must_use]
    pub fn slice(&self) -> DevSlice {
        self.slice
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        self.mem.release_scratch(self.slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_round_trip() {
        let mem = DeviceMemory::new(1024);
        let a = mem.alloc(100).unwrap();
        let b = mem.alloc(200).unwrap();
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 200);
        assert_eq!(mem.available_words(), 1024 - 300);

        let data: Vec<u64> = (0..100).collect();
        mem.h2d(a, &data);
        assert_eq!(mem.d2h(a), data);
        // b unaffected
        assert!(mem.d2h(b).iter().all(|&w| w == 0));
    }

    #[test]
    fn alloc_exhaustion_reports_oom() {
        let mem = DeviceMemory::new(16);
        let _ = mem.alloc(10).unwrap();
        let err = mem.alloc(10).unwrap_err();
        assert_eq!(err.requested_words, 10);
        assert_eq!(err.available_words, 6);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn reset_reclaims_pool() {
        let mem = DeviceMemory::new(8);
        let _ = mem.alloc(8).unwrap();
        assert!(mem.alloc(1).is_err());
        mem.reset();
        assert!(mem.alloc(8).is_ok());
    }

    #[test]
    fn scratch_reclaims_on_drop() {
        let mem = DeviceMemory::new(100);
        let _persistent = mem.alloc(40).unwrap();
        {
            let s = mem.alloc_scratch(52).unwrap();
            assert_eq!(s.slice().len(), 52);
            assert_eq!(mem.available_words(), 8);
            assert!(mem.alloc_scratch(20).is_err());
        }
        assert_eq!(mem.available_words(), 60);
        let again = mem.alloc_scratch(60).unwrap();
        assert_eq!(again.slice().len(), 60);
    }

    #[test]
    fn scratch_and_bump_collide_safely() {
        let mem = DeviceMemory::new(64);
        let _s = mem.alloc_scratch(32).unwrap();
        assert!(mem.alloc(40).is_err());
        assert!(mem.alloc(32).is_ok());
    }

    #[test]
    fn out_of_order_scratch_release() {
        let mem = DeviceMemory::new(100);
        let a = mem.alloc_scratch(12).unwrap();
        let b = mem.alloc_scratch(12).unwrap();
        drop(a); // floor cannot rise while b is live
        assert_eq!(mem.available_words(), 76);
        drop(b);
        assert_eq!(mem.available_words(), 100);
    }

    #[test]
    fn fill_sets_every_word() {
        let mem = DeviceMemory::new(32);
        let s = mem.alloc(32).unwrap();
        mem.fill(s, u64::MAX);
        assert!(mem.d2h(s).iter().all(|&w| w == u64::MAX));
    }

    #[test]
    fn d2d_copies_between_regions() {
        let mem = DeviceMemory::new(32);
        let a = mem.alloc(8).unwrap();
        let b = mem.alloc(8).unwrap();
        mem.h2d(a, &[1, 2, 3, 4, 5, 6, 7, 8]);
        mem.d2d(a, b);
        assert_eq!(mem.d2h(b), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn sub_slice_windows() {
        let mem = DeviceMemory::new(64);
        let s = mem.alloc(64).unwrap();
        let data: Vec<u64> = (0..64).collect();
        mem.h2d(s, &data);
        let w = s.sub(16, 8);
        assert_eq!(mem.d2h(w), (16..24).collect::<Vec<u64>>());
        assert_eq!(w.bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sub_slice_bounds_checked() {
        let mem = DeviceMemory::new(8);
        let s = mem.alloc(8).unwrap();
        let _ = s.sub(4, 8);
    }

    #[test]
    #[should_panic(expected = "outstanding scratch")]
    fn reset_with_live_scratch_guard_panics() {
        let mem = DeviceMemory::new(64);
        let _guard = mem.alloc_scratch(8).unwrap();
        mem.reset(); // latent use-after-reset hazard, now a hard error
    }

    #[test]
    fn reset_after_guards_drop_is_fine() {
        let mem = DeviceMemory::new(64);
        {
            let _guard = mem.alloc_scratch(8).unwrap();
        }
        mem.reset();
        assert_eq!(mem.available_words(), 64);
    }

    #[test]
    fn forgotten_scratch_guard_produces_leak_report() {
        use crate::sanitizer::{Policy, SanitizerSet};
        let mem = DeviceMemory::new(64);
        mem.attach_sanitizer(SanitizerSet::MEM, Policy::Collect, false);
        assert!(mem.leak_report().is_none());
        let guard = mem.alloc_scratch(8).unwrap();
        std::mem::forget(guard); // the leak memcheck exists to catch
        let report = mem.leak_report().expect("leak must be reported");
        assert!(report.contains("1 leaked scratch"));
        assert!(report.contains("len=8"));
    }

    #[test]
    fn leak_report_needs_mem_detector() {
        use crate::sanitizer::{Policy, SanitizerSet};
        let mem = DeviceMemory::new(64);
        mem.attach_sanitizer(SanitizerSet::RACE, Policy::Collect, false);
        std::mem::forget(mem.alloc_scratch(8).unwrap());
        assert!(mem.leak_report().is_none());
    }

    #[test]
    fn released_scratch_words_become_undefined_again() {
        use crate::sanitizer::{Policy, SanitizerSet};
        let mem = DeviceMemory::new(64);
        let san = mem.attach_sanitizer(SanitizerSet::INIT, Policy::Collect, false);
        let valid = san.valid().unwrap();
        let offset = {
            let g = mem.alloc_scratch(4).unwrap();
            mem.h2d(g.slice(), &[1, 2, 3, 4]);
            assert!(valid.is_valid(g.slice().offset));
            g.slice().offset
        };
        assert!(
            !valid.is_valid(offset),
            "recycled scratch must read as undefined"
        );
    }

    #[test]
    fn arena_survives_reset_at_stable_offset() {
        let mem = DeviceMemory::new(128);
        let a = mem.arena_reserve(32).unwrap();
        let base = mem.alloc(16).unwrap();
        mem.h2d(a, &[7; 32]);
        mem.reset();
        // bump region reclaimed, arena reservation intact
        assert_eq!(mem.alloc(16).unwrap().offset, base.offset);
        let b = mem.arena_reserve(32).unwrap();
        assert_eq!(b.offset, a.offset, "reused arena must not move");
        assert_eq!(b.len, 32);
    }

    #[test]
    fn arena_reuse_serves_smaller_requests_in_place() {
        let mem = DeviceMemory::new(128);
        let a = mem.arena_reserve(48).unwrap();
        let b = mem.arena_reserve(16).unwrap();
        assert_eq!(b.offset, a.offset);
        assert_eq!(b.len, 16);
    }

    #[test]
    fn transient_scratch_stacks_below_the_arena() {
        let mem = DeviceMemory::new(128);
        let a = mem.arena_reserve(32).unwrap();
        let g = mem.alloc_scratch(16).unwrap();
        assert!(g.slice().offset + g.slice().len <= a.offset);
        drop(g);
        // floor returns to the arena base, not the pool top
        let g2 = mem.alloc_scratch(16).unwrap();
        assert!(g2.slice().offset + g2.slice().len <= a.offset);
    }

    #[test]
    fn arena_release_restores_full_pool() {
        let mem = DeviceMemory::new(128);
        let _ = mem.arena_reserve(64).unwrap();
        assert!(mem.alloc(100).is_err());
        mem.arena_release();
        assert!(mem.alloc(100).is_ok());
    }

    #[test]
    fn arena_collision_with_bump_region_reports_oom() {
        let mem = DeviceMemory::new(64);
        let _ = mem.alloc(40).unwrap();
        let err = mem.arena_reserve(32).unwrap_err();
        assert_eq!(err.requested_words, 32);
        mem.reset();
        assert!(mem.arena_reserve(32).is_ok());
    }

    #[test]
    #[should_panic(expected = "live transient scratch")]
    fn arena_growth_under_live_scratch_panics() {
        let mem = DeviceMemory::new(256);
        let _ = mem.arena_reserve(16).unwrap();
        let _guard = mem.alloc_scratch(8).unwrap();
        let _ = mem.arena_reserve(64); // grow would move the floor
    }

    #[test]
    fn arena_words_are_undefined_on_each_reservation() {
        use crate::sanitizer::{Policy, SanitizerSet};
        let mem = DeviceMemory::new(64);
        let san = mem.attach_sanitizer(SanitizerSet::INIT, Policy::Collect, false);
        let valid = san.valid().unwrap();
        let a = mem.arena_reserve(8).unwrap();
        mem.h2d(a, &[1; 8]);
        assert!(valid.is_valid(a.offset));
        let b = mem.arena_reserve(8).unwrap();
        assert!(
            !valid.is_valid(b.offset),
            "re-reserved arena words must read as undefined"
        );
    }

    #[test]
    fn concurrent_alloc_never_overlaps() {
        let mem = std::sync::Arc::new(DeviceMemory::new(4096));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let mem = std::sync::Arc::clone(&mem);
            handles.push(std::thread::spawn(move || {
                let mut slices = Vec::new();
                for _ in 0..16 {
                    slices.push(mem.alloc(32).unwrap());
                }
                slices
            }));
        }
        let mut all: Vec<DevSlice> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_by_key(|s| s.offset);
        for pair in all.windows(2) {
            assert!(pair[0].offset + pair[0].len <= pair[1].offset);
        }
    }
}
