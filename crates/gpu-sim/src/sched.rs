//! Deterministic group scheduling for kernel launches.
//!
//! By default the simulator races coalesced groups on a thread pool, so
//! each test run observes one arbitrary OS-chosen interleaving — a racy
//! bug that loses the lottery stays invisible. This module adds
//! *schedulable* execution: groups run **stepwise**, one at a time, with
//! preemption points at every counted device-memory operation (window
//! loads, CAS, atomics — exactly the places where CUDA groups interact),
//! and the choice of which group runs next is a pure function of a seed.
//! Same seed ⇒ bit-identical execution, table contents and
//! [`crate::KernelCounters`].
//!
//! Three families of schedules exist behind [`Schedule`]:
//!
//! * [`Schedule::Pool`] — the production path, unchanged: real threads,
//!   real races, no determinism.
//! * [`Schedule::Seeded`] — a pseudo-random interleaver: at every
//!   preemption point the next group is drawn from the runnable set by a
//!   seeded SplitMix64. Sweeping seeds explores distinct interleavings
//!   reproducibly.
//! * [`Schedule::Adversarial`] — systematic perturbations that target
//!   known race shapes: starve one group ([`AdversarialMode::DelayOne`]),
//!   always run the highest-numbered runnable group
//!   ([`AdversarialMode::Reverse`]), or rotate fairly with a configurable
//!   preemption quantum ([`AdversarialMode::RoundRobin`]).
//!
//! A bounded *wave* of groups is co-resident (the GPU-occupancy
//! analogue); when a group retires, the next unstarted group joins the
//! wave inside the same critical section, keeping the whole execution
//! deterministic. Failing interleavings replay from environment
//! variables via [`Schedule::from_env`] (`WD_SCHED_MODE`,
//! `WD_SCHED_SEED`, `WD_SCHED_QUANTUM`, `WD_SCHED_WAVE`).

use std::sync::{Condvar, Mutex};

/// Systematic schedule perturbations for [`Schedule::Adversarial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialMode {
    /// Starve one group (chosen by the seed): it only runs when it is the
    /// sole runnable group. Catches bugs where progress of one group
    /// depends on another's completed write (lost-update shapes).
    DelayOne,
    /// Always schedule the highest-numbered runnable group — the exact
    /// reverse of launch order, the opposite of what a pool tends to do.
    Reverse,
    /// Fair rotation in group-id order, preempting every `quantum`
    /// device-memory operations. `quantum: 1` switches at every CAS /
    /// window load.
    RoundRobin {
        /// Memory operations a group runs before being preempted.
        quantum: u32,
    },
}

/// How the groups of a kernel launch interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Race groups on the thread pool (production default).
    #[default]
    Pool,
    /// Run all groups to completion in launch order on the calling
    /// thread.
    Sequential,
    /// Deterministic stepwise interleaving, pseudo-randomly shuffled by
    /// the seed. Same seed ⇒ bit-identical execution and counters.
    Seeded(u64),
    /// Deterministic stepwise interleaving with a systematic
    /// perturbation.
    Adversarial {
        /// The perturbation applied at every scheduling decision.
        mode: AdversarialMode,
        /// Seed for the mode's remaining choices (e.g. the delayed
        /// group).
        seed: u64,
    },
}

impl Schedule {
    /// Whether this schedule needs the stepwise executor.
    #[must_use]
    pub fn is_stepwise(self) -> bool {
        matches!(self, Schedule::Seeded(_) | Schedule::Adversarial { .. })
    }

    /// The `WD_SCHED_*` environment settings that replay this schedule
    /// (printed in sanitizer reports). [`Schedule::Pool`] is inherently
    /// nondeterministic, so the hint says how to pin it instead.
    #[must_use]
    pub fn replay_hint(self) -> String {
        match self {
            Schedule::Pool => {
                "nondeterministic pool; pin with WD_SCHED_MODE=seeded WD_SCHED_SEED=<n>".to_owned()
            }
            Schedule::Sequential => "WD_SCHED_MODE=seq".to_owned(),
            Schedule::Seeded(seed) => {
                format!("WD_SCHED_MODE=seeded WD_SCHED_SEED={seed}")
            }
            Schedule::Adversarial { mode, seed } => match mode {
                AdversarialMode::DelayOne => {
                    format!("WD_SCHED_MODE=delay WD_SCHED_SEED={seed}")
                }
                AdversarialMode::Reverse => {
                    format!("WD_SCHED_MODE=reverse WD_SCHED_SEED={seed}")
                }
                AdversarialMode::RoundRobin { quantum } => format!(
                    "WD_SCHED_MODE=rr WD_SCHED_SEED={seed} WD_SCHED_QUANTUM={quantum}"
                ),
            },
        }
    }

    /// Builds a schedule from `WD_SCHED_MODE` / `WD_SCHED_SEED` /
    /// `WD_SCHED_QUANTUM`, for replaying a failing interleaving printed
    /// by a test. Modes: `pool` (default), `sequential`, `seeded`,
    /// `delay`, `reverse`, `rr`. Unknown modes fall back to `Pool`.
    #[must_use]
    pub fn from_env() -> Schedule {
        let seed = env_u64("WD_SCHED_SEED").unwrap_or(0);
        match std::env::var("WD_SCHED_MODE").as_deref() {
            Ok("sequential" | "seq") => Schedule::Sequential,
            Ok("seeded") => Schedule::Seeded(seed),
            Ok("delay" | "delay-one") => Schedule::Adversarial {
                mode: AdversarialMode::DelayOne,
                seed,
            },
            Ok("reverse") => Schedule::Adversarial {
                mode: AdversarialMode::Reverse,
                seed,
            },
            Ok("rr" | "round-robin") => Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin {
                    quantum: env_u64("WD_SCHED_QUANTUM").map_or(1, |q| q.max(1) as u32),
                },
                seed,
            },
            _ => Schedule::Pool,
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Pool => write!(f, "pool"),
            Schedule::Sequential => write!(f, "sequential"),
            Schedule::Seeded(s) => write!(f, "seeded(seed={s})"),
            Schedule::Adversarial { mode, seed } => match mode {
                AdversarialMode::DelayOne => write!(f, "delay-one(seed={seed})"),
                AdversarialMode::Reverse => write!(f, "reverse"),
                AdversarialMode::RoundRobin { quantum } => {
                    write!(f, "round-robin(quantum={quantum})")
                }
            },
        }
    }
}

/// Reads a `u64` environment variable.
fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Default number of co-resident groups in the stepwise executor.
const DEFAULT_WAVE: usize = 16;

/// Co-resident group count (the simulated occupancy). Overridable via
/// `WD_SCHED_WAVE`; replaying a seed requires the same wave.
#[must_use]
pub fn wave_size() -> usize {
    env_u64("WD_SCHED_WAVE").map_or(DEFAULT_WAVE, |w| w.clamp(1, 1024) as usize)
}

/// SplitMix64 step — the scheduler's only source of randomness.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Scheduling policy of a stepwise run (derived from a [`Schedule`]).
#[derive(Debug, Clone, Copy)]
enum Policy {
    Seeded,
    DelayOne { victim: usize },
    Reverse,
    RoundRobin { quantum: u32 },
}

struct StepState {
    /// Group currently holding the execution token (`None` once all
    /// groups retired).
    current: Option<usize>,
    /// Groups waiting for the token, sorted ascending.
    runnable: Vec<usize>,
    /// Next group id that has not yet joined the wave.
    next_unstarted: usize,
    num_groups: usize,
    policy: Policy,
    rng: u64,
    /// Memory operations the current group has run this turn
    /// (round-robin quantum accounting).
    steps_in_turn: u32,
}

impl StepState {
    /// Picks the next current group from the runnable set and removes it.
    /// Pure function of `(runnable, rng, policy, current)` — this is what
    /// makes the whole execution deterministic.
    fn pick_next(&mut self) {
        debug_assert!(!self.runnable.is_empty());
        let idx = match self.policy {
            Policy::Seeded => (splitmix(&mut self.rng) % self.runnable.len() as u64) as usize,
            Policy::Reverse => self.runnable.len() - 1,
            Policy::DelayOne { victim } => {
                // lowest non-victim; the victim only runs when alone
                self.runnable
                    .iter()
                    .position(|&g| g != victim)
                    .unwrap_or(0)
            }
            Policy::RoundRobin { .. } => match self.current {
                // smallest gid greater than the departing group, wrapping
                Some(last) => self
                    .runnable
                    .iter()
                    .position(|&g| g > last)
                    .unwrap_or(0),
                None => 0,
            },
        };
        self.current = Some(self.runnable.remove(idx));
        self.steps_in_turn = 0;
    }

    fn insert_runnable(&mut self, gid: usize) {
        let pos = self.runnable.partition_point(|&g| g < gid);
        self.runnable.insert(pos, gid);
    }
}

/// The stepwise executor: a single execution token handed between
/// groups at preemption points. [`crate::GroupCtx`] calls
/// [`StepSched::yield_point`] from every counted memory operation.
pub struct StepSched {
    state: Mutex<StepState>,
    cv: Condvar,
}

impl StepSched {
    fn new(schedule: Schedule, num_groups: usize, wave: usize) -> Self {
        let (policy, seed) = match schedule {
            Schedule::Seeded(seed) => (Policy::Seeded, seed),
            Schedule::Adversarial { mode, seed } => (
                match mode {
                    AdversarialMode::DelayOne => Policy::DelayOne {
                        victim: (seed % num_groups.max(1) as u64) as usize,
                    },
                    AdversarialMode::Reverse => Policy::Reverse,
                    AdversarialMode::RoundRobin { quantum } => Policy::RoundRobin {
                        quantum: quantum.max(1),
                    },
                },
                seed,
            ),
            Schedule::Pool | Schedule::Sequential => {
                unreachable!("stepwise executor requires a stepwise schedule")
            }
        };
        let mut state = StepState {
            current: None,
            runnable: (0..wave.min(num_groups)).collect(),
            next_unstarted: wave.min(num_groups),
            num_groups,
            policy,
            rng: seed ^ 0x0057_a7e5_c4ed_01e5_u64.rotate_left(17),
            steps_in_turn: 0,
        };
        if !state.runnable.is_empty() {
            state.pick_next();
        }
        StepSched {
            state: Mutex::new(state),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StepState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Preemption point: possibly hands the token to another group and
    /// blocks until it is `gid`'s turn again. Called by [`crate::GroupCtx`]
    /// before every counted device-memory operation.
    pub(crate) fn yield_point(&self, gid: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(gid), "yield from a group without the token");
        st.steps_in_turn += 1;
        if let Policy::RoundRobin { quantum } = st.policy {
            if st.steps_in_turn < quantum {
                return;
            }
        }
        if st.runnable.is_empty() {
            st.steps_in_turn = 0;
            return; // nobody to switch to
        }
        st.insert_runnable(gid);
        st.pick_next();
        if st.current == Some(gid) {
            return; // re-elected; no handoff needed
        }
        self.cv.notify_all();
        while st.current != Some(gid) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until it is `gid`'s turn to start executing.
    fn wait_for_turn(&self, gid: usize) {
        let mut st = self.lock();
        while st.current != Some(gid) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Retires `gid` and, in the same critical section, admits the next
    /// unstarted group to the wave (keeping the schedule deterministic).
    /// Returns the group this worker thread should run next, if any.
    fn finish_group(&self, gid: usize) -> Option<usize> {
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(gid), "finish from a group without the token");
        let claimed = if st.next_unstarted < st.num_groups {
            let g = st.next_unstarted;
            st.next_unstarted += 1;
            st.insert_runnable(g);
            Some(g)
        } else {
            None
        };
        if st.runnable.is_empty() {
            st.current = None;
        } else {
            st.pick_next();
        }
        self.cv.notify_all();
        claimed
    }
}

/// Runs `body(gid, sched)` for every group id in `0..num_groups` under
/// the stepwise deterministic scheduler. `body` must route all
/// device-memory operations through a [`crate::GroupCtx`] built with the
/// provided [`StepSched`] so preemption points fire.
pub(crate) fn run_stepwise<F>(schedule: Schedule, num_groups: usize, body: F)
where
    F: Fn(usize, &StepSched) + Sync,
{
    if num_groups == 0 {
        return;
    }
    let wave = wave_size().min(num_groups);
    let sched = StepSched::new(schedule, num_groups, wave);
    let sched = &sched;
    let body = &body;
    std::thread::scope(|scope| {
        for t in 0..wave {
            scope.spawn(move || {
                let mut gid = t;
                loop {
                    sched.wait_for_turn(gid);
                    body(gid, sched);
                    match sched.finish_group(gid) {
                        Some(next) => gid = next,
                        None => break,
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    fn trace(schedule: Schedule, num_groups: usize, ops_per_group: usize) -> Vec<usize> {
        let log = StdMutex::new(Vec::new());
        run_stepwise(schedule, num_groups, |gid, sched| {
            for _ in 0..ops_per_group {
                sched.yield_point(gid);
                log.lock().unwrap().push(gid);
            }
        });
        log.into_inner().unwrap()
    }

    #[test]
    fn every_group_runs_exactly_once() {
        let count = AtomicU64::new(0);
        run_stepwise(Schedule::Seeded(1), 100, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn same_seed_same_trace() {
        for seed in [0, 1, 42, u64::MAX] {
            let a = trace(Schedule::Seeded(seed), 40, 7);
            let b = trace(Schedule::Seeded(seed), 40, 7);
            assert_eq!(a, b, "seed {seed} must replay identically");
            assert_eq!(a.len(), 40 * 7);
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let distinct: std::collections::HashSet<Vec<usize>> =
            (0..8).map(|s| trace(Schedule::Seeded(s), 16, 5)).collect();
        assert!(distinct.len() > 4, "seeds should explore interleavings");
    }

    #[test]
    fn reverse_runs_highest_first() {
        let t = trace(
            Schedule::Adversarial {
                mode: AdversarialMode::Reverse,
                seed: 0,
            },
            8,
            3,
        );
        // wave admits all 8 groups; the first op executed must belong to
        // the highest-numbered group
        assert_eq!(t[0], 7);
    }

    #[test]
    fn delay_one_starves_the_victim() {
        let victim = 3usize;
        let t = trace(
            Schedule::Adversarial {
                mode: AdversarialMode::DelayOne,
                seed: victim as u64,
            },
            8,
            4,
        );
        // all of the victim's ops must come after every other group's
        let last_other = t
            .iter()
            .rposition(|&g| g != victim)
            .expect("other groups ran");
        let first_victim = t.iter().position(|&g| g == victim).expect("victim ran");
        assert!(
            first_victim > last_other,
            "victim ran at {first_victim}, before another group at {last_other}: {t:?}"
        );
    }

    #[test]
    fn round_robin_rotates_in_order() {
        let t = trace(
            Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin { quantum: 1 },
                seed: 0,
            },
            4,
            3,
        );
        assert_eq!(t[..8], [0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn wave_bounds_resident_groups() {
        // groups > wave: later groups must not start before an earlier
        // one retires
        let started = StdMutex::new(Vec::new());
        run_stepwise(Schedule::Seeded(9), 64, |gid, _| {
            started.lock().unwrap().push(gid);
        });
        let order = started.into_inner().unwrap();
        assert_eq!(order.len(), 64);
        let wave = wave_size().min(64);
        // group `wave + k` is only admitted after `k + 1` retirements, so
        // it cannot appear in the log before that many earlier entries
        for (pos, &g) in order.iter().enumerate() {
            if g >= wave {
                assert!(
                    pos > g - wave,
                    "group {g} ran at position {pos}, before the wave could admit it"
                );
            }
        }
    }

    #[test]
    fn from_env_parses_modes() {
        // avoid mutating the process env (tests run concurrently); just
        // exercise the default path
        assert_eq!(Schedule::from_env(), Schedule::Pool);
        assert!(Schedule::Seeded(3).is_stepwise());
        assert!(!Schedule::Sequential.is_stepwise());
        assert_eq!(format!("{}", Schedule::Seeded(3)), "seeded(seed=3)");
    }
}
