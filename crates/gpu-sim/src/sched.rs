//! Deterministic group scheduling for kernel launches.
//!
//! By default the simulator races coalesced groups on a thread pool, so
//! each test run observes one arbitrary OS-chosen interleaving — a racy
//! bug that loses the lottery stays invisible. This module adds
//! *schedulable* execution: groups run **stepwise**, one at a time, with
//! preemption points at every counted device-memory operation (window
//! loads, CAS, atomics — exactly the places where CUDA groups interact),
//! and the choice of which group runs next is a pure function of a seed.
//! Same seed ⇒ bit-identical execution, table contents and
//! [`crate::KernelCounters`].
//!
//! Three families of schedules exist behind [`Schedule`]:
//!
//! * [`Schedule::Pool`] — the production path, unchanged: real threads,
//!   real races, no determinism.
//! * [`Schedule::Seeded`] — a pseudo-random interleaver: at every
//!   preemption point the next group is drawn from the runnable set by a
//!   seeded SplitMix64. Sweeping seeds explores distinct interleavings
//!   reproducibly.
//! * [`Schedule::Adversarial`] — systematic perturbations that target
//!   known race shapes: starve one group ([`AdversarialMode::DelayOne`]),
//!   always run the highest-numbered runnable group
//!   ([`AdversarialMode::Reverse`]), or rotate fairly with a configurable
//!   preemption quantum ([`AdversarialMode::RoundRobin`]).
//!
//! A bounded *wave* of groups is co-resident (the GPU-occupancy
//! analogue); when a group retires, the next unstarted group joins the
//! wave inside the same critical section, keeping the whole execution
//! deterministic. Failing interleavings replay from environment
//! variables via [`Schedule::from_env`] (`WD_SCHED_MODE`,
//! `WD_SCHED_SEED`, `WD_SCHED_QUANTUM`, `WD_SCHED_WAVE`).
//!
//! # Chunked dispatch
//!
//! Naively, every counted operation takes the scheduler lock, updates
//! the runnable set and possibly draws from the RNG — per-*op* dispatch
//! overhead that dominates stepwise wall-clock. The executor therefore
//! hands out **leases**: when a group is elected, the scheduler computes
//! *up front* how many consecutive operations that election covers (for
//! a seeded schedule, by pre-drawing the RNG while it keeps re-electing
//! the same group and rewinding the first non-matching draw; for
//! round-robin, the quantum; for the adversarial modes, a closed form).
//! The group then runs that many ops on a thread-local countdown with no
//! locking at all, and comes back for a real decision when the lease
//! expires. Because each pre-drawn decision is exactly the decision the
//! per-op path would have made, the op-level interleaving — and hence
//! every modeled counter and replay hint — is **bit-identical** to
//! per-op dispatch (asserted by the equivalence tests below). A group
//! retiring mid-lease rewinds its unused pre-drawn decisions, keeping
//! the RNG stream aligned. `WD_SCHED_CHUNK=0` forces the per-op path
//! (the default is chunked).

use std::sync::{Condvar, Mutex};

/// Systematic schedule perturbations for [`Schedule::Adversarial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialMode {
    /// Starve one group (chosen by the seed): it only runs when it is the
    /// sole runnable group. Catches bugs where progress of one group
    /// depends on another's completed write (lost-update shapes).
    DelayOne,
    /// Always schedule the highest-numbered runnable group — the exact
    /// reverse of launch order, the opposite of what a pool tends to do.
    Reverse,
    /// Fair rotation in group-id order, preempting every `quantum`
    /// device-memory operations. `quantum: 1` switches at every CAS /
    /// window load.
    RoundRobin {
        /// Memory operations a group runs before being preempted.
        quantum: u32,
    },
}

/// How the groups of a kernel launch interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Race groups on the thread pool (production default).
    #[default]
    Pool,
    /// Run all groups to completion in launch order on the calling
    /// thread.
    Sequential,
    /// Deterministic stepwise interleaving, pseudo-randomly shuffled by
    /// the seed. Same seed ⇒ bit-identical execution and counters.
    Seeded(u64),
    /// Deterministic stepwise interleaving with a systematic
    /// perturbation.
    Adversarial {
        /// The perturbation applied at every scheduling decision.
        mode: AdversarialMode,
        /// Seed for the mode's remaining choices (e.g. the delayed
        /// group).
        seed: u64,
    },
}

impl Schedule {
    /// Whether this schedule needs the stepwise executor.
    #[must_use]
    pub fn is_stepwise(self) -> bool {
        matches!(self, Schedule::Seeded(_) | Schedule::Adversarial { .. })
    }

    /// The `WD_SCHED_*` environment settings that replay this schedule
    /// (printed in sanitizer reports). [`Schedule::Pool`] is inherently
    /// nondeterministic, so the hint says how to pin it instead.
    #[must_use]
    pub fn replay_hint(self) -> String {
        match self {
            Schedule::Pool => {
                "nondeterministic pool; pin with WD_SCHED_MODE=seeded WD_SCHED_SEED=<n>".to_owned()
            }
            Schedule::Sequential => "WD_SCHED_MODE=seq".to_owned(),
            Schedule::Seeded(seed) => {
                format!("WD_SCHED_MODE=seeded WD_SCHED_SEED={seed}")
            }
            Schedule::Adversarial { mode, seed } => match mode {
                AdversarialMode::DelayOne => {
                    format!("WD_SCHED_MODE=delay WD_SCHED_SEED={seed}")
                }
                AdversarialMode::Reverse => {
                    format!("WD_SCHED_MODE=reverse WD_SCHED_SEED={seed}")
                }
                AdversarialMode::RoundRobin { quantum } => format!(
                    "WD_SCHED_MODE=rr WD_SCHED_SEED={seed} WD_SCHED_QUANTUM={quantum}"
                ),
            },
        }
    }

    /// Builds a schedule from `WD_SCHED_MODE` / `WD_SCHED_SEED` /
    /// `WD_SCHED_QUANTUM`, for replaying a failing interleaving printed
    /// by a test. Modes: `pool` (default), `sequential`, `seeded`,
    /// `delay`, `reverse`, `rr`. Unknown modes fall back to `Pool`.
    #[must_use]
    pub fn from_env() -> Schedule {
        let mode = std::env::var("WD_SCHED_MODE").unwrap_or_default();
        Schedule::from_parts(
            &mode,
            env_u64("WD_SCHED_SEED").unwrap_or(0),
            env_u64("WD_SCHED_QUANTUM"),
        )
        .unwrap_or(Schedule::Pool)
    }

    /// Parses a replay-hint string back into the schedule it describes —
    /// the inverse of [`Schedule::replay_hint`]. Accepts any string
    /// containing `WD_SCHED_MODE=…` (and optionally `WD_SCHED_SEED=…` /
    /// `WD_SCHED_QUANTUM=…`) tokens, e.g. a full sanitizer report line;
    /// foreign `KEY=VALUE` tokens (`WD_FAULT=…`) are ignored. Returns
    /// `None` when no parseable mode token is present, so a replay test
    /// can reconstruct a printed schedule without mutating the process
    /// environment.
    #[must_use]
    pub fn parse_hint(hint: &str) -> Option<Schedule> {
        let mut mode: Option<&str> = None;
        let mut seed = 0u64;
        let mut quantum = None;
        for tok in hint.split_whitespace() {
            if let Some((k, v)) = tok.split_once('=') {
                // report lines wrap the hint in brackets/parens, which
                // stick to the last token: `… WD_SCHED_SEED=7])`
                let v = v.trim_end_matches([']', ')', ',', '.', ';', '"', '\'']);
                match k {
                    "WD_SCHED_MODE" => mode = Some(v),
                    "WD_SCHED_SEED" => seed = v.parse().ok()?,
                    "WD_SCHED_QUANTUM" => quantum = Some(v.parse().ok()?),
                    _ => {} // foreign settings (WD_FAULT, …) ride along
                }
            }
        }
        Schedule::from_parts(mode?, seed, quantum)
    }

    /// Shared token decoder behind [`Schedule::from_env`] and
    /// [`Schedule::parse_hint`].
    fn from_parts(mode: &str, seed: u64, quantum: Option<u64>) -> Option<Schedule> {
        Some(match mode {
            "pool" => Schedule::Pool,
            "sequential" | "seq" => Schedule::Sequential,
            "seeded" => Schedule::Seeded(seed),
            "delay" | "delay-one" => Schedule::Adversarial {
                mode: AdversarialMode::DelayOne,
                seed,
            },
            "reverse" => Schedule::Adversarial {
                mode: AdversarialMode::Reverse,
                seed,
            },
            "rr" | "round-robin" => Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin {
                    quantum: quantum.map_or(1, |q| q.max(1) as u32),
                },
                seed,
            },
            _ => return None,
        })
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Pool => write!(f, "pool"),
            Schedule::Sequential => write!(f, "sequential"),
            Schedule::Seeded(s) => write!(f, "seeded(seed={s})"),
            Schedule::Adversarial { mode, seed } => match mode {
                AdversarialMode::DelayOne => write!(f, "delay-one(seed={seed})"),
                AdversarialMode::Reverse => write!(f, "reverse"),
                AdversarialMode::RoundRobin { quantum } => {
                    write!(f, "round-robin(quantum={quantum})")
                }
            },
        }
    }
}

/// Reads a `u64` environment variable.
fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Default number of co-resident groups in the stepwise executor.
const DEFAULT_WAVE: usize = 16;

/// Co-resident group count (the simulated occupancy). Overridable via
/// `WD_SCHED_WAVE`; replaying a seed requires the same wave.
#[must_use]
pub fn wave_size() -> usize {
    env_u64("WD_SCHED_WAVE").map_or(DEFAULT_WAVE, |w| w.clamp(1, 1024) as usize)
}

/// SplitMix64 additive state increment. The state advances by pure
/// addition, so one draw is un-consumed by subtracting it back — the
/// property chunked dispatch relies on to rewind pre-drawn decisions.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 step — the scheduler's only source of randomness.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Scheduling policy of a stepwise run (derived from a [`Schedule`]).
#[derive(Debug, Clone, Copy)]
enum Policy {
    Seeded,
    DelayOne { victim: usize },
    Reverse,
    RoundRobin { quantum: u32 },
}

struct StepState {
    /// Group currently holding the execution token (`None` once all
    /// groups retired).
    current: Option<usize>,
    /// Groups waiting for the token, sorted ascending.
    runnable: Vec<usize>,
    /// Next group id that has not yet joined the wave.
    next_unstarted: usize,
    num_groups: usize,
    policy: Policy,
    rng: u64,
    /// Memory operations the current group has run this turn
    /// (round-robin quantum accounting, per-op mode only).
    steps_in_turn: u32,
    /// Whether elections hand out multi-op leases (chunked dispatch) or
    /// a fresh decision happens at every counted op.
    chunked: bool,
    /// Ops the most recent election entitles its electee to run before
    /// the next real scheduling decision (1 in per-op mode; 0 for a
    /// group that has not reached its first preemption point yet).
    lease_grant: u64,
    /// RNG draws pre-consumed for the current lease's re-elections;
    /// rewound draw-for-op if the group retires mid-lease.
    lease_draws: u64,
    /// Per-group flag: has this group executed its first preemption
    /// point? A fresh group makes a full decision there (exactly as the
    /// per-op path does), so electing it grants no ops yet.
    started: Vec<bool>,
}

impl StepState {
    /// Picks the next current group from the runnable set and removes it.
    /// Pure function of `(runnable, rng, policy, current)` — this is what
    /// makes the whole execution deterministic.
    fn pick_next(&mut self) {
        debug_assert!(!self.runnable.is_empty());
        let idx = match self.policy {
            Policy::Seeded => (splitmix(&mut self.rng) % self.runnable.len() as u64) as usize,
            Policy::Reverse => self.runnable.len() - 1,
            Policy::DelayOne { victim } => {
                // lowest non-victim; the victim only runs when alone
                self.runnable
                    .iter()
                    .position(|&g| g != victim)
                    .unwrap_or(0)
            }
            Policy::RoundRobin { .. } => match self.current {
                // smallest gid greater than the departing group, wrapping
                Some(last) => self
                    .runnable
                    .iter()
                    .position(|&g| g > last)
                    .unwrap_or(0),
                None => 0,
            },
        };
        let gid = self.runnable.remove(idx);
        self.current = Some(gid);
        self.steps_in_turn = 0;
        if !self.chunked {
            (self.lease_grant, self.lease_draws) = (1, 0);
        } else if !self.started[gid] {
            // the electee has not reached its first preemption point.
            // Under round-robin that point only counts toward the
            // quantum (the per-op path early-returns until it fills),
            // so the election covers the quantum remainder; under every
            // other policy it performs a full decision, so it covers
            // no ops yet.
            let grant = match self.policy {
                Policy::RoundRobin { quantum } => u64::from(quantum) - 1,
                _ => 0,
            };
            (self.lease_grant, self.lease_draws) = (grant, 0);
        } else {
            (self.lease_grant, self.lease_draws) = self.lookahead(gid);
        }
    }

    /// Computes how many consecutive ops electing `e` covers before the
    /// next decision could pick someone else. Only `e` retiring can
    /// change the runnable set while it holds the token, so every
    /// future decision draws over exactly `runnable ∪ {e}` — each
    /// re-election can be resolved now instead of per op.
    fn lookahead(&mut self, e: usize) -> (u64, u64) {
        if self.runnable.is_empty() {
            // sole runner: nothing can preempt it until it retires, and
            // the per-op path draws nothing while runnable is empty
            return (u64::MAX, 0);
        }
        match self.policy {
            Policy::Seeded => {
                let pos = self.runnable.partition_point(|&g| g < e) as u64;
                let n = self.runnable.len() as u64 + 1;
                let mut m = 0u64;
                while splitmix(&mut self.rng) % n == pos {
                    m += 1;
                }
                // the breaking draw belongs to the future decision that
                // elects a different group — rewind it so that decision
                // replays it when the lease expires
                self.rng = self.rng.wrapping_sub(GOLDEN_GAMMA);
                (m + 1, m)
            }
            Policy::Reverse => {
                if self.runnable.last().is_some_and(|&g| g < e) {
                    (u64::MAX, 0) // stays the highest until it retires
                } else {
                    (1, 0)
                }
            }
            Policy::DelayOne { victim } => {
                if e != victim && self.runnable.iter().all(|&g| g == victim || g > e) {
                    (u64::MAX, 0) // stays the lowest non-victim until it retires
                } else {
                    (1, 0)
                }
            }
            Policy::RoundRobin { quantum } => (u64::from(quantum), 0),
        }
    }

    fn insert_runnable(&mut self, gid: usize) {
        let pos = self.runnable.partition_point(|&g| g < gid);
        self.runnable.insert(pos, gid);
    }
}

/// The stepwise executor: a single execution token handed between
/// groups at preemption points. [`crate::GroupCtx`] calls
/// [`StepSched::yield_point`] from every counted memory operation.
pub struct StepSched {
    state: Mutex<StepState>,
    cv: Condvar,
}

impl StepSched {
    fn new(schedule: Schedule, num_groups: usize, wave: usize, chunked: bool) -> Self {
        let (policy, seed) = match schedule {
            Schedule::Seeded(seed) => (Policy::Seeded, seed),
            Schedule::Adversarial { mode, seed } => (
                match mode {
                    AdversarialMode::DelayOne => Policy::DelayOne {
                        victim: (seed % num_groups.max(1) as u64) as usize,
                    },
                    AdversarialMode::Reverse => Policy::Reverse,
                    AdversarialMode::RoundRobin { quantum } => Policy::RoundRobin {
                        quantum: quantum.max(1),
                    },
                },
                seed,
            ),
            Schedule::Pool | Schedule::Sequential => {
                unreachable!("stepwise executor requires a stepwise schedule")
            }
        };
        let mut state = StepState {
            current: None,
            runnable: (0..wave.min(num_groups)).collect(),
            next_unstarted: wave.min(num_groups),
            num_groups,
            policy,
            rng: seed ^ 0x0057_a7e5_c4ed_01e5_u64.rotate_left(17),
            steps_in_turn: 0,
            chunked,
            lease_grant: 0,
            lease_draws: 0,
            started: vec![false; num_groups],
        };
        if !state.runnable.is_empty() {
            state.pick_next();
        }
        StepSched {
            state: Mutex::new(state),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StepState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Preemption point: possibly hands the token to another group and
    /// blocks until it is `gid`'s turn again. Called by [`crate::GroupCtx`]
    /// when its lease runs out before a counted device-memory operation
    /// (per-op mode leases are always one op, so that is every op).
    /// Returns the ops the new lease covers, **including** the op about
    /// to execute — the caller keeps `grant - 1` on its local countdown.
    pub(crate) fn yield_point(&self, gid: usize) -> u64 {
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(gid), "yield from a group without the token");
        if !st.chunked {
            st.steps_in_turn += 1;
            if let Policy::RoundRobin { quantum } = st.policy {
                if st.steps_in_turn < quantum {
                    return 1;
                }
            }
            if st.runnable.is_empty() {
                st.steps_in_turn = 0;
                return 1; // nobody to switch to
            }
        } else if st.runnable.is_empty() {
            // sole runner: the wave cannot grow until this group
            // retires, so the whole remainder is one lease (the per-op
            // path draws nothing here either, so the RNG stays aligned)
            st.lease_grant = u64::MAX;
            st.lease_draws = 0;
            return u64::MAX;
        }
        st.insert_runnable(gid);
        st.pick_next();
        if st.current == Some(gid) {
            return st.lease_grant; // re-elected; no handoff needed
        }
        self.cv.notify_all();
        while st.current != Some(gid) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.lease_grant
    }

    /// Blocks until it is `gid`'s turn to start executing and returns
    /// the lease its election granted (always 0 in per-op mode, so the
    /// first op yields exactly as the legacy path did).
    fn wait_for_turn(&self, gid: usize) -> u64 {
        let mut st = self.lock();
        while st.current != Some(gid) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // from its first preemption point onward, electing this group
        // grants real ops (see `StepState::pick_next`)
        st.started[gid] = true;
        if st.chunked {
            st.lease_grant
        } else {
            0
        }
    }

    /// Retires `gid` and, in the same critical section, admits the next
    /// unstarted group to the wave (keeping the schedule deterministic).
    /// `unused` is the retiring group's leftover lease; re-elections
    /// pre-drawn for ops it never ran are rewound so the RNG stream
    /// matches the per-op path exactly. Returns the group this worker
    /// thread should run next, if any.
    fn finish_group(&self, gid: usize, unused: u64) -> Option<usize> {
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(gid), "finish from a group without the token");
        let rollback = unused.min(st.lease_draws);
        st.rng = st.rng.wrapping_sub(GOLDEN_GAMMA.wrapping_mul(rollback));
        st.lease_draws = 0;
        let claimed = if st.next_unstarted < st.num_groups {
            let g = st.next_unstarted;
            st.next_unstarted += 1;
            st.insert_runnable(g);
            Some(g)
        } else {
            None
        };
        if st.runnable.is_empty() {
            st.current = None;
        } else {
            st.pick_next();
        }
        self.cv.notify_all();
        claimed
    }
}

/// Whether stepwise launches default to chunked dispatch. `WD_SCHED_CHUNK=0`
/// forces per-op dispatch process-wide; anything else (including unset)
/// keeps chunking on. Per-launch overrides go through
/// `LaunchOptions::with_per_op_dispatch`.
#[must_use]
pub fn chunked_dispatch_default() -> bool {
    env_u64("WD_SCHED_CHUNK") != Some(0)
}

/// Runs `body(gid, sched, lease)` for every group id in `0..num_groups`
/// under the stepwise deterministic scheduler. `body` must route all
/// device-memory operations through a [`crate::GroupCtx`] built with the
/// provided [`StepSched`] so preemption points fire, seed the context's
/// lease countdown with the `lease` argument, and return the unused
/// lease at the end (0 when it tracks no lease) so mid-lease retirement
/// can rewind pre-drawn decisions. `chunked` selects multi-op leases vs
/// a scheduling decision at every op; both produce the identical
/// op-level interleaving.
pub(crate) fn run_stepwise<F>(schedule: Schedule, num_groups: usize, chunked: bool, body: F)
where
    F: Fn(usize, &StepSched, u64) -> u64 + Sync,
{
    if num_groups == 0 {
        return;
    }
    let wave = wave_size().min(num_groups);
    let sched = StepSched::new(schedule, num_groups, wave, chunked);
    let sched = &sched;
    let body = &body;
    std::thread::scope(|scope| {
        for t in 0..wave {
            scope.spawn(move || {
                let mut gid = t;
                loop {
                    let lease = sched.wait_for_turn(gid);
                    let unused = body(gid, sched, lease);
                    match sched.finish_group(gid, unused) {
                        Some(next) => gid = next,
                        None => break,
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    /// Per-op dispatch: a scheduling decision at every op, the legacy
    /// reference behavior the chunked path must reproduce bit-for-bit.
    fn per_op_trace<O>(schedule: Schedule, num_groups: usize, ops: O) -> Vec<usize>
    where
        O: Fn(usize) -> usize + Sync,
    {
        let log = StdMutex::new(Vec::new());
        run_stepwise(schedule, num_groups, false, |gid, sched, _| {
            for _ in 0..ops(gid) {
                sched.yield_point(gid);
                log.lock().unwrap().push(gid);
            }
            0
        });
        log.into_inner().unwrap()
    }

    /// Chunked dispatch driven exactly the way [`crate::GroupCtx::pace`]
    /// drives it: a local lease countdown, a real yield only on expiry,
    /// leftover lease returned for rewind on retirement.
    fn leased_trace<O>(schedule: Schedule, num_groups: usize, ops: O) -> Vec<usize>
    where
        O: Fn(usize) -> usize + Sync,
    {
        let log = StdMutex::new(Vec::new());
        run_stepwise(schedule, num_groups, true, |gid, sched, lease0| {
            let mut lease = lease0;
            for _ in 0..ops(gid) {
                if lease > 0 {
                    lease -= 1;
                } else {
                    lease = sched.yield_point(gid) - 1;
                }
                log.lock().unwrap().push(gid);
            }
            lease
        });
        log.into_inner().unwrap()
    }

    fn trace(schedule: Schedule, num_groups: usize, ops_per_group: usize) -> Vec<usize> {
        per_op_trace(schedule, num_groups, |_| ops_per_group)
    }

    #[test]
    fn every_group_runs_exactly_once() {
        let count = AtomicU64::new(0);
        run_stepwise(Schedule::Seeded(1), 100, true, |_, _, _| {
            count.fetch_add(1, Ordering::Relaxed);
            0
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn same_seed_same_trace() {
        for seed in [0, 1, 42, u64::MAX] {
            let a = trace(Schedule::Seeded(seed), 40, 7);
            let b = trace(Schedule::Seeded(seed), 40, 7);
            assert_eq!(a, b, "seed {seed} must replay identically");
            assert_eq!(a.len(), 40 * 7);
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let distinct: std::collections::HashSet<Vec<usize>> =
            (0..8).map(|s| trace(Schedule::Seeded(s), 16, 5)).collect();
        assert!(distinct.len() > 4, "seeds should explore interleavings");
    }

    #[test]
    fn reverse_runs_highest_first() {
        let t = trace(
            Schedule::Adversarial {
                mode: AdversarialMode::Reverse,
                seed: 0,
            },
            8,
            3,
        );
        // wave admits all 8 groups; the first op executed must belong to
        // the highest-numbered group
        assert_eq!(t[0], 7);
    }

    #[test]
    fn delay_one_starves_the_victim() {
        let victim = 3usize;
        let t = trace(
            Schedule::Adversarial {
                mode: AdversarialMode::DelayOne,
                seed: victim as u64,
            },
            8,
            4,
        );
        // all of the victim's ops must come after every other group's
        let last_other = t
            .iter()
            .rposition(|&g| g != victim)
            .expect("other groups ran");
        let first_victim = t.iter().position(|&g| g == victim).expect("victim ran");
        assert!(
            first_victim > last_other,
            "victim ran at {first_victim}, before another group at {last_other}: {t:?}"
        );
    }

    #[test]
    fn round_robin_rotates_in_order() {
        let t = trace(
            Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin { quantum: 1 },
                seed: 0,
            },
            4,
            3,
        );
        assert_eq!(t[..8], [0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn chunked_matches_per_op_seeded() {
        // variable op counts exercise mid-lease retirement (the RNG
        // rewind path) at many different offsets
        for seed in 0..24u64 {
            let ops = |gid: usize| 1 + (gid * 7 + seed as usize) % 11;
            let a = per_op_trace(Schedule::Seeded(seed), 24, ops);
            let b = leased_trace(Schedule::Seeded(seed), 24, ops);
            assert_eq!(a, b, "seed {seed}: chunked dispatch changed the interleaving");
        }
    }

    #[test]
    fn chunked_matches_per_op_past_wave() {
        // more groups than the wave: lease rewinds interact with
        // retirement-time admission
        for seed in [0, 3, 17, 255, u64::MAX] {
            let ops = |gid: usize| 2 + gid % 7;
            let a = per_op_trace(Schedule::Seeded(seed), 64, ops);
            let b = leased_trace(Schedule::Seeded(seed), 64, ops);
            assert_eq!(a, b, "seed {seed}: chunked dispatch changed the interleaving");
        }
    }

    #[test]
    fn chunked_matches_per_op_adversarial() {
        let schedules = [
            Schedule::Adversarial {
                mode: AdversarialMode::DelayOne,
                seed: 3,
            },
            Schedule::Adversarial {
                mode: AdversarialMode::Reverse,
                seed: 0,
            },
            Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin { quantum: 1 },
                seed: 0,
            },
            Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin { quantum: 3 },
                seed: 0,
            },
            Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin { quantum: 7 },
                seed: 0,
            },
        ];
        for schedule in schedules {
            let ops = |gid: usize| 2 + gid % 6;
            let a = per_op_trace(schedule, 12, ops);
            let b = leased_trace(schedule, 12, ops);
            assert_eq!(a, b, "{schedule}: chunked dispatch changed the interleaving");
        }
    }

    #[test]
    fn replay_hint_round_trips() {
        let schedules = [
            Schedule::Sequential,
            Schedule::Seeded(7),
            Schedule::Seeded(u64::MAX),
            Schedule::Adversarial {
                mode: AdversarialMode::DelayOne,
                seed: 5,
            },
            Schedule::Adversarial {
                mode: AdversarialMode::Reverse,
                seed: 0,
            },
            Schedule::Adversarial {
                mode: AdversarialMode::RoundRobin { quantum: 3 },
                seed: 9,
            },
        ];
        for s in schedules {
            assert_eq!(Schedule::parse_hint(&s.replay_hint()), Some(s), "{s}");
        }
        // hints embedded in a full sanitizer report line parse too
        let line = format!(
            "racecheck: PlainWrite races with Atomic by group 3 \
             (schedule=seeded(seed=7) [replay: {}])",
            Schedule::Seeded(7).replay_hint()
        );
        assert_eq!(Schedule::parse_hint(&line), Some(Schedule::Seeded(7)));
        // the pool hint's `WD_SCHED_SEED=<n>` placeholder is not a
        // schedule, and plain prose has no mode token at all
        assert_eq!(Schedule::parse_hint(&Schedule::Pool.replay_hint()), None);
        assert_eq!(Schedule::parse_hint("no tokens here"), None);
    }

    #[test]
    fn wave_bounds_resident_groups() {
        // groups > wave: later groups must not start before an earlier
        // one retires
        let started = StdMutex::new(Vec::new());
        run_stepwise(Schedule::Seeded(9), 64, true, |gid, _, _| {
            started.lock().unwrap().push(gid);
            0
        });
        let order = started.into_inner().unwrap();
        assert_eq!(order.len(), 64);
        let wave = wave_size().min(64);
        // group `wave + k` is only admitted after `k + 1` retirements, so
        // it cannot appear in the log before that many earlier entries
        for (pos, &g) in order.iter().enumerate() {
            if g >= wave {
                assert!(
                    pos > g - wave,
                    "group {g} ran at position {pos}, before the wave could admit it"
                );
            }
        }
    }

    #[test]
    fn from_env_parses_modes() {
        // avoid mutating the process env (tests run concurrently); just
        // exercise the default path
        assert_eq!(Schedule::from_env(), Schedule::Pool);
        assert!(Schedule::Seeded(3).is_stepwise());
        assert!(!Schedule::Sequential.is_stepwise());
        assert_eq!(format!("{}", Schedule::Seeded(3)), "seeded(seed=3)");
    }
}
