//! wd-lint: the workspace static analyzer.
//!
//! Every correctness weapon before this one was *dynamic* — wd-sanitizer,
//! wd-chaos, and the Wing–Gong checker all need a seed × schedule sweep
//! to execute. wd-lint is the static complement: a hand-rolled lexer
//! ([`lexer`]), a brace/scope tracker ([`scope`]), and call-site passes
//! ([`rules`]) that catch the same bug *classes* at `cargo`-speed,
//! before a single schedule runs:
//!
//! - **K-rules** (kernel safety): the static twins of synccheck's
//!   divergent-collective report and racecheck's lost-release-edge
//!   report, plus raw-atomic/unchecked access that bypasses the counted
//!   GroupCtx/window APIs.
//! - **D-rules** (determinism): wall-clock reads, ambient RNG, and
//!   hash-order iteration in paths that must replay from a seed.
//! - **F-rules** (fault-path hygiene): panics inside functions that
//!   promise a typed error.
//! - **C-rules** (config drift): kernel-crate `clippy.toml` copies must
//!   match the canonical `clippy-kernel.toml`.
//!
//! Findings are suppressed either by a per-rule path allowlist in
//! `wd-lint.toml` or by the checked-in [`baseline`] of grandfathered
//! findings (each with a mandatory one-line justification). CI runs
//! `wd-lint --deny`, so a new finding is a build break.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::path::{Path, PathBuf};

use baseline::Baseline;
use config::Config;
use scope::Scopes;

/// One reported finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`WD-K001`, ...).
    pub rule: String,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function name (`-` at module scope) — the baseline key.
    pub func: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} [fn {}] {}",
            self.file, self.line, self.rule, self.func, self.message
        )
    }
}

/// Per-file context rules consult.
pub struct FileCtx {
    /// Repo-relative path, `/`-separated.
    pub rel: String,
    /// K-rules apply (file is inside a kernel crate).
    pub kernel: bool,
    /// D-rules apply (file is inside a determinism-scoped path).
    pub determinism: bool,
}

impl FileCtx {
    /// Build a finding anchored at token `i`.
    pub(crate) fn finding(
        &self,
        scopes: &Scopes,
        i: usize,
        line: u32,
        rule: &str,
        message: String,
    ) -> Finding {
        let func = scopes
            .enclosing_fn(i)
            .map(|(name, _, _)| name.to_string())
            .unwrap_or_else(|| "-".to_string());
        Finding {
            rule: rule.to_string(),
            file: self.rel.clone(),
            line,
            func,
            message,
        }
    }
}

/// Lint one file's source text. `ctx` decides which rule families run;
/// config allowlists are applied, the baseline is not (that is a
/// workspace-level concern).
pub fn lint_source(src: &str, ctx: &FileCtx, cfg: &Config) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let scopes = Scopes::build(&toks);
    let mut out = Vec::new();
    rules::run_all(&toks, &scopes, ctx, cfg, &mut out);
    out.retain(|f| !cfg.is_allowed(&f.rule, &f.file));
    out.sort_by_key(|f| (f.line, f.rule.clone()));
    out
}

/// Lint a file on disk, deriving the rule-family context from `cfg`
/// unless forced.
pub fn lint_file(
    root: &Path,
    path: &Path,
    cfg: &Config,
    force_kernel: bool,
    force_determinism: bool,
) -> Result<Vec<Finding>, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {}", path.display(), e))?;
    let rel = rel_path(root, path);
    let ctx = FileCtx {
        kernel: force_kernel || cfg.is_kernel_path(&rel),
        determinism: force_determinism || cfg.is_determinism_path(&rel),
        rel,
    };
    Ok(lint_source(&src, &ctx, cfg))
}

/// Repo-relative, `/`-separated path (falls back to the file name when
/// `path` is outside `root`).
fn rel_path(root: &Path, path: &Path) -> String {
    let canon_root = root.canonicalize().unwrap_or_else(|_| root.to_path_buf());
    let canon = path.canonicalize().unwrap_or_else(|_| path.to_path_buf());
    let rel = canon
        .strip_prefix(&canon_root)
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|_| {
            canon
                .file_name()
                .map(PathBuf::from)
                .unwrap_or_else(|| canon.clone())
        });
    rel.to_string_lossy().replace('\\', "/")
}

/// The result of a workspace lint.
pub struct WorkspaceReport {
    /// Findings that survived allowlists and the baseline.
    pub surfaced: Vec<Finding>,
    /// Findings eaten by the baseline.
    pub suppressed: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
}

/// Walk `root`'s workspace sources (`crates/*/src/**/*.rs` — vendored
/// `shims/`, `target/`, tests, and examples are out of scope), run all
/// rules plus the WD-C001 clippy-drift check, and apply the baseline.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<WorkspaceReport, String> {
    let mut findings = Vec::new();
    let mut files = 0usize;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {}", crates_dir.display(), e))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in &crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rust_files(&src)? {
            findings.extend(lint_file(root, &file, cfg, false, false)?);
            files += 1;
        }
    }
    findings.extend(check_clippy_drift(root, cfg)?);
    let baseline = if cfg.baseline.is_empty() {
        Baseline::default()
    } else {
        Baseline::load(&root.join(&cfg.baseline))?
    };
    let (mut surfaced, suppressed) = baseline.apply(findings);
    surfaced.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(WorkspaceReport {
        surfaced,
        suppressed,
        files,
    })
}

/// WD-C001: every kernel crate's `clippy.toml` must exist and match
/// the canonical copy byte-for-byte. (The checked-in copies are
/// symlinks, so drift normally *can't* happen — this catches a symlink
/// replaced by an edited file, or a new kernel crate without one.)
pub fn check_clippy_drift(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let mut out = Vec::new();
    if cfg.clippy_canonical.is_empty() {
        return Ok(out);
    }
    let canonical_path = root.join(&cfg.clippy_canonical);
    let canonical = std::fs::read_to_string(&canonical_path)
        .map_err(|e| format!("{}: {}", canonical_path.display(), e))?;
    for krate in &cfg.kernel_crates {
        let rel = format!("crates/{krate}/clippy.toml");
        let path = root.join(&rel);
        let mk = |message: String| Finding {
            rule: "WD-C001".to_string(),
            file: rel.clone(),
            line: 1,
            func: "-".to_string(),
            message,
        };
        match std::fs::read_to_string(&path) {
            Ok(text) if text == canonical => {}
            Ok(_) => out.push(mk(format!(
                "kernel-crate clippy.toml drifted from the canonical {} — edit the canonical \
                 copy instead (the per-crate files are symlinks to it)",
                cfg.clippy_canonical
            ))),
            Err(_) => out.push(mk(format!(
                "kernel crate `{krate}` has no clippy.toml — symlink {} here so the \
                 disallowed-method list applies",
                cfg.clippy_canonical
            ))),
        }
    }
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d).map_err(|e| format!("{}: {}", d.display(), e))?;
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(kernel: bool, determinism: bool) -> FileCtx {
        FileCtx {
            rel: "crates/test/src/lib.rs".to_string(),
            kernel,
            determinism,
        }
    }

    #[test]
    fn masked_collective_flagged() {
        let src = r#"
fn kernel(ctx: &GroupCtx) {
    let active = ctx.full_mask() & !(1 << r);
    let _ = ctx.ballot_where(active, |rr| is_vacant(w.lane(rr)));
}
"#;
        let f = lint_source(src, &ctx(true, false), &Config::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "WD-K001");
        assert_eq!(f[0].func, "kernel");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn full_mask_collective_clean() {
        let src = r#"
fn kernel(ctx: &GroupCtx) {
    let _ = ctx.ballot_where(ctx.full_mask(), |rr| is_vacant(w.lane(rr)));
    let dup = ctx.ballot(|r| key_of(window.lane(r)) == key);
}
"#;
        assert!(lint_source(src, &ctx(true, false), &Config::default()).is_empty());
    }

    #[test]
    fn host_code_not_kernel_scoped() {
        let src = "fn host() { let active = 1; x.ballot_where(active, f); }";
        assert!(lint_source(src, &ctx(true, false), &Config::default()).is_empty());
    }

    #[test]
    fn plain_store_publish_flagged_and_sentinel_cas_clean() {
        let bad = r#"
fn kernel(ctx: &GroupCtx) {
    if ctx.cas(keys, idx, expected, word).is_ok() {
        ctx.write(values, idx, val);
    }
}
"#;
        let f = lint_source(bad, &ctx(true, false), &Config::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "WD-K002");
        let good = r#"
fn kernel(ctx: &GroupCtx) {
    if ctx.cas(keys, idx, expected, word).is_ok() {
        let _ = ctx.cas(values, idx, EMPTY, val);
        ctx.write_shared(values, idx, val);
    }
    ctx.write(values, idx, val);
}
"#;
        assert!(lint_source(good, &ctx(true, false), &Config::default()).is_empty());
    }

    #[test]
    fn fault_path_unwrap_flagged_outside_tests_only() {
        let src = r#"
fn put(&mut self) -> Result<PutResponse, OpError> {
    let x = self.scratch.lock().unwrap();
    Ok(x)
}
fn infallible() -> u32 { y.unwrap() }
#[cfg(test)]
mod tests {
    fn t() -> Result<(), OpError> { z.unwrap(); Ok(()) }
}
"#;
        let f = lint_source(src, &ctx(false, false), &Config::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "WD-F001");
        assert_eq!(f[0].func, "put");
    }

    #[test]
    fn hash_iteration_flagged_btree_clean() {
        let src = r#"
struct S { pages: HashMap<u64, u32>, ordered: BTreeMap<u64, u32> }
fn tally(s: &S) -> u64 {
    let mut sum = 0;
    for (k, v) in &s.pages { sum += v; }
    for (k, v) in &s.ordered { sum += v; }
    sum
}
"#;
        let f = lint_source(src, &ctx(false, true), &Config::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "WD-D003");
    }

    #[test]
    fn rel_path_outside_root() {
        let rel = rel_path(Path::new("/nonexistent-root"), Path::new("/tmp/x.rs"));
        assert!(rel.ends_with("x.rs"));
    }
}
