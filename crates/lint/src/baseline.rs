//! The grandfathered-findings baseline. Entries key on *(rule, file,
//! enclosing fn)* with a count — not on line numbers — so unrelated
//! edits above a finding don't invalidate the baseline, while new
//! findings of the same rule in the same function still surface (the
//! count is exceeded).
//!
//! Format, one entry per line:
//!
//! ```text
//! WD-F001 crates/core/src/map.rs build_table count=2  # scratch alloc is infallible at fixed capacity
//! ```
//!
//! `count=N` is optional (default 1). `#` starts the mandatory
//! one-line justification — entries without one are rejected, so every
//! grandfathered finding explains itself.

use std::collections::BTreeMap;
use std::path::Path;

use crate::Finding;

/// Parsed baseline: (rule, file, fn) -> allowed count.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parse baseline text; `Err` carries the offending line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("baseline line {}: {} (`{}`)", ln + 1, m, raw.trim_end());
            let (entry, justification) = match line.split_once('#') {
                Some((e, j)) => (e.trim(), j.trim()),
                None => return Err(err("missing `# justification`")),
            };
            if justification.is_empty() {
                return Err(err("empty justification"));
            }
            let mut parts = entry.split_whitespace();
            let rule = parts.next().ok_or_else(|| err("missing rule id"))?;
            let file = parts.next().ok_or_else(|| err("missing file path"))?;
            let func = parts.next().ok_or_else(|| err("missing function name"))?;
            let mut count = 1usize;
            if let Some(extra) = parts.next() {
                let n = extra
                    .strip_prefix("count=")
                    .and_then(|n| n.parse::<usize>().ok())
                    .ok_or_else(|| err("trailing field must be count=N"))?;
                count = n;
            }
            if parts.next().is_some() {
                return Err(err("too many fields"));
            }
            *entries
                .entry((rule.to_string(), file.to_string(), func.to_string()))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Load from a path; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("{}: {}", path.display(), e)),
        }
    }

    /// Split `findings` into (surfaced, suppressed): each (rule, file,
    /// fn) bucket suppresses up to its baselined count, oldest (lowest
    /// line) first, so a *new* finding in a grandfathered function
    /// still surfaces once the count is exceeded.
    pub fn apply(&self, mut findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        findings.sort_by(|a, b| {
            (&a.file, &a.rule, a.line).cmp(&(&b.file, &b.rule, b.line))
        });
        let mut budget: BTreeMap<(String, String, String), usize> = self.entries.clone();
        let mut surfaced = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let key = (f.rule.clone(), f.file.clone(), f.func.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    suppressed.push(f);
                }
                _ => surfaced.push(f),
            }
        }
        (surfaced, suppressed)
    }

    /// Number of entries (for `--stats`).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, func: &str, line: u32) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            func: func.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn counts_and_overflow() {
        let b = Baseline::parse(
            "WD-F001 a.rs f count=2  # legacy\nWD-F001 a.rs g  # one-off\n",
        )
        .unwrap();
        assert_eq!(b.len(), 3);
        let fs = vec![
            finding("WD-F001", "a.rs", "f", 1),
            finding("WD-F001", "a.rs", "f", 2),
            finding("WD-F001", "a.rs", "f", 3),
            finding("WD-F001", "a.rs", "g", 9),
        ];
        let (surfaced, suppressed) = b.apply(fs);
        assert_eq!(suppressed.len(), 3);
        assert_eq!(surfaced.len(), 1);
        assert_eq!(surfaced[0].line, 3); // the newest one overflows
    }

    #[test]
    fn justification_required() {
        assert!(Baseline::parse("WD-F001 a.rs f\n").is_err());
        assert!(Baseline::parse("WD-F001 a.rs f #\n").is_err());
        assert!(Baseline::parse("WD-F001 a.rs f # ok\n").is_ok());
    }
}
