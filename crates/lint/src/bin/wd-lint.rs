//! `wd-lint` — static analysis for the WarpDrive workspace.
//!
//! ```text
//! wd-lint [--deny] [--root DIR] [--no-baseline] [--rules] [FILES...]
//!         [--force-kernel] [--force-determinism]
//! ```
//!
//! With no FILES, lints the whole workspace (`crates/*/src`), applies
//! `wd-lint.toml` allowlists and the `wd-lint.baseline`, and checks
//! kernel-crate clippy.toml drift. With FILES, lints exactly those
//! files (no baseline, no drift check) — the mode fixture tests and
//! focused runs use.
//!
//! Exit codes: 0 = clean (or findings without `--deny`), 1 = findings
//! under `--deny`, 2 = usage/config/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use wd_lint::config::Config;
use wd_lint::{lint_file, lint_workspace, rules};

struct Args {
    deny: bool,
    root: PathBuf,
    no_baseline: bool,
    force_kernel: bool,
    force_determinism: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        root: std::env::current_dir().map_err(|e| e.to_string())?,
        no_baseline: false,
        force_kernel: false,
        force_determinism: false,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a directory".to_string())?,
                )
            }
            "--no-baseline" => args.no_baseline = true,
            "--force-kernel" => args.force_kernel = true,
            "--force-determinism" => args.force_determinism = true,
            "--rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: wd-lint [--deny] [--root DIR] [--no-baseline] [--rules] \
                            [--force-kernel] [--force-determinism] [FILES...]"
                    .to_string())
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("wd-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in rules::RULES {
            println!("{}  {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let mut cfg = match Config::load(&args.root) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("wd-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.no_baseline {
        cfg.baseline = String::new();
    }

    let findings = if args.files.is_empty() {
        match lint_workspace(&args.root, &cfg) {
            Ok(report) => {
                eprintln!(
                    "wd-lint: scanned {} files, {} finding(s) ({} baselined)",
                    report.files,
                    report.surfaced.len(),
                    report.suppressed.len()
                );
                report.surfaced
            }
            Err(msg) => {
                eprintln!("wd-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut all = Vec::new();
        for f in &args.files {
            match lint_file(&args.root, f, &cfg, args.force_kernel, args.force_determinism) {
                Ok(fs) => all.extend(fs),
                Err(msg) => {
                    eprintln!("wd-lint: {msg}");
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else if args.deny {
        eprintln!("wd-lint: {} finding(s), failing (--deny)", findings.len());
        ExitCode::from(1)
    } else {
        eprintln!("wd-lint: {} finding(s) (advisory; use --deny to fail)", findings.len());
        ExitCode::SUCCESS
    }
}
