//! The rule passes. Each pass walks the token stream with the scope
//! tree at hand and pushes [`Finding`]s. Rule ids are stable and
//! documented here; DESIGN.md §6.4 carries the narrative versions.
//!
//! | id      | family        | what it catches                                             |
//! |---------|---------------|-------------------------------------------------------------|
//! | WD-K001 | kernel safety | collective with a carved-down participation mask, or a      |
//! |         |               | collective lexically nested under a lane-divergent condition|
//! | WD-K002 | kernel safety | plain `write` publishing a CAS-claimed slot (lost release)  |
//! | WD-K003 | kernel safety | raw atomic CAS-class calls / unchecked access in kernel code|
//! | WD-D001 | determinism   | wall-clock reads (`Instant::now`, `SystemTime::now`)        |
//! | WD-D002 | determinism   | ambient RNG (`thread_rng`, `from_entropy`, `OsRng`)         |
//! | WD-D003 | determinism   | iteration over `HashMap`/`HashSet` (nondeterministic order) |
//! | WD-F001 | fault paths   | `unwrap`/`expect` inside a fault-typed-`Result` fn          |
//! | WD-F002 | fault paths   | `panic!`-family macros inside a fault-typed-`Result` fn     |
//! | WD-C001 | config drift  | kernel-crate `clippy.toml` differs from the canonical copy  |

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{join, SpannedTok};
use crate::scope::Scopes;
use crate::{FileCtx, Finding};

/// Stable rule metadata, for `--rules` and the docs self-check.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Every rule the analyzer knows. Order is report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "WD-K001",
        summary: "divergent collective: masked ballot/any with a non-full participation mask, \
                  or a collective nested under a lane-divergent condition",
    },
    RuleInfo {
        id: "WD-K002",
        summary: "plain device write publishing a CAS-claimed slot; publish via cas-from-sentinel, \
                  exchange, or write_shared so the release edge exists",
    },
    RuleInfo {
        id: "WD-K003",
        summary: "raw atomic CAS-class call or unchecked slice access inside kernel code; \
                  device memory goes through GroupCtx/window APIs",
    },
    RuleInfo {
        id: "WD-D001",
        summary: "wall-clock read in a determinism-scoped path (breaks seed replay)",
    },
    RuleInfo {
        id: "WD-D002",
        summary: "ambient RNG in a determinism-scoped path (breaks seed replay)",
    },
    RuleInfo {
        id: "WD-D003",
        summary: "iteration over HashMap/HashSet in a determinism-scoped path \
                  (nondeterministic order; use BTreeMap/Vec or sort first)",
    },
    RuleInfo {
        id: "WD-F001",
        summary: "unwrap/expect inside a fn returning a fault-typed Result; propagate the error",
    },
    RuleInfo {
        id: "WD-F002",
        summary: "panic!/unreachable!/todo!/unimplemented! inside a fn returning a fault-typed \
                  Result; return the error instead",
    },
    RuleInfo {
        id: "WD-C001",
        summary: "kernel-crate clippy.toml drifted from the canonical clippy-kernel.toml",
    },
];

/// Collectives whose divergent execution synccheck flags dynamically.
const COLLECTIVES: &[&str] = &[
    "ballot",
    "ballot_where",
    "any",
    "any_where",
    "all",
    "read_window",
    "reload_window",
];

/// Masked collectives that take an explicit participation mask.
const MASKED_COLLECTIVES: &[&str] = &["ballot_where", "any_where"];

/// CAS-class / unchecked tokens banned inside kernel code (WD-K003).
const RAW_DEVICE_TOKENS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
    "get_unchecked",
    "get_unchecked_mut",
];

/// HashMap/HashSet methods whose results depend on hash-iteration
/// order.
const ORDER_DEPENDENT_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Run every token-level rule over one file.
pub fn run_all(
    toks: &[SpannedTok],
    scopes: &Scopes,
    ctx: &FileCtx,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    if ctx.kernel {
        k001_divergent_collectives(toks, scopes, ctx, out);
        k002_plain_store_publish(toks, scopes, ctx, out);
        k003_raw_device_access(toks, scopes, ctx, out);
    }
    if ctx.determinism {
        d001_wall_clock(toks, scopes, ctx, out);
        d002_ambient_rng(toks, scopes, ctx, out);
        d003_hash_iteration(toks, scopes, ctx, out);
    }
    f_rules_fault_paths(toks, scopes, ctx, cfg, out);
}

/// Is token `i` a method-call head: `.name(`?
fn is_method_call(toks: &[SpannedTok], i: usize) -> bool {
    i > 0 && toks[i - 1].is_sym(".") && toks.get(i + 1).is_some_and(|t| t.is_sym("("))
}

/// Text of the first argument of the call opening at `toks[open]`
/// (which must be `(`), stopping at the first depth-1 comma.
fn first_arg_text(toks: &[SpannedTok], open: usize) -> String {
    let mut depth = 0i32;
    let mut end = open;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    end = j;
                    break;
                }
            }
            "," if depth == 1 => {
                end = j;
                break;
            }
            _ => {}
        }
    }
    join(&toks[open + 1..end])
}

/// Number of top-level arguments of the call opening at `toks[open]`.
fn arg_count(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in toks.iter().skip(open) {
        match t.text() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => commas += 1,
            _ => {
                if depth >= 1 {
                    any = true;
                }
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Does `mask` read as a full participation mask: `full_mask()` or
/// `<ident>.full_mask()`?
fn is_full_mask_expr(mask: &str) -> bool {
    let m = mask.trim();
    if m == "full_mask()" {
        return true;
    }
    m.strip_suffix(".full_mask()")
        .is_some_and(|recv| !recv.is_empty() && recv.chars().all(|c| c.is_alphanumeric() || c == '_'))
}

/// WD-K001: two triggers, both the static twin of synccheck's
/// divergent-collective report.
fn k001_divergent_collectives(
    toks: &[SpannedTok],
    scopes: &Scopes,
    ctx: &FileCtx,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        let name = t.text();
        if !COLLECTIVES.contains(&name) || !is_method_call(toks, i) {
            continue;
        }
        if !scopes.in_kernel(i) || scopes.in_test(i) {
            continue;
        }
        // trigger A: masked collective whose mask is not the full mask
        if MASKED_COLLECTIVES.contains(&name) {
            let mask = first_arg_text(toks, i + 1);
            if !is_full_mask_expr(&mask) {
                out.push(ctx.finding(
                    scopes,
                    i,
                    toks[i].line,
                    "WD-K001",
                    format!(
                        "collective `{name}` called with participation mask `{mask}` — a mask \
                         carved below full_mask() is exactly what synccheck flags at runtime; \
                         every lane of the group must reach every collective"
                    ),
                ));
                continue;
            }
        }
        // trigger B: collective nested under a lane-divergent condition
        let conds = scopes.enclosing_conds(i, true);
        if let Some(bad) = conds.iter().find(|c| c.contains(".lane(")) {
            out.push(ctx.finding(
                scopes,
                i,
                toks[i].line,
                "WD-K001",
                format!(
                    "collective `{name}` nested under lane-divergent condition `{}` — lanes that \
                     fail the condition never reach the collective (synccheck's \
                     divergent-collective report, caught statically)",
                    truncate(bad, 60)
                ),
            ));
        }
    }
}

/// WD-K002: plain `write` inside the success arm of a CAS claim. The
/// claim's CAS orders the *key* word only; publishing the value word
/// with a plain store drops the release edge racecheck relies on (the
/// `broken_publish_plain_store` shape).
fn k002_plain_store_publish(
    toks: &[SpannedTok],
    scopes: &Scopes,
    ctx: &FileCtx,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("write") || !is_method_call(toks, i) {
            continue;
        }
        if !scopes.in_kernel(i) || scopes.in_test(i) {
            continue;
        }
        // device writes are write(slice, idx, val): 3 args — screens
        // out lock guards (`x.write()`) and io writers (`w.write(buf)`)
        if arg_count(toks, i + 1) < 3 {
            continue;
        }
        let conds = scopes.enclosing_conds(i, true);
        if let Some(claim) = conds
            .iter()
            .find(|c| c.contains(".cas(") && c.contains("is_ok"))
        {
            out.push(ctx.finding(
                scopes,
                i,
                toks[i].line,
                "WD-K002",
                format!(
                    "plain `write` publishes a slot claimed by `{}` — a plain store after a CAS \
                     claim has no release edge (racecheck's broken_publish_plain_store shape); \
                     publish with a cas from the sentinel, exchange, or write_shared",
                    truncate(claim, 60)
                ),
            ));
        }
    }
}

/// WD-K003: raw CAS-class atomics / unchecked access in kernel code.
fn k003_raw_device_access(
    toks: &[SpannedTok],
    scopes: &Scopes,
    ctx: &FileCtx,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        let name = t.text();
        if !RAW_DEVICE_TOKENS.contains(&name) {
            continue;
        }
        if !scopes.in_kernel(i) || scopes.in_test(i) {
            continue;
        }
        out.push(ctx.finding(
            scopes,
            i,
            toks[i].line,
            "WD-K003",
            format!(
                "`{name}` inside kernel code bypasses the GroupCtx/window APIs — raw CAS-class \
                 calls are uncounted by the timing model and invisible to wd-sanitizer's \
                 happens-before edges"
            ),
        ));
    }
}

/// WD-D001: `Instant::now` / `SystemTime::now`.
fn d001_wall_clock(toks: &[SpannedTok], scopes: &Scopes, ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let is_now = (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_sym("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"));
        if !is_now || scopes.in_test(i) {
            continue;
        }
        out.push(ctx.finding(
            scopes,
            i,
            toks[i].line,
            "WD-D001",
            format!(
                "`{}::now()` in a determinism-scoped path — wall-clock reads break replay from a \
                 schedule seed; bill modeled time via the clock instead",
                t.text()
            ),
        ));
    }
}

/// WD-D002: ambient RNG entry points.
fn d002_ambient_rng(toks: &[SpannedTok], scopes: &Scopes, ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let name = t.text();
        if !matches!(name, "thread_rng" | "from_entropy" | "OsRng") || scopes.in_test(i) {
            continue;
        }
        out.push(ctx.finding(
            scopes,
            i,
            toks[i].line,
            "WD-D002",
            format!(
                "`{name}` in a determinism-scoped path — ambient randomness breaks replay; seed a \
                 SplitMix64/StdRng from the schedule or fault seed instead"
            ),
        ));
    }
}

/// WD-D003: iteration over `HashMap`/`HashSet` bindings. Two passes:
/// collect identifiers declared/initialized with a hash-map type, then
/// flag order-dependent method calls and `for ... in` loops over them.
fn d003_hash_iteration(
    toks: &[SpannedTok],
    scopes: &Scopes,
    ctx: &FileCtx,
    out: &mut Vec<Finding>,
) {
    let hashy = collect_hash_bindings(toks);
    if hashy.is_empty() {
        return;
    }
    let flag = |out: &mut Vec<Finding>, scopes: &Scopes, i: usize, binding: &str, how: &str| {
        out.push(ctx.finding(
            scopes,
            i,
            toks[i].line,
            "WD-D003",
            format!(
                "{how} over `{binding}`, which is bound to a HashMap/HashSet — hash iteration \
                 order is nondeterministic across runs; use a BTreeMap/Vec or sort before \
                 iterating"
            ),
        ));
    };
    for (i, t) in toks.iter().enumerate() {
        if scopes.in_test(i) {
            continue;
        }
        // `binding.iter()` / `self.binding.keys()` ...
        if ORDER_DEPENDENT_METHODS.contains(&t.text()) && is_method_call(toks, i) && i >= 2 {
            if let crate::lexer::Tok::Ident(recv) = &toks[i - 2].tok {
                if hashy.contains(recv.as_str()) {
                    flag(out, scopes, i, recv, &format!("`.{}()`", t.text()));
                }
            }
        }
        // `for pat in [&[mut]] path.to.binding {`
        if t.is_ident("for") {
            if let Some((j, binding)) = for_loop_iterated_binding(toks, i) {
                if hashy.contains(binding.as_str()) {
                    flag(out, scopes, j, &binding, "`for` loop");
                }
            }
        }
    }
}

/// Identifiers bound (let/field/param/assign) to a HashMap/HashSet.
fn collect_hash_bindings(toks: &[SpannedTok]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // walk back over a path prefix (`std::collections::`)
        let mut j = i;
        while j >= 2 && toks[j - 1].is_sym("::") {
            j -= 2;
        }
        // skip `&`, `&mut`, `mut` between the binder and the type
        let mut k = j;
        while k >= 1 {
            let p = toks[k - 1].text();
            if p == "&" || p == "mut" {
                k -= 1;
            } else {
                break;
            }
        }
        if k == 0 {
            continue;
        }
        match toks[k - 1].text() {
            // `name: HashMap<...>` — let type ascription, struct
            // field, or fn param
            ":" if k >= 2 => {
                if let crate::lexer::Tok::Ident(name) = &toks[k - 2].tok {
                    set.insert(name.clone());
                }
            }
            // `name = HashMap::new()` / `let mut name = HashMap::...`
            "=" if k >= 2 => {
                if let crate::lexer::Tok::Ident(name) = &toks[k - 2].tok {
                    set.insert(name.clone());
                }
            }
            _ => {}
        }
    }
    set
}

/// For a `for` at `toks[i]`, the binding iterated over: the last
/// identifier between the depth-0 `in` and the loop `{`, provided the
/// expression is a plain (possibly field-projected, possibly
/// borrowed) path — calls like `m.keys()` are left to the method pass.
fn for_loop_iterated_binding(toks: &[SpannedTok], i: usize) -> Option<(usize, String)> {
    let mut depth = 0i32;
    let mut in_at = None;
    for (j, t) in toks.iter().enumerate().skip(i + 1) {
        match t.text() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => {
                in_at = Some(j);
                break;
            }
            "{" | ";" => return None,
            _ => {}
        }
    }
    let start = in_at? + 1;
    let mut last_ident: Option<(usize, String)> = None;
    for (j, t) in toks.iter().enumerate().skip(start) {
        match t.text() {
            "{" => return last_ident,
            "&" | "mut" | "." | "self" => continue,
            "(" => return None, // a call or tuple — not a plain path
            _ => match &t.tok {
                crate::lexer::Tok::Ident(name) => last_ident = Some((j, name.clone())),
                _ => return None,
            },
        }
    }
    None
}

/// WD-F001/WD-F002: panics inside fault-typed-`Result` fns.
fn f_rules_fault_paths(
    toks: &[SpannedTok],
    scopes: &Scopes,
    ctx: &FileCtx,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let fault_fn = |i: usize| -> bool {
        scopes.enclosing_fn(i).is_some_and(|(_, ret, _)| {
            ret.contains("Result") && cfg.fault_error_types.iter().any(|t| ret.contains(t.as_str()))
        })
    };
    for (i, t) in toks.iter().enumerate() {
        if scopes.in_test(i) {
            continue;
        }
        let name = t.text();
        if (name == "unwrap" || name == "expect") && is_method_call(toks, i) && fault_fn(i) {
            out.push(ctx.finding(
                scopes,
                i,
                toks[i].line,
                "WD-F001",
                format!(
                    "`.{name}()` inside a fn that returns a fault-typed Result — a panic here \
                     tears down the caller that was promised a typed error; propagate with `?` \
                     or map into the fn's error type"
                ),
            ));
        }
        let panicky = matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|n| n.is_sym("!"));
        if panicky && fault_fn(i) {
            out.push(ctx.finding(
                scopes,
                i,
                toks[i].line,
                "WD-F002",
                format!(
                    "`{name}!` inside a fn that returns a fault-typed Result — fault paths must \
                     degrade through the error type, not abort the process"
                ),
            ));
        }
    }
}

/// Clip long condition text in messages.
fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}
