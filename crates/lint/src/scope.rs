//! Brace/scope tracker: turns the flat token stream into a tree of
//! lexical scopes, classifying each `{...}` block by the "header" that
//! precedes it (everything since the last `{`, `}`, or statement-level
//! `;`). Rules then ask questions like "is this call site inside a
//! kernel fn?", "is some enclosing conditional's condition reading
//! per-lane state?", or "does the nearest enclosing fn return a
//! fault-typed Result?" — all without a real parser.
//!
//! Classification is deliberately conservative: anything the header
//! heuristics don't recognize (struct literals, bare blocks, `unsafe`,
//! `impl`/`mod` bodies...) becomes a neutral [`ScopeKind::Other`] that
//! never triggers or suppresses a rule by itself.

use crate::lexer::{join, SpannedTok};

/// What kind of construct opened a scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeKind {
    /// `fn name(...) -> Ret {`; also captures closures' enclosing fn.
    Fn {
        name: String,
        /// Return-type text after the depth-0 `->` (empty when none).
        ret: String,
        /// Full signature text (params included) for kernel detection.
        sig: String,
    },
    /// `|params| {` or `move |params| {`.
    Closure { params: String },
    /// `if cond {`, `else if cond {`, `while cond {` — a conditional
    /// body; `cond` is the header text after the keyword.
    Cond { cond: String },
    /// `match head { ... }` — the whole body is treated as one
    /// conditional region with the match head as its condition.
    Match { head: String },
    /// `for pat in iter {`, `loop {` — uniform iteration, not a
    /// divergence source by itself.
    Loop,
    /// `else {` — conditionally executed, but with no condition text
    /// of its own.
    Else,
    /// Anything else: struct literals, `impl`/`mod`/`trait` bodies,
    /// bare and `unsafe` blocks, match arms...
    Other,
}

/// One lexical scope: a `{...}` region.
#[derive(Debug, Clone)]
pub struct Scope {
    pub kind: ScopeKind,
    /// Index into `Scopes::scopes` of the parent (self for the root).
    pub parent: usize,
    /// True when this scope's header carries `#[test]` or
    /// `#[cfg(test)]` — all findings inside are suppressed.
    pub is_test: bool,
}

/// The scope tree plus a per-token scope id.
pub struct Scopes {
    pub scopes: Vec<Scope>,
    /// `scope_of[i]` = innermost scope containing token `i`.
    pub scope_of: Vec<usize>,
}

impl Scopes {
    /// Build the scope tree for a token stream.
    pub fn build(toks: &[SpannedTok]) -> Scopes {
        let mut scopes = vec![Scope {
            kind: ScopeKind::Other,
            parent: 0,
            is_test: false,
        }];
        let mut stack: Vec<usize> = vec![0];
        let mut scope_of = vec![0usize; toks.len()];
        // header = tokens since the last `{`, `}`, or depth-0 `;`
        let mut header_start = 0usize;
        // non-brace bracket depth inside the current header, so `;`
        // inside `for i in 0..f(a; b)`-ish positions or generics don't
        // truncate it (only depth-0 `;` resets)
        let mut hdr_paren = 0i32;
        for (i, t) in toks.iter().enumerate() {
            scope_of[i] = *stack.last().unwrap();
            match t.text() {
                "{" => {
                    let header = &toks[header_start..i];
                    let kind = classify(header);
                    let is_test = header_is_test(header);
                    let parent = *stack.last().unwrap();
                    let id = scopes.len();
                    scopes.push(Scope {
                        kind,
                        parent,
                        is_test,
                    });
                    stack.push(id);
                    header_start = i + 1;
                    hdr_paren = 0;
                }
                "}" => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                    header_start = i + 1;
                    hdr_paren = 0;
                }
                "(" | "[" => hdr_paren += 1,
                ")" | "]" => hdr_paren -= 1,
                ";" if hdr_paren <= 0 => {
                    header_start = i + 1;
                }
                _ => {}
            }
        }
        Scopes { scopes, scope_of }
    }

    /// Iterate the scope chain from the innermost scope containing
    /// token `i` outwards (root last).
    pub fn chain_at(&self, i: usize) -> impl Iterator<Item = &Scope> + '_ {
        let mut cur = self.scope_of[i];
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let s = &self.scopes[cur];
            if s.parent == cur {
                done = true;
            }
            cur = s.parent;
            Some(s)
        })
    }

    /// True when token `i` sits inside test code (`#[test]` fn or
    /// `#[cfg(test)]` mod).
    pub fn in_test(&self, i: usize) -> bool {
        self.chain_at(i).any(|s| s.is_test)
    }

    /// The nearest enclosing `fn` scope's (name, ret, sig), looking
    /// through closures and blocks.
    pub fn enclosing_fn(&self, i: usize) -> Option<(&str, &str, &str)> {
        self.chain_at(i).find_map(|s| match &s.kind {
            ScopeKind::Fn { name, ret, sig } => {
                Some((name.as_str(), ret.as_str(), sig.as_str()))
            }
            _ => None,
        })
    }

    /// True when token `i` is inside kernel code: a fn whose signature
    /// mentions `GroupCtx`, or a closure whose parameter list does.
    /// Walks the whole chain so helpers nested inside a kernel closure
    /// still count.
    pub fn in_kernel(&self, i: usize) -> bool {
        self.chain_at(i).any(|s| match &s.kind {
            ScopeKind::Fn { sig, .. } => sig.contains("GroupCtx"),
            ScopeKind::Closure { params } => params.contains("GroupCtx"),
            _ => false,
        })
    }

    /// Conditions of all enclosing conditional scopes (innermost
    /// first), stopping at the kernel boundary when `stop_at_kernel`
    /// (conditions outside the kernel fn can't make its collectives
    /// divergent).
    pub fn enclosing_conds(&self, i: usize, stop_at_kernel: bool) -> Vec<&str> {
        let mut out = Vec::new();
        for s in self.chain_at(i) {
            match &s.kind {
                ScopeKind::Cond { cond } => out.push(cond.as_str()),
                ScopeKind::Match { head } => out.push(head.as_str()),
                ScopeKind::Fn { sig, .. } if stop_at_kernel && sig.contains("GroupCtx") => break,
                ScopeKind::Closure { params }
                    if stop_at_kernel && params.contains("GroupCtx") =>
                {
                    break
                }
                _ => {}
            }
        }
        out
    }
}

/// Does the header carry a `#[test]` or `#[cfg(test)]` attribute?
fn header_is_test(header: &[SpannedTok]) -> bool {
    let s = join(header);
    s.contains("#[test]") || s.contains("#[cfg(test)]")
}

/// Classify the block opened after `header` tokens.
fn classify(header: &[SpannedTok]) -> ScopeKind {
    // closure? header ends with `|...|` (possibly followed by `-> T`)
    if let Some(params) = closure_params(header) {
        return ScopeKind::Closure { params };
    }
    // find the *last* structural keyword at bracket depth 0; headers
    // like `} else if cond` or `#[inline] pub(crate) fn f(...)` carry
    // leading noise we must skip, and `if let Some(x) = m.get(k)`
    // must key on `if`, not on idents inside the condition
    let mut depth = 0i32;
    let mut key: Option<(usize, &str)> = None;
    for (i, t) in header.iter().enumerate() {
        match t.text() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            k @ ("fn" | "if" | "while" | "match" | "for" | "loop" | "else" | "struct" | "enum"
            | "impl" | "trait" | "mod" | "union" | "unsafe")
                if depth <= 0 =>
            {
                // `else if` keys on the `if`; keep scanning so the
                // last structural keyword wins (`match x` after an
                // earlier `if` belongs to the `match` body)
                key = Some((i, k));
                if k == "fn" {
                    // nothing after `fn name(...)` can reclassify it;
                    // idents named like keywords can't appear at depth
                    // 0 before the brace in a valid signature
                    break;
                }
            }
            _ => {}
        }
    }
    let Some((ki, kw)) = key else {
        return ScopeKind::Other;
    };
    let after = &header[ki + 1..];
    match kw {
        "fn" => {
            let name = after.first().map(|t| t.text().to_string()).unwrap_or_default();
            let sig = join(after);
            ScopeKind::Fn {
                name,
                ret: ret_type(after),
                sig,
            }
        }
        "if" | "while" => ScopeKind::Cond { cond: join(after) },
        "match" => ScopeKind::Match { head: join(after) },
        "for" | "loop" => ScopeKind::Loop,
        "else" => ScopeKind::Else,
        _ => ScopeKind::Other,
    }
}

/// If the header ends in a closure parameter list — `|a, b|`, `move
/// |ctx: &GroupCtx|`, optionally `-> T` after — return the param text.
fn closure_params(header: &[SpannedTok]) -> Option<String> {
    // walk back over an optional `-> Type` suffix
    let mut end = header.len();
    if let Some(arrow) = rfind_sym(header, "->") {
        // only treat as return suffix when a `|` closes right before
        if arrow > 0 && header[arrow - 1].is_sym("|") {
            end = arrow;
        }
    }
    if end == 0 || !header[end - 1].is_sym("|") {
        return None;
    }
    // find the opening `|`: scan back, skipping nothing fancy — a `||`
    // empty-params closure lexes as a fused `||` token
    if header[end - 1].is_sym("||") {
        return Some(String::new());
    }
    let mut depth = 0i32;
    for j in (0..end - 1).rev() {
        match header[j].text() {
            ")" | "]" | ">" => depth += 1,
            "(" | "[" | "<" => depth -= 1,
            "|" if depth == 0 => {
                // require closure position: `|` at header start, or
                // preceded by `,`/`(`/`=`/`move`/`=>`  — otherwise it
                // was a bitwise-or
                let prev_ok = j == 0
                    || matches!(
                        header[j - 1].text(),
                        "," | "(" | "=" | "move" | "=>" | "{" | "return"
                    );
                if prev_ok {
                    return Some(join(&header[j + 1..end - 1]));
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// Last index of symbol `s` in `header`.
fn rfind_sym(header: &[SpannedTok], s: &str) -> Option<usize> {
    header.iter().rposition(|t| t.is_sym(s))
}

/// Return-type text of a fn signature (tokens after the depth-0 `->`,
/// truncated at a depth-0 `where`).
fn ret_type(sig: &[SpannedTok]) -> String {
    let mut depth = 0i32;
    let mut arrow = None;
    for (i, t) in sig.iter().enumerate() {
        match t.text() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "->" if depth == 0 => {
                arrow = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(a) = arrow else {
        return String::new();
    };
    let rest = &sig[a + 1..];
    let end = rest
        .iter()
        .position(|t| t.is_ident("where"))
        .unwrap_or(rest.len());
    join(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes(src: &str) -> (Vec<SpannedTok>, Scopes) {
        let toks = lex(src);
        let s = Scopes::build(&toks);
        (toks, s)
    }

    fn idx_of(toks: &[SpannedTok], ident: &str) -> usize {
        toks.iter().position(|t| t.is_ident(ident)).unwrap()
    }

    #[test]
    fn fn_scope_with_ret() {
        let (toks, s) = scopes("fn put(&mut self, k: u32) -> Result<(), OpError> { body } ");
        let i = idx_of(&toks, "body");
        let (name, ret, _) = s.enclosing_fn(i).unwrap();
        assert_eq!(name, "put");
        assert!(ret.contains("OpError"));
    }

    #[test]
    fn kernel_detection_fn_and_closure() {
        let (toks, s) =
            scopes("fn k(ctx: &GroupCtx) { inker } fn host() { dev.launch(|ctx: &GroupCtx| { inclo }); outside }");
        assert!(s.in_kernel(idx_of(&toks, "inker")));
        assert!(s.in_kernel(idx_of(&toks, "inclo")));
        assert!(!s.in_kernel(idx_of(&toks, "outside")));
    }

    #[test]
    fn conditional_chain_and_kernel_boundary() {
        let src = "fn host() { if hostcond { dev.launch(|ctx: &GroupCtx| { if window.lane(r) == 0 { probe } }) } }";
        let (toks, s) = scopes(src);
        let i = idx_of(&toks, "probe");
        let conds = s.enclosing_conds(i, true);
        assert_eq!(conds.len(), 1);
        assert!(conds[0].contains(".lane("));
    }

    #[test]
    fn else_if_and_match_classification() {
        let (toks, s) = scopes("fn f() { if a { } else if b.lane(x) { here } match y { _ => { arm } } }");
        let conds = s.enclosing_conds(idx_of(&toks, "here"), false);
        assert!(conds.iter().any(|c| c.contains(".lane(")));
        let conds = s.enclosing_conds(idx_of(&toks, "arm"), false);
        assert!(conds.iter().any(|c| c.contains('y')));
    }

    #[test]
    fn struct_literal_is_neutral() {
        let (toks, s) = scopes("fn f() { return Foo { bar } ; }");
        let i = idx_of(&toks, "bar");
        // enclosing fn still resolves through the neutral literal scope
        assert_eq!(s.enclosing_fn(i).unwrap().0, "f");
    }

    #[test]
    fn test_scopes_suppress() {
        let (toks, s) =
            scopes("#[cfg(test)] mod tests { fn helper() { x } } fn real() { y }");
        assert!(s.in_test(idx_of(&toks, "x")));
        assert!(!s.in_test(idx_of(&toks, "y")));
    }

    #[test]
    fn let_else_is_neutral() {
        let (toks, s) = scopes("fn f() { let Some(r) = ffs(m) else { brk }; after }");
        assert_eq!(s.enclosing_fn(idx_of(&toks, "brk")).unwrap().0, "f");
        // a let-else divergence block is not an `if` condition
        assert!(s.enclosing_conds(idx_of(&toks, "brk"), false).is_empty());
    }
}
