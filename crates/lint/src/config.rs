//! `wd-lint.toml` loading. A hand-rolled TOML subset — `[section]`
//! headers, `key = "string"`, `key = ["a", "b"]`, `#` comments —
//! consistent with the offline shim policy (no registry deps). Parse
//! errors are hard errors: a typo'd config silently linting nothing is
//! worse than a failed run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Analyzer configuration. Defaults mirror the checked-in
/// `wd-lint.toml`, so library users (tests) get sane behavior without
/// a file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate dir names (under `crates/`) whose code is kernel-bearing:
    /// K-rules run only on files inside these crates.
    pub kernel_crates: Vec<String>,
    /// Path prefixes (repo-relative) where determinism D-rules apply.
    pub determinism_paths: Vec<String>,
    /// Error type names that mark a `Result<_, E>`-returning fn as a
    /// fault path for F-rules.
    pub fault_error_types: Vec<String>,
    /// Per-rule allowlists: rule id -> repo-relative path prefixes
    /// where the rule is suppressed.
    pub allow: BTreeMap<String, Vec<String>>,
    /// Baseline file path (repo-relative); empty disables.
    pub baseline: String,
    /// Canonical kernel-crate clippy config (repo-relative); each
    /// kernel crate's `clippy.toml` must match it byte-for-byte
    /// (WD-C001). Empty disables the check.
    pub clippy_canonical: String,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            kernel_crates: vec![
                "core".to_string(),
                "baselines".to_string(),
                "multisplit".to_string(),
            ],
            determinism_paths: vec![
                "crates/core/src".to_string(),
                "crates/gpu-sim/src".to_string(),
                "crates/interconnect/src".to_string(),
                "crates/multisplit/src".to_string(),
                "crates/baselines/src".to_string(),
                "crates/hashes/src".to_string(),
                "crates/workloads/src".to_string(),
                "crates/serve/src".to_string(),
            ],
            fault_error_types: vec![
                "OpError".to_string(),
                "TransferError".to_string(),
                "ServeError".to_string(),
                "InsertError".to_string(),
                "RetrieveError".to_string(),
            ],
            allow: BTreeMap::new(),
            baseline: "wd-lint.baseline".to_string(),
            clippy_canonical: "clippy-kernel.toml".to_string(),
        }
    }
}

impl Config {
    /// Parse the TOML-subset text. Unknown sections/keys are errors —
    /// they are always typos.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config {
            allow: BTreeMap::new(),
            ..Config::default()
        };
        // sections replace defaults wholesale when present
        let mut saw_kernel = false;
        let mut saw_det = false;
        let mut saw_fault = false;
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((ln, raw)) = lines.next() {
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // multi-line array: keep consuming until brackets balance
            while line.matches('[').count() > line.matches(']').count() {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("wd-lint.toml:{}: unterminated array", ln + 1));
                };
                line.push(' ');
                line.push_str(strip_comment(cont).trim());
            }
            let err = |m: &str| format!("wd-lint.toml:{}: {}", ln + 1, m);
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err("unterminated section header"))?;
                section = name.trim().to_string();
                match section.as_str() {
                    "kernel" | "determinism" | "fault" | "allow" | "baseline" | "clippy" => {}
                    other => return Err(err(&format!("unknown section [{other}]"))),
                }
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let key = key.trim();
            let val = val.trim();
            match (section.as_str(), key) {
                ("kernel", "crates") => {
                    cfg.kernel_crates = parse_array(val).map_err(|m| err(&m))?;
                    saw_kernel = true;
                }
                ("determinism", "paths") => {
                    cfg.determinism_paths = parse_array(val).map_err(|m| err(&m))?;
                    saw_det = true;
                }
                ("fault", "error_types") => {
                    cfg.fault_error_types = parse_array(val).map_err(|m| err(&m))?;
                    saw_fault = true;
                }
                ("allow", rule) => {
                    let rule = rule.trim_matches('"').to_string();
                    cfg.allow.insert(rule, parse_array(val).map_err(|m| err(&m))?);
                }
                ("baseline", "file") => {
                    cfg.baseline = parse_string(val).map_err(|m| err(&m))?;
                }
                ("clippy", "canonical") => {
                    cfg.clippy_canonical = parse_string(val).map_err(|m| err(&m))?;
                }
                _ => return Err(err(&format!("unknown key `{key}` in section [{section}]"))),
            }
        }
        let _ = (saw_kernel, saw_det, saw_fault);
        Ok(cfg)
    }

    /// Load from `root/wd-lint.toml`; defaults when the file is absent.
    pub fn load(root: &Path) -> Result<Config, String> {
        let p: PathBuf = root.join("wd-lint.toml");
        match std::fs::read_to_string(&p) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("{}: {}", p.display(), e)),
        }
    }

    /// Is `rel` (repo-relative, `/`-separated) inside a kernel crate?
    pub fn is_kernel_path(&self, rel: &str) -> bool {
        self.kernel_crates
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/")))
    }

    /// Is `rel` inside a determinism-scoped path?
    pub fn is_determinism_path(&self, rel: &str) -> bool {
        self.determinism_paths
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }

    /// Is `rule` allowlisted for `rel`?
    pub fn is_allowed(&self, rule: &str, rel: &str) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|paths| paths.iter().any(|p| rel.starts_with(p.as_str())))
    }
}

/// Strip a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `"value"`.
fn parse_string(val: &str) -> Result<String, String> {
    let v = val.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("expected a quoted string, got `{v}`"))
    }
}

/// Parse `["a", "b"]` (single line).
fn parse_array(val: &str) -> Result<Vec<String>, String> {
    let v = val.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"...\"] array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# comment
[kernel]
crates = ["core", "baselines"]
[determinism]
paths = ["crates/core/src"]
[fault]
error_types = ["OpError"]
[allow]
"WD-K002" = ["crates/core/src/delete.rs"] # justified inline
[baseline]
file = "wd-lint.baseline"
[clippy]
canonical = "clippy-kernel.toml"
"#,
        )
        .unwrap();
        assert_eq!(cfg.kernel_crates, vec!["core", "baselines"]);
        assert!(cfg.is_kernel_path("crates/core/src/insert.rs"));
        assert!(!cfg.is_kernel_path("crates/serve/src/server.rs"));
        assert!(cfg.is_determinism_path("crates/core/src/map.rs"));
        assert!(cfg.is_allowed("WD-K002", "crates/core/src/delete.rs"));
        assert!(!cfg.is_allowed("WD-K002", "crates/core/src/insert.rs"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(Config::parse("[kernel]\ncrate = [\"core\"]").is_err());
        assert!(Config::parse("[kernels]\n").is_err());
    }

    #[test]
    fn defaults_when_sections_missing() {
        let cfg = Config::parse("").unwrap();
        assert!(cfg.is_kernel_path("crates/multisplit/src/warp_agg.rs"));
        assert!(cfg.fault_error_types.iter().any(|t| t == "ServeError"));
    }
}
