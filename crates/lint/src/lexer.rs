//! A hand-rolled Rust lexer: just enough token structure for lexical
//! rule passes. Comments, string/char/byte literals, and lifetimes are
//! consumed (they can never trigger a rule or open a scope); what
//! survives is identifiers, number literals (opaque), and punctuation,
//! each tagged with its 1-based source line.
//!
//! The lexer is deliberately forgiving: on malformed input it never
//! panics, it just keeps scanning. wd-lint runs on code that `cargo
//! build` already accepted, so unterminated literals only ever come
//! from fixture typos — and a truncated token stream there shows up as
//! a fixture test failure, not a silent pass.

/// One surviving token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `if`, `ballot_where`, ...).
    Ident(String),
    /// Integer/float literal, kept opaque (`0x3f`, `1_000`, `1.5e3`).
    Num(String),
    /// Punctuation: multi-char operators that matter structurally are
    /// kept fused (`->`, `=>`, `::`, `..`, `..=`, `&&`, `||`, `<<`,
    /// `>>`); everything else is a single char.
    Sym(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

impl SpannedTok {
    /// The token's text, for joining into header/argument strings.
    pub fn text(&self) -> &str {
        match &self.tok {
            Tok::Ident(s) | Tok::Num(s) | Tok::Sym(s) => s,
        }
    }

    /// True when the token is exactly the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }

    /// True when the token is exactly the symbol `s`.
    pub fn is_sym(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Sym(i) if i == s)
    }
}

/// Multi-char operators kept fused; longest match wins. `->`/`=>`
/// drive scope classification, `::` keeps paths tight, the rest exist
/// so that joining tokens back into text stays readable.
const FUSED: &[&str] = &[
    "..=", "...", "<<=", ">>=", "->", "=>", "::", "..", "&&", "||", "<<", ">>", "==", "!=", "<=",
    ">=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
];

/// Tokenize `src`. Never fails; see module docs for the error policy.
pub fn lex(src: &str) -> Vec<SpannedTok> {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 6);
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // block comments nest in Rust
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_string(b, i, &mut line),
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                i = skip_raw_or_byte_literal(b, i, &mut line)
            }
            b'\'' => i = skip_char_or_lifetime(b, i, &mut line),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // opaque numeric scan: digits, radix prefixes, `_`, `.`
                // between digits, exponent signs
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    let ok = d.is_ascii_alphanumeric()
                        || d == b'_'
                        || (d == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
                        || ((d == b'+' || d == b'-')
                            && matches!(b[i - 1], b'e' | b'E')
                            && src[start..i].chars().any(|x| x.is_ascii_digit()));
                    if !ok {
                        break;
                    }
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Num(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let fused = FUSED.iter().find(|op| rest.starts_with(**op));
                let text = match fused {
                    Some(op) => (*op).to_string(),
                    None => (c as char).to_string(),
                };
                i += text.len();
                out.push(SpannedTok {
                    tok: Tok::Sym(text),
                    line,
                });
            }
        }
    }
    out
}

/// Is `b[i..]` the start of a raw string (`r"`, `r#"`), byte string
/// (`b"`, `br"`, `br#"`), or byte char (`b'`)? Plain identifiers
/// starting with r/b fall through to ident lexing.
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'\'') {
            return true;
        }
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
    }
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"') && j > i
}

/// Skip a raw/byte string or byte-char literal starting at `i`.
fn skip_raw_or_byte_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let raw = {
        let mut j = i;
        if b[j] == b'b' {
            j += 1;
        }
        b.get(j) == Some(&b'r')
    };
    if b[i] == b'b' {
        i += 1;
    }
    if raw {
        i += 1; // 'r'
        let mut hashes = 0usize;
        while b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        loop {
            match b.get(i) {
                None => return i,
                Some(b'\n') => {
                    *line += 1;
                    i += 1;
                }
                Some(b'"') => {
                    let mut k = 0usize;
                    while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                        k += 1;
                    }
                    i += 1 + k;
                    if k == hashes {
                        return i;
                    }
                }
                Some(_) => i += 1,
            }
        }
    } else if b.get(i) == Some(&b'\'') {
        // byte char b'x'
        skip_char_body(b, i + 1, line)
    } else {
        // byte string b"..."
        skip_string(b, i, line)
    }
}

/// Skip a `"..."` string (handles escapes and embedded newlines);
/// `i` points at the opening quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// `'` is ambiguous: char literal (`'a'`, `'\n'`) or lifetime (`'a`,
/// `'static`). A lifetime has ident chars after the quote and no
/// closing quote right after them. Lifetimes are dropped; char
/// literals are skipped.
fn skip_char_or_lifetime(b: &[u8], i: usize, line: &mut u32) -> usize {
    let next = b.get(i + 1).copied();
    match next {
        Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
            // scan ident run
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') {
                j + 1 // 'a' — single-char literal
            } else {
                j // 'lifetime — consumed, not emitted
            }
        }
        _ => skip_char_body(b, i + 1, line),
    }
}

/// Skip the body of a char literal after its opening quote.
fn skip_char_body(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Join a token slice back into compact text: a space is inserted only
/// between two word-ish tokens, so `ctx . cas ( data , idx )` renders
/// as `ctx.cas(data,idx)` and substring probes like `.cas(` work.
pub fn join(toks: &[SpannedTok]) -> String {
    let mut s = String::new();
    let mut prev_wordish = false;
    for t in toks {
        let text = t.text();
        let wordish = matches!(t.tok, Tok::Ident(_) | Tok::Num(_));
        if wordish && prev_wordish {
            s.push(' ');
        }
        s.push_str(text);
        prev_wordish = wordish;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text().to_string()).collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let toks = lex("fn f() {\n  x.y();\n}");
        assert!(toks[0].is_ident("fn"));
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn comments_strings_lifetimes_dropped() {
        let t = texts("// ballot\n/* any /* nested */ */ \"cas(\" 'a' x: &'a str b\"z\" r#\"w\"#");
        assert_eq!(t, vec!["x", ":", "&", "str"]);
    }

    #[test]
    fn fused_ops_and_join() {
        let toks = lex("fn f(x: u32) -> Result<(), OpError> { a => b; c::d }");
        let s = join(&toks);
        assert!(s.contains("->Result<(),OpError>"));
        assert!(s.contains("=>"));
        assert!(s.contains("c::d"));
    }

    #[test]
    fn join_probe_shapes() {
        let toks = lex("if ctx.cas(keys, idx, expected, w).is_ok() { }");
        let s = join(&toks);
        assert!(s.contains(".cas("));
        assert!(s.contains(").is_ok()"));
    }

    #[test]
    fn multiline_raw_string_line_tracking() {
        let toks = lex("let s = r\"a\nb\";\nmarker");
        let m = toks.iter().find(|t| t.is_ident("marker")).unwrap();
        assert_eq!(m.line, 3);
    }
}
