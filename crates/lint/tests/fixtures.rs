//! The fixtures corpus is the mutation-double suite for the lint
//! itself: every rule has at least one triggering (`pos.rs`) and one
//! clean (`neg.rs`) fixture, so deleting or breaking any single rule
//! makes a test here fail. Exit codes and rule ids are asserted
//! through both the library API and the real `wd-lint` binary.

use std::path::{Path, PathBuf};
use std::process::Command;

use wd_lint::config::Config;
use wd_lint::{check_clippy_drift, lint_source, rules, FileCtx};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Fixture dir name (`wd-k001`) -> rule id (`WD-K001`).
fn rule_of(dir: &Path) -> String {
    dir.file_name()
        .unwrap()
        .to_string_lossy()
        .to_uppercase()
}

fn lint_fixture(path: &Path) -> Vec<wd_lint::Finding> {
    let src = std::fs::read_to_string(path).unwrap();
    let ctx = FileCtx {
        rel: format!("fixtures/{}", path.file_name().unwrap().to_string_lossy()),
        kernel: true,
        determinism: true,
    };
    lint_source(&src, &ctx, &Config::default())
}

fn fixture_dirs() -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    assert!(!dirs.is_empty(), "fixture corpus missing");
    dirs
}

#[test]
fn every_token_rule_has_pos_and_neg_fixtures() {
    let covered: Vec<String> = fixture_dirs().iter().map(|d| rule_of(d)).collect();
    for r in rules::RULES {
        if r.id == "WD-C001" {
            continue; // config-drift rule is exercised on temp trees below
        }
        assert!(
            covered.contains(&r.id.to_string()),
            "rule {} has no fixture directory",
            r.id
        );
    }
    for dir in fixture_dirs() {
        assert!(dir.join("pos.rs").is_file(), "{dir:?} missing pos.rs");
        assert!(dir.join("neg.rs").is_file(), "{dir:?} missing neg.rs");
    }
}

#[test]
fn positive_fixtures_trigger_exactly_their_rule() {
    for dir in fixture_dirs() {
        let rule = rule_of(&dir);
        let findings = lint_fixture(&dir.join("pos.rs"));
        assert!(
            !findings.is_empty(),
            "{rule}: pos.rs produced no findings"
        );
        for f in &findings {
            assert_eq!(
                f.rule, rule,
                "{rule}: pos.rs produced a stray {} finding: {f}",
                f.rule
            );
            assert!(f.line > 0, "{rule}: finding without a line: {f}");
        }
    }
}

#[test]
fn negative_fixtures_are_clean_under_every_rule() {
    for dir in fixture_dirs() {
        let rule = rule_of(&dir);
        let findings = lint_fixture(&dir.join("neg.rs"));
        assert!(
            findings.is_empty(),
            "{rule}: neg.rs is not clean: {findings:?}"
        );
    }
}

/// The binary end of the contract: `--deny` exits 1 on a positive
/// fixture and prints the rule id; a negative fixture exits 0.
#[test]
fn binary_exit_codes_and_rule_ids() {
    let bin = env!("CARGO_BIN_EXE_wd-lint");
    for dir in fixture_dirs() {
        let rule = rule_of(&dir);
        let run = |file: &str| {
            Command::new(bin)
                .args([
                    "--deny",
                    "--no-baseline",
                    "--force-kernel",
                    "--force-determinism",
                ])
                .arg(dir.join(file))
                .output()
                .unwrap()
        };
        let pos = run("pos.rs");
        assert_eq!(
            pos.status.code(),
            Some(1),
            "{rule}: pos.rs should exit 1 under --deny"
        );
        let stdout = String::from_utf8_lossy(&pos.stdout);
        assert!(
            stdout.contains(&rule),
            "{rule}: binary output does not name the rule:\n{stdout}"
        );
        let neg = run("neg.rs");
        assert_eq!(
            neg.status.code(),
            Some(0),
            "{rule}: neg.rs should exit 0, got {:?}\n{}",
            neg.status.code(),
            String::from_utf8_lossy(&neg.stdout)
        );
    }
}

/// Without `--deny`, findings are advisory: exit 0 either way.
#[test]
fn advisory_mode_exits_zero_on_findings() {
    let bin = env!("CARGO_BIN_EXE_wd-lint");
    let out = Command::new(bin)
        .args(["--no-baseline", "--force-kernel", "--force-determinism"])
        .arg(fixtures_dir().join("wd-k001/pos.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("WD-K001"));
}

/// WD-C001 on synthetic trees: matching copy clean, drifted copy and
/// missing copy flagged.
#[test]
fn clippy_drift_rule() {
    let root = std::env::temp_dir().join(format!("wd-lint-c001-{}", std::process::id()));
    let crate_dir = root.join("crates/core");
    std::fs::create_dir_all(&crate_dir).unwrap();
    std::fs::write(root.join("clippy-kernel.toml"), "disallowed-methods = []\n").unwrap();
    let cfg = Config {
        kernel_crates: vec!["core".to_string()],
        ..Config::default()
    };

    // missing copy
    let missing = check_clippy_drift(&root, &cfg).unwrap();
    assert_eq!(missing.len(), 1, "{missing:?}");
    assert_eq!(missing[0].rule, "WD-C001");

    // drifted copy
    std::fs::write(crate_dir.join("clippy.toml"), "disallowed-methods = [ ] # drift\n").unwrap();
    let drifted = check_clippy_drift(&root, &cfg).unwrap();
    assert_eq!(drifted.len(), 1, "{drifted:?}");
    assert!(drifted[0].message.contains("drifted"));

    // matching copy
    std::fs::write(crate_dir.join("clippy.toml"), "disallowed-methods = []\n").unwrap();
    assert!(check_clippy_drift(&root, &cfg).unwrap().is_empty());

    std::fs::remove_dir_all(&root).ok();
}

/// Rule ids are unique and well-formed (`WD-<family><3 digits>`).
#[test]
fn rule_ids_are_stable_and_unique() {
    let mut seen = std::collections::BTreeSet::new();
    for r in rules::RULES {
        assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
        let bytes = r.id.as_bytes();
        assert_eq!(&r.id[..3], "WD-");
        assert!(matches!(bytes[3], b'K' | b'D' | b'F' | b'C'), "{}", r.id);
        assert!(r.id[4..].chars().all(|c| c.is_ascii_digit()), "{}", r.id);
        assert!(!r.summary.is_empty());
    }
}
