//! Self-test: the workspace itself is clean under `wd-lint --deny`
//! with the checked-in config and baseline, and the docs name every
//! rule. This is the same invocation CI runs; if a PR introduces a
//! fresh finding, this test (and the CI lint job) fail together.

use std::path::{Path, PathBuf};

use wd_lint::config::Config;
use wd_lint::{lint_workspace, rules};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn workspace_is_clean_under_deny() {
    let root = workspace_root();
    let cfg = Config::load(&root).expect("wd-lint.toml parses");
    let report = lint_workspace(&root, &cfg).expect("workspace walk");
    assert!(
        report.surfaced.is_empty(),
        "workspace has {} unbaselined finding(s):\n{}",
        report.surfaced.len(),
        report
            .surfaced
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity on scan breadth: the walk saw the real workspace, not an
    // empty or truncated tree.
    assert!(report.files >= 50, "only scanned {} files", report.files);
    // The grandfathered doubles and justified findings are suppressed
    // by the baseline, not silently absent.
    assert!(
        report.suppressed.len() >= 4,
        "baseline suppressed only {} finding(s) — stale baseline?",
        report.suppressed.len()
    );
}

#[test]
fn baseline_entries_all_match_a_real_finding() {
    // A baseline entry that no longer matches anything is dead weight
    // and hides future findings in the same (rule, file, fn) bucket.
    // Every baselined count must be consumed by an actual suppressed
    // finding, so the baseline can only shrink as findings are fixed.
    let root = workspace_root();
    let cfg = Config::load(&root).unwrap();
    let report = lint_workspace(&root, &cfg).unwrap();
    let baseline =
        wd_lint::baseline::Baseline::load(&root.join(&cfg.baseline)).expect("baseline");
    assert_eq!(
        report.suppressed.len(),
        baseline.len(),
        "baseline allows {} finding(s) but only {} matched — prune stale entries",
        baseline.len(),
        report.suppressed.len()
    );
}

#[test]
fn docs_name_every_rule() {
    let root = workspace_root();
    for doc in ["DESIGN.md", "README.md"] {
        let text = std::fs::read_to_string(root.join(doc)).unwrap();
        assert!(
            text.contains("wd-lint"),
            "{doc} does not mention wd-lint"
        );
        if doc == "DESIGN.md" {
            for r in rules::RULES {
                assert!(text.contains(r.id), "{doc} does not document {}", r.id);
            }
        }
    }
}

#[test]
fn kernel_clippy_configs_match_canonical() {
    let root = workspace_root();
    let cfg = Config::load(&root).unwrap();
    let canonical = std::fs::read(root.join(&cfg.clippy_canonical)).unwrap();
    for krate in &cfg.kernel_crates {
        let copy = root.join("crates").join(krate).join("clippy.toml");
        let bytes = std::fs::read(&copy)
            .unwrap_or_else(|e| panic!("{}: {e}", copy.display()));
        assert_eq!(
            bytes, canonical,
            "crates/{krate}/clippy.toml drifted from {}",
            cfg.clippy_canonical
        );
    }
}
