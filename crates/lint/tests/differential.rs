//! Lint-vs-sanitizer differential: the two mutation doubles that the
//! dynamic sanitizers catch at runtime (`tests/sanitizer.rs`:
//! `synccheck_catches_divergent_ballot` and
//! `racecheck_catches_plain_store_publish`) are flagged *statically*
//! by wd-lint on the very same source lines in
//! `crates/core/src/insert.rs` — no execution, no workload, no
//! sanitizer run. The baseline is deliberately not applied here: the
//! doubles are baselined for `--deny` precisely because they are
//! shipped on purpose, and this test is what proves the rules still
//! see them.

use std::path::{Path, PathBuf};

use wd_lint::config::Config;
use wd_lint::{lint_source, FileCtx};

fn insert_rs() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src/insert.rs")
}

/// 1-based line of the first source line containing `marker`.
fn line_of(src: &str, marker: &str) -> u32 {
    src.lines()
        .position(|l| l.contains(marker))
        .map(|i| i as u32 + 1)
        .unwrap_or_else(|| panic!("marker {marker:?} not found in insert.rs"))
}

fn lint_insert_rs() -> (String, Vec<wd_lint::Finding>) {
    let src = std::fs::read_to_string(insert_rs()).unwrap();
    let ctx = FileCtx {
        rel: "crates/core/src/insert.rs".to_string(),
        kernel: true,
        determinism: true,
    };
    let findings = lint_source(&src, &ctx, &Config::default());
    (src, findings)
}

/// synccheck's double (`Config::broken_divergent_ballot`): the ballot
/// over `full_mask() & !(1 << r)` is flagged by WD-K001 on the exact
/// line synccheck traps at runtime.
#[test]
fn divergent_ballot_double_is_flagged_statically() {
    let (src, findings) = lint_insert_rs();
    // The double must still exist in the shipped source; if it is ever
    // removed, both this test and the sanitizer differential go stale
    // together.
    assert!(src.contains("divergent_ballot"));
    let line = line_of(&src, "ballot_where(active");
    let hit = findings
        .iter()
        .find(|f| f.rule == "WD-K001" && f.line == line)
        .unwrap_or_else(|| {
            panic!("no WD-K001 at insert.rs:{line}; findings: {findings:?}")
        });
    assert!(hit.message.contains("full_mask"), "{hit}");
}

/// racecheck's double (`Config::broken_publish_plain_store`): the
/// plain value store inside the CAS-success arm is flagged by WD-K002
/// on the line racecheck reports as the lost release edge.
#[test]
fn plain_store_publish_double_is_flagged_statically() {
    let (src, findings) = lint_insert_rs();
    assert!(src.contains("publish_plain_store"));
    let line = line_of(&src, "ctx.write(values, idx, u64::from(value))");
    let hit = findings
        .iter()
        .find(|f| f.rule == "WD-K002" && f.line == line)
        .unwrap_or_else(|| {
            panic!("no WD-K002 at insert.rs:{line}; findings: {findings:?}")
        });
    assert!(hit.message.contains("cas"), "{hit}");
}

/// The correct protocol right next to each double stays clean: the
/// full-mask ballot and the release publish via `write_shared` draw no
/// findings, so the rules separate the double from its healthy twin
/// inside the same function.
#[test]
fn healthy_twin_lines_stay_clean() {
    let (src, findings) = lint_insert_rs();
    for marker in ["ballot_where(ctx.full_mask()", "write_shared(values"] {
        if !src.contains(marker) {
            continue; // marker tracks current insert.rs idiom; skip if refactored
        }
        let line = line_of(&src, marker);
        assert!(
            findings.iter().all(|f| f.line != line),
            "healthy line insert.rs:{line} ({marker:?}) was flagged"
        );
    }
    // And the file as a whole carries exactly the two double findings
    // plus nothing else from the K family.
    let k: Vec<_> = findings
        .iter()
        .filter(|f| f.rule.starts_with("WD-K"))
        .collect();
    assert_eq!(k.len(), 2, "unexpected K-family findings: {k:?}");
}
