//! Negative fixture: WD-K002 — legal publication protocols.

fn publish(ctx: &GroupCtx, keys: DevSlice, values: DevSlice, idx: usize) {
    if ctx.cas(keys, idx, expected, word).is_ok() {
        // publish via CAS from the sentinel: the release edge exists
        let _ = ctx.cas(values, idx, EMPTY, value);
        // deliberate LWW word: write_shared is the annotated escape
        ctx.write_shared(values, idx, value);
    }
    // a plain write *outside* a CAS-success arm is an ordinary store
    ctx.write(values, idx, value);
}

fn host_bookkeeping(ctx: &GroupCtx, state: &Shared) {
    if ctx.cas(keys, idx, expected, word).is_ok() {
        // lock-guard `.write()` takes no (slice, idx, val) triple —
        // not a device store
        state.lock.write().push(idx);
    }
}
