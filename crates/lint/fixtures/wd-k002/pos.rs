//! Positive fixture: WD-K002 (plain store publishes a CAS-claimed
//! slot). Mirrors `Config::broken_publish_plain_store`: the value word
//! is published with a plain store, dropping the release edge.

fn publish(ctx: &GroupCtx, keys: DevSlice, values: DevSlice, idx: usize) {
    if ctx.cas(keys, idx, expected, word).is_ok() {
        ctx.write(values, idx, value);
    }
}
