//! Positive fixture: WD-D001 (wall-clock reads break seed replay).

fn measure(counter: &mut u64) {
    let t0 = Instant::now();
    *counter += 1;
    let _ = t0.elapsed();
}

fn stamp() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).as_secs()
}
