//! Negative fixture: WD-D001 — modeled time and test-only wall time.

fn measure(clock: &Clock, counter: &mut u64) {
    // modeled time from the deterministic clock, not the wall
    let t0 = clock.now();
    *counter += 1;
    let _ = t0;
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_time_in_tests_is_fine() {
        let _ = Instant::now();
    }
}
