//! Positive fixture: WD-F002 (panic!-family macros inside a fn that
//! promises a typed fault error — the process dies instead of the op).

fn submit_at(&mut self, op: Op, now: f64) -> Result<Ticket, ServeError> {
    if now < self.last {
        panic!("time went backwards");
    }
    self.enqueue(op, now)
}
