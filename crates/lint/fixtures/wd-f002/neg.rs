//! Negative fixture: WD-F002 — typed degradation on fault paths;
//! panics confined to infallible fns and tests.

fn submit_at(&mut self, op: Op, now: f64) -> Result<Ticket, ServeError> {
    if now < self.last {
        return Err(ServeError::TimeRegressed { now, last: self.last });
    }
    self.enqueue(op, now)
}

/// Infallible by signature: a panic here is a documented contract.
fn reserved_key_guard(key: u32) {
    if key == RESERVED {
        panic!("reserved key");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_fine() -> Result<(), ServeError> {
        if bad() {
            unreachable!("test-only");
        }
        Ok(())
    }
}
