//! Negative fixture: WD-K001 — convergent collectives stay clean.

fn kernel(ctx: &GroupCtx, data: DevSlice, base: usize) {
    // full-mask masked collective: every lane participates
    let _ = ctx.ballot_where(ctx.full_mask(), |rr| rr == 0);
    // plain collectives at kernel scope, outside any divergent branch
    let dup = ctx.ballot(|r| key_of(window.lane(r)) == key);
    // uniform condition (a ballot result is group-uniform): a window
    // reload inside it is the Fig. 3 lines 19-21 shape, not divergence
    if let Some(r) = GroupCtx::ffs(dup) {
        let window = ctx.reload_window(data, base);
        let _ = (r, window);
    }
    // loops are uniform iteration, not a divergence source
    for _p in 0..4 {
        let _ = ctx.any(|r| r == 0);
    }
}

fn host_helper(masks: &MaskSet, active: u32) {
    // not kernel scope (no GroupCtx): the rule does not apply
    let _ = masks.ballot_where(active, |x| x);
}
