//! Positive fixture: WD-K001 (divergent collective), both triggers.
//! Mirrors `Config::broken_divergent_ballot`: the CAS-losing lane is
//! dropped from the participation mask before re-balloting.

fn kernel_masked(ctx: &GroupCtx, window: &Window, r: u32) {
    // trigger A: participation mask carved below full_mask()
    let active = ctx.full_mask() & !(1 << r);
    let _ = ctx.ballot_where(active, |rr| is_vacant(window.lane(rr)));
}

fn kernel_nested(ctx: &GroupCtx, window: &Window) {
    // trigger B: collective lexically nested under a lane-divergent
    // condition — lanes failing the condition never reach the ballot
    if window.lane(0) == EMPTY {
        let _ = ctx.ballot(|r| is_vacant(window.lane(r)));
    }
}
