//! Negative fixture: WD-D002 — seeded RNG replays from the schedule
//! or fault seed.

fn shuffle(items: &mut [u64], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    items.sort_by_key(|_| rng.next_u64());
}
