//! Positive fixture: WD-D002 (ambient RNG breaks seed replay).

fn shuffle(items: &mut [u64]) {
    let mut rng = thread_rng();
    items.sort_by_key(|_| rng.next_u64());
}
