//! Positive fixture: WD-K003 (raw CAS-class atomics / unchecked access
//! inside kernel code bypass the counted GroupCtx/window APIs).

fn kernel(ctx: &GroupCtx, word: &AtomicU64, backing: &[u64], idx: usize) {
    let _ = word.compare_exchange(EMPTY, key, SeqCst, SeqCst);
    let v = unsafe { backing.get_unchecked(idx) };
    let _ = (ctx, v);
}
