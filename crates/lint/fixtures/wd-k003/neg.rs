//! Negative fixture: WD-K003 — counted device ops in kernels, and raw
//! atomics outside kernel scope (the Folklore-CPU-baseline shape).

fn kernel(ctx: &GroupCtx, data: DevSlice, idx: usize) {
    // the counted, sanitizer-checked entry points
    let _ = ctx.cas(data, idx, expected, word);
    let _ = ctx.exchange(data, idx, word);
    let _ = ctx.atomic_add(data, idx, 1);
}

fn cpu_baseline_core(word: &AtomicU64) {
    // no GroupCtx in scope: a CPU baseline's raw CAS is out of the
    // rule's jurisdiction (clippy's disallowed-list governs per-crate)
    let _ = word.compare_exchange(0, 1, SeqCst, SeqCst);
}
