//! Positive fixture: WD-F001 (unwrap/expect inside a fn that promises
//! a typed fault error).

fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError> {
    let scratch = self.arena.lock().unwrap();
    let plan = self.plan.as_ref().expect("armed");
    run(scratch, plan, pairs)
}
