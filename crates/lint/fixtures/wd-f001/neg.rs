//! Negative fixture: WD-F001 — panicking wrappers that don't promise
//! a typed error, non-panicking unwrap_* variants, and test code.

/// The documented panicking convenience wrapper: no typed promise.
fn put(&mut self, pairs: &[(u32, u32)]) -> PutResponse {
    self.try_put(pairs).unwrap()
}

fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError> {
    // unwrap_or / unwrap_or_else / unwrap_or_default never panic
    let budget = self.budget.unwrap_or_default();
    let quantum = self.quantum.unwrap_or(64);
    run(budget, quantum, pairs)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_idiomatic() -> Result<(), OpError> {
        setup().unwrap();
        Ok(())
    }
}
