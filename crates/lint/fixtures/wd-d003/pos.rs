//! Positive fixture: WD-D003 (hash iteration order is
//! nondeterministic; anything derived from it won't replay).

struct Telemetry {
    buckets: HashMap<u64, u64>,
}

fn report(t: &Telemetry) -> String {
    let mut out = String::new();
    for (k, v) in &t.buckets {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

fn tally(seen: &mut HashSet<u32>) -> u32 {
    let mut acc = 0;
    for k in seen.iter() {
        acc ^= k;
    }
    acc
}
