//! Negative fixture: WD-D003 — ordered containers, point lookups, and
//! sorted materialization are all replay-safe.

struct Telemetry {
    buckets: BTreeMap<u64, u64>,
    hot: HashMap<u64, u64>,
}

fn report(t: &Telemetry) -> String {
    let mut out = String::new();
    // BTreeMap iterates in key order: deterministic
    for (k, v) in &t.buckets {
        out.push_str(&format!("{k}={v}\n"));
    }
    // point lookups on a HashMap are fine; only iteration order is not
    if let Some(v) = t.hot.get(&0) {
        out.push_str(&format!("hot={v}\n"));
    }
    out
}
