//! Packed table entries and memory layouts (paper §II, Fig. 1).
//!
//! CUDA atomics are limited to 64-bit words, so a key-value pair is packed
//! *array-of-structs* (AOS) into one word: key in the high 32 bits, value
//! in the low 32 bits. The packed word is fully atomic under CAS and
//! cache-friendly during querying. The alternative *struct-of-arrays*
//! (SOA) layout stores keys and values in separate arrays — it would allow
//! longer keys but needs relaxed writes to the value array, which can
//! manifest the priority-inversion the paper warns about; it exists here
//! for the layout ablation (A1).
//!
//! The key `u32::MAX` is reserved: `EMPTY` (never written) and `TOMBSTONE`
//! (deleted) sentinels both carry it, distinguished by the value bits.

/// Sentinel for a never-occupied slot (also the "miss" marker in query
/// outputs). Packs `(u32::MAX, u32::MAX)`.
pub const EMPTY: u64 = u64::MAX;

/// Sentinel for a deleted slot. Packs `(u32::MAX, u32::MAX - 1)`.
/// Probing may claim it during insertion but must *not* stop a query.
pub const TOMBSTONE: u64 = u64::MAX - 1;

/// The reserved key carried by both sentinels. User keys must differ.
pub const RESERVED_KEY: u32 = u32::MAX;

/// Packs a key-value pair into an AOS word.
///
/// # Panics
/// Debug-asserts that `key` is not the reserved key.
#[inline]
#[must_use]
pub fn pack(key: u32, value: u32) -> u64 {
    debug_assert_ne!(key, RESERVED_KEY, "key u32::MAX is reserved");
    (u64::from(key) << 32) | u64::from(value)
}

/// Key of a packed word.
#[inline]
#[must_use]
pub fn key_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Value of a packed word.
#[inline]
#[must_use]
pub fn value_of(word: u64) -> u32 {
    word as u32
}

/// Whether a slot word may be claimed by an insertion (empty or deleted).
#[inline]
#[must_use]
pub fn is_vacant(word: u64) -> bool {
    word == EMPTY || word == TOMBSTONE
}

/// Whether a slot word is the never-written sentinel (terminates queries).
#[inline]
#[must_use]
pub fn is_empty_slot(word: u64) -> bool {
    word == EMPTY
}

/// Whether a slot word is a tombstone.
#[inline]
#[must_use]
pub fn is_tombstone(word: u64) -> bool {
    word == TOMBSTONE
}

/// Whether a slot word holds a live key-value pair.
#[inline]
#[must_use]
pub fn is_occupied(word: u64) -> bool {
    key_of(word) != RESERVED_KEY
}

/// The live `(key, value)` pair of a slot word, or `None` for either
/// sentinel. The migration scan uses this to collect movable entries.
#[inline]
#[must_use]
pub fn live_pair(word: u64) -> Option<(u32, u32)> {
    is_occupied(word).then(|| (key_of(word), value_of(word)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sentinels_are_distinct_and_reserved() {
        assert_ne!(EMPTY, TOMBSTONE);
        assert_eq!(key_of(EMPTY), RESERVED_KEY);
        assert_eq!(key_of(TOMBSTONE), RESERVED_KEY);
        assert!(is_vacant(EMPTY));
        assert!(is_vacant(TOMBSTONE));
        assert!(is_empty_slot(EMPTY));
        assert!(!is_empty_slot(TOMBSTONE));
        assert!(is_tombstone(TOMBSTONE));
        assert!(!is_occupied(EMPTY));
        assert!(!is_occupied(TOMBSTONE));
    }

    #[test]
    fn packing_layout_is_key_high_value_low() {
        let w = pack(0x1234_5678, 0x9abc_def0);
        assert_eq!(w, 0x1234_5678_9abc_def0);
    }

    proptest! {
        #[test]
        fn pack_round_trips(key in 0u32..u32::MAX, value: u32) {
            let w = pack(key, value);
            prop_assert_eq!(key_of(w), key);
            prop_assert_eq!(value_of(w), value);
            prop_assert!(is_occupied(w));
            prop_assert!(!is_vacant(w));
            prop_assert_eq!(live_pair(w), Some((key, value)));
        }
    }

    #[test]
    fn live_pair_rejects_both_sentinels() {
        assert_eq!(live_pair(EMPTY), None);
        assert_eq!(live_pair(TOMBSTONE), None);
    }
}
