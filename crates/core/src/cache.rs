//! Hot-key host-side cache tier in front of any [`MapService`] backend.
//!
//! GPU lookups are throughput devices: even a coalesced retrieve costs a
//! kernel launch plus PCIe/NVLink round trips. Under Zipfian traffic a
//! tiny host-resident shadow of the hottest keys absorbs most reads
//! before they reach the device — the ROADMAP's "hot-key cache tier"
//! (item 4). [`CachedMap`] wraps a backend behind the same [`MapService`]
//! trait, so the wd-serve front door can stack it under a [`Server`]
//! without code changes.
//!
//! ## Design
//!
//! * **Fixed capacity, deterministic replacement.** Entries live in
//!   `BTreeMap`/`BTreeSet` structures keyed by an explicit priority tuple
//!   `(class, stamp, key)` — no hash-iteration order anywhere, so one
//!   seed gives one eviction sequence on every host ([`CachePolicy::Lru`]
//!   evicts the least-recently-touched entry, [`CachePolicy::Lfu`] the
//!   least-frequently-touched one, ties broken oldest-first).
//! * **Read-driven admission.** Only values the backend actually
//!   returned on a get are admitted; writes update an entry already
//!   present but never admit (a write-heavy scan must not flush the hot
//!   read set).
//! * **Write-through invalidation.** Every mutation goes to the backend
//!   *first*; on success the shadow is updated (put of a cached key) or
//!   dropped (delete). If the backend reports an error the batch may
//!   have been partially applied, so every key it mentions is
//!   invalidated — the cache never guesses.
//!
//! ## Why cached ≡ uncached
//!
//! [`MapService`] methods take `&mut self` and the cache owns its
//! backend exclusively, so every mutation of the backend flows through
//! the cache and the shadow is exact: a cached `(k, v)` always equals
//! the backend's live value for `k`. Backend-internal reorganisations —
//! incremental resize steps, tombstone compaction, quarantine-and-migrate
//! fault recovery — preserve the key→value mapping by contract (their
//! own equivalence suites prove it), so they cannot invalidate the
//! shadow either. Duplicate keys inside one put batch are the one
//! genuinely racy case (last writer wins on the kernel's event horizon,
//! not slice order), so those keys are invalidated rather than updated.
//! The wd-serve `cache_equivalence` suite checks all of this end to end
//! across seeds × schedules × fault plans, including mid-trace resizes
//! and kill-plan migration traffic.

use crate::service::{
    DeleteResponse, GetResponse, MapService, OpError, PutResponse,
};
use crate::stats::DegradedStats;
use std::collections::{BTreeMap, BTreeSet};

/// Replacement policy of the hot-key cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Evict the least-recently-touched entry.
    Lru,
    /// Evict the least-frequently-touched entry (ties: oldest touch).
    Lfu,
}

impl CachePolicy {
    /// Label used in metrics and benchmark tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Lfu => "lfu",
        }
    }
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Gets answered from the shadow (no backend work).
    pub hits: u64,
    /// Gets forwarded to the backend.
    pub misses: u64,
    /// Values admitted after a backend hit.
    pub admissions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped by write-through invalidation.
    pub invalidations: u64,
    /// Cached values updated in place by a put.
    pub write_updates: u64,
}

impl CacheStats {
    /// Fraction of gets answered from the shadow.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    value: u32,
    freq: u64,
    stamp: u64,
}

/// A fixed-capacity deterministic hot-key cache wrapping a
/// [`MapService`] backend (see the module docs for the design and the
/// coherence argument).
#[derive(Debug)]
pub struct CachedMap<S> {
    backend: S,
    capacity: usize,
    policy: CachePolicy,
    entries: BTreeMap<u32, Entry>,
    /// Eviction order: `(class, stamp, key)` with the victim at
    /// `first()`. `class` is the touch count under LFU and constant 0
    /// under LRU (reducing the order to stamps alone).
    order: BTreeSet<(u64, u64, u32)>,
    tick: u64,
    stats: CacheStats,
}

impl<S: MapService> CachedMap<S> {
    /// Wraps `backend` with a hot-key cache of at most `capacity`
    /// entries (a capacity of 0 disables caching: every get forwards).
    #[must_use]
    pub fn new(backend: S, capacity: usize, policy: CachePolicy) -> Self {
        Self {
            backend,
            capacity,
            policy,
            entries: BTreeMap::new(),
            order: BTreeSet::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The wrapped backend.
    #[must_use]
    pub fn backend(&self) -> &S {
        &self.backend
    }

    /// Mutable access to the wrapped backend.
    ///
    /// Mutating the backend's *contents* through this reference bypasses
    /// write-through invalidation and voids the coherence argument; it
    /// exists for control-plane calls (resize policy, fault plans) that
    /// do not change the key→value mapping.
    pub fn backend_mut(&mut self) -> &mut S {
        &mut self.backend
    }

    /// Cache effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live cached entries.
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    #[must_use]
    pub fn cache_capacity(&self) -> usize {
        self.capacity
    }

    /// The replacement policy.
    #[must_use]
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    fn order_class(&self, freq: u64) -> u64 {
        match self.policy {
            CachePolicy::Lru => 0,
            CachePolicy::Lfu => freq,
        }
    }

    /// Re-keys `key`'s order tuple after a touch.
    fn touch(&mut self, key: u32) {
        let policy = self.policy;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            let class_of = |freq: u64| match policy {
                CachePolicy::Lru => 0,
                CachePolicy::Lfu => freq,
            };
            let old = (class_of(entry.freq), entry.stamp, key);
            entry.freq += 1;
            entry.stamp = tick;
            let new = (class_of(entry.freq), entry.stamp, key);
            self.order.remove(&old);
            self.order.insert(new);
            self.tick = tick + 1;
        }
    }

    /// Admits (or refreshes) `key → value` after a backend hit.
    fn admit(&mut self, key: u32, value: u32) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.contains_key(&key) {
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.value = value;
            }
            self.touch(key);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(&victim) = self.order.first() {
                self.order.remove(&victim);
                self.entries.remove(&victim.2);
                self.stats.evictions += 1;
            }
        }
        let entry = Entry {
            value,
            freq: 1,
            stamp: self.tick,
        };
        self.tick += 1;
        self.entries.insert(key, entry);
        self.order
            .insert((self.order_class(entry.freq), entry.stamp, key));
        self.stats.admissions += 1;
    }

    /// Drops `key` from the shadow, if present.
    fn invalidate(&mut self, key: u32) {
        if let Some(entry) = self.entries.remove(&key) {
            self.order
                .remove(&(self.order_class(entry.freq), entry.stamp, key));
            self.stats.invalidations += 1;
        }
    }
}

impl<S: MapService> MapService for CachedMap<S> {
    fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError> {
        // backend first: on error the batch may be partially applied, so
        // the shadow must forget every key the batch mentions
        match self.backend.put_batch(pairs) {
            Ok(resp) => {
                let mut dup_count: BTreeMap<u32, u32> = BTreeMap::new();
                for &(k, _) in pairs {
                    *dup_count.entry(k).or_default() += 1;
                }
                for &(k, v) in pairs {
                    if dup_count.get(&k).copied().unwrap_or(0) > 1 {
                        // duplicate keys race in the kernel (last writer
                        // on the event horizon, not slice order) — the
                        // shadow must not guess the winner
                        self.invalidate(k);
                    } else if self.entries.contains_key(&k) {
                        if let Some(entry) = self.entries.get_mut(&k) {
                            entry.value = v;
                        }
                        self.stats.write_updates += 1;
                    }
                }
                Ok(resp)
            }
            Err(e) => {
                for &(k, _) in pairs {
                    self.invalidate(k);
                }
                Err(e)
            }
        }
    }

    fn get_batch(&mut self, keys: &[u32]) -> Result<GetResponse, OpError> {
        let mut values: Vec<Option<u32>> = Vec::with_capacity(keys.len());
        let mut miss_slots: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<u32> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if let Some(entry) = self.entries.get(&k) {
                values.push(Some(entry.value));
                self.stats.hits += 1;
                self.touch(k);
            } else {
                values.push(None);
                miss_slots.push(i);
                miss_keys.push(k);
                self.stats.misses += 1;
            }
        }
        if miss_keys.is_empty() {
            // fully absorbed: no kernel launch, zero modeled device time
            return Ok(GetResponse {
                values,
                report: crate::service::OpReport::default(),
            });
        }
        let resp = self.backend.get_batch(&miss_keys)?;
        for (slot_idx, value) in miss_slots.iter().zip(resp.values.iter()) {
            values[*slot_idx] = *value;
            if let Some(v) = *value {
                self.admit(keys[*slot_idx], v);
            }
        }
        Ok(GetResponse {
            values,
            report: resp.report,
        })
    }

    fn delete_batch(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError> {
        let result = self.backend.delete_batch(keys);
        // drop the keys whether the backend succeeded or not — on an
        // error some may already be tombstoned
        for &k in keys {
            self.invalidate(k);
        }
        result
    }

    fn live_len(&self) -> u64 {
        self.backend.live_len()
    }

    fn slot_capacity(&self) -> u64 {
        self.backend.slot_capacity()
    }

    fn degraded(&self) -> DegradedStats {
        self.backend.degraded()
    }

    fn occupancy_split(&self) -> crate::Occupancy {
        self.backend.occupancy_split()
    }

    fn resize_state(&self) -> crate::ResizeState {
        self.backend.resize_state()
    }

    fn request_grow(&mut self) -> Result<bool, OpError> {
        // resize migrates entries without changing the key→value map, so
        // the shadow stays valid across it
        self.backend.request_grow()
    }

    fn request_compact(&mut self) -> Result<bool, OpError> {
        self.backend.request_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Op, OpReport};

    /// In-memory reference backend (mirrors the one in `service::tests`).
    #[derive(Default)]
    struct ModelService {
        map: std::collections::BTreeMap<u32, u32>,
        gets: usize,
        fail_puts: bool,
    }

    impl MapService for ModelService {
        fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError> {
            if self.fail_puts {
                return Err(OpError::ProbingExhausted {
                    failed: pairs.len() as u64,
                });
            }
            let mut new_slots = 0;
            for &(k, v) in pairs {
                if self.map.insert(k, v).is_none() {
                    new_slots += 1;
                }
            }
            Ok(PutResponse {
                new_slots,
                updates: pairs.len() as u64 - new_slots,
                reclaimed: 0,
                report: OpReport::default(),
            })
        }

        fn get_batch(&mut self, keys: &[u32]) -> Result<GetResponse, OpError> {
            self.gets += keys.len();
            Ok(GetResponse {
                values: keys.iter().map(|k| self.map.get(k).copied()).collect(),
                report: OpReport::default(),
            })
        }

        fn delete_batch(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError> {
            let hits: Vec<bool> = keys.iter().map(|k| self.map.remove(k).is_some()).collect();
            let erased = hits.iter().filter(|&&h| h).count() as u64;
            Ok(DeleteResponse {
                hits,
                erased,
                report: OpReport::default(),
            })
        }

        fn live_len(&self) -> u64 {
            self.map.len() as u64
        }

        fn slot_capacity(&self) -> u64 {
            1 << 20
        }
    }

    fn warmed(capacity: usize, policy: CachePolicy) -> CachedMap<ModelService> {
        let mut c = CachedMap::new(ModelService::default(), capacity, policy);
        c.put_batch(&[(1, 10), (2, 20), (3, 30), (4, 40)]).unwrap();
        c
    }

    #[test]
    fn repeat_gets_are_absorbed() {
        let mut c = warmed(8, CachePolicy::Lru);
        assert_eq!(c.get_batch(&[1]).unwrap().values, vec![Some(10)]);
        let before = c.backend().gets;
        assert_eq!(c.get_batch(&[1, 1, 1]).unwrap().values, vec![Some(10); 3]);
        assert_eq!(c.backend().gets, before, "cached hits must not reach the backend");
        assert_eq!(c.stats().hits, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn misses_are_not_negative_cached() {
        let mut c = warmed(8, CachePolicy::Lru);
        assert_eq!(c.get_batch(&[99]).unwrap().values, vec![None]);
        assert_eq!(c.cached_len(), 0, "a backend miss must not be admitted");
        c.put_batch(&[(99, 9)]).unwrap();
        assert_eq!(c.get_batch(&[99]).unwrap().values, vec![Some(9)]);
    }

    #[test]
    fn puts_update_cached_values_in_place() {
        let mut c = warmed(8, CachePolicy::Lru);
        c.get_batch(&[2]).unwrap(); // admit
        c.put_batch(&[(2, 200)]).unwrap();
        let before = c.backend().gets;
        assert_eq!(c.get_batch(&[2]).unwrap().values, vec![Some(200)]);
        assert_eq!(c.backend().gets, before, "updated entry must stay cached");
        assert_eq!(c.stats().write_updates, 1);
    }

    #[test]
    fn duplicate_put_keys_invalidate_instead_of_guessing() {
        let mut c = warmed(8, CachePolicy::Lru);
        c.get_batch(&[3]).unwrap();
        c.put_batch(&[(3, 1), (5, 2), (3, 7)]).unwrap();
        assert_eq!(c.stats().invalidations, 1);
        // the next get re-reads whatever the backend settled on
        let v = c.get_batch(&[3]).unwrap().values[0];
        assert_eq!(v, c.backend().map.get(&3).copied());
    }

    #[test]
    fn deletes_invalidate() {
        let mut c = warmed(8, CachePolicy::Lru);
        c.get_batch(&[1]).unwrap();
        c.delete_batch(&[1]).unwrap();
        assert_eq!(c.get_batch(&[1]).unwrap().values, vec![None]);
    }

    #[test]
    fn failed_put_invalidates_every_batch_key() {
        let mut c = warmed(8, CachePolicy::Lru);
        c.get_batch(&[1, 2]).unwrap();
        assert_eq!(c.cached_len(), 2);
        c.backend_mut().fail_puts = true;
        assert!(c.put_batch(&[(1, 111), (2, 222)]).is_err());
        assert_eq!(c.cached_len(), 0, "error path must not trust the shadow");
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = warmed(2, CachePolicy::Lru);
        c.get_batch(&[1]).unwrap();
        c.get_batch(&[2]).unwrap();
        c.get_batch(&[1]).unwrap(); // 1 now more recent than 2
        c.get_batch(&[3]).unwrap(); // evicts 2
        let before = c.backend().gets;
        c.get_batch(&[1, 3]).unwrap();
        assert_eq!(c.backend().gets, before, "1 and 3 must be resident");
        c.get_batch(&[2]).unwrap();
        assert_eq!(c.backend().gets, before + 1, "2 must have been evicted");
    }

    #[test]
    fn lfu_keeps_the_frequent_entry() {
        let mut c = warmed(2, CachePolicy::Lfu);
        c.get_batch(&[1, 1, 1]).unwrap(); // freq 3
        c.get_batch(&[2]).unwrap(); // freq 1
        c.get_batch(&[3]).unwrap(); // evicts 2 (lowest freq), not 1
        let before = c.backend().gets;
        c.get_batch(&[1]).unwrap();
        assert_eq!(c.backend().gets, before, "hot entry must survive under LFU");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = warmed(0, CachePolicy::Lru);
        c.get_batch(&[1]).unwrap();
        c.get_batch(&[1]).unwrap();
        assert_eq!(c.cached_len(), 0);
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn mixed_batch_merges_hits_and_misses_in_order() {
        let mut c = warmed(8, CachePolicy::Lru);
        c.get_batch(&[1, 3]).unwrap(); // admit 1 and 3
        let resp = c.get_batch(&[1, 2, 99, 3, 2]).unwrap();
        assert_eq!(
            resp.values,
            vec![Some(10), Some(20), None, Some(30), Some(20)]
        );
    }

    #[test]
    fn execute_through_the_cache_matches_uncached() {
        let ops: Vec<Op> = (0..200u32)
            .map(|i| match i % 5 {
                0 | 1 => Op::Put {
                    key: i % 17,
                    value: i,
                },
                4 => Op::Delete { key: i % 13 },
                _ => Op::Get { key: i % 17 },
            })
            .collect();
        let mut plain = ModelService::default();
        let (want, _) = plain.execute(&ops).unwrap();
        for policy in [CachePolicy::Lru, CachePolicy::Lfu] {
            let mut cached = CachedMap::new(ModelService::default(), 4, policy);
            let (got, _) = cached.execute(&ops).unwrap();
            assert_eq!(got, want, "{} diverged", policy.label());
        }
    }
}
