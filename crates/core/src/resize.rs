//! Load-factor-triggered incremental resize with linearizable online
//! migration.
//!
//! WarpDrive's table is fixed-capacity — the paper sizes it up front and
//! Fig. 7 degrades sharply past load factor ~0.9. This module removes
//! that cliff: a [`ResizePolicy`] watermark on the *effective* load
//! (live **plus** tombstones — both lengthen probe chains) triggers an
//! incremental migration to a fresh table, interleaved with foreground
//! operations in fixed-size slot chunks.
//!
//! ## State machine
//!
//! ```text
//! Stable ──(effective load ≥ watermark)──► Migrating(cursor)
//!    ▲                                          │ chunk per foreground op
//!    └──────────(&mut finalize swap)◄───────────┘ cursor == capacity
//! ```
//!
//! * **Writes land in the new table.** A routed put first tombstones the
//!   key in the old table (so the key never lives in both) and then
//!   inserts into the new one.
//! * **Reads consult old-then-new.** The disjointness invariant — every
//!   key lives in exactly one table — makes the combine order
//!   irrelevant and keeps responses independent of how far the chunk
//!   cursor has advanced, which is what preserves wd-serve's
//!   batch-size-invariance during a resize.
//! * **Every migrated key is history-legal.** The chunk step records
//!   each moved key as an erase→insert pair
//!   ([`crate::HistoryRecorder::record_migration_pair`], the same shape
//!   the chaos `Router` uses for quarantine migration), so the
//!   Wing–Gong checker validates a resize like any other history.
//! * **Compaction** rebuilds at the *same* capacity with a fresh hash
//!   seed, reclaiming tombstone-heavy tables — fixing the "tombstones
//!   count toward load forever" accounting cliff.
//!
//! The table swap itself needs `&mut` (the table reference is a plain
//! field read by `&self` kernels), so a migration whose cursor reaches
//! the end *stays* in `Migrating` — harmlessly: the old table is fully
//! drained — until the next `&mut` entry point
//! ([`crate::GpuHashMap::maybe_finalize_resize`], which every
//! [`crate::MapService`] batch method calls first).
//!
//! The old table's VRAM is **not** reclaimed: [`gpu_sim`]'s device
//! memory is a bump allocator with no per-allocation free (faithful to
//! the scratch discipline real deployments use). Size devices for old +
//! new + scratch when arming a policy.

use crate::config::Layout;
use crate::delete::erase_kernel;
use crate::entry::{live_pair, pack, EMPTY, TOMBSTONE};
use crate::errors::{BuildError, InsertError};
use crate::insert::{insert_kernel, soa_key_of, InsertOutcome};
use crate::map::{GpuHashMap, TableRef};
use crate::probing::Prober;
use crate::retrieve::retrieve_kernel;
use crate::service::OpError;
use gpu_sim::{GroupSize, KernelStats, LaunchOptions};
use hashes::DoubleHash;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::Ordering::Relaxed;

/// When and how a map resizes itself. Armed via
/// [`crate::GpuHashMap::set_resize_policy`] (or the sharded wrapper's
/// equivalent); `None` (the default) keeps the paper's fixed-capacity
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResizePolicy {
    /// Effective-load watermark that triggers a resize:
    /// `(live + tombstones + incoming) / capacity ≥ watermark`.
    /// Tombstones count — they lengthen probe chains exactly like live
    /// entries until reclaimed.
    pub watermark: f64,
    /// Slots migrated per chunk step (rounded up to whole 32-slot spans
    /// by construction — the scan is span-granular).
    pub chunk: usize,
    /// Chunk steps interleaved before each foreground op while a
    /// migration is active.
    pub chunks_per_op: usize,
    /// Capacity multiplier for a grow (compaction always rebuilds at
    /// 1×).
    pub growth_factor: usize,
}

impl Default for ResizePolicy {
    fn default() -> Self {
        Self {
            watermark: 0.85,
            chunk: 256,
            chunks_per_op: 1,
            growth_factor: 2,
        }
    }
}

impl ResizePolicy {
    /// The default policy with the `WD_RESIZE_WATERMARK` (fraction) and
    /// `WD_RESIZE_CHUNK` (slots) environment overrides applied, so any
    /// harness can re-run under a different trigger point or chunk
    /// granularity without code changes.
    #[must_use]
    pub fn from_env() -> Self {
        let mut p = Self::default();
        if let Some(w) = std::env::var("WD_RESIZE_WATERMARK")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|w| (0.0..=1.0).contains(w))
        {
            p.watermark = w;
        }
        if let Some(c) = std::env::var("WD_RESIZE_CHUNK")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
        {
            p.chunk = c;
        }
        p
    }

    /// Sets the effective-load watermark.
    #[must_use]
    pub fn with_watermark(mut self, w: f64) -> Self {
        self.watermark = w;
        self
    }

    /// Sets the migration chunk size in slots.
    #[must_use]
    pub fn with_chunk(mut self, slots: usize) -> Self {
        self.chunk = slots.max(1);
        self
    }

    /// Sets how many chunk steps run before each foreground op.
    #[must_use]
    pub fn with_chunks_per_op(mut self, n: usize) -> Self {
        self.chunks_per_op = n.max(1);
        self
    }

    /// Sets the grow multiplier.
    #[must_use]
    pub fn with_growth_factor(mut self, f: usize) -> Self {
        self.growth_factor = f.max(2);
        self
    }
}

/// Why a migration is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResizeMode {
    /// Growing to `growth_factor ×` the capacity (watermark hit with
    /// mostly live entries).
    Grow,
    /// Rebuilding at the *same* capacity to purge tombstones (watermark
    /// hit with tombstones ≥ live entries).
    Compact,
}

/// Externally visible resize state of a map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeState {
    /// No migration active.
    Stable,
    /// An incremental migration is in flight (or fully scanned and
    /// awaiting its `&mut` finalize).
    Migrating {
        /// Why.
        mode: ResizeMode,
        /// Slots of the source table already migrated.
        cursor: usize,
        /// Source-table capacity (migration completes at
        /// `cursor == source_capacity`).
        source_capacity: usize,
        /// Target-table capacity.
        target_capacity: usize,
    },
}

/// An in-flight migration: the target table plus its own hash member and
/// counters. The source table and its counters stay on the owning map
/// until the finalize swap.
#[derive(Debug)]
pub(crate) struct Migration {
    pub(crate) table: TableRef,
    pub(crate) dh: DoubleHash,
    pub(crate) seed: u32,
    pub(crate) mode: ResizeMode,
    /// Source slots `[0, cursor)` have been migrated.
    pub(crate) cursor: usize,
    /// Live entries in the target table.
    pub(crate) occupied: u64,
    /// Tombstones in the target table (deletes during migration).
    pub(crate) tombstones: u64,
    /// Source-table snapshot taken at `begin` — populated **only** under
    /// the `broken_migrate_skips_tombstone_check` mutation double, whose
    /// chunk step replays this stale image instead of scanning the live
    /// table.
    stale: Option<Vec<u64>>,
}

/// Resize control block of a [`GpuHashMap`], behind a mutex because the
/// insert/retrieve fast paths take `&self`.
#[derive(Debug, Default)]
pub(crate) struct ResizeCtl {
    pub(crate) policy: Option<ResizePolicy>,
    pub(crate) migration: Option<Migration>,
    /// A growth allocation failed: stop re-trying on every insert and
    /// fall back to fixed-capacity behaviour.
    pub(crate) blocked: bool,
}

/// Accumulates kernel stats across the several launches of a routed op.
fn merge_stats(acc: &mut Option<KernelStats>, s: KernelStats) {
    *acc = Some(match acc.take() {
        Some(prev) => prev.merged(&s),
        None => s,
    });
}

/// Splits `pairs` into maximal duplicate-key-free segments (same rule as
/// [`crate::MapService::execute`]). The routed put records per-key
/// events manually, so a batch must not contain two writes of one key —
/// the kernels' race winner could contradict the recorded order.
fn dup_free_segments(pairs: &[(u32, u32)]) -> Vec<std::ops::Range<usize>> {
    let mut segs = Vec::new();
    let mut start = 0usize;
    let mut seen: HashSet<u32> = HashSet::new();
    for (i, &(k, _)) in pairs.iter().enumerate() {
        if seen.contains(&k) {
            segs.push(start..i);
            start = i;
            seen.clear();
        }
        seen.insert(k);
    }
    segs.push(start..pairs.len());
    segs
}

impl GpuHashMap {
    // ---- policy survey ---------------------------------------------------

    /// Arms (or disarms, with `None`) the incremental-resize policy.
    /// Disarming does not abandon an in-flight migration — it runs to
    /// completion; only new triggers stop firing.
    pub fn set_resize_policy(&mut self, policy: Option<ResizePolicy>) {
        let ctl = self.resize.get_mut();
        ctl.policy = policy;
        ctl.blocked = false;
    }

    /// The armed resize policy, if any.
    #[must_use]
    pub fn resize_policy(&self) -> Option<ResizePolicy> {
        self.resize.lock().policy
    }

    /// Current resize state.
    #[must_use]
    pub fn resize_state(&self) -> ResizeState {
        match &self.resize.lock().migration {
            None => ResizeState::Stable,
            Some(m) => ResizeState::Migrating {
                mode: m.mode,
                cursor: m.cursor,
                source_capacity: self.table.capacity,
                target_capacity: m.table.capacity,
            },
        }
    }

    /// The capacity foreground writes currently land in: the migration
    /// target's during a resize, the table's otherwise.
    #[must_use]
    pub fn effective_capacity(&self) -> usize {
        self.resize
            .lock()
            .migration
            .as_ref()
            .map_or(self.table.capacity, |m| m.table.capacity)
    }

    /// Slot occupancy split into live entries and tombstones (see
    /// [`crate::Occupancy`]). During a migration the capacity and
    /// tombstone count describe the table the map is migrating *into*
    /// (the old table's transient tombstones vanish at the swap), while
    /// `live` counts every key wherever it currently resides.
    #[must_use]
    pub fn occupancy_split(&self) -> crate::Occupancy {
        let ctl = self.resize.lock();
        match &ctl.migration {
            None => crate::Occupancy {
                live: self.occupied.load(Relaxed),
                tombstones: self.tombstones.load(Relaxed),
                capacity: self.table.capacity as u64,
            },
            Some(m) => crate::Occupancy {
                live: self.occupied.load(Relaxed) + m.occupied,
                tombstones: m.tombstones,
                capacity: m.table.capacity as u64,
            },
        }
    }

    // ---- explicit triggers ----------------------------------------------

    /// Starts an incremental grow if the map is stable; returns
    /// `Ok(false)` when a migration is already in flight (after
    /// finalizing a completed one).
    ///
    /// # Errors
    /// [`OpError::OutOfMemory`] when the target table does not fit the
    /// device's remaining VRAM.
    pub fn request_grow(&mut self) -> Result<bool, OpError> {
        self.request_resize(ResizeMode::Grow)
    }

    /// Starts an incremental same-capacity compaction (tombstone purge)
    /// if the map is stable; returns `Ok(false)` when a migration is
    /// already in flight.
    ///
    /// # Errors
    /// [`OpError::OutOfMemory`] when the target table does not fit.
    pub fn request_compact(&mut self) -> Result<bool, OpError> {
        self.request_resize(ResizeMode::Compact)
    }

    fn request_resize(&mut self, mode: ResizeMode) -> Result<bool, OpError> {
        self.maybe_finalize_resize();
        let mut ctl = self.resize.lock();
        if ctl.migration.is_some() {
            return Ok(false);
        }
        self.begin_locked(&mut ctl, mode)?;
        Ok(true)
    }

    /// Swaps a *fully scanned* migration in as the primary table.
    /// Returns whether a swap happened. Called automatically at every
    /// [`crate::MapService`] batch entry point; also public for callers
    /// driving the `&self` APIs directly.
    pub fn maybe_finalize_resize(&mut self) -> bool {
        let source_capacity = self.table.capacity;
        let ctl = self.resize.get_mut();
        let done = ctl
            .migration
            .as_ref()
            .is_some_and(|m| m.cursor >= source_capacity);
        if !done {
            return false;
        }
        let Some(m) = ctl.migration.take() else {
            return false;
        };
        self.table = m.table;
        self.dh = m.dh;
        self.cfg.seed = m.seed;
        *self.occupied.get_mut() = m.occupied;
        *self.tombstones.get_mut() = m.tombstones;
        true
    }

    /// Drives any in-flight migration to completion and finalizes it.
    /// Returns whether a migration was finished.
    ///
    /// # Errors
    /// Migration inserts can exhaust probing (compaction into a still
    /// adversarial hash member) and scratch can run out; the migration
    /// stays resumable after an error.
    pub fn finish_resize(&mut self) -> Result<bool, OpError> {
        self.drive_migration_to_end().map_err(OpError::from)
    }

    /// [`GpuHashMap::finish_resize`] with the narrower error type the
    /// maintenance paths (rebuild) need.
    pub(crate) fn drive_migration_to_end(&mut self) -> Result<bool, InsertError> {
        let mut finished = false;
        loop {
            if self.maybe_finalize_resize() {
                finished = true;
                continue;
            }
            let mut ctl = self.resize.lock();
            if ctl.migration.is_none() {
                return Ok(finished);
            }
            self.advance_locked(&mut ctl, usize::MAX)?;
            drop(ctl);
        }
    }

    // ---- trigger & routing (called from the map's host-side paths) -------

    /// Whether a migration is in flight (route-only check: reads and
    /// deletes never *start* a resize — neither raises effective load).
    pub(crate) fn resize_active(&self) -> bool {
        self.resize.lock().migration.is_some()
    }

    /// Locks the control block, fires the watermark trigger if armed,
    /// and reports whether ops must route through the migration paths.
    pub(crate) fn resize_engaged(&self, incoming: usize) -> bool {
        let mut ctl = self.resize.lock();
        if ctl.migration.is_some() {
            return true;
        }
        let Some(policy) = ctl.policy else {
            return false;
        };
        if ctl.blocked {
            return false;
        }
        let live = self.occupied.load(Relaxed);
        let tombs = self.tombstones.load(Relaxed);
        let projected = (live + tombs + incoming as u64) as f64 / self.table.capacity as f64;
        if projected < policy.watermark {
            return false;
        }
        let mode = if tombs >= live && tombs > 0 {
            ResizeMode::Compact
        } else {
            ResizeMode::Grow
        };
        match self.begin_locked(&mut ctl, mode) {
            Ok(()) => true,
            Err(_) => {
                // target table does not fit: fall back to fixed-capacity
                // behaviour instead of failing the foreground op, and
                // stop re-trying the allocation on every insert
                ctl.blocked = true;
                false
            }
        }
    }

    // ---- migration machinery ---------------------------------------------

    /// Allocates and installs the migration target.
    fn begin_locked(&self, ctl: &mut ResizeCtl, mode: ResizeMode) -> Result<(), BuildError> {
        let policy = ctl.policy.unwrap_or_default();
        let capacity = match mode {
            ResizeMode::Grow => self.table.capacity * policy.growth_factor.max(2),
            ResizeMode::Compact => self.table.capacity,
        };
        let words = match self.cfg.layout {
            Layout::Aos => capacity,
            Layout::Soa => 2 * capacity,
        };
        let data = self.dev.alloc(words)?;
        self.dev.mem().fill(data, EMPTY);
        let seed = self.cfg.seed.wrapping_add(1);
        let stale = self
            .cfg
            .broken_migrate_skips_tombstone_check
            .then(|| self.packed_table_words());
        ctl.migration = Some(Migration {
            table: TableRef {
                data,
                capacity,
                layout: self.cfg.layout,
                group_size: self.cfg.group_size,
            },
            dh: DoubleHash::from_seed(seed),
            seed,
            mode,
            cursor: 0,
            occupied: 0,
            tombstones: 0,
            stale,
        });
        Ok(())
    }

    /// The whole source table as packed AOS-style words (sentinels
    /// preserved) — the stale image the
    /// `broken_migrate_skips_tombstone_check` double replays.
    fn packed_table_words(&self) -> Vec<u64> {
        match self.cfg.layout {
            Layout::Aos => self.dev.mem().d2h(self.table.data),
            Layout::Soa => {
                let keys = self.dev.mem().d2h(self.table.soa_keys());
                let values = self.dev.mem().d2h(self.table.soa_values());
                keys.iter()
                    .zip(&values)
                    .map(|(&k, &v)| match soa_key_of(k) {
                        Some(key) => pack(key, v as u32),
                        None => k, // EMPTY or TOMBSTONE key word
                    })
                    .collect()
            }
        }
    }

    /// Launch options for kernels against an arbitrary table (the
    /// migration target bills its own working set).
    fn opts_for(&self, table: &TableRef) -> LaunchOptions {
        let ws = self
            .cfg
            .modeled_capacity_bytes
            .unwrap_or_else(|| table.data.bytes());
        self.cfg.apply_dispatch(
            LaunchOptions::default()
                .with_working_set(ws)
                .with_schedule(self.cfg.schedule),
        )
    }

    fn prober_for(&self, m: &Migration) -> Prober {
        Prober::new(m.dh, self.cfg.probing, m.table.capacity)
    }

    fn source_prober(&self) -> Prober {
        Prober::new(self.dh, self.cfg.probing, self.table.capacity)
    }

    /// Advances the migration by up to `chunks` chunk steps (stops at the
    /// end of the source table). Returns merged stats of the step
    /// launches, if any ran.
    ///
    /// Each step: scan the next chunk of source slots (billed as one
    /// streaming launch, like `rebuild_scan`), insert the live pairs
    /// into the target, *then* tombstone the source slots — a key is
    /// never in neither table at an op boundary — and record each move
    /// as an erase→insert history pair.
    fn advance_locked(
        &self,
        ctl: &mut ResizeCtl,
        chunks: usize,
    ) -> Result<Option<KernelStats>, InsertError> {
        let chunk_slots = ctl.policy.unwrap_or_default().chunk.max(1);
        let Some(m) = ctl.migration.as_mut() else {
            return Ok(None);
        };
        let mut acc: Option<KernelStats> = None;
        for _ in 0..chunks {
            if m.cursor >= self.table.capacity {
                break;
            }
            let len = chunk_slots.min(self.table.capacity - m.cursor);
            let cursor = m.cursor;

            // -- scan the chunk (host-side image; billed as a streaming
            //    launch over the spans, like rebuild_scan)
            let (mut key_words, values) = match self.cfg.layout {
                Layout::Aos => (self.dev.mem().d2h(self.table.data.sub(cursor, len)), None),
                Layout::Soa => (
                    self.dev.mem().d2h(self.table.soa_keys().sub(cursor, len)),
                    Some(self.dev.mem().d2h(self.table.soa_values().sub(cursor, len))),
                ),
            };
            let live_at = |i: usize, w: u64| -> Option<(u32, u32)> {
                match self.cfg.layout {
                    Layout::Aos => live_pair(w),
                    Layout::Soa => soa_key_of(w).map(|k| {
                        let v = values.as_ref().map_or(0, |vs| vs[i]);
                        (k, v as u32)
                    }),
                }
            };
            let moved: Vec<(usize, (u32, u32))> = key_words
                .iter()
                .enumerate()
                .filter_map(|(i, &w)| live_at(i, w).map(|kv| (i, kv)))
                .collect();
            // MUTATION DOUBLE (`broken_migrate_skips_tombstone_check`):
            // replay the begin-time snapshot of this chunk instead of the
            // live scan — a key deleted (or updated) since the migration
            // began is migrated back to life with its stale value.
            let inserted: Vec<(u32, u32)> = match &m.stale {
                Some(snapshot) => snapshot[cursor..cursor + len]
                    .iter()
                    .filter_map(|&w| live_pair(w))
                    .collect(),
                None => moved.iter().map(|&(_, kv)| kv).collect(),
            };
            let scan = self.dev.launch(
                "resize_scan",
                len.div_ceil(32),
                GroupSize::WARP,
                LaunchOptions::default(),
                |ctx| ctx.bill_stream_bytes(32 * 8),
            );
            merge_stats(&mut acc, scan);

            // -- insert into the target first (a key is never lost if the
            //    insert errors — the source slots are still intact)
            if !inserted.is_empty() {
                let words: Vec<u64> = inserted.iter().map(|&(k, v)| pack(k, v)).collect();
                let staging = self.dev.alloc_scratch(words.len())?;
                let input = staging.slice().sub(0, words.len());
                self.dev.mem().h2d(input, &words);
                let outcome = insert_kernel(
                    &self.dev,
                    &m.table,
                    input,
                    words.len(),
                    &self.prober_for(m),
                    self.cfg.p_max,
                    self.opts_for(&m.table),
                    self.cfg.mutations(),
                    None,
                );
                if outcome.failed > 0 {
                    merge_stats(&mut acc, outcome.stats);
                    return Err(InsertError::ProbingExhausted {
                        failed: outcome.failed,
                    });
                }
                m.occupied += outcome.new_slots;
                m.tombstones -= outcome.reclaimed.min(m.tombstones);
                merge_stats(&mut acc, outcome.stats);
            }

            // -- tombstone the moved source slots (EMPTY slots stay EMPTY
            //    so probe sequences on the source keep terminating early)
            if !moved.is_empty() {
                for &(i, _) in &moved {
                    key_words[i] = TOMBSTONE;
                }
                match self.cfg.layout {
                    Layout::Aos => {
                        self.dev
                            .mem()
                            .h2d(self.table.data.sub(cursor, len), &key_words);
                    }
                    Layout::Soa => {
                        self.dev
                            .mem()
                            .h2d(self.table.soa_keys().sub(cursor, len), &key_words);
                        if let Some(mut vs) = values {
                            for &(i, _) in &moved {
                                vs[i] = EMPTY;
                            }
                            self.dev.mem().h2d(self.table.soa_values().sub(cursor, len), &vs);
                        }
                    }
                }
                self.occupied.fetch_sub(moved.len() as u64, Relaxed);
                self.tombstones.fetch_add(moved.len() as u64, Relaxed);
            }

            // -- history: each migrated key is a legal erase→insert pair
            if let Some(rec) = self.recorder.as_deref() {
                for &(k, v) in &inserted {
                    rec.record_migration_pair(k, v, true);
                }
            }
            m.cursor += len;
        }
        Ok(acc)
    }

    // ---- routed foreground ops (active while Migrating) -------------------

    /// Put during migration: tombstone in the source, insert into the
    /// target, with per-key history recorded manually (the kernels run
    /// unrecorded — kernel-level events would claim a false erase/miss
    /// on whichever table doesn't hold the key).
    pub(crate) fn migrating_insert_pairs(
        &self,
        pairs: &[(u32, u32)],
    ) -> Result<InsertOutcome, InsertError> {
        let mut ctl = self.resize.lock();
        let chunks = ctl.policy.unwrap_or_default().chunks_per_op.max(1);
        let mut acc = self.advance_locked(&mut ctl, chunks)?;
        let Some(m) = ctl.migration.as_mut() else {
            // the advance finished the scan and a racing &mut path
            // finalized — fall through to the stable path
            drop(ctl);
            return self.insert_pairs(pairs);
        };

        let mut new_slots = 0u64;
        let mut updates = 0u64;
        let mut reclaimed = 0u64;
        for seg in dup_free_segments(pairs) {
            let seg_pairs = &pairs[seg];
            if seg_pairs.is_empty() {
                continue;
            }
            let n = seg_pairs.len();
            let key_queries: Vec<u64> = seg_pairs.iter().map(|&(k, _)| u64::from(k) << 32).collect();
            let packed: Vec<u64> = seg_pairs.iter().map(|&(k, v)| pack(k, v)).collect();

            // scratch: erase input (n) + retrieve in/out (2n) + insert (n)
            let staging = self.dev.alloc_scratch(4 * n)?;
            let erase_in = staging.slice().sub(0, n);
            let probe_in = staging.slice().sub(n, n);
            let probe_out = staging.slice().sub(2 * n, n);
            let insert_in = staging.slice().sub(3 * n, n);

            // 1. tombstone in the source (per-key hits tell us who was
            //    present there)
            self.dev.mem().h2d(erase_in, &key_queries);
            let erase = erase_kernel(
                &self.dev,
                &self.table,
                erase_in,
                n,
                &self.source_prober(),
                self.cfg.p_max,
                self.opts_for(&self.table),
                None,
            );
            self.occupied.fetch_sub(erase.erased, Relaxed);
            self.tombstones.fetch_add(erase.erased, Relaxed);

            // 2. unrecorded probe of the target: who is already there
            self.dev.mem().h2d(probe_in, &key_queries);
            let probe = retrieve_kernel(
                &self.dev,
                &m.table,
                probe_in,
                probe_out,
                n,
                &self.prober_for(m),
                self.cfg.p_max,
                self.opts_for(&m.table),
                self.cfg.mutations(),
                None,
            );
            let found_target: Vec<bool> = self
                .dev
                .mem()
                .d2h(probe_out)
                .into_iter()
                .map(|w| w != EMPTY)
                .collect();

            // 3. insert into the target
            self.dev.mem().h2d(insert_in, &packed);
            let outcome = insert_kernel(
                &self.dev,
                &m.table,
                insert_in,
                n,
                &self.prober_for(m),
                self.cfg.p_max,
                self.opts_for(&m.table),
                self.cfg.mutations(),
                None,
            );
            m.occupied += outcome.new_slots;
            m.tombstones -= outcome.reclaimed.min(m.tombstones);
            let failed = outcome.failed;
            merge_stats(&mut acc, erase.stats);
            merge_stats(&mut acc, probe.merged(&outcome.stats));
            if failed > 0 {
                return Err(InsertError::ProbingExhausted { failed });
            }

            // 4. per-key logical outcome: new iff present in neither table
            for (i, &(k, v)) in seg_pairs.iter().enumerate() {
                let new_slot = !erase.hits[i] && !found_target[i];
                if new_slot {
                    new_slots += 1;
                } else {
                    updates += 1;
                }
                if let Some(rec) = self.recorder.as_deref() {
                    let invoked = rec.invoke();
                    rec.complete(
                        k,
                        crate::OpKind::Insert { value: v },
                        crate::OpResponse::Inserted { new_slot },
                        invoked,
                    );
                }
            }
            reclaimed += outcome.reclaimed;
        }
        // empty batch against a fully-scanned migration: nothing launched
        let stats = match acc {
            Some(s) => s,
            None => self.dev.launch(
                "warpdrive_insert",
                0,
                self.table.group_size,
                LaunchOptions::default(),
                |_ctx| {},
            ),
        };
        Ok(InsertOutcome {
            stats,
            failed: 0,
            new_slots,
            updates,
            reclaimed,
        })
    }

    /// Get during migration: probe the source, then the target; the
    /// disjointness invariant means at most one hits.
    pub(crate) fn migrating_retrieve(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Option<u32>>, KernelStats), OpError> {
        let mut ctl = self.resize.lock();
        let chunks = ctl.policy.unwrap_or_default().chunks_per_op.max(1);
        let cursor_before = ctl.migration.as_ref().map_or(0, |m| m.cursor);
        let mut acc = self.advance_locked(&mut ctl, chunks).map_err(OpError::from)?;
        let Some(m) = ctl.migration.as_ref() else {
            drop(ctl);
            return self.retrieve_impl(keys);
        };

        let n = keys.len();
        let cell = n.max(1);
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let staging = self.dev.alloc_scratch(4 * cell)?;
        let src_in = staging.slice().sub(0, n);
        let src_out = staging.slice().sub(cell, n);
        let tgt_in = staging.slice().sub(2 * cell, n);
        let tgt_out = staging.slice().sub(3 * cell, n);

        self.dev.mem().h2d(src_in, &words);
        let s1 = retrieve_kernel(
            &self.dev,
            &self.table,
            src_in,
            src_out,
            n,
            &self.source_prober(),
            self.cfg.p_max,
            self.opts_for(&self.table),
            self.cfg.mutations(),
            None,
        );
        self.dev.mem().h2d(tgt_in, &words);
        let s2 = retrieve_kernel(
            &self.dev,
            &m.table,
            tgt_in,
            tgt_out,
            n,
            &self.prober_for(m),
            self.cfg.p_max,
            self.opts_for(&m.table),
            self.cfg.mutations(),
            None,
        );
        merge_stats(&mut acc, s1.merged(&s2));

        let src_res = self.dev.mem().d2h(src_out);
        let tgt_res = self.dev.mem().d2h(tgt_out);
        let migrated_window = cursor_before..m.cursor;
        let src_prober = self.source_prober();
        let values: Vec<Option<u32>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                // MUTATION DOUBLE (`broken_read_misses_migrating_window`):
                // a read whose home span lies in the chunk that just
                // moved races the movement — it sees the source already
                // cleared and the target not yet visible, reporting a
                // miss for a live key.
                if self.cfg.broken_read_misses_migrating_window
                    && migrated_window.contains(&(src_prober.span_base(k, 0) as usize))
                {
                    return None;
                }
                let hit = if src_res[i] != EMPTY {
                    src_res[i]
                } else {
                    tgt_res[i]
                };
                (hit != EMPTY).then(|| crate::entry::value_of(hit))
            })
            .collect();

        if let Some(rec) = self.recorder.as_deref() {
            for (i, &k) in keys.iter().enumerate() {
                let invoked = rec.invoke();
                let response = match values[i] {
                    Some(value) => crate::OpResponse::Found { value },
                    None => crate::OpResponse::NotFound,
                };
                rec.complete(k, crate::OpKind::Retrieve, response, invoked);
            }
        }
        let Some(stats) = acc else {
            return Err(OpError::Internal {
                detail: "migrating get produced no kernel launch",
            });
        };
        Ok((values, stats))
    }

    /// Delete during migration: erase from both tables; the key lives in
    /// at most one, so the per-key hit is the OR.
    pub(crate) fn migrating_erase(
        &self,
        keys: &[u32],
    ) -> Result<crate::delete::EraseOutcome, OpError> {
        let mut ctl = self.resize.lock();
        let chunks = ctl.policy.unwrap_or_default().chunks_per_op.max(1);
        let mut acc = self.advance_locked(&mut ctl, chunks).map_err(OpError::from)?;
        let Some(m) = ctl.migration.as_mut() else {
            drop(ctl);
            let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
            let staging = self.dev.alloc_scratch(words.len().max(1))?;
            let input = staging.slice().sub(0, words.len());
            self.dev.mem().h2d(input, &words);
            return Ok(self.erase_device_shared(input, words.len()));
        };

        let n = keys.len();
        let cell = n.max(1);
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let staging = self.dev.alloc_scratch(2 * cell)?;
        let src_in = staging.slice().sub(0, n);
        let tgt_in = staging.slice().sub(cell, n);

        self.dev.mem().h2d(src_in, &words);
        let src = erase_kernel(
            &self.dev,
            &self.table,
            src_in,
            n,
            &self.source_prober(),
            self.cfg.p_max,
            self.opts_for(&self.table),
            None,
        );
        self.occupied.fetch_sub(src.erased, Relaxed);
        self.tombstones.fetch_add(src.erased, Relaxed);

        self.dev.mem().h2d(tgt_in, &words);
        let tgt = erase_kernel(
            &self.dev,
            &m.table,
            tgt_in,
            n,
            &self.prober_for(m),
            self.cfg.p_max,
            self.opts_for(&m.table),
            None,
        );
        m.occupied -= tgt.erased.min(m.occupied);
        m.tombstones += tgt.erased;
        merge_stats(&mut acc, src.stats.clone().merged(&tgt.stats));

        let hits: Vec<bool> = src
            .hits
            .iter()
            .zip(&tgt.hits)
            .map(|(&a, &b)| a || b)
            .collect();
        if let Some(rec) = self.recorder.as_deref() {
            for (i, &k) in keys.iter().enumerate() {
                let invoked = rec.invoke();
                rec.complete(
                    k,
                    crate::OpKind::Erase,
                    crate::OpResponse::Erased { hit: hits[i] },
                    invoked,
                );
            }
        }
        let Some(stats) = acc else {
            return Err(OpError::Internal {
                detail: "migrating delete produced no kernel launch",
            });
        };
        let erased = hits.iter().filter(|&&h| h).count() as u64;
        Ok(crate::delete::EraseOutcome {
            stats,
            erased,
            hits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use gpu_sim::Device;
    use std::sync::Arc;

    fn map(capacity: usize, cfg: Config) -> GpuHashMap {
        // room for source + 2× target + scratch
        let dev = Arc::new(Device::with_words(0, capacity * 16 + (1 << 12)));
        GpuHashMap::new(dev, capacity, cfg).unwrap()
    }

    #[test]
    fn policy_env_knobs_parse_and_clamp() {
        let p = ResizePolicy::default();
        assert!((p.watermark - 0.85).abs() < 1e-12);
        assert_eq!(p.chunk, 256);
        let p = p.with_watermark(0.5).with_chunk(0).with_growth_factor(1);
        assert!((p.watermark - 0.5).abs() < 1e-12);
        assert_eq!(p.chunk, 1);
        assert_eq!(p.growth_factor, 2);
    }

    #[test]
    fn dup_free_segments_split_exactly_like_execute() {
        let pairs = [(1, 0), (2, 0), (1, 1), (1, 2), (3, 0)];
        let segs = dup_free_segments(&pairs);
        assert_eq!(segs, vec![0..2, 2..3, 3..5]);
        assert_eq!(dup_free_segments(&[]), vec![0..0]);
    }

    #[test]
    fn watermark_triggers_grow_and_content_survives() {
        let mut m = map(256, Config::default());
        m.set_resize_policy(Some(ResizePolicy::default().with_chunk(64)));
        let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i + 1, i)).collect();
        // push straight through the 0.85 watermark of the 256-slot table
        for chunk in pairs.chunks(50) {
            m.insert_pairs(chunk).unwrap();
        }
        assert!(matches!(
            m.resize_state(),
            ResizeState::Migrating { mode: ResizeMode::Grow, .. } | ResizeState::Stable
        ));
        assert!(m.finish_resize().is_ok());
        assert!(m.maybe_finalize_resize() || m.resize_state() == ResizeState::Stable);
        assert_eq!(m.capacity(), 512);
        assert_eq!(m.len(), 400);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = m.try_retrieve(&keys).unwrap().values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1), "key {} lost in grow", p.0);
        }
    }

    #[test]
    fn reads_and_deletes_work_mid_migration() {
        let mut m = map(512, Config::default());
        let pairs: Vec<(u32, u32)> = (0..300u32).map(|i| (i + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        assert!(m.request_grow().unwrap());
        // mid-migration: nothing has moved yet beyond chunk steps driven
        // by these very ops
        let res = m.try_retrieve(&[1, 2, 300, 999]).unwrap().values;
        assert_eq!(res, vec![Some(0), Some(1), Some(299), None]);
        let del = m.try_erase(&[1, 999]).unwrap();
        assert_eq!(del.hits, vec![true, false]);
        assert_eq!(m.get(1), None);
        // writes land in the target; updates of unmigrated keys move them
        m.insert_pairs(&[(2, 77), (1000, 1)]).unwrap();
        assert_eq!(m.get(2), Some(77));
        assert_eq!(m.get(1000), Some(1));
        m.finish_resize().unwrap();
        assert_eq!(m.capacity(), 1024);
        assert_eq!(m.get(2), Some(77));
        assert_eq!(m.get(1), None);
        assert_eq!(m.len(), 300); // 300 - 1 deleted + 1 new
    }

    #[test]
    fn compaction_purges_tombstones_at_same_capacity() {
        let mut m = map(512, Config::default());
        let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        m.try_erase(&(1..=300).collect::<Vec<u32>>()).unwrap();
        assert_eq!(m.tombstones(), 300);
        assert!(m.request_compact().unwrap());
        assert!(matches!(
            m.resize_state(),
            ResizeState::Migrating { mode: ResizeMode::Compact, .. }
        ));
        m.finish_resize().unwrap();
        assert_eq!(m.capacity(), 512, "compaction must not grow");
        assert_eq!(m.tombstones(), 0);
        assert_eq!(m.len(), 100);
        for k in 301..=400u32 {
            assert_eq!(m.get(k), Some(k - 1));
        }
        assert_eq!(m.get(5), None, "deleted key must stay dead");
    }

    #[test]
    fn migration_records_erase_insert_pairs() {
        let mut m = map(256, Config::default());
        let rec = Arc::new(crate::HistoryRecorder::new());
        m.set_recorder(Some(Arc::clone(&rec)));
        m.insert_pairs(&(0..50u32).map(|i| (i + 1, i)).collect::<Vec<_>>())
            .unwrap();
        m.request_grow().unwrap();
        m.finish_resize().unwrap();
        let events = rec.events();
        let erases = events
            .iter()
            .filter(|e| e.kind == crate::OpKind::Erase)
            .count();
        assert_eq!(erases, 50, "each migrated key records one erase");
        crate::check_linearizable(&events).expect("migration history must linearize");
    }

    #[test]
    fn occupancy_split_tracks_target_during_migration() {
        let mut m = map(256, Config::default());
        m.insert_pairs(&(0..100u32).map(|i| (i + 1, i)).collect::<Vec<_>>())
            .unwrap();
        let o = m.occupancy_split();
        assert_eq!((o.live, o.tombstones, o.capacity), (100, 0, 256));
        m.request_grow().unwrap();
        let o = m.occupancy_split();
        assert_eq!(o.live, 100);
        assert_eq!(o.capacity, 512);
        m.finish_resize().unwrap();
        let o = m.occupancy_split();
        assert_eq!((o.live, o.capacity), (100, 512));
    }

    #[test]
    fn request_grow_while_migrating_is_a_noop() {
        let mut m = map(256, Config::default());
        m.insert_pairs(&(0..100u32).map(|i| (i + 1, i)).collect::<Vec<_>>())
            .unwrap();
        assert!(m.request_grow().unwrap());
        assert!(!m.request_grow().unwrap(), "second request must coalesce");
        m.finish_resize().unwrap();
        assert_eq!(m.capacity(), 512);
    }

    #[test]
    fn oom_on_growth_blocks_trigger_but_keeps_serving() {
        // device fits the source table + scratch but not a 2× target
        let dev = Arc::new(Device::with_words(0, 700));
        let mut m = GpuHashMap::new(dev, 256, Config::default()).unwrap();
        m.set_resize_policy(Some(ResizePolicy::default().with_watermark(0.3)));
        let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap(); // trigger fires, alloc fails, op succeeds
        assert_eq!(m.resize_state(), ResizeState::Stable);
        assert_eq!(m.len(), 200);
        // explicit request surfaces the typed error
        assert!(matches!(m.request_grow(), Err(OpError::OutOfMemory(_))));
    }
}
