//! Hash-map configuration.

use gpu_sim::{FaultPlan, GroupSize, RetryPolicy, Schedule};
use serde::{Deserialize, Serialize};

/// Table memory layout (paper Fig. 1; ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Array-of-structs: one packed 64-bit word per slot. Fully atomic,
    /// cache-friendly — the paper's default.
    Aos,
    /// Struct-of-arrays: separate key and value words. CAS guards only
    /// the key word; the value word is written relaxed *after* the claim,
    /// so concurrent updaters of the same key may exhibit the priority
    /// inversion discussed in §II. Twice the footprint in this 4+4-byte
    /// instantiation (it pays off only for keys wider than 32 bits).
    Soa,
}

/// Probing-scheme selection (§II; ablation A2).
///
/// All schemes probe `|g|`-slot windows with intra-window linear probing
/// (the coalesced access is what the paper's contribution is about); they
/// differ in how the *window base* advances with the outer attempt `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbingScheme {
    /// The paper's hybrid: chaotic (double-hashed) jumps between
    /// warp-sized spans, linear within (Fig. 3: `h ← hash(d, p)`).
    Hybrid,
    /// Pure linear probing: consecutive warp-sized spans
    /// (`s(k, l) = h(k) + l`, Eq. 1 — prone to primary clustering).
    Linear,
    /// Quadratic probing: spans advance by `p²` (Eq. 2).
    Quadratic,
}

/// Configuration of a [`crate::GpuHashMap`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Coalesced-group size `|g|` (the central tuning knob of Figs. 7–8).
    #[serde(with = "group_size_serde")]
    pub group_size: GroupSize,
    /// Probing scheme.
    pub probing: ProbingScheme,
    /// Memory layout.
    pub layout: Layout,
    /// Maximum outer probing attempts before raising an insertion error
    /// (`p_max` of Fig. 3).
    pub p_max: u32,
    /// Seed selecting the hash-family member; bumped on rebuild after an
    /// insertion failure ("reconstruction with a distinct hash function",
    /// §II).
    pub seed: u32,
    /// Capacity in bytes **at modeled scale** for the timing model's >2 GB
    /// CAS artifact; `None` bills the actual table footprint. Harnesses
    /// running functionally scaled-down experiments set this to the
    /// paper-scale footprint.
    pub modeled_capacity_bytes: Option<u64>,
    /// How this map's kernel launches interleave their groups: the racing
    /// Rayon pool (default) or a deterministic stepwise schedule for
    /// concurrency testing and replay. `Config::default()` honors the
    /// `WD_SCHED_MODE` / `WD_SCHED_SEED` environment variables (see
    /// [`gpu_sim::Schedule::from_env`]), so any test can be replayed
    /// under a recorded schedule without code changes.
    pub schedule: Schedule,
    /// Forces per-op stepwise dispatch (`Some(true)`) or chunked lane
    /// dispatch (`Some(false)`) for this map's kernel launches. `None`
    /// (the default) defers to the process-wide `WD_SCHED_CHUNK`
    /// environment knob (see [`gpu_sim::chunked_dispatch_default`]),
    /// which defaults to chunked. Only meaningful under a stepwise
    /// [`Schedule`]; pool mode ignores it. The two paths produce
    /// bit-identical modeled counters and schedule decisions — this knob
    /// exists for differential testing and for replaying per-op traces.
    #[serde(default)]
    pub per_op_dispatch: Option<bool>,
    /// Deterministic fault-injection plan for the multi-GPU cascades:
    /// link degradation, transfer drops, transient launch failures,
    /// stragglers and killed devices. `Config::default()` honors the
    /// `WD_FAULT` / `WD_FAULT_SEED` environment variables (see
    /// [`gpu_sim::FaultPlan::from_env`]), so any suite can run under
    /// chaos without code changes; the default plan is disarmed and the
    /// fault-off path bills byte-identical counters to pre-chaos
    /// behaviour. Override per map with
    /// [`crate::DistributedHashMap::set_fault_plan`].
    pub fault: FaultPlan,
    /// Retry/backoff/timeout budgets governing how cascades respond to
    /// injected faults: idempotent retries with exponential backoff up
    /// to `max_attempts` per site within a per-operation time budget,
    /// after which the offending GPU is quarantined and its partition
    /// re-split across the survivors.
    pub retry: RetryPolicy,
    /// **Mutation double — test-only.** When `true`, insertion skips the
    /// Fig. 3 window-reload/re-ballot after a failed claim CAS and retries
    /// the next vacant slot of the *stale* window instead. This is a
    /// deliberately broken probing variant that can store one key in two
    /// slots; it exists so the linearizability harness can prove it
    /// catches exactly this class of bug. Never enable outside tests.
    pub broken_cas_recheck: bool,
    /// **Mutation double — test-only.** When `true`, the SOA insert path
    /// publishes the value word with a *plain store* instead of the
    /// sentinel-CAS of the publication protocol, losing the
    /// release/acquire edge that orders it against concurrent updaters.
    /// The end state often still looks right; `wd-sanitizer`'s racecheck
    /// exists to catch exactly this. Never enable outside tests.
    pub broken_publish_plain_store: bool,
    /// **Mutation double — test-only.** When `true`, table construction
    /// skips the EMPTY-sentinel fill, leaving every slot word undefined —
    /// the classic forgotten-`cudaMemset` bug initcheck exists to catch.
    /// Never enable outside tests.
    pub broken_skip_fill: bool,
    /// **Mutation double — test-only.** When `true`, the retrieve kernel
    /// reads its input query one group past its own, running the last
    /// group off the end of the input buffer — the off-by-one memcheck
    /// exists to catch. Never enable outside tests.
    pub broken_window_overrun: bool,
    /// **Mutation double — test-only.** When `true`, the AOS insert path
    /// re-ballots after a failed claim CAS with the failing lane masked
    /// out of the participation mask — lockstep divergence synccheck
    /// exists to catch. Never enable outside tests.
    pub broken_divergent_ballot: bool,
    /// **Mutation double — test-only.** When `true`, a transiently
    /// failed insert launch is *also* applied to its failover targets
    /// while the primary GPU is still being retried — premature failover
    /// without the idempotence guard, leaving the same key live on two
    /// GPUs. The chaos suite's multiset-conservation and linearizability
    /// checks exist to catch exactly this. Never enable outside tests.
    pub broken_double_apply_on_retry: bool,
    /// **Mutation double — test-only.** When `true`, quarantining a GPU
    /// skips the re-split of its partition across the survivors, silently
    /// dropping the quarantined shard's keys. The chaos suite's
    /// degraded-mode round-trip exists to catch exactly this. Never
    /// enable outside tests.
    pub broken_forget_quarantined_partition: bool,
    /// **Mutation double — test-only.** When `true`, the incremental
    /// resize's migration scan skips the live-entry check and replays the
    /// table contents *snapshotted at migration start*, so a key deleted
    /// after the resize began is migrated back to life in the new table —
    /// the classic stale-scan bug of online migration. The resize sweeps'
    /// conservation and linearizability checks exist to catch exactly
    /// this. Never enable outside tests.
    pub broken_migrate_skips_tombstone_check: bool,
    /// **Mutation double — test-only.** When `true`, a read issued during
    /// migration ignores old-table hits for keys whose home window lies
    /// inside the chunk currently being moved — the read races the
    /// in-flight chunk and reports `NotFound` for a live key. The resize
    /// sweeps' full-retrieval and linearizability checks exist to catch
    /// exactly this. Never enable outside tests.
    pub broken_read_misses_migrating_window: bool,
}

/// The full set of mutation-double switches, bundled so kernel entry
/// points take one parameter instead of one `bool` per double.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Mutations {
    pub cas_recheck: bool,
    pub publish_plain_store: bool,
    pub window_overrun: bool,
    pub divergent_ballot: bool,
}

impl Default for Config {
    /// The paper's "reasonably fast but not optimal" reference setting:
    /// `|g| = 4`, hybrid probing, AOS (§V-C).
    fn default() -> Self {
        Self {
            group_size: GroupSize::new(4),
            probing: ProbingScheme::Hybrid,
            layout: Layout::Aos,
            p_max: 10_000,
            seed: 0,
            modeled_capacity_bytes: None,
            schedule: Schedule::from_env(),
            per_op_dispatch: None,
            fault: FaultPlan::from_env(),
            retry: RetryPolicy::default(),
            broken_cas_recheck: false,
            broken_publish_plain_store: false,
            broken_skip_fill: false,
            broken_window_overrun: false,
            broken_divergent_ballot: false,
            broken_double_apply_on_retry: false,
            broken_forget_quarantined_partition: false,
            broken_migrate_skips_tombstone_check: false,
            broken_read_misses_migrating_window: false,
        }
    }
}

impl Config {
    /// Sets the group size.
    #[must_use]
    pub fn with_group_size(mut self, g: u32) -> Self {
        self.group_size = GroupSize::new(g);
        self
    }

    /// Sets the probing scheme.
    #[must_use]
    pub fn with_probing(mut self, p: ProbingScheme) -> Self {
        self.probing = p;
        self
    }

    /// Sets the layout.
    #[must_use]
    pub fn with_layout(mut self, l: Layout) -> Self {
        self.layout = l;
        self
    }

    /// Sets the hash seed.
    #[must_use]
    pub fn with_seed(mut self, s: u32) -> Self {
        self.seed = s;
        self
    }

    /// Sets the modeled capacity (for scaled experiments).
    #[must_use]
    pub fn with_modeled_capacity(mut self, bytes: u64) -> Self {
        self.modeled_capacity_bytes = Some(bytes);
        self
    }

    /// Sets the group schedule for this map's kernel launches.
    #[must_use]
    pub fn with_schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Forces per-op (`true`) or chunked (`false`) stepwise dispatch for
    /// this map's kernel launches (see [`Config::per_op_dispatch`]).
    #[must_use]
    pub fn with_per_op_dispatch(mut self, per_op: bool) -> Self {
        self.per_op_dispatch = Some(per_op);
        self
    }

    /// Applies the dispatch override (if any) to a built
    /// [`gpu_sim::LaunchOptions`].
    pub(crate) fn apply_dispatch(&self, opts: gpu_sim::LaunchOptions) -> gpu_sim::LaunchOptions {
        match self.per_op_dispatch {
            Some(per_op) => opts.with_per_op_dispatch(per_op),
            None => opts,
        }
    }

    /// Sets the fault-injection plan (see [`Config::fault`]).
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Sets the retry/backoff policy (see [`Config::retry`]).
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Enables the broken-probing mutation double (test-only; see the
    /// field docs on [`Config::broken_cas_recheck`]).
    #[must_use]
    pub fn with_broken_cas_recheck(mut self) -> Self {
        self.broken_cas_recheck = true;
        self
    }

    /// Enables the plain-store publication mutation double (test-only;
    /// see [`Config::broken_publish_plain_store`]).
    #[must_use]
    pub fn with_broken_publish_plain_store(mut self) -> Self {
        self.broken_publish_plain_store = true;
        self
    }

    /// Enables the skipped-fill mutation double (test-only; see
    /// [`Config::broken_skip_fill`]).
    #[must_use]
    pub fn with_broken_skip_fill(mut self) -> Self {
        self.broken_skip_fill = true;
        self
    }

    /// Enables the input-overrun mutation double (test-only; see
    /// [`Config::broken_window_overrun`]).
    #[must_use]
    pub fn with_broken_window_overrun(mut self) -> Self {
        self.broken_window_overrun = true;
        self
    }

    /// Enables the divergent-ballot mutation double (test-only; see
    /// [`Config::broken_divergent_ballot`]).
    #[must_use]
    pub fn with_broken_divergent_ballot(mut self) -> Self {
        self.broken_divergent_ballot = true;
        self
    }

    /// Enables the premature-failover mutation double (test-only; see
    /// [`Config::broken_double_apply_on_retry`]).
    #[must_use]
    pub fn with_broken_double_apply_on_retry(mut self) -> Self {
        self.broken_double_apply_on_retry = true;
        self
    }

    /// Enables the dropped-shard mutation double (test-only; see
    /// [`Config::broken_forget_quarantined_partition`]).
    #[must_use]
    pub fn with_broken_forget_quarantined_partition(mut self) -> Self {
        self.broken_forget_quarantined_partition = true;
        self
    }

    /// Enables the stale-migration-scan mutation double (test-only; see
    /// [`Config::broken_migrate_skips_tombstone_check`]).
    #[must_use]
    pub fn with_broken_migrate_skips_tombstone_check(mut self) -> Self {
        self.broken_migrate_skips_tombstone_check = true;
        self
    }

    /// Enables the migrating-window read-race mutation double (test-only;
    /// see [`Config::broken_read_misses_migrating_window`]).
    #[must_use]
    pub fn with_broken_read_misses_migrating_window(mut self) -> Self {
        self.broken_read_misses_migrating_window = true;
        self
    }

    /// Bundles the mutation-double switches for kernel entry points.
    pub(crate) fn mutations(&self) -> Mutations {
        Mutations {
            cas_recheck: self.broken_cas_recheck,
            publish_plain_store: self.broken_publish_plain_store,
            window_overrun: self.broken_window_overrun,
            divergent_ballot: self.broken_divergent_ballot,
        }
    }
}

// With the offline serde stand-in the derives are no-ops, so nothing
// references these helpers; they stay for when real serde returns.
#[allow(dead_code)]
mod group_size_serde {
    use gpu_sim::GroupSize;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(g: &GroupSize, s: S) -> Result<S::Ok, S::Error> {
        g.get().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<GroupSize, D::Error> {
        let n = u32::deserialize(d)?;
        if matches!(n, 1 | 2 | 4 | 8 | 16 | 32) {
            Ok(GroupSize::new(n))
        } else {
            Err(serde::de::Error::custom(format!(
                "invalid group size {n}: must be one of 1, 2, 4, 8, 16, 32"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_reference_setting() {
        let c = Config::default();
        assert_eq!(c.group_size.get(), 4);
        assert_eq!(c.probing, ProbingScheme::Hybrid);
        assert_eq!(c.layout, Layout::Aos);
    }

    #[test]
    fn builder_chain() {
        let c = Config::default()
            .with_group_size(8)
            .with_probing(ProbingScheme::Linear)
            .with_layout(Layout::Soa)
            .with_seed(99)
            .with_modeled_capacity(1 << 33);
        assert_eq!(c.group_size.get(), 8);
        assert_eq!(c.probing, ProbingScheme::Linear);
        assert_eq!(c.layout, Layout::Soa);
        assert_eq!(c.seed, 99);
        assert_eq!(c.modeled_capacity_bytes, Some(1 << 33));
    }
}
