//! Hash-map configuration.

use gpu_sim::{GroupSize, Schedule};
use serde::{Deserialize, Serialize};

/// Table memory layout (paper Fig. 1; ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Array-of-structs: one packed 64-bit word per slot. Fully atomic,
    /// cache-friendly — the paper's default.
    Aos,
    /// Struct-of-arrays: separate key and value words. CAS guards only
    /// the key word; the value word is written relaxed *after* the claim,
    /// so concurrent updaters of the same key may exhibit the priority
    /// inversion discussed in §II. Twice the footprint in this 4+4-byte
    /// instantiation (it pays off only for keys wider than 32 bits).
    Soa,
}

/// Probing-scheme selection (§II; ablation A2).
///
/// All schemes probe `|g|`-slot windows with intra-window linear probing
/// (the coalesced access is what the paper's contribution is about); they
/// differ in how the *window base* advances with the outer attempt `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbingScheme {
    /// The paper's hybrid: chaotic (double-hashed) jumps between
    /// warp-sized spans, linear within (Fig. 3: `h ← hash(d, p)`).
    Hybrid,
    /// Pure linear probing: consecutive warp-sized spans
    /// (`s(k, l) = h(k) + l`, Eq. 1 — prone to primary clustering).
    Linear,
    /// Quadratic probing: spans advance by `p²` (Eq. 2).
    Quadratic,
}

/// Configuration of a [`crate::GpuHashMap`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Coalesced-group size `|g|` (the central tuning knob of Figs. 7–8).
    #[serde(with = "group_size_serde")]
    pub group_size: GroupSize,
    /// Probing scheme.
    pub probing: ProbingScheme,
    /// Memory layout.
    pub layout: Layout,
    /// Maximum outer probing attempts before raising an insertion error
    /// (`p_max` of Fig. 3).
    pub p_max: u32,
    /// Seed selecting the hash-family member; bumped on rebuild after an
    /// insertion failure ("reconstruction with a distinct hash function",
    /// §II).
    pub seed: u32,
    /// Capacity in bytes **at modeled scale** for the timing model's
    /// >2 GB CAS artifact; `None` bills the actual table footprint.
    /// Harnesses running functionally scaled-down experiments set this to
    /// the paper-scale footprint.
    pub modeled_capacity_bytes: Option<u64>,
    /// How this map's kernel launches interleave their groups: the racing
    /// Rayon pool (default) or a deterministic stepwise schedule for
    /// concurrency testing and replay. `Config::default()` honors the
    /// `WD_SCHED_MODE` / `WD_SCHED_SEED` environment variables (see
    /// [`gpu_sim::Schedule::from_env`]), so any test can be replayed
    /// under a recorded schedule without code changes.
    pub schedule: Schedule,
    /// **Mutation double — test-only.** When `true`, insertion skips the
    /// Fig. 3 window-reload/re-ballot after a failed claim CAS and retries
    /// the next vacant slot of the *stale* window instead. This is a
    /// deliberately broken probing variant that can store one key in two
    /// slots; it exists so the linearizability harness can prove it
    /// catches exactly this class of bug. Never enable outside tests.
    pub broken_cas_recheck: bool,
}

impl Default for Config {
    /// The paper's "reasonably fast but not optimal" reference setting:
    /// `|g| = 4`, hybrid probing, AOS (§V-C).
    fn default() -> Self {
        Self {
            group_size: GroupSize::new(4),
            probing: ProbingScheme::Hybrid,
            layout: Layout::Aos,
            p_max: 10_000,
            seed: 0,
            modeled_capacity_bytes: None,
            schedule: Schedule::from_env(),
            broken_cas_recheck: false,
        }
    }
}

impl Config {
    /// Sets the group size.
    #[must_use]
    pub fn with_group_size(mut self, g: u32) -> Self {
        self.group_size = GroupSize::new(g);
        self
    }

    /// Sets the probing scheme.
    #[must_use]
    pub fn with_probing(mut self, p: ProbingScheme) -> Self {
        self.probing = p;
        self
    }

    /// Sets the layout.
    #[must_use]
    pub fn with_layout(mut self, l: Layout) -> Self {
        self.layout = l;
        self
    }

    /// Sets the hash seed.
    #[must_use]
    pub fn with_seed(mut self, s: u32) -> Self {
        self.seed = s;
        self
    }

    /// Sets the modeled capacity (for scaled experiments).
    #[must_use]
    pub fn with_modeled_capacity(mut self, bytes: u64) -> Self {
        self.modeled_capacity_bytes = Some(bytes);
        self
    }

    /// Sets the group schedule for this map's kernel launches.
    #[must_use]
    pub fn with_schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Enables the broken-probing mutation double (test-only; see the
    /// field docs on [`Config::broken_cas_recheck`]).
    #[must_use]
    pub fn with_broken_cas_recheck(mut self) -> Self {
        self.broken_cas_recheck = true;
        self
    }
}

// With the offline serde stand-in the derives are no-ops, so nothing
// references these helpers; they stay for when real serde returns.
#[allow(dead_code)]
mod group_size_serde {
    use gpu_sim::GroupSize;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(g: &GroupSize, s: S) -> Result<S::Ok, S::Error> {
        g.get().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<GroupSize, D::Error> {
        let n = u32::deserialize(d)?;
        if matches!(n, 1 | 2 | 4 | 8 | 16 | 32) {
            Ok(GroupSize::new(n))
        } else {
            Err(serde::de::Error::custom(format!(
                "invalid group size {n}: must be one of 1, 2, 4, 8, 16, 32"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_reference_setting() {
        let c = Config::default();
        assert_eq!(c.group_size.get(), 4);
        assert_eq!(c.probing, ProbingScheme::Hybrid);
        assert_eq!(c.layout, Layout::Aos);
    }

    #[test]
    fn builder_chain() {
        let c = Config::default()
            .with_group_size(8)
            .with_probing(ProbingScheme::Linear)
            .with_layout(Layout::Soa)
            .with_seed(99)
            .with_modeled_capacity(1 << 33);
        assert_eq!(c.group_size.get(), 8);
        assert_eq!(c.probing, ProbingScheme::Linear);
        assert_eq!(c.layout, Layout::Soa);
        assert_eq!(c.seed, 99);
        assert_eq!(c.modeled_capacity_bytes, Some(1 << 33));
    }
}
