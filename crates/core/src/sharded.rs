//! Sharded single-GPU hash map — the paper's §VI future-work item:
//! "A possible workaround to further increase performance could be the
//! partitioning of high capacity hash maps into several smaller hash
//! maps each of size ≤ 2 GB."
//!
//! A [`ShardedHashMap`] splits one logical table into `s` independent
//! shards on the *same* device, routed by a partition hash (the same
//! machinery the multi-GPU map uses across devices). Each shard's CAS
//! working set stays below the degradation threshold, recovering the
//! insert throughput a monolithic >2 GB table loses — the experiment in
//! `ablation_sharding` quantifies the effect.
//!
//! Trade-off faithfully modeled: routing costs one extra multisplit-like
//! pass per bulk operation (billed as streaming traffic), so sharding
//! only pays off once the monolithic table is actually degraded.

use crate::chaos::launch_site;
use crate::config::Config;
use crate::errors::{BuildError, InsertError};
use crate::insert::InsertOutcome;
use crate::map::GpuHashMap;
use crate::service::{DeleteResponse, GetResponse, OpError, OpReport, PutResponse};
use gpu_sim::{Device, FaultPlan, GroupSize, KernelStats, LaunchOptions, RetryPolicy};
use hashes::PartitionFn;
use std::sync::Arc;

/// Values, summed launch stats, launch count, and accumulated retry
/// backoff for one routed query pass.
type RetrievePass = (Vec<Option<u32>>, KernelStats, u64, f64);

/// A logical hash map backed by `s` sub-2-GB shards on one device.
#[derive(Debug)]
pub struct ShardedHashMap {
    dev: Arc<Device>,
    shards: Vec<GpuHashMap>,
    part: PartitionFn,
    fault: FaultPlan,
    retry: RetryPolicy,
}

impl ShardedHashMap {
    /// Builds `num_shards` shards of `capacity_per_shard` slots each.
    ///
    /// The per-shard modeled capacity is `cfg.modeled_capacity_bytes / s`
    /// when set (the logical table's footprint divides across shards) —
    /// that is the whole point of the construction.
    ///
    /// # Errors
    /// Propagates shard allocation failures.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn new(
        dev: Arc<Device>,
        capacity_per_shard: usize,
        num_shards: usize,
        cfg: Config,
    ) -> Result<Self, BuildError> {
        assert!(num_shards > 0, "need at least one shard");
        let shard_cfg = match cfg.modeled_capacity_bytes {
            Some(total) => cfg.with_modeled_capacity(total / num_shards as u64),
            None => cfg,
        };
        let shards = (0..num_shards)
            .map(|_| GpuHashMap::new(Arc::clone(&dev), capacity_per_shard, shard_cfg))
            .collect::<Result<Vec<_>, _>>()?;
        let part = PartitionFn::new(num_shards as u32, cfg.seed ^ 0x5aa4_d217);
        Ok(Self {
            dev,
            shards,
            part,
            fault: cfg.fault,
            retry: cfg.retry,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.shards.iter().map(GpuHashMap::len).sum()
    }

    /// Whether all shards are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate load factor.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        let cap: usize = self.shards.iter().map(GpuHashMap::capacity).sum();
        self.len() as f64 / cap as f64
    }

    /// Bills the on-device routing pass (read every pair, bucket it) and
    /// returns per-shard buckets.
    fn route(&self, pairs: &[(u32, u32)]) -> (Vec<Vec<(u32, u32)>>, KernelStats) {
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.num_shards()];
        for &(k, v) in pairs {
            buckets[self.part.part(k) as usize].push((k, v));
        }
        // modeled as one streaming pass with a warp-aggregated counter
        // per shard (same structure as the multi-GPU multisplit)
        let stats = self.dev.launch(
            "shard_route",
            pairs.len().div_ceil(32),
            GroupSize::WARP,
            LaunchOptions::default(),
            |ctx| {
                ctx.bill_stream_bytes(32 * 16); // read pairs + write routed
            },
        );
        (buckets, stats)
    }

    /// Bulk insert: route, then insert shard by shard. Returns the merged
    /// outcome (stats add; the per-shard kernels are billed individually
    /// with their sub-threshold working sets).
    ///
    /// Under an armed [`Config::fault`] plan each shard's kernel launch
    /// rolls transient failures at the shard-routing site; retries bill
    /// exponential backoff into the outcome's `sim_time`. Retrying is
    /// idempotent — the bucket is only applied once the launch succeeds.
    ///
    /// # Errors
    /// Aggregated probing exhaustion; scratch OOM;
    /// [`InsertError::DeviceLost`] if a shard exhausts its launch retry
    /// budget (one device hosts every shard — there is no failover
    /// target).
    pub fn insert_pairs(&self, pairs: &[(u32, u32)]) -> Result<InsertOutcome, InsertError> {
        let (buckets, route_stats) = self.route(pairs);
        let mut merged: Option<InsertOutcome> = None;
        let mut failed = 0u64;
        let mut backoff = 0.0f64;
        for (s, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut attempt = 0u32;
            let mut spent = 0.0f64;
            while self.fault.launch_fails(s, launch_site::SHARD, attempt) {
                attempt += 1;
                if !self.retry.may_retry(attempt, spent) {
                    return Err(InsertError::DeviceLost { device: s });
                }
                spent += self.retry.backoff_before(attempt);
            }
            backoff += spent;
            match self.shards[s].insert_pairs(bucket) {
                Ok(o) => {
                    merged = Some(match merged {
                        None => o,
                        Some(mut acc) => {
                            acc.stats = acc.stats.merged(&o.stats);
                            acc.new_slots += o.new_slots;
                            acc.updates += o.updates;
                            acc.reclaimed += o.reclaimed;
                            acc
                        }
                    });
                }
                Err(InsertError::ProbingExhausted { failed: f }) => failed += f,
                Err(e) => return Err(e),
            }
        }
        let mut outcome = merged.unwrap_or(InsertOutcome {
            stats: route_stats.clone(),
            failed: 0,
            new_slots: 0,
            updates: 0,
            reclaimed: 0,
        });
        outcome.stats = outcome.stats.merged(&route_stats);
        outcome.failed = failed;
        if backoff > 0.0 {
            // fault-injection waits are real wall time; the fault-off
            // path never reaches this addition, keeping it bit-identical
            outcome.stats.sim_time += backoff;
        }
        if failed > 0 {
            return Err(InsertError::ProbingExhausted { failed });
        }
        Ok(outcome)
    }

    /// Buckets `keys` by shard (with origin indices) and bills the
    /// routing pass.
    fn route_keys(&self, name: &'static str, keys: &[u32]) -> (Vec<Vec<(usize, u32)>>, KernelStats) {
        let mut buckets: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.num_shards()];
        for (i, &k) in keys.iter().enumerate() {
            buckets[self.part.part(k) as usize].push((i, k));
        }
        let route = self.dev.launch(
            name,
            keys.len().div_ceil(32).max(1),
            GroupSize::WARP,
            LaunchOptions::default(),
            |ctx| ctx.bill_stream_bytes(32 * 16),
        );
        (buckets, route)
    }

    fn retrieve_impl(&self, keys: &[u32]) -> Result<RetrievePass, OpError> {
        // route keys (with origin indices), query shards, scatter back
        let (buckets, route) = self.route_keys("shard_route_query", keys);
        let mut out = vec![None; keys.len()];
        let mut stats = route;
        let mut launches = 1u64;
        let mut backoff = 0.0f64;
        for (s, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut attempt = 0u32;
            let mut spent = 0.0f64;
            while self.fault.launch_fails(s, launch_site::SHARD, attempt) {
                attempt += 1;
                if !self.retry.may_retry(attempt, spent) {
                    return Err(OpError::DeviceLost { device: s });
                }
                spent += self.retry.backoff_before(attempt);
            }
            backoff += spent;
            let shard_keys: Vec<u32> = bucket.iter().map(|b| b.1).collect();
            let (res, s_stats) = self.shards[s].retrieve_impl(&shard_keys)?;
            stats = stats.merged(&s_stats);
            launches += 1;
            for ((origin, _), r) in bucket.iter().zip(res) {
                out[*origin] = r;
            }
        }
        Ok((out, stats, launches, backoff))
    }

    /// Bulk retrieval in input order, with a typed [`OpReport`]. Under
    /// an armed [`Config::fault`] plan each shard's query rolls
    /// transient launch failures at the shard-routing site; retry
    /// backoff lands in the report's `backoff_time` (and `time`).
    ///
    /// # Errors
    /// [`OpError::OutOfMemory`] if a shard cannot stage its query batch;
    /// [`OpError::DeviceLost`] if a shard exhausts its launch retry
    /// budget (one device hosts every shard — there is no failover).
    pub fn try_retrieve(&self, keys: &[u32]) -> Result<GetResponse, OpError> {
        let (values, stats, launches, backoff) = self.retrieve_impl(keys)?;
        let mut report = OpReport::from_kernel(&stats, keys.len() as u64);
        report.launches = launches;
        report.backoff_time = backoff;
        report.time += backoff;
        Ok(GetResponse { values, report })
    }

    /// Bulk retrieval in input order.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve(&self, keys: &[u32]) -> (Vec<Option<u32>>, KernelStats) {
        let (values, mut stats, _, backoff) = self.retrieve_impl(keys).expect("scratch for retrieve");
        if backoff > 0.0 {
            // fault-injection waits are real wall time; the fault-off
            // path never reaches this addition, keeping it bit-identical
            stats.sim_time += backoff;
        }
        (values, stats)
    }

    /// Bulk erase in input order: route, erase shard by shard, scatter
    /// the per-key hit flags back to input positions.
    ///
    /// Takes `&mut self` for the same §IV-A reason as
    /// [`GpuHashMap::erase`]: deletions must be separated from
    /// insertions and queries by a global barrier.
    ///
    /// Under an armed [`Config::fault`] plan each shard's erase rolls
    /// transient launch failures at the shard-routing site, exactly like
    /// [`Self::insert_pairs`]; retries are idempotent (tombstoning a
    /// tombstone is a no-op).
    ///
    /// # Errors
    /// [`OpError::DeviceLost`] if a shard exhausts its retry budget;
    /// [`OpError::OutOfMemory`] if a shard cannot stage its batch.
    pub fn try_erase(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError> {
        let (buckets, route) = self.route_keys("shard_route_erase", keys);
        let mut hits = vec![false; keys.len()];
        let mut stats = route;
        let mut launches = 1u64;
        let mut erased = 0u64;
        let mut backoff = 0.0f64;
        for (s, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut attempt = 0u32;
            let mut spent = 0.0f64;
            while self.fault.launch_fails(s, launch_site::SHARD, attempt) {
                attempt += 1;
                if !self.retry.may_retry(attempt, spent) {
                    return Err(OpError::DeviceLost { device: s });
                }
                spent += self.retry.backoff_before(attempt);
            }
            backoff += spent;
            let shard_keys: Vec<u32> = bucket.iter().map(|b| b.1).collect();
            let out = self.shards[s].erase_impl(&shard_keys)?;
            stats = stats.merged(&out.stats);
            launches += 1;
            erased += out.erased;
            for ((origin, _), h) in bucket.iter().zip(out.hits) {
                hits[*origin] = h;
            }
        }
        let mut report = OpReport::from_kernel(&stats, keys.len() as u64);
        report.launches = launches;
        report.backoff_time = backoff;
        report.time += backoff;
        Ok(DeleteResponse {
            hits,
            erased,
            report,
        })
    }

    /// Single-key convenience. Routed through the same counter/stats
    /// path as [`Self::try_retrieve`], so device lifetime telemetry
    /// ([`gpu_sim::LifetimeStats`]) counts it like any batched read.
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u32> {
        self.retrieve_impl(&[key]).expect("scratch for get").0[0]
    }

    /// Host-side snapshot across all shards.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u32, u32)> {
        self.shards.iter().flat_map(GpuHashMap::snapshot).collect()
    }

    /// Arms (or disarms) the incremental-resize policy on every shard.
    /// The partition hash spreads load evenly, so shards cross the
    /// watermark together and each runs its own independent migration —
    /// keys never move between shards (the partition function is
    /// capacity-independent).
    pub fn set_resize_policy(&mut self, policy: Option<crate::ResizePolicy>) {
        for s in &mut self.shards {
            s.set_resize_policy(policy);
        }
    }

    /// Swaps in any fully-scanned per-shard migrations (called at every
    /// service batch entry point).
    fn finalize_shards(&mut self) {
        for s in &mut self.shards {
            s.maybe_finalize_resize();
        }
    }
}

impl crate::service::MapService for ShardedHashMap {
    fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError> {
        self.finalize_shards();
        let o = self.insert_pairs(pairs)?;
        Ok(PutResponse {
            new_slots: o.new_slots,
            updates: o.updates,
            reclaimed: o.reclaimed,
            report: OpReport::from_kernel(&o.stats, pairs.len() as u64),
        })
    }

    fn get_batch(&mut self, keys: &[u32]) -> Result<GetResponse, OpError> {
        self.finalize_shards();
        self.try_retrieve(keys)
    }

    fn delete_batch(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError> {
        self.finalize_shards();
        self.try_erase(keys)
    }

    fn live_len(&self) -> u64 {
        self.len()
    }

    fn slot_capacity(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.effective_capacity())
            .sum::<usize>() as u64
    }

    fn occupancy_split(&self) -> crate::Occupancy {
        self.shards.iter().fold(
            crate::Occupancy::default(),
            |acc, s| {
                let o = s.occupancy_split();
                crate::Occupancy {
                    live: acc.live + o.live,
                    tombstones: acc.tombstones + o.tombstones,
                    capacity: acc.capacity + o.capacity,
                }
            },
        )
    }

    fn resize_state(&self) -> crate::ResizeState {
        // aggregate view: Migrating while any shard migrates, with
        // cursors and capacities summed over the migrating shards
        let mut agg: Option<crate::ResizeState> = None;
        for s in &self.shards {
            if let crate::ResizeState::Migrating {
                mode,
                cursor,
                source_capacity,
                target_capacity,
            } = s.resize_state()
            {
                agg = Some(match agg {
                    Some(crate::ResizeState::Migrating {
                        mode: m0,
                        cursor: c0,
                        source_capacity: s0,
                        target_capacity: t0,
                    }) => crate::ResizeState::Migrating {
                        mode: m0,
                        cursor: c0 + cursor,
                        source_capacity: s0 + source_capacity,
                        target_capacity: t0 + target_capacity,
                    },
                    _ => crate::ResizeState::Migrating {
                        mode,
                        cursor,
                        source_capacity,
                        target_capacity,
                    },
                });
            }
        }
        agg.unwrap_or(crate::ResizeState::Stable)
    }

    fn request_grow(&mut self) -> Result<bool, OpError> {
        // the partition hash load-balances shards, so an aggregate
        // watermark crossing means every shard is near its own — grow all
        let mut started = false;
        for s in &mut self.shards {
            started |= s.request_grow()?;
        }
        Ok(started)
    }

    fn request_compact(&mut self) -> Result<bool, OpError> {
        let mut started = false;
        for s in &mut self.shards {
            started |= s.request_compact()?;
        }
        Ok(started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize, cap: usize) -> ShardedHashMap {
        let dev = Arc::new(Device::with_words(0, shards * cap + (1 << 14)));
        ShardedHashMap::new(dev, cap, shards, Config::default()).unwrap()
    }

    #[test]
    fn round_trip_across_shards() {
        let m = map(4, 1024);
        let pairs: Vec<(u32, u32)> = (0..3500u32).map(|i| (i * 3 + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        assert_eq!(m.len(), 3500);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([999_999_999]).collect();
        let res = m.try_retrieve(&keys).unwrap().values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1), "key {}", p.0);
        }
        assert_eq!(res[3500], None);
        // shards share the load roughly evenly
        assert!((m.load_factor() - 3500.0 / 4096.0).abs() < 0.01);
    }

    #[test]
    fn duplicates_update_within_their_shard() {
        let m = map(2, 256);
        m.insert_pairs(&[(42, 1)]).unwrap();
        let o = m.insert_pairs(&[(42, 2)]).unwrap();
        assert_eq!(o.updates, 1);
        assert_eq!(m.get(42), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sharding_divides_the_modeled_working_set() {
        // monolithic 8 GB modeled table vs 4 shards of 2 GB each: the
        // sharded insert must be faster because CAS stays undegraded
        let n = 4000usize;
        let dev_a = Arc::new(Device::with_words(0, 1 << 16));
        let mono = GpuHashMap::new(
            dev_a,
            8192,
            Config::default().with_modeled_capacity(8 << 30),
        )
        .unwrap();
        let dev_b = Arc::new(Device::with_words(0, 1 << 16));
        let sharded = ShardedHashMap::new(
            dev_b,
            2048,
            4,
            Config::default().with_modeled_capacity(8 << 30),
        )
        .unwrap();
        let pairs: Vec<(u32, u32)> = (0..n as u32).map(|i| (i * 7 + 1, i)).collect();
        // compare net of fixed launch overheads (1 launch monolithic,
        // 1 routing + 4 shard launches sharded): at paper scale they
        // vanish, at test scale they would swamp the comparison
        let oh = gpu_sim::DeviceSpec::p100().launch_overhead;
        let t_mono = mono.insert_pairs(&pairs).unwrap().stats.sim_time - oh;
        let t_shard = sharded.insert_pairs(&pairs).unwrap().stats.sim_time - 5.0 * oh;
        assert!(
            t_shard < t_mono,
            "sharding should dodge CAS degradation: {t_shard:.3e} vs {t_mono:.3e}"
        );
    }

    #[test]
    fn transient_shard_launch_failures_retry_idempotently() {
        let dev = Arc::new(Device::with_words(0, 1 << 16));
        let cfg = Config::default()
            .with_fault(FaultPlan::default().with_seed(5).with_launch_fail(0.4));
        let m = ShardedHashMap::new(dev, 1024, 4, cfg).unwrap();
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 9 + 1, i)).collect();
        let o = m.insert_pairs(&pairs).unwrap();
        assert_eq!(o.new_slots, 2000, "retries must apply each pair once");
        assert_eq!(m.len(), 2000);
        let res = m
            .try_retrieve(&pairs.iter().map(|p| p.0).collect::<Vec<_>>())
            .unwrap()
            .values;
        assert!(res.iter().all(Option::is_some));
    }

    #[test]
    fn permanent_shard_failure_is_device_lost() {
        let dev = Arc::new(Device::with_words(0, 1 << 16));
        let cfg = Config::default().with_fault(FaultPlan::default().with_launch_fail(1.0));
        let m = ShardedHashMap::new(dev, 1024, 2, cfg).unwrap();
        let err = m.insert_pairs(&[(1, 10), (2, 20)]).unwrap_err();
        assert!(matches!(err, InsertError::DeviceLost { .. }), "{err:?}");
    }

    #[test]
    fn empty_operations() {
        let m = map(3, 128);
        assert!(m.is_empty());
        assert!(m.insert_pairs(&[]).is_ok());
        let res = m.try_retrieve(&[]).unwrap().values;
        assert!(res.is_empty());
    }

    #[test]
    fn erase_scatters_hits_to_input_order() {
        let mut m = map(4, 1024);
        let pairs: Vec<(u32, u32)> = (0..1000u32).map(|i| (i * 3 + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        // interleave present and absent victims across shards
        let victims: Vec<u32> = (0..500u32)
            .flat_map(|i| [i * 3 + 1, i * 3 + 2])
            .collect();
        let out = m.try_erase(&victims).unwrap();
        assert_eq!(out.erased, 500);
        for (j, &k) in victims.iter().enumerate() {
            assert_eq!(out.hits[j], k % 3 == 1, "victim {k}");
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m.get(4), None); // erased
        assert_eq!(m.get(500 * 3 + 1), Some(500)); // survivor
    }

    #[test]
    fn erase_under_transient_faults_retries_idempotently() {
        let dev = Arc::new(Device::with_words(0, 1 << 16));
        let cfg = Config::default()
            .with_fault(FaultPlan::default().with_seed(7).with_launch_fail(0.4));
        let mut m = ShardedHashMap::new(dev, 1024, 4, cfg).unwrap();
        let pairs: Vec<(u32, u32)> = (0..1500u32).map(|i| (i * 5 + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let out = m.try_erase(&keys).unwrap();
        assert_eq!(out.erased, 1500);
        assert!(out.hits.iter().all(|&h| h));
        assert!(out.report.backoff_time > 0.0, "seed 7 @ 0.4 must roll at least one failure");
        assert!(m.is_empty());
    }

    #[test]
    fn permanent_failure_during_erase_is_typed_device_lost() {
        let dev = Arc::new(Device::with_words(0, 1 << 16));
        let cfg = Config::default().with_fault(FaultPlan::default().with_launch_fail(1.0));
        let mut m = ShardedHashMap::new(dev, 1024, 2, cfg).unwrap();
        let err = m.try_erase(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, OpError::DeviceLost { .. }), "{err:?}");
    }
}
