//! Sharded single-GPU hash map — the paper's §VI future-work item:
//! "A possible workaround to further increase performance could be the
//! partitioning of high capacity hash maps into several smaller hash
//! maps each of size ≤ 2 GB."
//!
//! A [`ShardedHashMap`] splits one logical table into `s` independent
//! shards on the *same* device, routed by a partition hash (the same
//! machinery the multi-GPU map uses across devices). Each shard's CAS
//! working set stays below the degradation threshold, recovering the
//! insert throughput a monolithic >2 GB table loses — the experiment in
//! `ablation_sharding` quantifies the effect.
//!
//! Trade-off faithfully modeled: routing costs one extra multisplit-like
//! pass per bulk operation (billed as streaming traffic), so sharding
//! only pays off once the monolithic table is actually degraded.

use crate::chaos::launch_site;
use crate::config::Config;
use crate::errors::{BuildError, InsertError};
use crate::insert::InsertOutcome;
use crate::map::GpuHashMap;
use gpu_sim::{Device, FaultPlan, GroupSize, KernelStats, LaunchOptions, RetryPolicy};
use hashes::PartitionFn;
use std::sync::Arc;

/// A logical hash map backed by `s` sub-2-GB shards on one device.
#[derive(Debug)]
pub struct ShardedHashMap {
    dev: Arc<Device>,
    shards: Vec<GpuHashMap>,
    part: PartitionFn,
    fault: FaultPlan,
    retry: RetryPolicy,
}

impl ShardedHashMap {
    /// Builds `num_shards` shards of `capacity_per_shard` slots each.
    ///
    /// The per-shard modeled capacity is `cfg.modeled_capacity_bytes / s`
    /// when set (the logical table's footprint divides across shards) —
    /// that is the whole point of the construction.
    ///
    /// # Errors
    /// Propagates shard allocation failures.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn new(
        dev: Arc<Device>,
        capacity_per_shard: usize,
        num_shards: usize,
        cfg: Config,
    ) -> Result<Self, BuildError> {
        assert!(num_shards > 0, "need at least one shard");
        let shard_cfg = match cfg.modeled_capacity_bytes {
            Some(total) => cfg.with_modeled_capacity(total / num_shards as u64),
            None => cfg,
        };
        let shards = (0..num_shards)
            .map(|_| GpuHashMap::new(Arc::clone(&dev), capacity_per_shard, shard_cfg))
            .collect::<Result<Vec<_>, _>>()?;
        let part = PartitionFn::new(num_shards as u32, cfg.seed ^ 0x5aa4_d217);
        Ok(Self {
            dev,
            shards,
            part,
            fault: cfg.fault,
            retry: cfg.retry,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.shards.iter().map(GpuHashMap::len).sum()
    }

    /// Whether all shards are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate load factor.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        let cap: usize = self.shards.iter().map(GpuHashMap::capacity).sum();
        self.len() as f64 / cap as f64
    }

    /// Bills the on-device routing pass (read every pair, bucket it) and
    /// returns per-shard buckets.
    fn route(&self, pairs: &[(u32, u32)]) -> (Vec<Vec<(u32, u32)>>, KernelStats) {
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.num_shards()];
        for &(k, v) in pairs {
            buckets[self.part.part(k) as usize].push((k, v));
        }
        // modeled as one streaming pass with a warp-aggregated counter
        // per shard (same structure as the multi-GPU multisplit)
        let stats = self.dev.launch(
            "shard_route",
            pairs.len().div_ceil(32),
            GroupSize::WARP,
            LaunchOptions::default(),
            |ctx| {
                ctx.bill_stream_bytes(32 * 16); // read pairs + write routed
            },
        );
        (buckets, stats)
    }

    /// Bulk insert: route, then insert shard by shard. Returns the merged
    /// outcome (stats add; the per-shard kernels are billed individually
    /// with their sub-threshold working sets).
    ///
    /// Under an armed [`Config::fault`] plan each shard's kernel launch
    /// rolls transient failures at the shard-routing site; retries bill
    /// exponential backoff into the outcome's `sim_time`. Retrying is
    /// idempotent — the bucket is only applied once the launch succeeds.
    ///
    /// # Errors
    /// Aggregated probing exhaustion; scratch OOM;
    /// [`InsertError::DeviceLost`] if a shard exhausts its launch retry
    /// budget (one device hosts every shard — there is no failover
    /// target).
    pub fn insert_pairs(&self, pairs: &[(u32, u32)]) -> Result<InsertOutcome, InsertError> {
        let (buckets, route_stats) = self.route(pairs);
        let mut merged: Option<InsertOutcome> = None;
        let mut failed = 0u64;
        let mut backoff = 0.0f64;
        for (s, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut attempt = 0u32;
            let mut spent = 0.0f64;
            while self.fault.launch_fails(s, launch_site::SHARD, attempt) {
                attempt += 1;
                if !self.retry.may_retry(attempt, spent) {
                    return Err(InsertError::DeviceLost { device: s });
                }
                spent += self.retry.backoff_before(attempt);
            }
            backoff += spent;
            match self.shards[s].insert_pairs(bucket) {
                Ok(o) => {
                    merged = Some(match merged {
                        None => o,
                        Some(mut acc) => {
                            acc.stats = acc.stats.merged(&o.stats);
                            acc.new_slots += o.new_slots;
                            acc.updates += o.updates;
                            acc.reclaimed += o.reclaimed;
                            acc
                        }
                    });
                }
                Err(InsertError::ProbingExhausted { failed: f }) => failed += f,
                Err(e) => return Err(e),
            }
        }
        let mut outcome = merged.unwrap_or(InsertOutcome {
            stats: route_stats.clone(),
            failed: 0,
            new_slots: 0,
            updates: 0,
            reclaimed: 0,
        });
        outcome.stats = outcome.stats.merged(&route_stats);
        outcome.failed = failed;
        if backoff > 0.0 {
            // fault-injection waits are real wall time; the fault-off
            // path never reaches this addition, keeping it bit-identical
            outcome.stats.sim_time += backoff;
        }
        if failed > 0 {
            return Err(InsertError::ProbingExhausted { failed });
        }
        Ok(outcome)
    }

    /// Bulk retrieval in input order.
    #[must_use]
    pub fn retrieve(&self, keys: &[u32]) -> (Vec<Option<u32>>, KernelStats) {
        // route keys (with origin indices), query shards, scatter back
        let mut buckets: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.num_shards()];
        for (i, &k) in keys.iter().enumerate() {
            buckets[self.part.part(k) as usize].push((i, k));
        }
        let route = self.dev.launch(
            "shard_route_query",
            keys.len().div_ceil(32).max(1),
            GroupSize::WARP,
            LaunchOptions::default(),
            |ctx| ctx.bill_stream_bytes(32 * 16),
        );
        let mut out = vec![None; keys.len()];
        let mut stats = route;
        for (s, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let shard_keys: Vec<u32> = bucket.iter().map(|b| b.1).collect();
            let (res, s_stats) = self.shards[s].retrieve(&shard_keys);
            stats = stats.merged(&s_stats);
            for ((origin, _), r) in bucket.iter().zip(res) {
                out[*origin] = r;
            }
        }
        (out, stats)
    }

    /// Single-key convenience.
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u32> {
        self.retrieve(&[key]).0[0]
    }

    /// Host-side snapshot across all shards.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u32, u32)> {
        self.shards.iter().flat_map(GpuHashMap::snapshot).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize, cap: usize) -> ShardedHashMap {
        let dev = Arc::new(Device::with_words(0, shards * cap + (1 << 14)));
        ShardedHashMap::new(dev, cap, shards, Config::default()).unwrap()
    }

    #[test]
    fn round_trip_across_shards() {
        let m = map(4, 1024);
        let pairs: Vec<(u32, u32)> = (0..3500u32).map(|i| (i * 3 + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        assert_eq!(m.len(), 3500);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([999_999_999]).collect();
        let (res, _) = m.retrieve(&keys);
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1), "key {}", p.0);
        }
        assert_eq!(res[3500], None);
        // shards share the load roughly evenly
        assert!((m.load_factor() - 3500.0 / 4096.0).abs() < 0.01);
    }

    #[test]
    fn duplicates_update_within_their_shard() {
        let m = map(2, 256);
        m.insert_pairs(&[(42, 1)]).unwrap();
        let o = m.insert_pairs(&[(42, 2)]).unwrap();
        assert_eq!(o.updates, 1);
        assert_eq!(m.get(42), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sharding_divides_the_modeled_working_set() {
        // monolithic 8 GB modeled table vs 4 shards of 2 GB each: the
        // sharded insert must be faster because CAS stays undegraded
        let n = 4000usize;
        let dev_a = Arc::new(Device::with_words(0, 1 << 16));
        let mono = GpuHashMap::new(
            dev_a,
            8192,
            Config::default().with_modeled_capacity(8 << 30),
        )
        .unwrap();
        let dev_b = Arc::new(Device::with_words(0, 1 << 16));
        let sharded = ShardedHashMap::new(
            dev_b,
            2048,
            4,
            Config::default().with_modeled_capacity(8 << 30),
        )
        .unwrap();
        let pairs: Vec<(u32, u32)> = (0..n as u32).map(|i| (i * 7 + 1, i)).collect();
        // compare net of fixed launch overheads (1 launch monolithic,
        // 1 routing + 4 shard launches sharded): at paper scale they
        // vanish, at test scale they would swamp the comparison
        let oh = gpu_sim::DeviceSpec::p100().launch_overhead;
        let t_mono = mono.insert_pairs(&pairs).unwrap().stats.sim_time - oh;
        let t_shard = sharded.insert_pairs(&pairs).unwrap().stats.sim_time - 5.0 * oh;
        assert!(
            t_shard < t_mono,
            "sharding should dodge CAS degradation: {t_shard:.3e} vs {t_mono:.3e}"
        );
    }

    #[test]
    fn transient_shard_launch_failures_retry_idempotently() {
        let dev = Arc::new(Device::with_words(0, 1 << 16));
        let cfg = Config::default()
            .with_fault(FaultPlan::default().with_seed(5).with_launch_fail(0.4));
        let m = ShardedHashMap::new(dev, 1024, 4, cfg).unwrap();
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 9 + 1, i)).collect();
        let o = m.insert_pairs(&pairs).unwrap();
        assert_eq!(o.new_slots, 2000, "retries must apply each pair once");
        assert_eq!(m.len(), 2000);
        let (res, _) = m.retrieve(&pairs.iter().map(|p| p.0).collect::<Vec<_>>());
        assert!(res.iter().all(Option::is_some));
    }

    #[test]
    fn permanent_shard_failure_is_device_lost() {
        let dev = Arc::new(Device::with_words(0, 1 << 16));
        let cfg = Config::default().with_fault(FaultPlan::default().with_launch_fail(1.0));
        let m = ShardedHashMap::new(dev, 1024, 2, cfg).unwrap();
        let err = m.insert_pairs(&[(1, 10), (2, 20)]).unwrap_err();
        assert!(matches!(err, InsertError::DeviceLost { .. }), "{err:?}");
    }

    #[test]
    fn empty_operations() {
        let m = map(3, 128);
        assert!(m.is_empty());
        assert!(m.insert_pairs(&[]).is_ok());
        let (res, _) = m.retrieve(&[]);
        assert!(res.is_empty());
    }
}
