//! The single-GPU hash map — WarpDrive's core data structure.

use crate::config::{Config, Layout};
use crate::delete::{erase_kernel, EraseOutcome};
use crate::entry::{is_occupied, key_of, pack, value_of, EMPTY, RESERVED_KEY, TOMBSTONE};
use crate::errors::{BuildError, InsertError};
use crate::history::HistoryRecorder;
use crate::insert::{insert_kernel, InsertOutcome};
use crate::probing::Prober;
use crate::retrieve::retrieve_kernel;
use crate::service::{DeleteResponse, GetResponse, OpError, OpReport};
use gpu_sim::{DevSlice, Device, GroupSize, KernelStats, LaunchOptions};
use hashes::DoubleHash;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Everything a kernel needs to address the table (copied into launches).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TableRef {
    /// Backing storage: `capacity` words (AOS) or `2·capacity` (SOA).
    pub data: DevSlice,
    /// Number of slots.
    pub capacity: usize,
    /// Memory layout.
    pub layout: Layout,
    /// Coalesced-group size of the owning map.
    pub group_size: GroupSize,
}

impl TableRef {
    /// The packed-pair array (AOS layout).
    pub fn aos_slice(&self) -> DevSlice {
        debug_assert_eq!(self.layout, Layout::Aos);
        self.data.sub(0, self.capacity)
    }

    /// The key array (SOA layout).
    pub fn soa_keys(&self) -> DevSlice {
        debug_assert_eq!(self.layout, Layout::Soa);
        self.data.sub(0, self.capacity)
    }

    /// The value array (SOA layout).
    pub fn soa_values(&self) -> DevSlice {
        debug_assert_eq!(self.layout, Layout::Soa);
        self.data.sub(self.capacity, self.capacity)
    }
}

/// An open-addressing hash map in (simulated) GPU global memory with
/// subwarp-cooperative probing.
///
/// * Bulk operations are data-parallel kernel launches: one coalesced
///   group of `|g|` lanes per key-value pair.
/// * Insertions and queries may be issued concurrently (they take
///   `&self`); the outcome of a racing insert/query on the same key is
///   decided by the "event horizon" of the kernels, as in the paper.
/// * Deletions require exclusive access (`&mut self`) — the global
///   barrier of §IV-A, enforced by the borrow checker.
///
/// See the crate docs for a usage example.
#[derive(Debug)]
pub struct GpuHashMap {
    pub(crate) dev: Arc<Device>,
    pub(crate) table: TableRef,
    pub(crate) cfg: Config,
    pub(crate) dh: DoubleHash,
    /// Live (non-tombstone) entries in the primary table.
    pub(crate) occupied: AtomicU64,
    /// Tombstoned slots (they still lengthen probe chains until rebuild,
    /// compaction, or until an insertion reclaims them).
    pub(crate) tombstones: AtomicU64,
    /// Optional per-operation history recorder (linearizability testing).
    pub(crate) recorder: Option<Arc<HistoryRecorder>>,
    /// Incremental-resize control block (see [`crate::resize`]).
    pub(crate) resize: parking_lot::Mutex<crate::resize::ResizeCtl>,
}

impl GpuHashMap {
    /// Allocates and initialises a table of `capacity` slots on `dev`.
    ///
    /// # Errors
    /// [`BuildError::ZeroCapacity`] for `capacity == 0`;
    /// [`BuildError::OutOfMemory`] when the table exceeds the device's
    /// remaining VRAM — the single-GPU limitation the distributed map
    /// removes.
    pub fn new(dev: Arc<Device>, capacity: usize, cfg: Config) -> Result<Self, BuildError> {
        if capacity == 0 {
            return Err(BuildError::ZeroCapacity);
        }
        // round up to a whole number of 32-slot spans so aligned spans
        // survive the modulo (see `probing::Prober::span_base`)
        let capacity = capacity.div_ceil(32) * 32;
        let words = match cfg.layout {
            Layout::Aos => capacity,
            Layout::Soa => 2 * capacity,
        };
        let data = dev.alloc(words)?;
        if cfg.broken_skip_fill {
            // MUTATION DOUBLE: skip the EMPTY-sentinel fill — the
            // forgotten-cudaMemset bug wd-sanitizer's initcheck exists to
            // catch. See `Config::broken_skip_fill`.
        } else {
            dev.mem().fill(data, EMPTY);
        }
        let table = TableRef {
            data,
            capacity,
            layout: cfg.layout,
            group_size: cfg.group_size,
        };
        Ok(Self {
            dev,
            table,
            cfg,
            dh: DoubleHash::from_seed(cfg.seed),
            occupied: AtomicU64::new(0),
            tombstones: AtomicU64::new(0),
            recorder: None,
            resize: parking_lot::Mutex::new(crate::resize::ResizeCtl::default()),
        })
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.table.capacity
    }

    /// Live entries (exact after quiescence; approximate while kernels for
    /// the same map race, like any concurrent size counter). Counts keys
    /// wherever they live while a resize migration is in flight.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.occupancy_split().live
    }

    /// Whether the map holds no live entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current true load factor α = live entries / capacity.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.table.capacity as f64
    }

    /// Tombstoned slots awaiting a rebuild or compaction. During a resize
    /// migration this reports the *target* table's tombstones — the source
    /// table's (including the transient ones migration itself leaves
    /// behind) vanish wholesale at the finalize swap.
    #[must_use]
    pub fn tombstones(&self) -> u64 {
        self.occupancy_split().tombstones
    }

    /// The device this map lives on.
    #[must_use]
    pub fn device(&self) -> &Arc<Device> {
        &self.dev
    }

    /// The map's configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Changes the coalesced-group size for subsequent launches. Safe at
    /// any quiescent point: the probing slot sequence is group-size
    /// independent (§IV-A), so existing entries remain reachable.
    pub fn set_group_size(&mut self, g: GroupSize) {
        self.cfg.group_size = g;
        self.table.group_size = g;
    }

    /// Bytes billed as the CAS working set (modeled capacity if set).
    #[must_use]
    pub fn working_set(&self) -> u64 {
        self.cfg
            .modeled_capacity_bytes
            .unwrap_or_else(|| self.table.data.bytes())
    }

    /// Attaches (or detaches, with `None`) a history recorder: every
    /// subsequent insert/retrieve/erase operation logs an invocation/
    /// response event. Zero cost while detached. Share one recorder
    /// across maps to get a single globally-ordered history.
    pub fn set_recorder(&mut self, rec: Option<Arc<HistoryRecorder>>) {
        self.recorder = rec;
    }

    /// The attached history recorder, if any.
    #[must_use]
    pub fn recorder(&self) -> Option<&Arc<HistoryRecorder>> {
        self.recorder.as_ref()
    }

    fn prober(&self) -> Prober {
        Prober::new(self.dh, self.cfg.probing, self.table.capacity)
    }

    /// Launch options shared by this map's kernels: billed working set
    /// plus the configured group schedule.
    fn launch_opts(&self) -> LaunchOptions {
        self.cfg.apply_dispatch(
            LaunchOptions::default()
                .with_working_set(self.working_set())
                .with_schedule(self.cfg.schedule),
        )
    }

    // ---- device-sided operations ----------------------------------------

    /// Inserts the `n` packed pairs in `input` (device-resident, key in
    /// the high 32 bits). Duplicate keys update the stored value;
    /// last-writer-wins on the kernel's event horizon.
    ///
    /// # Errors
    /// [`InsertError::ProbingExhausted`] if any pair ran out of probing
    /// attempts — the map should then be
    /// [rebuilt](GpuHashMap::rebuild_with_fresh_hash).
    pub fn insert_device(&self, input: DevSlice, n: usize) -> Result<InsertOutcome, InsertError> {
        let outcome = insert_kernel(
            &self.dev,
            &self.table,
            input,
            n,
            &self.prober(),
            self.cfg.p_max,
            self.launch_opts(),
            self.cfg.mutations(),
            self.recorder.as_deref(),
        );
        self.occupied.fetch_add(outcome.new_slots, Relaxed);
        // claims over TOMBSTONE words shorten the pending-rebuild debt
        self.tombstones.fetch_sub(outcome.reclaimed, Relaxed);
        if outcome.failed > 0 {
            return Err(InsertError::ProbingExhausted {
                failed: outcome.failed,
            });
        }
        Ok(outcome)
    }

    /// Retrieves the `n` query words of `input` into `out` (both
    /// device-resident): `out[i] = pack(key, value)` on a hit, `EMPTY` on
    /// a miss. Query words carry the key in their high 32 bits.
    pub fn retrieve_device(&self, input: DevSlice, out: DevSlice, n: usize) -> KernelStats {
        retrieve_kernel(
            &self.dev,
            &self.table,
            input,
            out,
            n,
            &self.prober(),
            self.cfg.p_max,
            self.launch_opts(),
            self.cfg.mutations(),
            self.recorder.as_deref(),
        )
    }

    /// Tombstones the `n` keys in `input` (device-resident query words).
    /// Takes `&mut self`: the global barrier separating deletions from
    /// concurrent inserts/queries (§IV-A).
    pub fn erase_device(&mut self, input: DevSlice, n: usize) -> EraseOutcome {
        self.erase_device_shared(input, n)
    }

    /// Shared-access erase used by [`crate::DistributedHashMap`], whose
    /// own `&mut self` already provides the §IV-A barrier for every local
    /// map. Not public: callers outside the crate must go through the
    /// `&mut` API.
    pub(crate) fn erase_device_shared(&self, input: DevSlice, n: usize) -> EraseOutcome {
        let outcome = erase_kernel(
            &self.dev,
            &self.table,
            input,
            n,
            &self.prober(),
            self.cfg.p_max,
            self.launch_opts(),
            self.recorder.as_deref(),
        );
        self.occupied.fetch_sub(outcome.erased, Relaxed);
        self.tombstones.fetch_add(outcome.erased, Relaxed);
        outcome
    }

    // ---- host-sided conveniences -----------------------------------------

    /// Uploads and inserts host-resident pairs (staging via scratch VRAM;
    /// PCIe time is *not* billed here — use the `host_ops` cascades for
    /// transfer-inclusive experiments).
    ///
    /// With a [`crate::ResizePolicy`] armed this is also the trigger
    /// point of incremental resize: crossing the effective-load watermark
    /// starts a migration, and writes during one land in the new table
    /// (the device-sided [`GpuHashMap::insert_device`] stays fixed-table —
    /// callers managing device buffers manage capacity themselves).
    ///
    /// # Errors
    /// Propagates probing exhaustion and scratch OOM.
    pub fn insert_pairs(&self, pairs: &[(u32, u32)]) -> Result<InsertOutcome, InsertError> {
        if self.resize_engaged(pairs.len()) {
            return self.migrating_insert_pairs(pairs);
        }
        let words: Vec<u64> = pairs.iter().map(|&(k, v)| pack(k, v)).collect();
        let staging = self.dev.alloc_scratch(words.len().max(1))?;
        self.dev
            .mem()
            .h2d(staging.slice().sub(0, words.len()), &words);
        self.insert_device(staging.slice().sub(0, words.len()), words.len())
    }

    /// Shared body of the host-resident query paths: stage, launch,
    /// download. Typed scratch failure instead of a panic.
    pub(crate) fn retrieve_impl(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Option<u32>>, KernelStats), OpError> {
        if self.resize_active() {
            return self.migrating_retrieve(keys);
        }
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let n = words.len();
        let staging = self.dev.alloc_scratch(2 * n.max(1))?;
        let input = staging.slice().sub(0, n.max(1)).sub(0, n);
        let out = staging.slice().sub(n.max(1), n);
        self.dev.mem().h2d(input, &words);
        let stats = self.retrieve_device(input, out, n);
        let results = self
            .dev
            .mem()
            .d2h(out)
            .into_iter()
            .map(|w| if w == EMPTY { None } else { Some(value_of(w)) })
            .collect();
        Ok((results, stats))
    }

    /// Queries host-resident keys, returning per-key results in order
    /// with the unified cost report.
    ///
    /// # Errors
    /// [`OpError::OutOfMemory`] when staging scratch is unavailable.
    pub fn try_retrieve(&self, keys: &[u32]) -> Result<GetResponse, OpError> {
        let (values, stats) = self.retrieve_impl(keys)?;
        Ok(GetResponse {
            values,
            report: OpReport::from_kernel(&stats, keys.len() as u64),
        })
    }

    /// Queries host-resident keys, returning per-key results in order.
    ///
    /// # Panics
    /// Panics when staging scratch is unavailable — use
    /// [`GpuHashMap::try_retrieve`] for the typed error.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve(&self, keys: &[u32]) -> (Vec<Option<u32>>, KernelStats) {
        self.retrieve_impl(keys).expect("scratch for retrieve")
    }

    /// Convenience single-key lookup (bulk APIs are the fast path).
    /// Launches the same retrieval kernel as the batched path, so the
    /// device's [`gpu_sim::LifetimeStats`] count it identically —
    /// telemetry never undercounts singleton fallbacks.
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u32> {
        self.retrieve_impl(&[key]).expect("scratch for get").0[0]
    }

    /// Shared body of the host-resident erase paths.
    pub(crate) fn erase_impl(&mut self, keys: &[u32]) -> Result<EraseOutcome, OpError> {
        if self.resize_active() {
            return self.migrating_erase(keys);
        }
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let dev = Arc::clone(&self.dev);
        let staging = dev.alloc_scratch(words.len().max(1))?;
        let input = staging.slice().sub(0, words.len());
        dev.mem().h2d(input, &words);
        Ok(self.erase_device(input, words.len()))
    }

    /// Tombstones host-resident keys, returning per-key hits in input
    /// order with the unified cost report.
    ///
    /// # Errors
    /// [`OpError::OutOfMemory`] when staging scratch is unavailable.
    pub fn try_erase(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError> {
        let outcome = self.erase_impl(keys)?;
        Ok(DeleteResponse {
            report: OpReport::from_kernel(&outcome.stats, keys.len() as u64),
            hits: outcome.hits,
            erased: outcome.erased,
        })
    }

    /// Tombstones host-resident keys; returns how many were found.
    ///
    /// # Panics
    /// Panics when staging scratch is unavailable — use
    /// [`GpuHashMap::try_erase`] for the typed error.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_erase` — typed `DeleteResponse` carrying an `OpReport`"
    )]
    pub fn erase(&mut self, keys: &[u32]) -> EraseOutcome {
        self.erase_impl(keys).expect("scratch for erase")
    }

    // ---- maintenance ------------------------------------------------------

    /// Rebuilds the table in place with a fresh hash-function member
    /// ("the whole data structure is invalidated followed by a subsequent
    /// reconstruction with a distinct hash function", §II). Also purges
    /// tombstones. Returns the re-insertion outcome.
    ///
    /// # Errors
    /// Probing exhaustion can recur (retry with another seed) and scratch
    /// may be unavailable.
    pub fn rebuild_with_fresh_hash(&mut self) -> Result<InsertOutcome, InsertError> {
        // a rebuild is a whole-table operation: drive any in-flight
        // migration to completion first so there is one table to rebuild
        self.drive_migration_to_end()?;
        // extract live entries (billed as one streaming table scan)
        let live: Vec<u64> = self
            .dev
            .mem()
            .d2h(self.table.data)
            .into_iter()
            .take(self.table.capacity) // AOS words / SOA key words
            .enumerate()
            .filter_map(|(i, w)| match self.cfg.layout {
                Layout::Aos => is_occupied(w).then_some(w),
                Layout::Soa => crate::insert::soa_key_of(w).map(|k| {
                    let v = self.dev.mem().d2h(self.table.soa_values().sub(i, 1))[0];
                    pack(k, v as u32)
                }),
            })
            .collect();
        let scan_bytes = self.table.data.bytes();
        let scan = self.dev.launch(
            "rebuild_scan",
            self.table.capacity.div_ceil(32),
            GroupSize::WARP,
            gpu_sim::LaunchOptions::default(),
            |ctx| ctx.bill_stream_bytes(32 * 8),
        );
        debug_assert!(scan.counters.stream_bytes >= scan_bytes / 2);

        // fresh hash family member, clean table
        self.cfg.seed = self.cfg.seed.wrapping_add(1);
        self.dh = DoubleHash::from_seed(self.cfg.seed);
        self.dev.mem().fill(self.table.data, EMPTY);
        self.occupied.store(0, Relaxed);
        self.tombstones.store(0, Relaxed);

        // re-insert
        let staging = self.dev.alloc_scratch(live.len().max(1))?;
        let input = staging.slice().sub(0, live.len());
        self.dev.mem().h2d(input, &live);
        let mut outcome = self.insert_device(input, live.len())?;
        outcome.stats = outcome.stats.merged(&scan);
        Ok(outcome)
    }

    /// Host-side snapshot of all live `(key, value)` pairs (diagnostic /
    /// test helper; uncounted). Includes both tables while a resize
    /// migration is in flight — the disjointness invariant keeps the
    /// union duplicate-free.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u32, u32)> {
        let mut out = self.snapshot_table(&self.table);
        if let Some(m) = self.resize.lock().migration.as_ref() {
            out.extend(self.snapshot_table(&m.table));
        }
        out
    }

    fn snapshot_table(&self, table: &TableRef) -> Vec<(u32, u32)> {
        let words = self.dev.mem().d2h(table.data);
        match table.layout {
            Layout::Aos => words
                .into_iter()
                .filter(|&w| is_occupied(w))
                .map(|w| (key_of(w), value_of(w)))
                .collect(),
            Layout::Soa => {
                let (keys, values) = words.split_at(table.capacity);
                keys.iter()
                    .zip(values)
                    .filter(|&(&k, _)| k != EMPTY && k != TOMBSTONE)
                    .map(|(&k, &v)| {
                        debug_assert!(k < u64::from(RESERVED_KEY));
                        (k as u32, v as u32)
                    })
                    .collect()
            }
        }
    }
}

impl crate::service::MapService for GpuHashMap {
    fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<crate::service::PutResponse, OpError> {
        self.maybe_finalize_resize();
        let o = self.insert_pairs(pairs)?;
        Ok(crate::service::PutResponse {
            new_slots: o.new_slots,
            updates: o.updates,
            reclaimed: o.reclaimed,
            report: OpReport::from_kernel(&o.stats, pairs.len() as u64),
        })
    }

    fn get_batch(&mut self, keys: &[u32]) -> Result<GetResponse, OpError> {
        self.maybe_finalize_resize();
        self.try_retrieve(keys)
    }

    fn delete_batch(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError> {
        self.maybe_finalize_resize();
        self.try_erase(keys)
    }

    fn live_len(&self) -> u64 {
        self.len()
    }

    fn slot_capacity(&self) -> u64 {
        // during a migration, admission control must project against the
        // capacity writes actually land in
        self.effective_capacity() as u64
    }

    fn occupancy_split(&self) -> crate::Occupancy {
        GpuHashMap::occupancy_split(self)
    }

    fn resize_state(&self) -> crate::ResizeState {
        GpuHashMap::resize_state(self)
    }

    fn request_grow(&mut self) -> Result<bool, OpError> {
        GpuHashMap::request_grow(self)
    }

    fn request_compact(&mut self) -> Result<bool, OpError> {
        GpuHashMap::request_compact(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProbingScheme;
    use proptest::prelude::*;

    fn device(words: usize) -> Arc<Device> {
        Arc::new(Device::with_words(0, words))
    }

    fn map_with(capacity: usize, cfg: Config) -> GpuHashMap {
        GpuHashMap::new(device(capacity * 4 + 256), capacity, cfg).unwrap()
    }

    #[test]
    fn insert_then_get_round_trip() {
        let m = map_with(1024, Config::default());
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i * 7 + 1, i + 1000)).collect();
        let outcome = m.insert_pairs(&pairs).unwrap();
        assert_eq!(outcome.new_slots, 500);
        assert_eq!(outcome.updates, 0);
        assert_eq!(m.len(), 500);
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = m.try_retrieve(&keys).unwrap().values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1));
        }
    }

    #[test]
    fn misses_return_none() {
        let m = map_with(256, Config::default());
        m.insert_pairs(&[(1, 10)]).unwrap();
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(2), None);
        let res = m.try_retrieve(&[3, 1, 4]).unwrap().values;
        assert_eq!(res, vec![None, Some(10), None]);
    }

    #[test]
    fn duplicate_keys_update_value() {
        let m = map_with(128, Config::default());
        m.insert_pairs(&[(9, 1)]).unwrap();
        let outcome = m.insert_pairs(&[(9, 2)]).unwrap();
        assert_eq!(outcome.updates, 1);
        assert_eq!(outcome.new_slots, 0);
        assert_eq!(m.get(9), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fills_to_99_percent_load() {
        // the paper's headline robustness claim: α > 0.95 works
        let cap = 4096;
        let n = (cap as f64 * 0.99) as u32;
        for g in [1u32, 2, 4, 8, 16, 32] {
            let m = map_with(cap, Config::default().with_group_size(g));
            let pairs: Vec<(u32, u32)> = (0..n).map(|i| (i * 2 + 1, i)).collect();
            m.insert_pairs(&pairs)
                .unwrap_or_else(|e| panic!("|g|={g}: {e}"));
            assert!((m.load_factor() - 0.99).abs() < 0.01);
            let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let res = m.try_retrieve(&keys).unwrap().values;
            assert!(res.iter().all(Option::is_some), "|g|={g} lost keys");
        }
    }

    #[test]
    fn group_sizes_interoperate() {
        // probing order is group-size independent: insert with |g|=8,
        // retrieve with |g|=2 must find everything
        let dev = device(8192);
        let cfg8 = Config::default().with_group_size(8);
        let m8 = GpuHashMap::new(Arc::clone(&dev), 1024, cfg8).unwrap();
        let pairs: Vec<(u32, u32)> = (0..900u32).map(|i| (i + 1, i)).collect();
        m8.insert_pairs(&pairs).unwrap();
        // rebuild a map view with a different group size over the same
        // table is not part of the API; instead check the slot sequences
        // directly via retrieval after reconfiguring through snapshot
        let snap = m8.snapshot();
        let cfg2 = Config::default().with_group_size(2);
        let m2 = GpuHashMap::new(Arc::clone(&dev), 1024, cfg2).unwrap();
        m2.insert_pairs(&snap).unwrap();
        let res = m2
            .try_retrieve(&pairs.iter().map(|p| p.0).collect::<Vec<_>>())
            .unwrap()
            .values;
        assert!(res.iter().all(Option::is_some));
    }

    #[test]
    fn erase_then_reinsert_over_tombstones() {
        let mut m = map_with(512, Config::default());
        let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        let erased = m.try_erase(&(1..=200).collect::<Vec<u32>>()).unwrap();
        assert_eq!(erased.erased, 200);
        assert!(erased.hits.iter().all(|&h| h), "every victim was present");
        assert_eq!(m.len(), 200);
        assert_eq!(m.tombstones(), 200);
        // erased keys gone, others remain
        assert_eq!(m.get(5), None);
        assert_eq!(m.get(300), Some(299));
        // probing walks through tombstones to find keys placed beyond them
        let res = m
            .try_retrieve(&(201..=400).collect::<Vec<u32>>())
            .unwrap()
            .values;
        assert!(res.iter().all(Option::is_some));
        // reinsert over tombstones
        m.insert_pairs(&(1..=200).map(|k| (k, k * 2)).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(m.get(5), Some(10));
        assert_eq!(m.len(), 400);
    }

    #[test]
    fn erase_missing_keys_reports_zero() {
        let mut m = map_with(128, Config::default());
        m.insert_pairs(&[(1, 1)]).unwrap();
        let out = m.try_erase(&[99, 100]).unwrap();
        assert_eq!(out.erased, 0);
        assert_eq!(out.hits, vec![false, false]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn rebuild_purges_tombstones_and_preserves_content() {
        let mut m = map_with(512, Config::default());
        let pairs: Vec<(u32, u32)> = (0..300u32).map(|i| (i + 1, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        m.try_erase(&(1..=100).collect::<Vec<u32>>()).unwrap();
        let seed_before = m.config().seed;
        m.rebuild_with_fresh_hash().unwrap();
        assert_eq!(m.config().seed, seed_before + 1);
        assert_eq!(m.tombstones(), 0);
        assert_eq!(m.len(), 200);
        for (k, v) in pairs.iter().skip(100) {
            assert_eq!(m.get(*k), Some(*v), "key {k} lost in rebuild");
        }
        assert_eq!(m.get(50), None);
    }

    #[test]
    fn soa_layout_round_trips() {
        let m = map_with(512, Config::default().with_layout(Layout::Soa));
        let pairs: Vec<(u32, u32)> = (0..450u32).map(|i| (i * 3 + 2, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        let res = m
            .try_retrieve(&pairs.iter().map(|p| p.0).collect::<Vec<_>>())
            .unwrap()
            .values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1));
        }
        // update + erase work in SOA too
        m.insert_pairs(&[(pairs[0].0, 777)]).unwrap();
        assert_eq!(m.get(pairs[0].0), Some(777));
        let mut m = m;
        let del = m.try_erase(&[pairs[1].0]).unwrap();
        assert_eq!((del.erased, del.hits), (1, vec![true]));
        assert_eq!(m.get(pairs[1].0), None);
    }

    /// Regression cover for the deprecated tuple shims: they must agree
    /// with the typed API until they are removed next release.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_typed_api() {
        let mut m = map_with(512, Config::default());
        let pairs: Vec<(u32, u32)> = (0..300u32).map(|i| (i * 3 + 2, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([7]).collect();
        let (shim_res, shim_stats) = m.retrieve(&keys);
        let typed = m.try_retrieve(&keys).unwrap();
        assert_eq!(shim_res, typed.values);
        assert_eq!(shim_stats.counters, typed.report.counters);
        let shim_erase = m.erase(&keys[..100]);
        assert_eq!(shim_erase.erased, 100);
        let typed_erase = m.try_erase(&keys[..100]).unwrap();
        assert_eq!(typed_erase.erased, 0, "already tombstoned");
        assert!(typed_erase.hits.iter().all(|&h| !h));
    }

    #[test]
    fn soa_uses_twice_the_memory() {
        let dev = device(4096);
        let before = dev.mem().available_words();
        let _aos = GpuHashMap::new(Arc::clone(&dev), 512, Config::default()).unwrap();
        let after_aos = dev.mem().available_words();
        let _soa = GpuHashMap::new(
            Arc::clone(&dev),
            512,
            Config::default().with_layout(Layout::Soa),
        )
        .unwrap();
        let after_soa = dev.mem().available_words();
        assert_eq!(before - after_aos, 512);
        assert_eq!(after_aos - after_soa, 1024);
    }

    #[test]
    fn probing_schemes_all_round_trip() {
        for scheme in [
            ProbingScheme::Hybrid,
            ProbingScheme::Linear,
            ProbingScheme::Quadratic,
        ] {
            let m = map_with(1024, Config::default().with_probing(scheme));
            let pairs: Vec<(u32, u32)> = (0..900u32).map(|i| (i * 5 + 1, i)).collect();
            m.insert_pairs(&pairs)
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            let res = m
                .try_retrieve(&pairs.iter().map(|p| p.0).collect::<Vec<_>>())
                .unwrap()
                .values;
            assert!(res.iter().all(Option::is_some), "{scheme:?} lost keys");
        }
    }

    #[test]
    fn overfull_insert_fails_with_probing_exhausted() {
        let m = map_with(64, Config::default());
        let pairs: Vec<(u32, u32)> = (0..80u32).map(|i| (i + 1, i)).collect();
        let err = m.insert_pairs(&pairs).unwrap_err();
        assert!(matches!(err, InsertError::ProbingExhausted { failed } if failed >= 16));
        // the 64 placed entries are still retrievable
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn table_larger_than_vram_is_rejected() {
        let dev = device(1024);
        let err = GpuHashMap::new(dev, 10_000, Config::default()).unwrap_err();
        assert!(matches!(err, BuildError::OutOfMemory(_)));
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = GpuHashMap::new(device(64), 0, Config::default()).unwrap_err();
        assert!(matches!(err, BuildError::ZeroCapacity));
    }

    #[test]
    fn concurrent_inserts_of_same_key_store_exactly_one() {
        // many pairs with one key in a single batch: groups race on the
        // same slot; exactly one slot must be claimed, last CAS wins
        let m = map_with(256, Config::default());
        let pairs: Vec<(u32, u32)> = (0..64u32).map(|v| (42, v)).collect();
        let outcome = m.insert_pairs(&pairs).unwrap();
        assert_eq!(outcome.new_slots, 1);
        assert_eq!(outcome.updates, 63);
        assert_eq!(m.len(), 1);
        let v = m.get(42).unwrap();
        assert!(v < 64);
    }

    #[test]
    fn stats_expose_probe_traffic() {
        let m = map_with(1024, Config::default());
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i + 1, i)).collect();
        let outcome = m.insert_pairs(&pairs).unwrap();
        assert!(outcome.stats.counters.transactions >= 500);
        assert!(outcome.stats.counters.cas_ops >= 500);
        assert!(outcome.stats.sim_time > 0.0);
        // retrieval does no CAS
        let report = m.try_retrieve(&[1, 2, 3]).unwrap().report;
        assert_eq!(report.counters.cas_ops, 0);
        assert_eq!(report.elements, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn matches_std_hashmap_model(
            ops in proptest::collection::vec((0u32..500, any::<u32>()), 1..300),
            g in proptest::sample::select(vec![1u32, 2, 4, 8, 16, 32]),
        ) {
            let m = map_with(2048, Config::default().with_group_size(g));
            let mut model = std::collections::HashMap::new();
            // sequential batches of one pair: deterministic model
            for &(k, v) in &ops {
                let key = k + 1; // avoid 0? keys may be 0; just not MAX
                m.insert_pairs(&[(key, v)]).unwrap();
                model.insert(key, v);
            }
            let keys: Vec<u32> = model.keys().copied().collect();
            let res = m.try_retrieve(&keys).unwrap().values;
            for (i, k) in keys.iter().enumerate() {
                prop_assert_eq!(res[i], model.get(k).copied());
            }
            prop_assert_eq!(m.len() as usize, model.len());
        }
    }
}
