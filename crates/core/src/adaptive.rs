//! Dynamic group-size selection — the paper's §VI future-work item:
//! "A possible direction for future research could be design of a
//! heuristic which dynamically scales the group size |g| with the
//! current load factor."
//!
//! The heuristic minimizes the expected irregular traffic per probe
//! sequence. For a table at load factor α probed with groups of size g:
//!
//! * the probability a g-slot window holds a vacancy is `1 − α^g`, so the
//!   expected number of windows probed is `1 / (1 − α^g)` (geometric);
//! * a sector-aligned window of g slots costs `max(1, g·8/32)` 32-byte
//!   transactions.
//!
//! Minimizing `cost(g) = max(1, g/4) / (1 − α^g)` over
//! `g ∈ {1, 2, 4, 8, 16, 32}` picks the group size with the least
//! expected traffic. A robustness margin slightly penalizes small groups
//! (their probe-count *variance* is higher, and stragglers hold warps).
//!
//! Interesting emergent result, recorded in EXPERIMENTS.md: with
//! sector-aligned windows the optimum pins to the sector width (g = 4)
//! across almost the whole load range — windows of ≤ 4 slots cost one
//! transaction regardless, so nothing smaller can be cheaper, and larger
//! windows only pay off beyond α ≈ 0.99. The Fig. 7 measurements agree.

use crate::config::Config;
use crate::errors::InsertError;
use crate::insert::InsertOutcome;
use crate::map::GpuHashMap;
use gpu_sim::GroupSize;
use std::sync::Arc;

/// Expected irregular transactions to place/find one key at load `alpha`
/// with group size `g` (the heuristic's cost function).
#[must_use]
pub fn expected_cost(alpha: f64, g: u32) -> f64 {
    let alpha = alpha.clamp(0.0, 0.999_9);
    let p_vacant = 1.0 - alpha.powi(g as i32);
    let txns_per_window = (f64::from(g) / 4.0).max(1.0);
    // straggler margin: high-variance small-group sequences hold their
    // warp hostage; penalize by one std-dev of the geometric
    let mean_windows = 1.0 / p_vacant;
    let std_windows = (alpha.powi(g as i32)).sqrt() / p_vacant;
    txns_per_window * (mean_windows + 0.25 * std_windows)
}

/// The group size minimizing [`expected_cost`] at load `alpha`; ties
/// break toward the sector width (g = 4), which costs nothing extra per
/// window and has the lowest probe variance of the one-transaction
/// group sizes.
#[must_use]
pub fn recommend_group_size(alpha: f64) -> GroupSize {
    let order = [4u32, 2, 8, 1, 16, 32]; // preference among equal costs
    let mut best = order[0];
    let mut best_cost = expected_cost(alpha, best);
    for &g in &order[1..] {
        let c = expected_cost(alpha, g);
        if c < best_cost {
            best = g;
            best_cost = c;
        }
    }
    GroupSize::new(best)
}

/// A hash map that re-selects its group size per batch from the current
/// load factor.
///
/// Group-size changes are safe at batch boundaries because the probing
/// *slot sequence* is group-size independent (§IV-A's consistency
/// property, certified by `probing::slot_sequence_is_group_size_independent`):
/// a key inserted with |g| = 8 is found by a |g| = 2 query.
#[derive(Debug)]
pub struct AdaptiveHashMap {
    inner: GpuHashMap,
}

impl AdaptiveHashMap {
    /// Builds an adaptive map (the configured group size seeds the first
    /// batch only).
    ///
    /// # Errors
    /// Same as [`GpuHashMap::new`].
    pub fn new(
        dev: Arc<gpu_sim::Device>,
        capacity: usize,
        cfg: Config,
    ) -> Result<Self, crate::errors::BuildError> {
        Ok(Self {
            inner: GpuHashMap::new(dev, capacity, cfg)?,
        })
    }

    /// The group size the next batch would use.
    #[must_use]
    pub fn current_group_size(&self) -> GroupSize {
        recommend_group_size(self.inner.load_factor())
    }

    /// Inserts a batch with the group size recommended for the *current*
    /// load factor.
    ///
    /// # Errors
    /// Same as [`GpuHashMap::insert_pairs`].
    pub fn insert_pairs(&mut self, pairs: &[(u32, u32)]) -> Result<InsertOutcome, InsertError> {
        let g = self.current_group_size();
        self.inner.set_group_size(g);
        self.inner.insert_pairs(pairs)
    }

    /// Retrieves with the recommended group size, returning a typed
    /// [`crate::GetResponse`].
    ///
    /// # Errors
    /// Same as [`GpuHashMap::try_retrieve`].
    pub fn try_retrieve(
        &mut self,
        keys: &[u32],
    ) -> Result<crate::GetResponse, crate::OpError> {
        let g = self.current_group_size();
        self.inner.set_group_size(g);
        self.inner.try_retrieve(keys)
    }

    /// Retrieves with the recommended group size.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve(&mut self, keys: &[u32]) -> (Vec<Option<u32>>, gpu_sim::KernelStats) {
        let g = self.current_group_size();
        self.inner.set_group_size(g);
        #[allow(deprecated)]
        self.inner.retrieve(keys)
    }

    /// The wrapped map (read access).
    #[must_use]
    pub fn inner(&self) -> &GpuHashMap {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Distribution;

    #[test]
    fn cost_function_shape() {
        // more load → more cost at fixed g
        assert!(expected_cost(0.9, 4) > expected_cost(0.5, 4));
        // g=1 costs more than g=4 at high load (same transaction price,
        // more windows)
        assert!(expected_cost(0.95, 1) > expected_cost(0.95, 4));
        // g=32 moves 8 sectors per window: worse than 4 everywhere sane
        assert!(expected_cost(0.8, 32) > expected_cost(0.8, 4));
    }

    #[test]
    fn recommendation_matches_fig7_optimum() {
        // the paper's measured optimum is |g| in {2,4,8}; with aligned
        // windows our cost model pins to the sector width
        for alpha in [0.1, 0.4, 0.7, 0.9, 0.95, 0.99] {
            let g = recommend_group_size(alpha).get();
            assert!((2..=8).contains(&g), "alpha {alpha}: recommended {g}");
        }
    }

    #[test]
    fn adaptive_map_round_trips_across_group_switches() {
        let dev = Arc::new(gpu_sim::Device::with_words(0, 1 << 16));
        let mut map = AdaptiveHashMap::new(dev, 4096, Config::default()).unwrap();
        let pairs = Distribution::Unique.generate(3900, 3); // → α ≈ 0.95
                                                            // insert in rising-load batches; group size may change in between
        let mut sizes = Vec::new();
        for chunk in pairs.chunks(500) {
            sizes.push(map.current_group_size().get());
            map.insert_pairs(chunk).unwrap();
        }
        // every key is found regardless of which |g| inserted it
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = map.try_retrieve(&keys).unwrap().values;
        assert!(res.iter().all(Option::is_some));
        // recommendations stayed in the sane band
        assert!(sizes.iter().all(|g| (2..=8).contains(g)), "{sizes:?}");
        // and tightened as the table filled (monotone non-decreasing
        // confidence is not required, but the first and last must be sane)
        assert_eq!(*sizes.last().unwrap(), 4);
    }

    #[test]
    fn adaptive_never_loses_to_worst_fixed_choice() {
        // compare net of the fixed launch overheads: adaptive issues one
        // launch per batch, which at paper scale is invisible
        let oh = gpu_sim::DeviceSpec::p100().launch_overhead;
        let n = 3000;
        let pairs = Distribution::Unique.generate(n, 9);
        let run_fixed = |g: u32| {
            let dev = Arc::new(gpu_sim::Device::with_words(0, 1 << 16));
            let cfg = Config::default().with_group_size(g);
            let map = GpuHashMap::new(dev, 4096, cfg).unwrap();
            map.insert_pairs(&pairs).unwrap().stats.sim_time - oh
        };
        let dev = Arc::new(gpu_sim::Device::with_words(0, 1 << 16));
        let mut adaptive = AdaptiveHashMap::new(dev, 4096, Config::default()).unwrap();
        let mut t_adaptive = 0.0;
        for chunk in pairs.chunks(512) {
            t_adaptive += adaptive.insert_pairs(chunk).unwrap().stats.sim_time - oh;
        }
        let worst = run_fixed(32).max(run_fixed(1));
        assert!(
            t_adaptive < worst,
            "adaptive {t_adaptive:.3e} vs worst fixed {worst:.3e}"
        );
    }
}
