//! The insertion kernel — Fig. 3 of the paper, with the duplicate-key
//! update semantics of §V-B ("our implementation resolves such collisions
//! by updating an already written value for a colliding key").
//!
//! One coalesced group inserts one key-value pair:
//!
//! 1. outer loop `p < p_max`: re-derive the span base `h ← hash(d, p)`;
//! 2. inner loop `q < 32/|g|`: coalesced load of the `|g|`-slot window;
//! 3. ballot for a slot holding the *same key* — if present, CAS-update
//!    the value (AOS) or overwrite the value word (SOA, see
//!    [`insert_one_soa`] for the sentinel protocol that keeps the
//!    split-word layout linearizable);
//! 4. ballot for vacant slots (`∅` or tombstone); the *leader* (lowest
//!    active lane, `__ffs`) attempts the CAS; on success every member
//!    exits (`g.any`), on failure the window is reloaded and the ballot
//!    repeated until the window is exhausted;
//! 5. after `p_max` spans, raise an insertion error.
//!
//! The reload in step 4 is load-bearing: a failed claim CAS means another
//! group changed the window — possibly by inserting *our* key — so both
//! ballots must rerun against fresh data. [`crate::Config`]'s
//! `broken_cas_recheck` mutation double skips exactly that reload so the
//! linearizability harness can prove it catches the resulting
//! duplicate-slot anomaly.

use crate::config::{Layout, Mutations};
use crate::entry::{
    is_empty_slot, is_tombstone, is_vacant, key_of, pack, value_of, EMPTY, RESERVED_KEY,
};
use crate::history::{HistoryRecorder, OpKind, OpResponse};
use crate::map::TableRef;
use crate::probing::Prober;
use gpu_sim::{DevSlice, Device, GroupCtx, KernelStats, LaunchOptions};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Result of a bulk-insert launch.
#[derive(Debug, Clone)]
pub struct InsertOutcome {
    /// Kernel stats (counters + simulated time).
    pub stats: KernelStats,
    /// Pairs that exhausted `p_max` probing attempts.
    pub failed: u64,
    /// Pairs that claimed a previously vacant slot.
    pub new_slots: u64,
    /// Pairs that updated the value of an already-present key.
    pub updates: u64,
    /// Subset of `new_slots` whose claimed slot was a tombstone (the
    /// owning map deducts these from its tombstone count).
    pub reclaimed: u64,
}

/// Per-group insertion outcome (internal).
enum GroupResult {
    NewSlot {
        /// The claimed slot held a TOMBSTONE (not EMPTY).
        reclaimed: bool,
    },
    Updated,
    Failed,
}

/// Launches the insertion kernel for the packed pairs in `input[..n]`.
#[allow(clippy::too_many_arguments)] // kernel ABI: device + table + knobs
pub(crate) fn insert_kernel(
    dev: &Device,
    table: &TableRef,
    input: DevSlice,
    n: usize,
    prober: &Prober,
    p_max: u32,
    opts: LaunchOptions,
    muts: Mutations,
    recorder: Option<&HistoryRecorder>,
) -> InsertOutcome {
    // Bookkeeping lives host-side (captured atomics): the real kernel
    // tracks only the error flag, so none of these cost modeled traffic.
    let failed = AtomicU64::new(0);
    let new_slots = AtomicU64::new(0);
    let updates = AtomicU64::new(0);
    let reclaimed = AtomicU64::new(0);

    let stats = dev.launch(
        "warpdrive_insert",
        n,
        table.group_size,
        opts,
        |ctx: &GroupCtx| {
            let invoked = recorder.map(HistoryRecorder::invoke);
            let word = ctx.read_stream(input, ctx.group_id());
            let r = match table.layout {
                Layout::Aos => insert_one_aos(ctx, table, prober, p_max, word, muts),
                Layout::Soa => insert_one_soa(ctx, table, prober, p_max, word, muts),
            };
            match r {
                GroupResult::NewSlot { reclaimed: tomb } => {
                    new_slots.fetch_add(1, Relaxed);
                    if tomb {
                        reclaimed.fetch_add(1, Relaxed);
                    }
                }
                GroupResult::Updated => {
                    updates.fetch_add(1, Relaxed);
                }
                GroupResult::Failed => {
                    failed.fetch_add(1, Relaxed);
                }
            }
            if let (Some(rec), Some(invoked)) = (recorder, invoked) {
                let response = match r {
                    GroupResult::NewSlot { .. } => OpResponse::Inserted { new_slot: true },
                    GroupResult::Updated => OpResponse::Inserted { new_slot: false },
                    GroupResult::Failed => OpResponse::InsertFailed,
                };
                rec.complete(
                    key_of(word),
                    OpKind::Insert {
                        value: value_of(word),
                    },
                    response,
                    invoked,
                );
            }
        },
    );
    InsertOutcome {
        stats,
        failed: failed.load(Relaxed),
        new_slots: new_slots.load(Relaxed),
        updates: updates.load(Relaxed),
        reclaimed: reclaimed.load(Relaxed),
    }
}

/// AOS insertion of one packed pair by one coalesced group.
fn insert_one_aos(
    ctx: &GroupCtx,
    table: &TableRef,
    prober: &Prober,
    p_max: u32,
    word: u64,
    muts: Mutations,
) -> GroupResult {
    let key = key_of(word);
    let g = ctx.size().get();
    let cap = table.capacity;
    let data = table.aos_slice();
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let mut window = ctx.read_window(data, base);
            // lanes already CAS-failed since the last reload (only ever
            // non-zero under the mutation double)
            let mut tried: u32 = 0;
            loop {
                // update path: our key already lives in this window
                let dup = ctx.ballot(|r| key_of(window.lane(r)) == key);
                if let Some(r) = GroupCtx::ffs(dup) {
                    let idx = crate::probing::wrap_slot(base, r as usize, cap);
                    if ctx.cas(data, idx, window.lane(r), word).is_ok() {
                        return GroupResult::Updated;
                    }
                    window = ctx.reload_window(data, base);
                    tried = 0;
                    continue;
                }
                // claim path: leader CASes the leftmost vacant slot
                let mask = ctx.ballot(|r| is_vacant(window.lane(r))) & !tried;
                let Some(r) = GroupCtx::ffs(mask) else {
                    break; // window exhausted → next window
                };
                let idx = crate::probing::wrap_slot(base, r as usize, cap);
                let expected = window.lane(r);
                if ctx.cas(data, idx, expected, word).is_ok() {
                    // g.any(success) — all members exit
                    return GroupResult::NewSlot {
                        reclaimed: is_tombstone(expected),
                    };
                }
                if muts.cas_recheck {
                    // MUTATION DOUBLE: keep the stale window and move on to
                    // its next vacant slot without re-running the ballots —
                    // misses a racing insert of our own key, so the key can
                    // end up in two slots. See `Config::broken_cas_recheck`.
                    tried |= 1 << r;
                    continue;
                }
                if muts.divergent_ballot {
                    // MUTATION DOUBLE: re-ballot with the CAS-losing lane
                    // dropped from the participation mask — the "one lane
                    // exited the loop early" lockstep-divergence bug
                    // synccheck exists to catch. Functionally inert (the
                    // result is discarded and the window reloads below).
                    let active = ctx.full_mask() & !(1 << r);
                    let _ = ctx.ballot_where(active, |rr| is_vacant(window.lane(rr)));
                }
                // lost the race: reload and re-ballot (Fig. 3 lines 19–21)
                window = ctx.reload_window(data, base);
            }
        }
    }
    GroupResult::Failed
}

/// SOA insertion: CAS claims the key word, then the value word is
/// *published* with a CAS from the EMPTY sentinel. The sentinel CAS is
/// what makes the split-word layout linearizable: once the key word is
/// visible, racing duplicates of the same key take the update path and
/// overwrite the value word — if one of them gets there before the
/// claimer, the claimer's sentinel CAS fails and its (older) value is
/// discarded instead of clobbering an update that already responded.
/// (The schedule-sweep harness found exactly that lost-update anomaly in
/// the original plain-store variant.) Erase restores the sentinel, so
/// tombstone reclaim re-enters the same protocol.
fn insert_one_soa(
    ctx: &GroupCtx,
    table: &TableRef,
    prober: &Prober,
    p_max: u32,
    word: u64,
    muts: Mutations,
) -> GroupResult {
    let key = key_of(word);
    let value = value_of(word);
    let g = ctx.size().get();
    let cap = table.capacity;
    let keys = table.soa_keys();
    let values = table.soa_values();
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let mut window = ctx.read_window(keys, base);
            let mut tried: u32 = 0;
            loop {
                let dup = ctx.ballot(|r| soa_key_of(window.lane(r)) == Some(key));
                if let Some(r) = GroupCtx::ffs(dup) {
                    let idx = crate::probing::wrap_slot(base, r as usize, cap);
                    // relaxed value overwrite: last writer wins, but two
                    // racing updaters may interleave with readers — the
                    // shared annotation tells racecheck this is by design
                    ctx.write_shared(values, idx, u64::from(value));
                    return GroupResult::Updated;
                }
                let mask = ctx.ballot(|r| is_vacant(window.lane(r))) & !tried;
                let Some(r) = GroupCtx::ffs(mask) else {
                    break;
                };
                let idx = crate::probing::wrap_slot(base, r as usize, cap);
                let expected = window.lane(r);
                if ctx.cas(keys, idx, expected, u64::from(key)).is_ok() {
                    if muts.publish_plain_store {
                        // MUTATION DOUBLE: publish with a plain store —
                        // the lost release edge lets a racing updater's
                        // shared write interleave unordered, which
                        // racecheck flags even when the end state looks
                        // right. See `Config::broken_publish_plain_store`.
                        ctx.write(values, idx, u64::from(value));
                    } else {
                        // publish the value only if no racing update of
                        // this key beat us to the word (its response
                        // already promised the newer value survives)
                        let _ = ctx.cas(values, idx, EMPTY, u64::from(value));
                    }
                    return GroupResult::NewSlot {
                        reclaimed: is_tombstone(expected),
                    };
                }
                if muts.cas_recheck {
                    // MUTATION DOUBLE — see the AOS variant above
                    tried |= 1 << r;
                    continue;
                }
                window = ctx.reload_window(keys, base);
            }
        }
    }
    GroupResult::Failed
}

/// Key stored in an SOA key word, if the slot is occupied.
#[inline]
pub(crate) fn soa_key_of(key_word: u64) -> Option<u32> {
    if is_vacant(key_word) {
        None
    } else {
        debug_assert!(key_word <= u64::from(RESERVED_KEY));
        Some(key_word as u32)
    }
}

/// Whether an SOA key word is the EMPTY sentinel (query terminator).
#[inline]
pub(crate) fn soa_is_empty(key_word: u64) -> bool {
    is_empty_slot(key_word)
}

/// Packs a retrieve result for an SOA hit.
#[inline]
pub(crate) fn soa_hit(key: u32, value_word: u64) -> u64 {
    pack(key, value_word as u32)
}
