//! The insertion kernel — Fig. 3 of the paper, with the duplicate-key
//! update semantics of §V-B ("our implementation resolves such collisions
//! by updating an already written value for a colliding key").
//!
//! One coalesced group inserts one key-value pair:
//!
//! 1. outer loop `p < p_max`: re-derive the span base `h ← hash(d, p)`;
//! 2. inner loop `q < 32/|g|`: coalesced load of the `|g|`-slot window;
//! 3. ballot for a slot holding the *same key* — if present, CAS-update
//!    the value (AOS) or overwrite it relaxed (SOA);
//! 4. ballot for vacant slots (`∅` or tombstone); the *leader* (lowest
//!    active lane, `__ffs`) attempts the CAS; on success every member
//!    exits (`g.any`), on failure the window is reloaded and the ballot
//!    repeated until the window is exhausted;
//! 5. after `p_max` spans, raise an insertion error.

use crate::config::Layout;
use crate::entry::{is_empty_slot, is_vacant, key_of, pack, value_of, RESERVED_KEY};
use crate::map::TableRef;
use crate::probing::Prober;
use gpu_sim::{DevSlice, Device, GroupCtx, KernelStats, LaunchOptions};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Result of a bulk-insert launch.
#[derive(Debug, Clone)]
pub struct InsertOutcome {
    /// Kernel stats (counters + simulated time).
    pub stats: KernelStats,
    /// Pairs that exhausted `p_max` probing attempts.
    pub failed: u64,
    /// Pairs that claimed a previously vacant slot.
    pub new_slots: u64,
    /// Pairs that updated the value of an already-present key.
    pub updates: u64,
}

/// Per-group insertion outcome (internal).
enum GroupResult {
    NewSlot,
    Updated,
    Failed,
}

/// Launches the insertion kernel for the packed pairs in `input[..n]`.
pub(crate) fn insert_kernel(
    dev: &Device,
    table: &TableRef,
    input: DevSlice,
    n: usize,
    prober: &Prober,
    p_max: u32,
    working_set: u64,
) -> InsertOutcome {
    // Bookkeeping lives host-side (captured atomics): the real kernel
    // tracks only the error flag, so none of these cost modeled traffic.
    let failed = AtomicU64::new(0);
    let new_slots = AtomicU64::new(0);
    let updates = AtomicU64::new(0);

    let stats = dev.launch(
        "warpdrive_insert",
        n,
        table.group_size,
        LaunchOptions::default().with_working_set(working_set),
        |ctx: &GroupCtx| {
            let word = ctx.read_stream(input, ctx.group_id());
            let r = match table.layout {
                Layout::Aos => insert_one_aos(ctx, table, prober, p_max, word),
                Layout::Soa => insert_one_soa(ctx, table, prober, p_max, word),
            };
            match r {
                GroupResult::NewSlot => new_slots.fetch_add(1, Relaxed),
                GroupResult::Updated => updates.fetch_add(1, Relaxed),
                GroupResult::Failed => failed.fetch_add(1, Relaxed),
            };
        },
    );
    InsertOutcome {
        stats,
        failed: failed.load(Relaxed),
        new_slots: new_slots.load(Relaxed),
        updates: updates.load(Relaxed),
    }
}

/// AOS insertion of one packed pair by one coalesced group.
fn insert_one_aos(
    ctx: &GroupCtx,
    table: &TableRef,
    prober: &Prober,
    p_max: u32,
    word: u64,
) -> GroupResult {
    let key = key_of(word);
    let g = ctx.size().get();
    let cap = table.capacity;
    let data = table.aos_slice();
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let mut window = ctx.read_window(data, base);
            loop {
                // update path: our key already lives in this window
                let dup = ctx.ballot(|r| key_of(window.lane(r)) == key);
                if let Some(r) = GroupCtx::ffs(dup) {
                    let idx = (base + r as usize) % cap;
                    if ctx.cas(data, idx, window.lane(r), word).is_ok() {
                        return GroupResult::Updated;
                    }
                    window = ctx.reload_window(data, base);
                    continue;
                }
                // claim path: leader CASes the leftmost vacant slot
                let mask = ctx.ballot(|r| is_vacant(window.lane(r)));
                let Some(r) = GroupCtx::ffs(mask) else {
                    break; // window exhausted → next window
                };
                let idx = (base + r as usize) % cap;
                if ctx.cas(data, idx, window.lane(r), word).is_ok() {
                    // g.any(success) — all members exit
                    return GroupResult::NewSlot;
                }
                // lost the race: reload and re-ballot (Fig. 3 lines 19–21)
                window = ctx.reload_window(data, base);
            }
        }
    }
    GroupResult::Failed
}

/// SOA insertion: CAS claims the key word, the value word is written
/// relaxed afterwards — faithfully reproducing the §II caveat that
/// concurrent updates of one key may interleave (priority inversion).
fn insert_one_soa(
    ctx: &GroupCtx,
    table: &TableRef,
    prober: &Prober,
    p_max: u32,
    word: u64,
) -> GroupResult {
    let key = key_of(word);
    let value = value_of(word);
    let g = ctx.size().get();
    let cap = table.capacity;
    let keys = table.soa_keys();
    let values = table.soa_values();
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let mut window = ctx.read_window(keys, base);
            loop {
                let dup = ctx.ballot(|r| soa_key_of(window.lane(r)) == Some(key));
                if let Some(r) = GroupCtx::ffs(dup) {
                    let idx = (base + r as usize) % cap;
                    // relaxed value overwrite: last writer wins, but two
                    // racing updaters may interleave with readers
                    ctx.write(values, idx, u64::from(value));
                    return GroupResult::Updated;
                }
                let mask = ctx.ballot(|r| is_vacant(window.lane(r)));
                let Some(r) = GroupCtx::ffs(mask) else {
                    break;
                };
                let idx = (base + r as usize) % cap;
                if ctx.cas(keys, idx, window.lane(r), u64::from(key)).is_ok() {
                    ctx.write(values, idx, u64::from(value));
                    return GroupResult::NewSlot;
                }
                window = ctx.reload_window(keys, base);
            }
        }
    }
    GroupResult::Failed
}

/// Key stored in an SOA key word, if the slot is occupied.
#[inline]
pub(crate) fn soa_key_of(key_word: u64) -> Option<u32> {
    if is_vacant(key_word) {
        None
    } else {
        debug_assert!(key_word <= u64::from(RESERVED_KEY));
        Some(key_word as u32)
    }
}

/// Whether an SOA key word is the EMPTY sentinel (query terminator).
#[inline]
pub(crate) fn soa_is_empty(key_word: u64) -> bool {
    is_empty_slot(key_word)
}

/// Packs a retrieve result for an SOA hit.
#[inline]
pub(crate) fn soa_hit(key: u32, value_word: u64) -> u64 {
    pack(key, value_word as u32)
}
