//! Host-sided cascades: PCIe transfers bracketing the device cascades.
//!
//! §V-C's "host-sided" variants prepend an H2D transfer to the insertion
//! cascade and bracket the retrieval cascade with an H2D (keys up) and a
//! D2H (key-value results down). The initial spread over GPUs is the
//! *unstructured distribution* of §IV-B — equal contiguous chunks, no
//! host-side reordering (which the paper rules out as "almost as
//! expensive as CPU-based hash map construction").

use crate::distributed::DistributedHashMap;
use crate::entry::pack;
use crate::errors::InsertError;
use crate::service::{GetResponse, OpError, OpReport};
use crate::stats::{CascadeReport, CascadeStage};
use interconnect::{d2h_time_faulted, h2d_time_faulted};

/// Splits a slice into `m` near-equal contiguous chunks.
fn chunks<T: Copy>(items: &[T], m: usize) -> Vec<Vec<T>> {
    let per = items.len().div_ceil(m.max(1)).max(1);
    let mut out: Vec<Vec<T>> = items.chunks(per).map(<[T]>::to_vec).collect();
    out.resize(m, Vec::new());
    out
}

/// [`chunks`] restricted to the live GPUs of a quarantine `mask`: dead
/// GPUs receive empty chunks (they cannot accept PCIe traffic), the
/// items spread contiguously over the survivors in ascending GPU order
/// (so flattening still restores the original order). With an empty mask
/// this *is* [`chunks`] — the healthy path is unchanged.
fn live_chunks<T: Copy>(items: &[T], m: usize, mask: u32) -> Vec<Vec<T>> {
    if mask == 0 {
        return chunks(items, m);
    }
    let live: Vec<usize> = (0..m).filter(|&g| mask & (1 << g) == 0).collect();
    let inner = chunks(items, live.len());
    let mut out: Vec<Vec<T>> = vec![Vec::new(); m];
    for (&slot, chunk) in live.iter().zip(inner) {
        out[slot] = chunk;
    }
    out
}

impl DistributedHashMap {
    /// Host-sided insertion: transfer the packed pairs over PCIe
    /// (unstructured equal spread over the live GPUs), then run the
    /// device cascade. Dropped PCIe transfers are retried with backoff; a
    /// host link whose budget is exhausted quarantines its GPU and the
    /// transfer re-spreads over the survivors.
    ///
    /// # Errors
    /// Propagates the device cascade's errors; [`InsertError::Transfer`]
    /// or [`InsertError::DeviceLost`] once no failover remains.
    pub fn insert_from_host(&self, pairs: &[(u32, u32)]) -> Result<CascadeReport, InsertError> {
        let m = self.num_gpus();
        let policy = self.retry_policy();
        let mut report = CascadeReport::new(pairs.len() as u64);
        for _round in 0..=m {
            let (plan, mask) = self.chaos_snapshot();
            let per_gpu: Vec<Vec<u64>> = live_chunks(pairs, m, mask)
                .into_iter()
                .map(|c| c.into_iter().map(|(k, v)| pack(k, v)).collect())
                .collect();
            let bytes: Vec<u64> = per_gpu.iter().map(|c| c.len() as u64 * 8).collect();
            match h2d_time_faulted(self.topology(), &bytes, &plan, &policy) {
                Ok(t) => {
                    report.push(CascadeStage::H2D, t.time, bytes.iter().sum());
                    if t.backoff > 0.0 {
                        report.push(CascadeStage::Backoff, t.backoff, 0);
                    }
                    self.note_transfer_chaos(t.retries, t.backoff);
                    let device = self.insert_device_sided(&per_gpu)?;
                    report.absorb(&CascadeReport {
                        stages: device.stages,
                        elements: 0, // already counted
                    });
                    return Ok(report);
                }
                Err(e) => {
                    self.bill_exhausted_transfer(&mut report, &policy, e);
                    self.quarantine_blamed(&plan, e)?;
                }
            }
        }
        Err(InsertError::Internal {
            detail: "every failed round quarantines one GPU; at most m rounds",
        })
    }

    /// Books a budget-exhausted PCIe transfer's retries and backoff into
    /// the degraded stats and the report (the work happened before the
    /// link gave up).
    fn bill_exhausted_transfer(
        &self,
        report: &mut CascadeReport,
        policy: &gpu_sim::RetryPolicy,
        e: interconnect::TransferError,
    ) {
        let r = e.attempts.saturating_sub(1);
        let b: f64 = (1..=r).map(|a| policy.backoff_before(a)).sum();
        self.note_transfer_chaos(r, b);
        if b > 0.0 {
            report.push(CascadeStage::Backoff, b, 0);
        }
    }

    /// Host-sided retrieval: query words up over PCIe (8 bytes each —
    /// the device cascade routes them with their origin index packed in
    /// the low half), device cascade, packed key-value results down
    /// (8 bytes each). Returns the results in the original key order.
    ///
    /// # Panics
    /// Panics (with the replay hint) if fault injection exhausts every
    /// failover avenue; use
    /// [`DistributedHashMap::try_retrieve_from_host`] for the typed
    /// error.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve_from_host` — typed `GetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve_from_host(&self, keys: &[u32]) -> (Vec<Option<u32>>, CascadeReport) {
        match self.retrieve_from_host_impl(keys) {
            Ok(out) => out,
            Err(e) => panic!("retrieve failed: {e}; replay: {}", self.replay_hint()),
        }
    }

    /// Host-sided retrieval with typed fault errors, returning the
    /// results in the original key order with a unified [`OpReport`].
    ///
    /// # Errors
    /// [`OpError`] once every failover avenue is exhausted.
    pub fn try_retrieve_from_host(&self, keys: &[u32]) -> Result<GetResponse, OpError> {
        let (values, report) = self.retrieve_from_host_impl(keys)?;
        Ok(GetResponse {
            values,
            report: OpReport::from_cascade(&report),
        })
    }

    /// Single-key convenience. Routed through the same counter/stats
    /// path as [`DistributedHashMap::try_retrieve_from_host`], so device
    /// lifetime telemetry counts it like any batched read.
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u32> {
        self.retrieve_from_host_impl(&[key])
            .map_or(None, |(values, _)| values[0])
    }

    pub(crate) fn retrieve_from_host_impl(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Option<u32>>, CascadeReport), OpError> {
        let m = self.num_gpus();
        let policy = self.retry_policy();
        let mut report = CascadeReport::new(keys.len() as u64);

        // keys up over PCIe (retrying; a dead host link quarantines)
        let mut upload = None;
        for _round in 0..=m {
            let (plan, mask) = self.chaos_snapshot();
            let per_gpu = live_chunks(keys, m, mask);
            let up_bytes: Vec<u64> = per_gpu.iter().map(|c| c.len() as u64 * 8).collect();
            match h2d_time_faulted(self.topology(), &up_bytes, &plan, &policy) {
                Ok(t) => {
                    report.push(CascadeStage::H2D, t.time, up_bytes.iter().sum());
                    if t.backoff > 0.0 {
                        report.push(CascadeStage::Backoff, t.backoff, 0);
                    }
                    self.note_transfer_chaos(t.retries, t.backoff);
                    upload = Some(per_gpu);
                    break;
                }
                Err(e) => {
                    self.bill_exhausted_transfer(&mut report, &policy, e);
                    self.quarantine_blamed(&plan, e)?;
                }
            }
        }
        let per_gpu = upload.ok_or(OpError::Internal {
            detail: "every failed round quarantines one GPU; at most m rounds",
        })?;

        let (per_gpu_results, device) = self.retrieve_device_sided_impl(&per_gpu)?;
        report.absorb(&CascadeReport {
            stages: device.stages,
            elements: 0,
        });

        // results down over PCIe. The cascade may have quarantined GPUs
        // mid-flight; their answers physically came from survivors, so
        // the dead links carry no bytes.
        for _round in 0..=m {
            let (plan, mask) = self.chaos_snapshot();
            let down_bytes: Vec<u64> = per_gpu
                .iter()
                .enumerate()
                .map(|(g, c)| {
                    if mask & (1 << g) == 0 {
                        c.len() as u64 * 8
                    } else {
                        0
                    }
                })
                .collect();
            match d2h_time_faulted(self.topology(), &down_bytes, &plan, &policy) {
                Ok(t) => {
                    report.push(CascadeStage::D2H, t.time, down_bytes.iter().sum());
                    if t.backoff > 0.0 {
                        report.push(CascadeStage::Backoff, t.backoff, 0);
                    }
                    self.note_transfer_chaos(t.retries, t.backoff);
                    let results = per_gpu_results.into_iter().flatten().collect();
                    return Ok((results, report));
                }
                Err(e) => {
                    self.bill_exhausted_transfer(&mut report, &policy, e);
                    self.quarantine_blamed(&plan, e)?;
                }
            }
        }
        Err(OpError::Internal {
            detail: "every failed round quarantines one GPU; at most m rounds",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use gpu_sim::Device;
    use interconnect::Topology;
    use std::sync::Arc;

    fn node(m: usize) -> DistributedHashMap {
        let devices: Vec<Arc<Device>> = (0..m)
            .map(|i| Arc::new(Device::with_words(i, 1 << 16)))
            .collect();
        DistributedHashMap::new(devices, 2048, Config::default(), Topology::p100_quad(m)).unwrap()
    }

    #[test]
    fn host_cascade_round_trip() {
        let d = node(4);
        let pairs: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 13 + 7, i)).collect();
        let rep = d.insert_from_host(&pairs).unwrap();
        assert!(rep.time_of(CascadeStage::H2D) > 0.0);
        assert_eq!(rep.stages[0].stage, CascadeStage::H2D);

        let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([999_999_999]).collect();
        let resp = d.try_retrieve_from_host(&keys).unwrap();
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(resp.values[i], Some(p.1), "key {}", p.0);
        }
        assert_eq!(resp.values[pairs.len()], None);
        // retrieval pays PCIe both ways, visible through the unified report
        let stage_time = |s: CascadeStage| {
            resp.report
                .stages
                .iter()
                .filter(|t| t.stage == s)
                .map(|t| t.time)
                .sum::<f64>()
        };
        assert!(stage_time(CascadeStage::D2H) > 0.0);
        assert!(stage_time(CascadeStage::H2D) > 0.0);
    }

    #[test]
    fn host_insert_is_pcie_bound_for_cheap_tables() {
        // with a low load factor the insert kernels are fast and PCIe
        // dominates — §V-C: "host-sided insertion is comparably fast as
        // plain memcopies". Needs a realistic batch size: at toy sizes the
        // fixed kernel launch overheads (µs) swamp the µs-scale transfer.
        let devices: Vec<Arc<Device>> = (0..4)
            .map(|i| Arc::new(Device::with_words(i, 1 << 19)))
            .collect();
        let d =
            DistributedHashMap::new(devices, 1 << 16, Config::default(), Topology::p100_quad(4))
                .unwrap();
        let pairs: Vec<(u32, u32)> = (0..120_000u32).map(|i| (i * 17 + 3, i)).collect();
        let rep = d.insert_from_host(&pairs).unwrap();
        let h2d = rep.time_of(CascadeStage::H2D);
        assert!(
            h2d > 0.3 * rep.total_time(),
            "h2d {h2d:.3e} of {:.3e}",
            rep.total_time()
        );
    }

    #[test]
    fn chunking_covers_and_pads() {
        let c = chunks(&[1, 2, 3, 4, 5], 3);
        assert_eq!(c.len(), 3);
        let flat: Vec<i32> = c.iter().flatten().copied().collect();
        assert_eq!(flat, vec![1, 2, 3, 4, 5]);
        let c = chunks::<i32>(&[], 2);
        assert_eq!(c, vec![Vec::<i32>::new(), Vec::new()]);
    }
}
