//! Multi-value hash map — the §II extension ("open addressing hash maps
//! can be extended to multi-value hash maps in a straightforward manner").
//!
//! Unlike [`crate::GpuHashMap`], duplicate keys do **not** update in
//! place: every `(k, v)` pair claims its own slot along `k`'s probing
//! sequence, and retrieval walks the sequence collecting *all* values
//! until an EMPTY slot proves exhaustion. This is the structure the
//! paper's bioinformatics motivation (k-mer indexing, where one k-mer
//! occurs at many genome positions) actually needs — see
//! `examples/kmer_index.rs`.

use crate::config::Config;
use crate::entry::{is_empty_slot, is_occupied, is_vacant, key_of, pack, value_of, EMPTY};
use crate::errors::{BuildError, InsertError};
use crate::history::{HistoryRecorder, OpKind, OpResponse};
use crate::probing::Prober;
use gpu_sim::{DevSlice, Device, GroupCtx, KernelStats, LaunchOptions};
use hashes::DoubleHash;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// A multi-value open-addressing hash map (AOS layout only — the packed
/// word is what makes slot claims atomic).
#[derive(Debug)]
pub struct GpuMultiMap {
    dev: Arc<Device>,
    table: DevSlice,
    capacity: usize,
    cfg: Config,
    dh: DoubleHash,
    occupied: AtomicU64,
    recorder: Option<Arc<HistoryRecorder>>,
}

impl GpuMultiMap {
    /// Allocates a multi-map of `capacity` slots.
    ///
    /// # Errors
    /// Same failure modes as [`crate::GpuHashMap::new`].
    pub fn new(dev: Arc<Device>, capacity: usize, cfg: Config) -> Result<Self, BuildError> {
        if capacity == 0 {
            return Err(BuildError::ZeroCapacity);
        }
        let capacity = capacity.div_ceil(32) * 32;
        let table = dev.alloc(capacity)?;
        dev.mem().fill(table, EMPTY);
        Ok(Self {
            dev,
            table,
            capacity,
            cfg,
            dh: DoubleHash::from_seed(cfg.seed),
            occupied: AtomicU64::new(0),
            recorder: None,
        })
    }

    /// Attaches (or detaches) a per-operation history recorder — see
    /// [`crate::GpuHashMap::set_recorder`]. Multi-map events use the
    /// multiset op kinds checked by
    /// [`crate::linearize::check_linearizable_multi`].
    pub fn set_recorder(&mut self, rec: Option<Arc<HistoryRecorder>>) {
        self.recorder = rec;
    }

    /// Total stored pairs (each duplicate counts).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.occupied.load(Relaxed)
    }

    /// Whether no pair is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load factor over all stored pairs.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.capacity as f64
    }

    fn prober(&self) -> Prober {
        Prober::new(self.dh, self.cfg.probing, self.capacity)
    }

    /// Inserts pairs; duplicates accumulate instead of updating.
    ///
    /// # Errors
    /// [`InsertError::ProbingExhausted`] when slots run out along a
    /// probing sequence.
    pub fn insert_pairs(&self, pairs: &[(u32, u32)]) -> Result<KernelStats, InsertError> {
        let words: Vec<u64> = pairs.iter().map(|&(k, v)| pack(k, v)).collect();
        let staging = self.dev.alloc_scratch(words.len().max(1))?;
        let input = staging.slice().sub(0, words.len());
        self.dev.mem().h2d(input, &words);

        let failed = AtomicU64::new(0);
        let inserted = AtomicU64::new(0);
        let table = self.table;
        let cap = self.capacity;
        let prober = self.prober();
        let p_max = self.cfg.p_max;
        let recorder = self.recorder.as_deref();
        let stats = self.dev.launch(
            "multimap_insert",
            words.len(),
            self.cfg.group_size,
            self.cfg.apply_dispatch(
                LaunchOptions::default()
                    .with_working_set(table.bytes())
                    .with_schedule(self.cfg.schedule),
            ),
            |ctx: &GroupCtx| {
                let invoked = recorder.map(HistoryRecorder::invoke);
                let word = ctx.read_stream(input, ctx.group_id());
                let key = key_of(word);
                let g = ctx.size().get();
                let mut claimed = false;
                'probe: for p in 0..p_max {
                    for q in 0..ctx.size().windows_per_warp() {
                        let base = prober.window_base(key, p, q, g) as usize;
                        let mut window = ctx.read_window(table, base);
                        loop {
                            // claim the leftmost vacant slot; no update path
                            let mask = ctx.ballot(|r| is_vacant(window.lane(r)));
                            let Some(r) = GroupCtx::ffs(mask) else { break };
                            let idx = crate::probing::wrap_slot(base, r as usize, cap);
                            if ctx.cas(table, idx, window.lane(r), word).is_ok() {
                                inserted.fetch_add(1, Relaxed);
                                claimed = true;
                                break 'probe;
                            }
                            window = ctx.reload_window(table, base);
                        }
                    }
                }
                if !claimed {
                    failed.fetch_add(1, Relaxed);
                }
                if let (Some(rec), Some(invoked)) = (recorder, invoked) {
                    let response = if claimed {
                        OpResponse::Inserted { new_slot: true }
                    } else {
                        OpResponse::InsertFailed
                    };
                    rec.complete(
                        key,
                        OpKind::InsertMulti {
                            value: value_of(word),
                        },
                        response,
                        invoked,
                    );
                }
            },
        );
        self.occupied.fetch_add(inserted.load(Relaxed), Relaxed);
        let f = failed.load(Relaxed);
        if f > 0 {
            return Err(InsertError::ProbingExhausted { failed: f });
        }
        Ok(stats)
    }

    /// Retrieves **all** values stored under each key, with a typed
    /// [`crate::OpReport`]. Results are per-key value vectors (order
    /// across racing inserts unspecified).
    ///
    /// # Errors
    /// [`crate::OpError::OutOfMemory`] if the query batch cannot be
    /// staged.
    pub fn try_retrieve_all(
        &self,
        keys: &[u32],
    ) -> Result<crate::GetAllResponse, crate::OpError> {
        let (values, stats) = self.retrieve_all_impl(keys)?;
        let report = crate::OpReport::from_kernel(&stats, keys.len() as u64);
        Ok(crate::GetAllResponse { values, report })
    }

    /// Retrieves **all** values stored under each key. Results are
    /// per-key value vectors (order across racing inserts unspecified).
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve_all` — typed `GetAllResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve_all(&self, keys: &[u32]) -> (Vec<Vec<u32>>, KernelStats) {
        self.retrieve_all_impl(keys).expect("multimap scratch")
    }

    fn retrieve_all_impl(
        &self,
        keys: &[u32],
    ) -> Result<(Vec<Vec<u32>>, KernelStats), crate::OpError> {
        let results: Mutex<Vec<Vec<u32>>> = Mutex::new(vec![Vec::new(); keys.len()]);
        let words: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 32).collect();
        let staging = self.dev.alloc_scratch(words.len().max(1))?;
        let input = staging.slice().sub(0, words.len());
        self.dev.mem().h2d(input, &words);

        let table = self.table;
        let prober = self.prober();
        let p_max = self.cfg.p_max;
        let recorder = self.recorder.as_deref();
        let stats = self.dev.launch(
            "multimap_retrieve_all",
            words.len(),
            self.cfg.group_size,
            self.cfg.apply_dispatch(
                LaunchOptions::default()
                    .with_working_set(table.bytes())
                    .with_schedule(self.cfg.schedule),
            ),
            |ctx: &GroupCtx| {
                let invoked = recorder.map(HistoryRecorder::invoke);
                let gid = ctx.group_id();
                let key = key_of(ctx.read_stream(input, gid));
                let g = ctx.size().get();
                // collect (slot, value) and dedupe by slot: chaotic outer
                // jumps may revisit a span, and a slot must count once
                let mut hits: Vec<(usize, u32)> = Vec::new();
                let cap = prober.capacity() as usize;
                'probe: for p in 0..p_max {
                    for q in 0..ctx.size().windows_per_warp() {
                        let base = prober.window_base(key, p, q, g) as usize;
                        let window = ctx.read_window(table, base);
                        for (r, w) in window.iter() {
                            if key_of(w) == key {
                                hits.push((crate::probing::wrap_slot(base, r as usize, cap), value_of(w)));
                            }
                        }
                        if ctx.any(|r| is_empty_slot(window.lane(r))) {
                            break 'probe; // sequence exhausted
                        }
                    }
                }
                hits.sort_unstable_by_key(|h| h.0);
                hits.dedup_by_key(|h| h.0);
                let found: Vec<u32> = hits.into_iter().map(|h| h.1).collect();
                if let (Some(rec), Some(invoked)) = (recorder, invoked) {
                    let mut values = found.clone();
                    values.sort_unstable();
                    rec.complete(
                        key,
                        OpKind::RetrieveAll,
                        OpResponse::FoundAll { values },
                        invoked,
                    );
                }
                // result sizes are variable; materialize host-side and
                // bill the writes as streaming output
                ctx.bill_stream_bytes(8 * found.len().max(1) as u64);
                results.lock()[gid] = found;
            },
        );
        Ok((results.into_inner(), stats))
    }

    /// Number of values stored under one key. Routed through the same
    /// counter/stats path as [`Self::try_retrieve_all`].
    #[must_use]
    pub fn count(&self, key: u32) -> usize {
        self.retrieve_all_impl(&[key]).expect("multimap scratch").0[0].len()
    }

    /// Host-side snapshot of all stored pairs.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(u32, u32)> {
        self.dev
            .mem()
            .d2h(self.table)
            .into_iter()
            .filter(|&w| is_occupied(w))
            .map(|w| (key_of(w), value_of(w)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(capacity: usize) -> GpuMultiMap {
        let dev = Arc::new(Device::with_words(0, capacity * 4 + 64));
        GpuMultiMap::new(dev, capacity, Config::default()).unwrap()
    }

    #[test]
    fn duplicates_accumulate() {
        let m = map(256);
        m.insert_pairs(&[(5, 10), (5, 11), (5, 12), (6, 60)])
            .unwrap();
        assert_eq!(m.len(), 4);
        let res = m.try_retrieve_all(&[5, 6, 7]).unwrap().values;
        let mut v5 = res[0].clone();
        v5.sort_unstable();
        assert_eq!(v5, vec![10, 11, 12]);
        assert_eq!(res[1], vec![60]);
        assert!(res[2].is_empty());
        assert_eq!(m.count(5), 3);
    }

    #[test]
    fn heavy_multiplicity_key() {
        let m = map(1024);
        let pairs: Vec<(u32, u32)> = (0..200).map(|i| (42, i)).collect();
        m.insert_pairs(&pairs).unwrap();
        let res = m.try_retrieve_all(&[42]).unwrap().values;
        let mut vals = res[0].clone();
        vals.sort_unstable();
        assert_eq!(vals, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn fills_to_high_load() {
        let m = map(512);
        let pairs: Vec<(u32, u32)> = (0..486u32).map(|i| (i % 37, i)).collect(); // α = 0.95
        m.insert_pairs(&pairs).unwrap();
        assert!((m.load_factor() - 0.949).abs() < 0.01);
        let res = m.try_retrieve_all(&[0]).unwrap().values;
        assert_eq!(res[0].len(), pairs.iter().filter(|p| p.0 == 0).count());
    }

    #[test]
    fn overfull_map_reports_exhaustion() {
        let m = map(64);
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (1, i)).collect();
        let err = m.insert_pairs(&pairs).unwrap_err();
        match err {
            InsertError::ProbingExhausted { failed } => assert!(failed >= 36),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn snapshot_matches_len() {
        let m = map(128);
        m.insert_pairs(&[(1, 1), (1, 2), (2, 1)]).unwrap();
        assert_eq!(m.snapshot().len() as u64, m.len());
    }
}
