//! The distributed (multi-GPU) hash map — §IV-B's *distributed multisplit
//! transposition* scheme.
//!
//! Each of the `m` devices owns an independent [`GpuHashMap`] holding
//! exactly the keys with `p(k) = i` for the partition hash `p`. Insertion
//! runs the cascade **multisplit → transposition → insert**; retrieval
//! runs **multisplit → transposition → query → transposition (back) →
//! scatter**. Phases are separated by global barriers, so a cascade's
//! time is the sum of per-phase maxima — exactly how the paper accounts
//! Fig. 9–11.
//!
//! Functional data movement between simulated devices is host-mediated
//! (there is only one address space underneath), but it is *billed*
//! through the [`interconnect`] all-to-all model of the Fig. 6 NVLink
//! fabric.

use crate::config::Config;
use crate::entry::{key_of, pack, value_of, EMPTY};
use crate::errors::{BuildError, InsertError};
use crate::map::GpuHashMap;
use crate::stats::{CascadeReport, CascadeStage};
use gpu_sim::{Device, GroupSize, LaunchOptions};
use hashes::PartitionFn;
use interconnect::{alltoall_time, Topology};
use multisplit::{device_multisplit, PartitionTable, SplitResult};
use std::sync::Arc;

/// A hash map distributed over the GPUs of one node.
#[derive(Debug)]
pub struct DistributedHashMap {
    devices: Vec<Arc<Device>>,
    maps: Vec<GpuHashMap>,
    topo: Topology,
    part: PartitionFn,
}

/// Per-GPU data prepared for a cascade (device-resident words).
struct SplitPhase<'g> {
    /// Scratch guards keeping the buffers alive.
    _guards: Vec<gpu_sim::ScratchGuard<'g>>,
    /// Partition-ordered buffers, one per source GPU.
    splits: Vec<SplitResult>,
    /// The m×m partition table.
    table: PartitionTable,
    /// Phase time (max over GPUs).
    time: f64,
}

impl DistributedHashMap {
    /// Builds one local map of `capacity_per_gpu` slots on every device.
    ///
    /// # Errors
    /// Propagates per-device allocation failures.
    ///
    /// # Panics
    /// Panics if `devices` is empty or its length differs from the
    /// topology's GPU count.
    pub fn new(
        devices: Vec<Arc<Device>>,
        capacity_per_gpu: usize,
        cfg: Config,
        topo: Topology,
    ) -> Result<Self, BuildError> {
        assert!(!devices.is_empty(), "need at least one device");
        assert_eq!(
            devices.len(),
            topo.num_gpus,
            "topology must describe exactly the given devices"
        );
        let maps = devices
            .iter()
            .map(|d| GpuHashMap::new(Arc::clone(d), capacity_per_gpu, cfg))
            .collect::<Result<Vec<_>, _>>()?;
        let part = PartitionFn::new(devices.len() as u32, cfg.seed ^ 0x9e37_79b9);
        Ok(Self {
            devices,
            maps,
            topo,
            part,
        })
    }

    /// Number of GPUs.
    #[must_use]
    pub fn num_gpus(&self) -> usize {
        self.devices.len()
    }

    /// The per-GPU maps (read access for stats/verification).
    #[must_use]
    pub fn maps(&self) -> &[GpuHashMap] {
        &self.maps
    }

    /// The node topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The partition function `p(k)` routing keys to GPUs.
    #[must_use]
    pub fn partition(&self) -> &PartitionFn {
        &self.part
    }

    /// Attaches (or detaches) one shared history recorder to every local
    /// map: the union of per-GPU kernel events forms a single history on
    /// the recorder's shared clock, so cross-GPU operations on one key
    /// stay totally ordered in real time. See
    /// [`crate::GpuHashMap::set_recorder`].
    pub fn set_recorder(&mut self, rec: Option<std::sync::Arc<crate::HistoryRecorder>>) {
        for map in &mut self.maps {
            map.set_recorder(rec.clone());
        }
    }

    /// Total live entries over all GPUs.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.maps.iter().map(GpuHashMap::len).sum()
    }

    /// Whether no GPU holds any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate load factor.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        let cap: usize = self.maps.iter().map(GpuHashMap::capacity).sum();
        self.len() as f64 / cap as f64
    }

    // ---- cascades ---------------------------------------------------------

    /// Device-sided insertion cascade: `per_gpu_words[i]` are packed pairs
    /// already resident on GPU `i` (the paper's in-toolchain case where
    /// PCIe is bypassed). Returns the per-phase timing report.
    ///
    /// # Errors
    /// Aggregated probing exhaustion across GPUs; scratch OOM.
    pub fn insert_device_sided(
        &self,
        per_gpu_words: &[Vec<u64>],
    ) -> Result<CascadeReport, InsertError> {
        assert_eq!(per_gpu_words.len(), self.num_gpus(), "one batch per GPU");
        let n_total: u64 = per_gpu_words.iter().map(|v| v.len() as u64).sum();
        let mut report = CascadeReport::new(n_total);

        // Phase 1+2: multisplit and transposition
        let oh = self.devices[0].spec().launch_overhead;
        let split = self.multisplit_phase(per_gpu_words)?;
        // each GPU runs m sequential compaction passes → m launches
        report.push_with_overhead(
            CascadeStage::Multisplit,
            split.time,
            0,
            oh * self.num_gpus() as f64,
        );
        let (recv, recv_guards, transpose) = self.transpose_phase(&split)?;
        report.push(CascadeStage::Transpose, transpose.time, transpose.bytes);

        // Phase 3: local insertion (global barrier → max over GPUs)
        let mut failed = 0u64;
        let mut worst = 0.0f64;
        for (j, words) in recv.iter().enumerate() {
            if words.is_empty() {
                continue;
            }
            let buf = recv_guards[j].slice().sub(0, words.len());
            match self.maps[j].insert_device(buf, words.len()) {
                Ok(outcome) => worst = worst.max(outcome.stats.sim_time),
                Err(InsertError::ProbingExhausted { failed: f }) => failed += f,
                Err(e) => return Err(e),
            }
        }
        report.push_with_overhead(CascadeStage::Insert, worst, 0, oh);
        if failed > 0 {
            return Err(InsertError::ProbingExhausted { failed });
        }
        Ok(report)
    }

    /// Device-sided retrieval cascade. `per_gpu_keys[i]` are the queried
    /// keys resident on GPU `i`; returns per-GPU results *in the original
    /// per-GPU order* plus the timing report.
    #[must_use]
    pub fn retrieve_device_sided(
        &self,
        per_gpu_keys: &[Vec<u32>],
    ) -> (Vec<Vec<Option<u32>>>, CascadeReport) {
        assert_eq!(per_gpu_keys.len(), self.num_gpus(), "one batch per GPU");
        let n_total: u64 = per_gpu_keys.iter().map(|v| v.len() as u64).sum();
        let mut report = CascadeReport::new(n_total);

        // query words carry the origin index in the low 32 bits
        let query_words: Vec<Vec<u64>> = per_gpu_keys
            .iter()
            .map(|keys| {
                keys.iter()
                    .enumerate()
                    .map(|(i, &k)| pack(k, i as u32))
                    .collect()
            })
            .collect();

        let oh = self.devices[0].spec().launch_overhead;
        let split = self
            .multisplit_phase(&query_words)
            .expect("query multisplit scratch");
        report.push_with_overhead(
            CascadeStage::Multisplit,
            split.time,
            0,
            oh * self.num_gpus() as f64,
        );
        let (recv, recv_guards, transpose) = self
            .transpose_phase(&split)
            .expect("query transpose scratch");
        report.push(CascadeStage::Transpose, transpose.time, transpose.bytes);

        // local queries (positional: results[r] answers recv[j][r])
        let mut results: Vec<Vec<u64>> = Vec::with_capacity(self.num_gpus());
        let mut worst = 0.0f64;
        for (j, words) in recv.iter().enumerate() {
            if words.is_empty() {
                results.push(Vec::new());
                continue;
            }
            let dev = &self.devices[j];
            let inp = recv_guards[j].slice().sub(0, words.len());
            let out_guard = dev
                .alloc_scratch(words.len())
                .expect("query output scratch");
            let out = out_guard.slice();
            let stats = self.maps[j].retrieve_device(inp, out, words.len());
            worst = worst.max(stats.sim_time);
            results.push(dev.mem().d2h(out));
        }
        report.push_with_overhead(CascadeStage::Query, worst, 0, oh);

        // transpose back: chunk sizes mirror the forward phase
        let back = alltoall_time(&self.topo, &split.table.transposed().byte_matrix(8));
        report.push(CascadeStage::TransposeBack, back.time, back.bytes);

        // scatter into origin order, billed as one irregular-store kernel
        // per origin GPU
        let mut out: Vec<Vec<Option<u32>>> =
            per_gpu_keys.iter().map(|k| vec![None; k.len()]).collect();
        let recv_offsets = split.table.recv_offsets();
        let mut scatter_worst = 0.0f64;
        for i in 0..self.num_gpus() {
            let mut writes = 0u64;
            // walk GPU i's partition-ordered send buffer class by class,
            // zipping with the results that came back from each target
            for j in 0..self.num_gpus() {
                let send_off = split.splits[i].offsets[j] as usize;
                let count = split.splits[i].counts[j] as usize;
                let sent = self.devices[i]
                    .mem()
                    .d2h(split.splits[i].out.sub(send_off, count));
                let recv_off = recv_offsets[i][j] as usize;
                for (r, &qword) in sent.iter().enumerate() {
                    let origin = value_of(qword) as usize;
                    let resp = results[j][recv_off + r];
                    out[i][origin] = if resp == EMPTY {
                        None
                    } else {
                        debug_assert_eq!(key_of(resp), key_of(qword));
                        Some(value_of(resp))
                    };
                    writes += 1;
                }
            }
            if writes > 0 {
                let stats = self.devices[i].launch(
                    "result_scatter",
                    (writes as usize).div_ceil(32),
                    GroupSize::WARP,
                    LaunchOptions::default(),
                    |ctx| {
                        // 32 streaming reads of (qword, result) pairs; the
                        // stores land in near-origin order (compaction is
                        // order-preserving within a class chunk), so they
                        // are sector-coalesced up to chunk boundaries
                        ctx.bill_stream_bytes(32 * (16 + 8));
                        ctx.bill_transactions(4);
                    },
                );
                scatter_worst = scatter_worst.max(stats.sim_time);
            }
        }
        report.push_with_overhead(CascadeStage::Scatter, scatter_worst, 0, oh);
        (out, report)
    }

    /// Device-sided erase cascade: multisplit → transposition → erase.
    ///
    /// Takes `&mut self` — deletions require the global barrier of §IV-A
    /// on every local map, and exclusive access makes that a compile-time
    /// fact, exactly as in [`GpuHashMap::erase`].
    ///
    /// Returns the number of keys found and tombstoned, plus the timing
    /// report.
    pub fn erase_device_sided(
        &mut self,
        per_gpu_keys: &[Vec<u32>],
    ) -> (u64, CascadeReport) {
        assert_eq!(per_gpu_keys.len(), self.num_gpus(), "one batch per GPU");
        let n_total: u64 = per_gpu_keys.iter().map(|v| v.len() as u64).sum();
        let mut report = CascadeReport::new(n_total);

        let query_words: Vec<Vec<u64>> = per_gpu_keys
            .iter()
            .map(|keys| keys.iter().map(|&k| u64::from(k) << 32).collect())
            .collect();
        let oh = self.devices[0].spec().launch_overhead;
        let split = self
            .multisplit_phase(&query_words)
            .expect("erase multisplit scratch");
        report.push_with_overhead(
            CascadeStage::Multisplit,
            split.time,
            0,
            oh * self.num_gpus() as f64,
        );
        let (recv, recv_guards, transpose) = self
            .transpose_phase(&split)
            .expect("erase transpose scratch");
        report.push(CascadeStage::Transpose, transpose.time, transpose.bytes);

        let mut erased = 0u64;
        let mut worst = 0.0f64;
        for (j, words) in recv.iter().enumerate() {
            if words.is_empty() {
                continue;
            }
            let buf = recv_guards[j].slice().sub(0, words.len());
            let out = self.maps[j].erase_device_shared(buf, words.len());
            erased += out.erased;
            worst = worst.max(out.stats.sim_time);
        }
        report.push_with_overhead(CascadeStage::Query, worst, 0, oh);
        (erased, report)
    }

    /// Host-sided erase: keys travel over PCIe, then the device cascade
    /// runs. Returns the tombstoned count.
    pub fn erase_from_host(&mut self, keys: &[u32]) -> (u64, CascadeReport) {
        let m = self.num_gpus();
        let per = keys.len().div_ceil(m.max(1)).max(1);
        let mut per_gpu: Vec<Vec<u32>> = keys.chunks(per).map(<[u32]>::to_vec).collect();
        per_gpu.resize(m, Vec::new());
        let bytes: Vec<u64> = per_gpu.iter().map(|c| c.len() as u64 * 8).collect();
        let t_h2d = interconnect::h2d_time(&self.topo, &bytes);
        let (erased, device) = self.erase_device_sided(&per_gpu);
        let mut report = CascadeReport::new(keys.len() as u64);
        report.push(CascadeStage::H2D, t_h2d, bytes.iter().sum());
        report.absorb(&CascadeReport {
            stages: device.stages,
            elements: 0,
        });
        (erased, report)
    }

    // ---- phases -----------------------------------------------------------

    /// Uploads each GPU's words and multisplits them by `p(k)`.
    fn multisplit_phase(&self, per_gpu_words: &[Vec<u64>]) -> Result<SplitPhase<'_>, InsertError> {
        let m = self.num_gpus();
        let part = self.part;
        let mut guards = Vec::new();
        let mut splits = Vec::with_capacity(m);
        let mut worst = 0.0f64;
        for (i, words) in per_gpu_words.iter().enumerate() {
            let dev = &self.devices[i];
            let n = words.len();
            // double buffer (Fig. 4: "out-of-place using one double buffer
            // per GPU") plus the aggregation counter
            let guard = dev.alloc_scratch(2 * n.max(1) + 1)?;
            let input = guard.slice().sub(0, n);
            let output = guard.slice().sub(n.max(1), n.max(1));
            let scratch = guard.slice().sub(2 * n.max(1), 1);
            dev.mem().h2d(input, words);
            let res = device_multisplit(dev, input, output, scratch, m, move |w| {
                part.part(key_of(w))
            });
            worst = worst.max(res.stats.sim_time);
            splits.push(res);
            guards.push(guard);
        }
        let table = PartitionTable::new(splits.iter().map(|s| s.counts.clone()).collect());
        Ok(SplitPhase {
            _guards: guards,
            splits,
            table,
            time: worst,
        })
    }

    /// Moves every off-diagonal partition to its target GPU; returns the
    /// received words per target (diagonal chunks included, free) and the
    /// modeled all-to-all time.
    #[allow(clippy::type_complexity)]
    fn transpose_phase<'s>(
        &'s self,
        split: &SplitPhase<'_>,
    ) -> Result<
        (
            Vec<Vec<u64>>,
            Vec<gpu_sim::ScratchGuard<'s>>,
            interconnect::AllToAllReport,
        ),
        InsertError,
    > {
        let m = self.num_gpus();
        let mut recv: Vec<Vec<u64>> = vec![Vec::new(); m];
        #[allow(clippy::needless_range_loop)] // (i, j) walks the square count matrix
        for i in 0..m {
            for j in 0..m {
                let off = split.splits[i].offsets[j] as usize;
                let cnt = split.splits[i].counts[j] as usize;
                let chunk = self.devices[i].mem().d2h(split.splits[i].out.sub(off, cnt));
                recv[j].extend(chunk);
            }
        }
        // land the received words in device memory on their targets
        let mut guards = Vec::with_capacity(m);
        for (j, words) in recv.iter().enumerate() {
            let guard = self.devices[j].alloc_scratch(words.len().max(1))?;
            self.devices[j]
                .mem()
                .h2d(guard.slice().sub(0, words.len()), words);
            guards.push(guard);
        }
        let rep = alltoall_time(&self.topo, &split.table.byte_matrix(8));
        Ok((recv, guards, rep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;

    fn node(m: usize, words_per_dev: usize) -> DistributedHashMap {
        let devices: Vec<Arc<Device>> = (0..m)
            .map(|i| Arc::new(Device::with_words(i, words_per_dev)))
            .collect();
        DistributedHashMap::new(devices, 1024, Config::default(), Topology::p100_quad(m)).unwrap()
    }

    fn spread(pairs: &[(u32, u32)], m: usize) -> Vec<Vec<u64>> {
        // unstructured distribution: equal contiguous chunks
        let per = pairs.len().div_ceil(m);
        (0..m)
            .map(|i| {
                pairs
                    .iter()
                    .skip(i * per)
                    .take(per)
                    .map(|&(k, v)| pack(k, v))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn insert_routes_keys_to_their_partition() {
        let d = node(4, 1 << 16);
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 7 + 1, i)).collect();
        let report = d.insert_device_sided(&spread(&pairs, 4)).unwrap();
        assert_eq!(d.len(), 2000);
        // every key lives on the GPU its partition function names
        for (j, map) in d.maps().iter().enumerate() {
            for (k, _) in map.snapshot() {
                assert_eq!(d.partition().part(k) as usize, j, "key {k} misplaced");
            }
        }
        // cascade has the three phases in order
        assert_eq!(report.stages.len(), 3);
        assert!(report.total_time() > 0.0);
    }

    #[test]
    fn retrieve_round_trips_in_origin_order() {
        let d = node(4, 1 << 16);
        let pairs: Vec<(u32, u32)> = (0..1500u32).map(|i| (i * 3 + 5, i + 100)).collect();
        d.insert_device_sided(&spread(&pairs, 4)).unwrap();

        // query from a *different* unstructured spread, with misses mixed in
        let mut keys: Vec<Vec<u32>> = vec![
            pairs[0..500].iter().map(|p| p.0).collect(),
            pairs[500..900].iter().map(|p| p.0).collect(),
            vec![4_000_000_000, 4_000_000_001], // absent
            pairs[900..].iter().map(|p| p.0).collect(),
        ];
        keys[2].push(pairs[42].0); // present key on the "miss" GPU
        let (results, report) = d.retrieve_device_sided(&keys);

        let lookup: std::collections::HashMap<u32, u32> = pairs.iter().copied().collect();
        for (g, gpu_keys) in keys.iter().enumerate() {
            for (i, k) in gpu_keys.iter().enumerate() {
                assert_eq!(results[g][i], lookup.get(k).copied(), "gpu {g} idx {i}");
            }
        }
        // five phases: MST, T, Q, T back, scatter
        assert_eq!(report.stages.len(), 5);
        assert!(report.time_of(CascadeStage::TransposeBack) > 0.0);
    }

    #[test]
    fn single_gpu_node_skips_communication_cost() {
        let d = node(1, 1 << 16);
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i + 1, i)).collect();
        let report = d.insert_device_sided(&spread(&pairs, 1)).unwrap();
        // m = 1: the all-to-all moves zero bytes
        assert_eq!(report.time_of(CascadeStage::Transpose), 0.0);
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn duplicate_keys_update_across_gpus() {
        let d = node(2, 1 << 16);
        let first: Vec<Vec<u64>> = vec![vec![pack(77, 1)], vec![pack(77, 2)]];
        d.insert_device_sided(&first).unwrap();
        // both packed words target the same GPU and key; last writer wins
        // nondeterministically — but exactly one value must be stored
        assert_eq!(d.len(), 1);
        let (res, _) = d.retrieve_device_sided(&[vec![77], vec![]]);
        let v = res[0][0].unwrap();
        assert!(v == 1 || v == 2, "got {v}");
    }

    #[test]
    fn load_factor_aggregates() {
        let d = node(2, 1 << 16);
        assert!(d.is_empty());
        let pairs: Vec<(u32, u32)> = (0..1024u32).map(|i| (i * 11 + 3, i)).collect();
        d.insert_device_sided(&spread(&pairs, 2)).unwrap();
        assert!((d.load_factor() - 0.5).abs() < 0.01);
    }
}

#[cfg(test)]
mod erase_tests {
    use super::*;
    use gpu_sim::Device;

    fn node(m: usize) -> DistributedHashMap {
        let devices: Vec<Arc<Device>> = (0..m)
            .map(|i| Arc::new(Device::with_words(i, 1 << 16)))
            .collect();
        DistributedHashMap::new(devices, 2048, Config::default(), Topology::p100_quad(m)).unwrap()
    }

    #[test]
    fn erase_cascade_removes_exactly_the_victims() {
        let mut d = node(4);
        let pairs: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 5 + 2, i)).collect();
        d.insert_from_host(&pairs).unwrap();
        let victims: Vec<u32> = pairs.iter().step_by(3).map(|p| p.0).collect();
        let (erased, report) = d.erase_from_host(&victims);
        assert_eq!(erased as usize, victims.len());
        assert_eq!(d.len() as usize, pairs.len() - victims.len());
        assert!(report.time_of(CascadeStage::H2D) > 0.0);
        // survivors answer, victims do not
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let (res, _) = d.retrieve_from_host(&keys);
        for (i, r) in res.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*r, None, "victim {} survived", keys[i]);
            } else {
                assert_eq!(*r, Some(pairs[i].1), "survivor {} lost", keys[i]);
            }
        }
    }

    #[test]
    fn erase_of_absent_keys_reports_zero() {
        let mut d = node(2);
        d.insert_from_host(&[(1, 10), (2, 20)]).unwrap();
        let (erased, _) = d.erase_from_host(&[100, 200, 300]);
        assert_eq!(erased, 0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn erase_then_reinsert_round_trips() {
        let mut d = node(2);
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i + 1, i)).collect();
        d.insert_from_host(&pairs).unwrap();
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let (erased, _) = d.erase_from_host(&keys);
        assert_eq!(erased, 500);
        assert!(d.is_empty());
        // reinsert over the tombstones
        d.insert_from_host(&pairs).unwrap();
        assert_eq!(d.len(), 500);
        let (res, _) = d.retrieve_from_host(&keys);
        assert!(res.iter().all(Option::is_some));
    }
}
