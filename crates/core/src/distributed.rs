//! The distributed (multi-GPU) hash map — §IV-B's *distributed multisplit
//! transposition* scheme.
//!
//! Each of the `m` devices owns an independent [`GpuHashMap`] holding
//! exactly the keys with `p(k) = i` for the partition hash `p`. Insertion
//! runs the cascade **multisplit → transposition → insert**; retrieval
//! runs **multisplit → transposition → query → transposition (back) →
//! scatter**. Phases are separated by global barriers, so a cascade's
//! time is the sum of per-phase maxima — exactly how the paper accounts
//! Fig. 9–11.
//!
//! Functional data movement between simulated devices is host-mediated
//! (there is only one address space underneath), but it is *billed*
//! through the [`interconnect`] all-to-all model of the Fig. 6 NVLink
//! fabric.
//!
//! ## Fault injection and graceful degradation
//!
//! Every cascade consults the map's [`gpu_sim::FaultPlan`] (from
//! [`Config::fault`], overridable via
//! [`DistributedHashMap::set_fault_plan`]): kernel launches may fail
//! transiently, transfers may drop, links may be degraded and devices may
//! straggle or die. Failures are retried idempotently with the
//! exponential backoff of [`gpu_sim::RetryPolicy`]; a GPU that exhausts
//! its budget is **quarantined** — its partition is re-split across the
//! survivors (see [`crate::chaos::Router`]) and the cascade restarts,
//! re-applying its batch. Re-application is safe because phases that
//! mutate table state come last and single-map inserts are idempotent
//! (duplicate keys update in place). With a disarmed plan every code
//! path, billed counter and reported time is byte-identical to the
//! pre-chaos implementation.

use crate::chaos::{launch_site, straggled, ChaosState, Router};
use crate::config::Config;
use crate::entry::{key_of, pack, value_of, EMPTY};
use crate::errors::{BuildError, InsertError};
use crate::history::{OpKind, OpResponse};
use crate::map::GpuHashMap;
use crate::service::{OpError, OpReport, PerGpuDeleteResponse, PerGpuGetResponse, PutResponse};
use crate::stats::{CascadeReport, CascadeStage, DegradedStats};
use gpu_sim::{Device, FaultPlan, GroupSize, LaunchOptions, RetryPolicy};
use hashes::PartitionFn;
use interconnect::{alltoall_time_faulted, Topology, TransferError};
use multisplit::{device_multisplit, PartitionTable, SplitResult};
use parking_lot::RwLock;
use std::sync::Arc;

/// Per-GPU retrieval results (in the original per-GPU order) plus the
/// cascade's timing report.
type PerGpuRetrieve = (Vec<Vec<Option<u32>>>, CascadeReport);

/// A hash map distributed over the GPUs of one node.
#[derive(Debug)]
pub struct DistributedHashMap {
    devices: Vec<Arc<Device>>,
    maps: Vec<GpuHashMap>,
    topo: Topology,
    part: PartitionFn,
    fallback: PartitionFn,
    cfg: Config,
    chaos: RwLock<ChaosState>,
}

/// Per-GPU data prepared for a cascade (device-resident words).
struct SplitPhase<'g> {
    /// Scratch guards keeping the buffers alive.
    _guards: Vec<gpu_sim::ScratchGuard<'g>>,
    /// Partition-ordered buffers, one per source GPU.
    splits: Vec<SplitResult>,
    /// The m×m partition table.
    table: PartitionTable,
    /// Phase time (max over GPUs).
    time: f64,
}

/// Why a cascade round stopped early.
enum Abort {
    /// `device` exhausted its retry budget: quarantine it and restart.
    Lost(usize),
    /// Unrecoverable (probing exhaustion, scratch OOM): propagate.
    Fatal(InsertError),
}

/// Per-round fault accounting, merged into [`DegradedStats`] at round end.
#[derive(Default)]
struct ChaosTally {
    launch_retries: u64,
    transfer_retries: u64,
    backoff: f64,
}

/// Books the attempts of a budget-exhausted transfer into the tally: the
/// failing edge made `attempts - 1` retries with backoff before each, and
/// that work happened even though the phase then aborted.
fn tally_exhausted_transfer(tally: &mut ChaosTally, policy: &RetryPolicy, e: TransferError) {
    let r = e.attempts.saturating_sub(1);
    tally.transfer_retries += u64::from(r);
    for a in 1..=r {
        tally.backoff += policy.backoff_before(a);
    }
}

/// Rolls the transient launch-failure dice for one kernel site, billing
/// exponential backoff between retried failures into `tally`. `Err` once
/// the retry budget is exhausted.
fn gate_launch(
    plan: &FaultPlan,
    policy: &RetryPolicy,
    device: usize,
    site: u64,
    tally: &mut ChaosTally,
) -> Result<(), usize> {
    let mut attempt = 0u32;
    let mut spent = 0.0f64;
    while plan.launch_fails(device, site, attempt) {
        attempt += 1;
        if !policy.may_retry(attempt, spent) {
            tally.backoff += spent;
            return Err(device);
        }
        spent += policy.backoff_before(attempt);
        tally.launch_retries += 1;
    }
    tally.backoff += spent;
    Ok(())
}

impl DistributedHashMap {
    /// Builds one local map of `capacity_per_gpu` slots on every device.
    ///
    /// # Errors
    /// Propagates per-device allocation failures.
    ///
    /// # Panics
    /// Panics if `devices` is empty or its length differs from the
    /// topology's GPU count.
    pub fn new(
        devices: Vec<Arc<Device>>,
        capacity_per_gpu: usize,
        cfg: Config,
        topo: Topology,
    ) -> Result<Self, BuildError> {
        assert!(!devices.is_empty(), "need at least one device");
        assert_eq!(
            devices.len(),
            topo.num_gpus,
            "topology must describe exactly the given devices"
        );
        let maps = devices
            .iter()
            .map(|d| GpuHashMap::new(Arc::clone(d), capacity_per_gpu, cfg))
            .collect::<Result<Vec<_>, _>>()?;
        let part = PartitionFn::new(devices.len() as u32, cfg.seed ^ 0x9e37_79b9);
        let fallback = PartitionFn::new(devices.len() as u32, cfg.seed ^ 0x51f7_ba11);
        let chaos = RwLock::new(ChaosState::new(cfg.fault));
        Ok(Self {
            devices,
            maps,
            topo,
            part,
            fallback,
            cfg,
            chaos,
        })
    }

    /// Number of GPUs.
    #[must_use]
    pub fn num_gpus(&self) -> usize {
        self.devices.len()
    }

    /// The per-GPU maps (read access for stats/verification). Note that a
    /// quarantined GPU's map retains a stale pre-migration copy of its
    /// entries; use [`DistributedHashMap::live_snapshot`] for the
    /// authoritative contents.
    #[must_use]
    pub fn maps(&self) -> &[GpuHashMap] {
        &self.maps
    }

    /// The node topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The partition function `p(k)` routing keys to GPUs (healthy-path
    /// routing; see [`DistributedHashMap::router`] for the fault-aware
    /// view).
    #[must_use]
    pub fn partition(&self) -> &PartitionFn {
        &self.part
    }

    /// The fault-aware router under the current quarantine mask. With no
    /// quarantined GPU this routes identically to
    /// [`DistributedHashMap::partition`].
    #[must_use]
    pub fn router(&self) -> Router {
        self.router_for(self.chaos.read().mask)
    }

    /// Attaches (or detaches) one shared history recorder to every local
    /// map: the union of per-GPU kernel events forms a single history on
    /// the recorder's shared clock, so cross-GPU operations on one key
    /// stay totally ordered in real time. See
    /// [`crate::GpuHashMap::set_recorder`].
    pub fn set_recorder(&mut self, rec: Option<std::sync::Arc<crate::HistoryRecorder>>) {
        for map in &mut self.maps {
            map.set_recorder(rec.clone());
        }
    }

    /// Total live entries over all non-quarantined GPUs.
    #[must_use]
    pub fn len(&self) -> u64 {
        let mask = self.chaos.read().mask;
        self.maps
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .map(|(_, m)| m.len())
            .sum()
    }

    /// Whether no live GPU holds any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate load factor over the live GPUs.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        let mask = self.chaos.read().mask;
        let cap: usize = self
            .maps
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .map(|(_, m)| m.capacity())
            .sum();
        self.len() as f64 / cap as f64
    }

    // ---- dynamic tables ---------------------------------------------------

    /// Grows every live (non-quarantined) GPU's local table, driving each
    /// migration to completion before returning: the device-sided
    /// cascades address one fixed table per GPU, so the distributed map
    /// never exposes a mid-migration local. Growth is per-GPU and
    /// independent — the partition function is capacity-independent, so
    /// no key ever moves between GPUs during a resize and per-partition
    /// key conservation holds trivially. Returns whether any table grew.
    ///
    /// # Errors
    /// Target-allocation failure or migration-insert failure on any GPU;
    /// already-resized GPUs keep their new tables (retry is safe).
    pub fn request_grow(&mut self) -> Result<bool, OpError> {
        self.resize_locals(crate::ResizeMode::Grow)
    }

    /// Compacts every live GPU's local table at unchanged capacity
    /// (tombstone purge), run to completion like
    /// [`Self::request_grow`]. Returns whether any table was compacted.
    ///
    /// # Errors
    /// Same contract as [`Self::request_grow`].
    pub fn request_compact(&mut self) -> Result<bool, OpError> {
        self.resize_locals(crate::ResizeMode::Compact)
    }

    fn resize_locals(&mut self, mode: crate::ResizeMode) -> Result<bool, OpError> {
        let mask = self.chaos.read().mask;
        let mut any = false;
        for (j, map) in self.maps.iter_mut().enumerate() {
            if mask & (1 << j) != 0 {
                continue; // quarantined: drained into survivors already
            }
            let started = match mode {
                crate::ResizeMode::Grow => map.request_grow()?,
                crate::ResizeMode::Compact => map.request_compact()?,
            };
            map.finish_resize()?;
            debug_assert!(map.resize_state() == crate::ResizeState::Stable);
            any |= started;
        }
        Ok(any)
    }

    /// Aggregate slot occupancy over the live (non-quarantined) GPUs.
    #[must_use]
    pub fn occupancy_split(&self) -> crate::Occupancy {
        let mask = self.chaos.read().mask;
        self.maps
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .fold(crate::Occupancy::default(), |acc, (_, m)| {
                let o = m.occupancy_split();
                crate::Occupancy {
                    live: acc.live + o.live,
                    tombstones: acc.tombstones + o.tombstones,
                    capacity: acc.capacity + o.capacity,
                }
            })
    }

    // ---- chaos control ----------------------------------------------------

    /// Replaces the active fault plan at runtime (e.g. to kill a GPU
    /// mid-run). Quarantine state and degraded-mode stats persist across
    /// plan changes.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.chaos.write().plan = plan;
    }

    /// The active fault plan.
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        self.chaos.read().plan
    }

    /// The retry/backoff policy governing fault recovery.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.cfg.retry
    }

    /// Indices of quarantined GPUs, ascending.
    #[must_use]
    pub fn quarantined(&self) -> Vec<usize> {
        let mask = self.chaos.read().mask;
        (0..self.num_gpus()).filter(|&g| mask & (1 << g) != 0).collect()
    }

    /// Degraded-mode counters accumulated so far (all-zero on healthy
    /// runs).
    #[must_use]
    pub fn degraded_stats(&self) -> DegradedStats {
        self.chaos.read().stats
    }

    /// Host-side snapshot of every live (non-quarantined) GPU's entries.
    #[must_use]
    pub fn live_snapshot(&self) -> Vec<(u32, u32)> {
        let mask = self.chaos.read().mask;
        self.maps
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) == 0)
            .flat_map(|(_, m)| m.snapshot())
            .collect()
    }

    /// Replay string reproducing this map's fault decisions and kernel
    /// schedule: `WD_FAULT=… WD_FAULT_SEED=…` composed with the
    /// `WD_SCHED_*` hints. Print it with every chaos failure.
    #[must_use]
    pub fn replay_hint(&self) -> String {
        self.chaos.read().plan.replay_hint_with(self.cfg.schedule)
    }

    pub(crate) fn chaos_snapshot(&self) -> (FaultPlan, u32) {
        let st = self.chaos.read();
        (st.plan, st.mask)
    }

    /// Books `retries`/`backoff` from a host-link transfer into the
    /// degraded-mode counters (no-op when both are zero).
    pub(crate) fn note_transfer_chaos(&self, retries: u32, backoff: f64) {
        self.note_chaos(&ChaosTally {
            launch_retries: 0,
            transfer_retries: u64::from(retries),
            backoff,
        });
    }

    /// Quarantines the device a failed transfer condemns (see
    /// [`Self::blame`]).
    pub(crate) fn quarantine_blamed(
        &self,
        plan: &FaultPlan,
        e: TransferError,
    ) -> Result<(), InsertError> {
        self.quarantine(Self::blame(plan, e))
    }

    fn router_for(&self, mask: u32) -> Router {
        Router::new(self.part, self.fallback, mask)
    }

    fn note_chaos(&self, t: &ChaosTally) {
        if t.launch_retries == 0 && t.transfer_retries == 0 && t.backoff == 0.0 {
            return;
        }
        let mut st = self.chaos.write();
        st.stats.launch_retries += t.launch_retries;
        st.stats.transfer_retries += t.transfer_retries;
        st.stats.backoff_time += t.backoff;
    }

    /// Which device a failed transfer condemns: the source if the plan
    /// has killed it, otherwise the destination (a host-link failure has
    /// `src == dst`, so the distinction only matters for NVLink edges).
    fn blame(plan: &FaultPlan, e: TransferError) -> usize {
        if plan.device_lost(e.src) {
            e.src
        } else {
            e.dst
        }
    }

    /// Quarantines GPU `j`: marks it dead and re-splits its partition
    /// across the survivors via the fallback hash (graceful degradation).
    /// With the `broken_forget_quarantined_partition` mutation double the
    /// re-split is skipped, losing the shard — the chaos suite proves it
    /// catches that.
    ///
    /// # Errors
    /// [`InsertError::DeviceLost`] if no survivor remains, and migration
    /// insert failures (e.g. probing exhaustion on an overloaded
    /// survivor).
    fn quarantine(&self, j: usize) -> Result<(), InsertError> {
        {
            let mut st = self.chaos.write();
            if st.mask & (1 << j) != 0 {
                return Ok(());
            }
            let any_survivor = (0..self.num_gpus())
                .any(|g| g != j && st.mask & (1 << g) == 0);
            if !any_survivor {
                return Err(InsertError::DeviceLost { device: j });
            }
            st.mask |= 1 << j;
            st.stats.quarantined += 1;
            st.stats.repartitions += 1;
        }
        if self.cfg.broken_forget_quarantined_partition {
            // BROKEN (mutation double): the quarantined shard is dropped.
            return Ok(());
        }
        let pairs = self.maps[j].snapshot();
        if pairs.is_empty() {
            return Ok(());
        }
        // The migration re-inserts are logically *moves*: record a
        // synthetic erase per key first so a shared history stays
        // linearizable (erase → re-insert, totally ordered on the
        // recorder's clock).
        if let Some(rec) = self.maps[j].recorder() {
            for &(k, _) in &pairs {
                let t = rec.invoke();
                rec.complete(k, OpKind::Erase, OpResponse::Erased { hit: true }, t);
            }
        }
        let router = self.router();
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.num_gpus()];
        for (k, v) in pairs {
            buckets[router.route(k) as usize].push((k, v));
        }
        let mut migrated = 0u64;
        for (t, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            self.maps[t].insert_pairs(bucket)?;
            migrated += bucket.len() as u64;
        }
        self.chaos.write().stats.migrated_keys += migrated;
        Ok(())
    }

    /// Re-spreads words assigned to quarantined GPUs round-robin over the
    /// live ones (a dead GPU cannot host its cascade input).
    fn respread_words(&self, per_gpu: &[Vec<u64>], mask: u32) -> Vec<Vec<u64>> {
        let m = self.num_gpus();
        let live: Vec<usize> = (0..m).filter(|&g| mask & (1 << g) == 0).collect();
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); m];
        let mut rr = 0usize;
        for (i, words) in per_gpu.iter().enumerate() {
            if mask & (1 << i) == 0 {
                out[i].extend_from_slice(words);
            } else {
                for &w in words {
                    out[live[rr % live.len()]].push(w);
                    rr += 1;
                }
            }
        }
        out
    }

    /// [`Self::respread_words`] for retrieval keys, tracking each
    /// effective slot's `(origin GPU, origin index)` so results return in
    /// the caller's order.
    #[allow(clippy::type_complexity)]
    fn respread_keys(
        &self,
        per_gpu_keys: &[Vec<u32>],
        mask: u32,
    ) -> (Vec<Vec<u32>>, Vec<Vec<(usize, usize)>>) {
        let m = self.num_gpus();
        let live: Vec<usize> = (0..m).filter(|&g| mask & (1 << g) == 0).collect();
        let mut eff: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut origin: Vec<Vec<(usize, usize)>> = vec![Vec::new(); m];
        let mut rr = 0usize;
        for (i, keys) in per_gpu_keys.iter().enumerate() {
            for (idx, &k) in keys.iter().enumerate() {
                let g = if mask & (1 << i) == 0 {
                    i
                } else {
                    let g = live[rr % live.len()];
                    rr += 1;
                    g
                };
                eff[g].push(k);
                origin[g].push((i, idx));
            }
        }
        (eff, origin)
    }

    // ---- cascades ---------------------------------------------------------

    /// Device-sided insertion cascade: `per_gpu_words[i]` are packed pairs
    /// already resident on GPU `i` (the paper's in-toolchain case where
    /// PCIe is bypassed). Returns the per-phase timing report.
    ///
    /// Under an armed fault plan the cascade retries transient failures
    /// with backoff, quarantines GPUs that exhaust their budget (their
    /// input re-spreads over the survivors) and restarts; wasted attempts
    /// stay billed in the report, with backoff in its own
    /// [`CascadeStage::Backoff`] stage.
    ///
    /// # Errors
    /// Aggregated probing exhaustion across GPUs; scratch OOM;
    /// [`InsertError::DeviceLost`] once no survivor remains.
    pub fn insert_device_sided(
        &self,
        per_gpu_words: &[Vec<u64>],
    ) -> Result<CascadeReport, InsertError> {
        assert_eq!(per_gpu_words.len(), self.num_gpus(), "one batch per GPU");
        let n_total: u64 = per_gpu_words.iter().map(|v| v.len() as u64).sum();
        let mut report = CascadeReport::new(n_total);
        let policy = self.cfg.retry;
        for _round in 0..=self.num_gpus() {
            let (plan, mask) = self.chaos_snapshot();
            let respread;
            let words: &[Vec<u64>] = if mask == 0 {
                per_gpu_words
            } else {
                respread = self.respread_words(per_gpu_words, mask);
                &respread
            };
            let router = self.router_for(mask);
            match self.insert_cascade_once(words, &router, &plan, &policy, &mut report) {
                Ok(()) => return Ok(report),
                Err(Abort::Lost(j)) => self.quarantine(j)?,
                Err(Abort::Fatal(e)) => return Err(e),
            }
        }
        Err(InsertError::Internal {
            detail: "every failed round quarantines one GPU; at most m rounds",
        })
    }

    /// One insertion round under a fixed router/plan snapshot.
    fn insert_cascade_once(
        &self,
        per_gpu_words: &[Vec<u64>],
        router: &Router,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        report: &mut CascadeReport,
    ) -> Result<(), Abort> {
        let oh = self.devices[0].spec().launch_overhead;
        let mut tally = ChaosTally::default();
        let res = self.insert_round(per_gpu_words, router, plan, policy, report, oh, &mut tally);
        if tally.backoff > 0.0 {
            report.push(CascadeStage::Backoff, tally.backoff, 0);
        }
        self.note_chaos(&tally);
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_round(
        &self,
        per_gpu_words: &[Vec<u64>],
        router: &Router,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        report: &mut CascadeReport,
        oh: f64,
        tally: &mut ChaosTally,
    ) -> Result<(), Abort> {
        // Phase 1+2: multisplit and transposition
        let split = self.multisplit_phase(per_gpu_words, router, plan, policy, tally)?;
        // each GPU runs m sequential compaction passes → m launches
        report.push_with_overhead(
            CascadeStage::Multisplit,
            split.time,
            0,
            oh * self.num_gpus() as f64,
        );
        let transpose = alltoall_time_faulted(&self.topo, &split.table.byte_matrix(8), plan, policy)
            .map_err(|e| {
                tally_exhausted_transfer(tally, policy, e);
                Abort::Lost(Self::blame(plan, e))
            })?;
        tally.transfer_retries += u64::from(transpose.retries);
        tally.backoff += transpose.backoff;
        let (recv, recv_guards) = self.transpose_move(&split).map_err(Abort::Fatal)?;
        report.push(CascadeStage::Transpose, transpose.time, transpose.bytes);

        // Phase 3: local insertion (global barrier → max over GPUs)
        let mut failed = 0u64;
        let mut worst = 0.0f64;
        for (j, words) in recv.iter().enumerate() {
            if words.is_empty() {
                continue;
            }
            // transient launch-failure gate (inlined so the
            // premature-failover mutation double can hook the retry path)
            let mut attempt = 0u32;
            let mut spent = 0.0f64;
            while plan.launch_fails(j, launch_site::INSERT, attempt) {
                attempt += 1;
                if !policy.may_retry(attempt, spent) {
                    tally.backoff += spent;
                    return Err(Abort::Lost(j));
                }
                spent += policy.backoff_before(attempt);
                tally.launch_retries += 1;
                if self.cfg.broken_double_apply_on_retry && attempt == 1 {
                    // BROKEN (mutation double): premature failover without
                    // the idempotence guard — the sub-batch is applied to
                    // its failover targets although the primary is still
                    // being retried (and will succeed), duplicating keys.
                    self.double_apply(words, j, router);
                }
            }
            tally.backoff += spent;
            let buf = recv_guards[j].slice().sub(0, words.len());
            match self.maps[j].insert_device(buf, words.len()) {
                Ok(outcome) => {
                    worst = worst.max(straggled(plan, j, outcome.stats.sim_time));
                }
                Err(InsertError::ProbingExhausted { failed: f }) => failed += f,
                Err(e) => return Err(Abort::Fatal(e)),
            }
        }
        report.push_with_overhead(CascadeStage::Insert, worst, 0, oh);
        if failed > 0 {
            return Err(Abort::Fatal(InsertError::ProbingExhausted { failed }));
        }
        Ok(())
    }

    /// The premature-failover body of the `broken_double_apply_on_retry`
    /// mutation double.
    fn double_apply(&self, words: &[u64], j: usize, router: &Router) {
        let Some(fb) = router.also_masking(j) else {
            return;
        };
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.num_gpus()];
        for &w in words {
            buckets[fb.route(key_of(w)) as usize].push((key_of(w), value_of(w)));
        }
        for (t, bucket) in buckets.iter().enumerate() {
            if !bucket.is_empty() {
                let _ = self.maps[t].insert_pairs(bucket);
            }
        }
    }

    /// Device-sided retrieval cascade. `per_gpu_keys[i]` are the queried
    /// keys resident on GPU `i`; returns per-GPU results *in the original
    /// per-GPU order* plus the timing report.
    ///
    /// # Panics
    /// Panics (with the replay hint) if fault injection exhausts every
    /// failover avenue; use
    /// [`DistributedHashMap::try_retrieve_device_sided`] for the typed
    /// error.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_retrieve_device_sided` — typed `PerGpuGetResponse` carrying an `OpReport`"
    )]
    #[must_use]
    pub fn retrieve_device_sided(
        &self,
        per_gpu_keys: &[Vec<u32>],
    ) -> (Vec<Vec<Option<u32>>>, CascadeReport) {
        match self.retrieve_device_sided_impl(per_gpu_keys) {
            Ok(out) => out,
            Err(e) => panic!("retrieve failed: {e}; replay: {}", self.replay_hint()),
        }
    }

    /// Device-sided retrieval with typed fault errors, returning the
    /// per-GPU results *in the original per-GPU order* plus a unified
    /// [`OpReport`]. Retrieval is pure, so fault recovery restarts the
    /// whole cascade after quarantining the culprit; queries addressed to
    /// quarantined GPUs re-spread over the survivors with their origin
    /// tracked, so result order is unaffected.
    ///
    /// # Errors
    /// [`OpError`] once every failover avenue is exhausted.
    pub fn try_retrieve_device_sided(
        &self,
        per_gpu_keys: &[Vec<u32>],
    ) -> Result<PerGpuGetResponse, OpError> {
        let (values, report) = self.retrieve_device_sided_impl(per_gpu_keys)?;
        Ok(PerGpuGetResponse {
            values,
            report: OpReport::from_cascade(&report),
        })
    }

    pub(crate) fn retrieve_device_sided_impl(
        &self,
        per_gpu_keys: &[Vec<u32>],
    ) -> Result<PerGpuRetrieve, OpError> {
        assert_eq!(per_gpu_keys.len(), self.num_gpus(), "one batch per GPU");
        let n_total: u64 = per_gpu_keys.iter().map(|v| v.len() as u64).sum();
        let mut report = CascadeReport::new(n_total);
        let policy = self.cfg.retry;
        for _round in 0..=self.num_gpus() {
            let (plan, mask) = self.chaos_snapshot();
            let (eff, origin) = self.respread_keys(per_gpu_keys, mask);
            let router = self.router_for(mask);
            match self.retrieve_cascade_once(&eff, &router, &plan, &policy, &mut report) {
                Ok(eff_results) => {
                    let mut out: Vec<Vec<Option<u32>>> =
                        per_gpu_keys.iter().map(|k| vec![None; k.len()]).collect();
                    for (g, res) in eff_results.into_iter().enumerate() {
                        for (idx, r) in res.into_iter().enumerate() {
                            let (oi, oidx) = origin[g][idx];
                            out[oi][oidx] = r;
                        }
                    }
                    return Ok((out, report));
                }
                Err(Abort::Lost(j)) => self.quarantine(j)?,
                Err(Abort::Fatal(e)) => return Err(e.into()),
            }
        }
        Err(OpError::Internal {
            detail: "every failed round quarantines one GPU; at most m rounds",
        })
    }

    /// One retrieval round; results are in effective (re-spread) order.
    fn retrieve_cascade_once(
        &self,
        per_gpu_keys: &[Vec<u32>],
        router: &Router,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        report: &mut CascadeReport,
    ) -> Result<Vec<Vec<Option<u32>>>, Abort> {
        let mut tally = ChaosTally::default();
        let res =
            self.retrieve_round(per_gpu_keys, router, plan, policy, report, &mut tally);
        if tally.backoff > 0.0 {
            report.push(CascadeStage::Backoff, tally.backoff, 0);
        }
        self.note_chaos(&tally);
        res
    }

    fn retrieve_round(
        &self,
        per_gpu_keys: &[Vec<u32>],
        router: &Router,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        report: &mut CascadeReport,
        tally: &mut ChaosTally,
    ) -> Result<Vec<Vec<Option<u32>>>, Abort> {
        // query words carry the origin index in the low 32 bits
        let query_words: Vec<Vec<u64>> = per_gpu_keys
            .iter()
            .map(|keys| {
                keys.iter()
                    .enumerate()
                    .map(|(i, &k)| pack(k, i as u32))
                    .collect()
            })
            .collect();

        let oh = self.devices[0].spec().launch_overhead;
        let split = self.multisplit_phase(&query_words, router, plan, policy, tally)?;
        report.push_with_overhead(
            CascadeStage::Multisplit,
            split.time,
            0,
            oh * self.num_gpus() as f64,
        );
        let transpose = alltoall_time_faulted(&self.topo, &split.table.byte_matrix(8), plan, policy)
            .map_err(|e| {
                tally_exhausted_transfer(tally, policy, e);
                Abort::Lost(Self::blame(plan, e))
            })?;
        tally.transfer_retries += u64::from(transpose.retries);
        tally.backoff += transpose.backoff;
        let (recv, recv_guards) = self.transpose_move(&split).map_err(Abort::Fatal)?;
        report.push(CascadeStage::Transpose, transpose.time, transpose.bytes);

        // local queries (positional: results[r] answers recv[j][r])
        let mut results: Vec<Vec<u64>> = Vec::with_capacity(self.num_gpus());
        let mut worst = 0.0f64;
        for (j, words) in recv.iter().enumerate() {
            if words.is_empty() {
                results.push(Vec::new());
                continue;
            }
            gate_launch(plan, policy, j, launch_site::QUERY, tally).map_err(Abort::Lost)?;
            let dev = &self.devices[j];
            let inp = recv_guards[j].slice().sub(0, words.len());
            let out_guard = dev
                .alloc_scratch(words.len())
                .expect("query output scratch");
            let out = out_guard.slice();
            let stats = self.maps[j].retrieve_device(inp, out, words.len());
            worst = worst.max(straggled(plan, j, stats.sim_time));
            results.push(dev.mem().d2h(out));
        }
        report.push_with_overhead(CascadeStage::Query, worst, 0, oh);

        // transpose back: chunk sizes mirror the forward phase
        let back = alltoall_time_faulted(
            &self.topo,
            &split.table.transposed().byte_matrix(8),
            plan,
            policy,
        )
        .map_err(|e| {
            tally_exhausted_transfer(tally, policy, e);
            Abort::Lost(Self::blame(plan, e))
        })?;
        tally.transfer_retries += u64::from(back.retries);
        tally.backoff += back.backoff;
        report.push(CascadeStage::TransposeBack, back.time, back.bytes);

        // scatter into origin order, billed as one irregular-store kernel
        // per origin GPU
        let mut out: Vec<Vec<Option<u32>>> =
            per_gpu_keys.iter().map(|k| vec![None; k.len()]).collect();
        let recv_offsets = split.table.recv_offsets();
        let mut scatter_worst = 0.0f64;
        for i in 0..self.num_gpus() {
            let mut writes = 0u64;
            // walk GPU i's partition-ordered send buffer class by class,
            // zipping with the results that came back from each target
            for j in 0..self.num_gpus() {
                let send_off = split.splits[i].offsets[j] as usize;
                let count = split.splits[i].counts[j] as usize;
                let sent = self.devices[i]
                    .mem()
                    .d2h(split.splits[i].out.sub(send_off, count));
                let recv_off = recv_offsets[i][j] as usize;
                for (r, &qword) in sent.iter().enumerate() {
                    let origin = value_of(qword) as usize;
                    let resp = results[j][recv_off + r];
                    out[i][origin] = if resp == EMPTY {
                        None
                    } else {
                        debug_assert_eq!(key_of(resp), key_of(qword));
                        Some(value_of(resp))
                    };
                    writes += 1;
                }
            }
            if writes > 0 {
                let stats = self.devices[i].launch(
                    "result_scatter",
                    (writes as usize).div_ceil(32),
                    GroupSize::WARP,
                    LaunchOptions::default(),
                    |ctx| {
                        // 32 streaming reads of (qword, result) pairs; the
                        // stores land in near-origin order (compaction is
                        // order-preserving within a class chunk), so they
                        // are sector-coalesced up to chunk boundaries
                        ctx.bill_stream_bytes(32 * (16 + 8));
                        ctx.bill_transactions(4);
                    },
                );
                scatter_worst = scatter_worst.max(straggled(plan, i, stats.sim_time));
            }
        }
        report.push_with_overhead(CascadeStage::Scatter, scatter_worst, 0, oh);
        Ok(out)
    }

    /// Device-sided erase cascade: multisplit → transposition → erase.
    ///
    /// Takes `&mut self` — deletions require the global barrier of §IV-A
    /// on every local map, and exclusive access makes that a compile-time
    /// fact, exactly as in [`GpuHashMap::erase`]. Erase is naturally
    /// idempotent (tombstoning a tombstone is a no-op), so fault recovery
    /// restarts the cascade without double counting.
    ///
    /// Returns the number of keys found and tombstoned, plus the timing
    /// report.
    ///
    /// # Panics
    /// Panics (with the replay hint) if fault injection exhausts every
    /// failover avenue.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_erase_device_sided` — typed `PerGpuDeleteResponse` with per-key hits"
    )]
    pub fn erase_device_sided(&mut self, per_gpu_keys: &[Vec<u32>]) -> (u64, CascadeReport) {
        match self.erase_device_sided_impl(per_gpu_keys) {
            Ok((_, erased, report)) => (erased, report),
            Err(e) => panic!("erase failed: {e}; replay: {}", self.replay_hint()),
        }
    }

    /// Device-sided erase with typed fault errors, returning the per-key
    /// hit flags *in the original per-GPU order* alongside the tombstoned
    /// count and a unified [`OpReport`]. Hit flags ride the same
    /// origin-packing convention as retrieval (origin index in the low
    /// half of the query word) and survive quarantine restarts: a key
    /// tombstoned in an aborted round stays reported as a hit even though
    /// the retried round no longer observes it.
    ///
    /// # Errors
    /// [`OpError`] once every failover avenue is exhausted.
    pub fn try_erase_device_sided(
        &mut self,
        per_gpu_keys: &[Vec<u32>],
    ) -> Result<PerGpuDeleteResponse, OpError> {
        let (hits, erased, report) = self.erase_device_sided_impl(per_gpu_keys)?;
        Ok(PerGpuDeleteResponse {
            hits,
            erased,
            report: OpReport::from_cascade(&report),
        })
    }

    pub(crate) fn erase_device_sided_impl(
        &mut self,
        per_gpu_keys: &[Vec<u32>],
    ) -> Result<(Vec<Vec<bool>>, u64, CascadeReport), OpError> {
        assert_eq!(per_gpu_keys.len(), self.num_gpus(), "one batch per GPU");
        let n_total: u64 = per_gpu_keys.iter().map(|v| v.len() as u64).sum();
        let mut report = CascadeReport::new(n_total);
        let mut erased = 0u64;
        let mut hits: Vec<Vec<bool>> = per_gpu_keys.iter().map(|k| vec![false; k.len()]).collect();
        let policy = self.cfg.retry;
        for _round in 0..=self.num_gpus() {
            let (plan, mask) = self.chaos_snapshot();
            let (eff, origin) = self.respread_keys(per_gpu_keys, mask);
            let router = self.router_for(mask);
            match self.erase_cascade_once(
                &eff,
                &origin,
                &router,
                &plan,
                &policy,
                &mut report,
                &mut erased,
                &mut hits,
            ) {
                Ok(()) => return Ok((hits, erased, report)),
                Err(Abort::Lost(j)) => self.quarantine(j)?,
                Err(Abort::Fatal(e)) => return Err(e.into()),
            }
        }
        Err(OpError::Internal {
            detail: "every failed round quarantines one GPU; at most m rounds",
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn erase_cascade_once(
        &self,
        per_gpu_keys: &[Vec<u32>],
        origin: &[Vec<(usize, usize)>],
        router: &Router,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        report: &mut CascadeReport,
        erased: &mut u64,
        hits_out: &mut [Vec<bool>],
    ) -> Result<(), Abort> {
        // erase query words carry the (effective) origin index in the low
        // 32 bits, exactly like retrieval — the erase kernel only reads
        // `key_of`, so the payload half is free for routing metadata
        let query_words: Vec<Vec<u64>> = per_gpu_keys
            .iter()
            .map(|keys| {
                keys.iter()
                    .enumerate()
                    .map(|(i, &k)| pack(k, i as u32))
                    .collect()
            })
            .collect();
        let oh = self.devices[0].spec().launch_overhead;
        let mut tally = ChaosTally::default();
        let res = (|| {
            let split = self.multisplit_phase(&query_words, router, plan, policy, &mut tally)?;
            report.push_with_overhead(
                CascadeStage::Multisplit,
                split.time,
                0,
                oh * self.num_gpus() as f64,
            );
            let transpose =
                alltoall_time_faulted(&self.topo, &split.table.byte_matrix(8), plan, policy)
                    .map_err(|e| {
                        tally_exhausted_transfer(&mut tally, policy, e);
                        Abort::Lost(Self::blame(plan, e))
                    })?;
            tally.transfer_retries += u64::from(transpose.retries);
            tally.backoff += transpose.backoff;
            let (recv, recv_guards) = self.transpose_move(&split).map_err(Abort::Fatal)?;
            report.push(CascadeStage::Transpose, transpose.time, transpose.bytes);

            let mut worst = 0.0f64;
            let mut hit_vecs: Vec<Vec<bool>> = vec![Vec::new(); self.num_gpus()];
            let mut aborted: Option<Abort> = None;
            for (j, words) in recv.iter().enumerate() {
                if words.is_empty() {
                    continue;
                }
                if let Err(lost) = gate_launch(plan, policy, j, launch_site::ERASE, &mut tally) {
                    aborted = Some(Abort::Lost(lost));
                    break;
                }
                let buf = recv_guards[j].slice().sub(0, words.len());
                let out = self.maps[j].erase_device_shared(buf, words.len());
                *erased += out.erased;
                hit_vecs[j] = out.hits;
                worst = worst.max(straggled(plan, j, out.stats.sim_time));
            }

            // harvest per-key hits for every target that completed — even
            // when the round aborts: those tombstones landed, and the
            // restarted round will no longer observe the keys (this is
            // the same accumulate-across-rounds rule `erased` follows)
            let recv_offsets = split.table.recv_offsets();
            for i in 0..self.num_gpus() {
                for j in 0..self.num_gpus() {
                    if hit_vecs[j].is_empty() {
                        continue;
                    }
                    let send_off = split.splits[i].offsets[j] as usize;
                    let count = split.splits[i].counts[j] as usize;
                    let sent = self.devices[i]
                        .mem()
                        .d2h(split.splits[i].out.sub(send_off, count));
                    let recv_off = recv_offsets[i][j] as usize;
                    for (r, &qword) in sent.iter().enumerate() {
                        if hit_vecs[j][recv_off + r] {
                            let (oi, oidx) = origin[i][value_of(qword) as usize];
                            hits_out[oi][oidx] = true;
                        }
                    }
                }
            }
            if let Some(a) = aborted {
                return Err(a);
            }
            report.push_with_overhead(CascadeStage::Query, worst, 0, oh);

            // return trip: one status byte per key mirrors the forward
            // chunking, then an irregular-store scatter per origin GPU
            let back = alltoall_time_faulted(
                &self.topo,
                &split.table.transposed().byte_matrix(1),
                plan,
                policy,
            )
            .map_err(|e| {
                tally_exhausted_transfer(&mut tally, policy, e);
                Abort::Lost(Self::blame(plan, e))
            })?;
            tally.transfer_retries += u64::from(back.retries);
            tally.backoff += back.backoff;
            report.push(CascadeStage::TransposeBack, back.time, back.bytes);

            let mut scatter_worst = 0.0f64;
            for i in 0..self.num_gpus() {
                let writes: u64 = split.splits[i].counts.iter().sum();
                if writes > 0 {
                    let stats = self.devices[i].launch(
                        "erase_hit_scatter",
                        (writes as usize).div_ceil(32),
                        GroupSize::WARP,
                        LaunchOptions::default(),
                        |ctx| {
                            // 32 streaming reads of (qword, status) pairs;
                            // single-byte statuses store near-coalesced
                            ctx.bill_stream_bytes(32 * (8 + 1));
                            ctx.bill_transactions(2);
                        },
                    );
                    scatter_worst = scatter_worst.max(straggled(plan, i, stats.sim_time));
                }
            }
            report.push_with_overhead(CascadeStage::Scatter, scatter_worst, 0, oh);
            Ok(())
        })();
        if tally.backoff > 0.0 {
            report.push(CascadeStage::Backoff, tally.backoff, 0);
        }
        self.note_chaos(&tally);
        res
    }

    /// Host-sided erase: keys travel over PCIe, then the device cascade
    /// runs. Returns the tombstoned count.
    ///
    /// # Panics
    /// Panics (with the replay hint) if fault injection exhausts every
    /// failover avenue.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_erase_from_host` — typed `DeleteResponse` with per-key hits"
    )]
    pub fn erase_from_host(&mut self, keys: &[u32]) -> (u64, CascadeReport) {
        match self.erase_from_host_impl(keys) {
            Ok((_, erased, report)) => (erased, report),
            Err(e) => panic!("erase failed: {e}; replay: {}", self.replay_hint()),
        }
    }

    /// Host-sided erase with typed fault errors: keys travel over PCIe,
    /// the device cascade runs, and per-key hit flags come back in the
    /// original input order.
    ///
    /// # Errors
    /// [`OpError`] once every failover avenue is exhausted.
    pub fn try_erase_from_host(
        &mut self,
        keys: &[u32],
    ) -> Result<crate::service::DeleteResponse, OpError> {
        let (hits, erased, report) = self.erase_from_host_impl(keys)?;
        Ok(crate::service::DeleteResponse {
            hits,
            erased,
            report: OpReport::from_cascade(&report),
        })
    }

    fn erase_from_host_impl(
        &mut self,
        keys: &[u32],
    ) -> Result<(Vec<bool>, u64, CascadeReport), OpError> {
        let m = self.num_gpus();
        let per = keys.len().div_ceil(m.max(1)).max(1);
        let mut per_gpu: Vec<Vec<u32>> = keys.chunks(per).map(<[u32]>::to_vec).collect();
        per_gpu.resize(m, Vec::new());
        let bytes: Vec<u64> = per_gpu.iter().map(|c| c.len() as u64 * 8).collect();
        let t_h2d = interconnect::h2d_time(&self.topo, &bytes);
        let (hits, erased, device) = self.erase_device_sided_impl(&per_gpu)?;
        let mut report = CascadeReport::new(keys.len() as u64);
        report.push(CascadeStage::H2D, t_h2d, bytes.iter().sum());
        report.absorb(&CascadeReport {
            stages: device.stages,
            elements: 0,
        });
        // chunks are contiguous, so flattening restores input order
        Ok((hits.into_iter().flatten().collect(), erased, report))
    }

    // ---- phases -----------------------------------------------------------

    /// Uploads each GPU's words and multisplits them by the router's
    /// fault-aware partition assignment, gating each non-empty GPU's
    /// launches on the fault plan.
    fn multisplit_phase(
        &self,
        per_gpu_words: &[Vec<u64>],
        router: &Router,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        tally: &mut ChaosTally,
    ) -> Result<SplitPhase<'_>, Abort> {
        let m = self.num_gpus();
        let mut guards = Vec::new();
        let mut splits = Vec::with_capacity(m);
        let mut worst = 0.0f64;
        for (i, words) in per_gpu_words.iter().enumerate() {
            let dev = &self.devices[i];
            let n = words.len();
            if n > 0 {
                gate_launch(plan, policy, i, launch_site::MULTISPLIT, tally)
                    .map_err(Abort::Lost)?;
            }
            // double buffer (Fig. 4: "out-of-place using one double buffer
            // per GPU") plus the aggregation counter
            let guard = dev
                .alloc_scratch(2 * n.max(1) + 1)
                .map_err(|e| Abort::Fatal(e.into()))?;
            let input = guard.slice().sub(0, n);
            let output = guard.slice().sub(n.max(1), n.max(1));
            let scratch = guard.slice().sub(2 * n.max(1), 1);
            dev.mem().h2d(input, words);
            let classifier = router.clone();
            let res = device_multisplit(dev, input, output, scratch, m, move |w| {
                classifier.route(key_of(w))
            });
            worst = worst.max(straggled(plan, i, res.stats.sim_time));
            splits.push(res);
            guards.push(guard);
        }
        let table = PartitionTable::new(splits.iter().map(|s| s.counts.clone()).collect());
        Ok(SplitPhase {
            _guards: guards,
            splits,
            table,
            time: worst,
        })
    }

    /// Moves every off-diagonal partition to its target GPU (functional
    /// movement only — the transfer itself is billed by the caller via
    /// the all-to-all model, faulted or healthy).
    #[allow(clippy::type_complexity)]
    fn transpose_move<'s>(
        &'s self,
        split: &SplitPhase<'_>,
    ) -> Result<(Vec<Vec<u64>>, Vec<gpu_sim::ScratchGuard<'s>>), InsertError> {
        let m = self.num_gpus();
        let mut recv: Vec<Vec<u64>> = vec![Vec::new(); m];
        #[allow(clippy::needless_range_loop)] // (i, j) walks the square count matrix
        for i in 0..m {
            for j in 0..m {
                let off = split.splits[i].offsets[j] as usize;
                let cnt = split.splits[i].counts[j] as usize;
                let chunk = self.devices[i].mem().d2h(split.splits[i].out.sub(off, cnt));
                recv[j].extend(chunk);
            }
        }
        // land the received words in device memory on their targets
        let mut guards = Vec::with_capacity(m);
        for (j, words) in recv.iter().enumerate() {
            let guard = self.devices[j].alloc_scratch(words.len().max(1))?;
            self.devices[j]
                .mem()
                .h2d(guard.slice().sub(0, words.len()), words);
            guards.push(guard);
        }
        Ok((recv, guards))
    }
}

impl crate::service::MapService for DistributedHashMap {
    fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError> {
        let before = self.len();
        let report = self.insert_from_host(pairs)?;
        // the cascade does not thread per-key placement classes back to
        // the host, but live-count conservation recovers the split: keys
        // that did not grow the table updated (or duplicated) in place
        let new_slots = self.len() - before;
        Ok(PutResponse {
            new_slots,
            updates: (pairs.len() as u64).saturating_sub(new_slots),
            reclaimed: 0,
            report: OpReport::from_cascade(&report),
        })
    }

    fn get_batch(&mut self, keys: &[u32]) -> Result<crate::service::GetResponse, OpError> {
        self.try_retrieve_from_host(keys)
    }

    fn delete_batch(&mut self, keys: &[u32]) -> Result<crate::service::DeleteResponse, OpError> {
        self.try_erase_from_host(keys)
    }

    fn live_len(&self) -> u64 {
        self.len()
    }

    fn slot_capacity(&self) -> u64 {
        self.maps.iter().map(GpuHashMap::capacity).sum::<usize>() as u64
    }

    fn degraded(&self) -> DegradedStats {
        self.degraded_stats()
    }

    fn occupancy_split(&self) -> crate::Occupancy {
        DistributedHashMap::occupancy_split(self)
    }

    fn request_grow(&mut self) -> Result<bool, OpError> {
        DistributedHashMap::request_grow(self)
    }

    fn request_compact(&mut self) -> Result<bool, OpError> {
        DistributedHashMap::request_compact(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;

    fn node(m: usize, words_per_dev: usize) -> DistributedHashMap {
        let devices: Vec<Arc<Device>> = (0..m)
            .map(|i| Arc::new(Device::with_words(i, words_per_dev)))
            .collect();
        DistributedHashMap::new(devices, 1024, Config::default(), Topology::p100_quad(m)).unwrap()
    }

    fn spread(pairs: &[(u32, u32)], m: usize) -> Vec<Vec<u64>> {
        // unstructured distribution: equal contiguous chunks
        let per = pairs.len().div_ceil(m);
        (0..m)
            .map(|i| {
                pairs
                    .iter()
                    .skip(i * per)
                    .take(per)
                    .map(|&(k, v)| pack(k, v))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn insert_routes_keys_to_their_partition() {
        let d = node(4, 1 << 16);
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 7 + 1, i)).collect();
        let report = d.insert_device_sided(&spread(&pairs, 4)).unwrap();
        assert_eq!(d.len(), 2000);
        // every key lives on the GPU its partition function names
        for (j, map) in d.maps().iter().enumerate() {
            for (k, _) in map.snapshot() {
                assert_eq!(d.partition().part(k) as usize, j, "key {k} misplaced");
            }
        }
        // cascade has the three phases in order
        assert_eq!(report.stages.len(), 3);
        assert!(report.total_time() > 0.0);
    }

    #[test]
    fn retrieve_round_trips_in_origin_order() {
        let d = node(4, 1 << 16);
        let pairs: Vec<(u32, u32)> = (0..1500u32).map(|i| (i * 3 + 5, i + 100)).collect();
        d.insert_device_sided(&spread(&pairs, 4)).unwrap();

        // query from a *different* unstructured spread, with misses mixed in
        let mut keys: Vec<Vec<u32>> = vec![
            pairs[0..500].iter().map(|p| p.0).collect(),
            pairs[500..900].iter().map(|p| p.0).collect(),
            vec![4_000_000_000, 4_000_000_001], // absent
            pairs[900..].iter().map(|p| p.0).collect(),
        ];
        keys[2].push(pairs[42].0); // present key on the "miss" GPU
        let resp = d.try_retrieve_device_sided(&keys).unwrap();

        let lookup: std::collections::HashMap<u32, u32> = pairs.iter().copied().collect();
        for (g, gpu_keys) in keys.iter().enumerate() {
            for (i, k) in gpu_keys.iter().enumerate() {
                assert_eq!(resp.values[g][i], lookup.get(k).copied(), "gpu {g} idx {i}");
            }
        }
        // five phases: MST, T, Q, T back, scatter
        assert_eq!(resp.report.stages.len(), 5);
        assert!(resp
            .report
            .stages
            .iter()
            .any(|t| t.stage == CascadeStage::TransposeBack && t.time > 0.0));
    }

    #[test]
    fn single_gpu_node_skips_communication_cost() {
        let d = node(1, 1 << 16);
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i + 1, i)).collect();
        let report = d.insert_device_sided(&spread(&pairs, 1)).unwrap();
        // m = 1: the all-to-all moves zero bytes
        assert_eq!(report.time_of(CascadeStage::Transpose), 0.0);
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn duplicate_keys_update_across_gpus() {
        let d = node(2, 1 << 16);
        let first: Vec<Vec<u64>> = vec![vec![pack(77, 1)], vec![pack(77, 2)]];
        d.insert_device_sided(&first).unwrap();
        // both packed words target the same GPU and key; last writer wins
        // nondeterministically — but exactly one value must be stored
        assert_eq!(d.len(), 1);
        let resp = d.try_retrieve_device_sided(&[vec![77], vec![]]).unwrap();
        let v = resp.values[0][0].unwrap();
        assert!(v == 1 || v == 2, "got {v}");
    }

    #[test]
    fn load_factor_aggregates() {
        let d = node(2, 1 << 16);
        assert!(d.is_empty());
        let pairs: Vec<(u32, u32)> = (0..1024u32).map(|i| (i * 11 + 3, i)).collect();
        d.insert_device_sided(&spread(&pairs, 2)).unwrap();
        assert!((d.load_factor() - 0.5).abs() < 0.01);
    }
}

#[cfg(test)]
mod erase_tests {
    use super::*;
    use gpu_sim::Device;

    fn node(m: usize) -> DistributedHashMap {
        let devices: Vec<Arc<Device>> = (0..m)
            .map(|i| Arc::new(Device::with_words(i, 1 << 16)))
            .collect();
        DistributedHashMap::new(devices, 2048, Config::default(), Topology::p100_quad(m)).unwrap()
    }

    #[test]
    fn erase_cascade_removes_exactly_the_victims() {
        let mut d = node(4);
        let pairs: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 5 + 2, i)).collect();
        d.insert_from_host(&pairs).unwrap();
        let victims: Vec<u32> = pairs.iter().step_by(3).map(|p| p.0).collect();
        let del = d.try_erase_from_host(&victims).unwrap();
        assert_eq!(del.erased as usize, victims.len());
        assert!(del.hits.iter().all(|&h| h), "all victims were present");
        assert_eq!(d.len() as usize, pairs.len() - victims.len());
        assert!(del
            .report
            .stages
            .iter()
            .any(|t| t.stage == CascadeStage::H2D && t.time > 0.0));
        // survivors answer, victims do not
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = d.try_retrieve_from_host(&keys).unwrap().values;
        for (i, r) in res.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*r, None, "victim {} survived", keys[i]);
            } else {
                assert_eq!(*r, Some(pairs[i].1), "survivor {} lost", keys[i]);
            }
        }
    }

    #[test]
    fn erase_of_absent_keys_reports_zero() {
        let mut d = node(2);
        d.insert_from_host(&[(1, 10), (2, 20)]).unwrap();
        let del = d.try_erase_from_host(&[100, 200, 300]).unwrap();
        assert_eq!(del.erased, 0);
        assert_eq!(del.hits, vec![false, false, false]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn erase_then_reinsert_round_trips() {
        let mut d = node(2);
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i + 1, i)).collect();
        d.insert_from_host(&pairs).unwrap();
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let del = d.try_erase_from_host(&keys).unwrap();
        assert_eq!(del.erased, 500);
        assert!(del.hits.iter().all(|&h| h));
        assert!(d.is_empty());
        // reinsert over the tombstones
        d.insert_from_host(&pairs).unwrap();
        assert_eq!(d.len(), 500);
        let res = d.try_retrieve_from_host(&keys).unwrap().values;
        assert!(res.iter().all(Option::is_some));
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use gpu_sim::Device;
    use std::collections::BTreeMap;

    fn node_with(cfg: Config, m: usize) -> DistributedHashMap {
        let devices: Vec<Arc<Device>> = (0..m)
            .map(|i| Arc::new(Device::with_words(i, 1 << 17)))
            .collect();
        DistributedHashMap::new(devices, 1 << 13, cfg, Topology::p100_quad(m)).unwrap()
    }

    fn multiset(pairs: impl IntoIterator<Item = (u32, u32)>) -> BTreeMap<(u32, u32), u32> {
        let mut m = BTreeMap::new();
        for p in pairs {
            *m.entry(p).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn disarmed_cascade_reports_are_bit_identical() {
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 7 + 1, i)).collect();
        let spread: Vec<Vec<u64>> = vec![pairs.iter().map(|&(k, v)| pack(k, v)).collect()];
        let mk = || {
            let devices = vec![Arc::new(Device::with_words(0, 1 << 17))];
            DistributedHashMap::new(devices, 1 << 13, Config::default(), Topology::p100_quad(1))
                .unwrap()
        };
        let a = mk().insert_device_sided(&spread).unwrap();
        let b = mk().insert_device_sided(&spread).unwrap();
        assert_eq!(a.stages.len(), b.stages.len());
        for (x, y) in a.stages.iter().zip(&b.stages) {
            assert_eq!(x.time.to_bits(), y.time.to_bits(), "{:?}", x.stage);
        }
    }

    #[test]
    fn killed_gpu_is_quarantined_and_keys_survive() {
        let d = node_with(Config::default(), 4);
        let pairs: Vec<(u32, u32)> = (0..4000u32).map(|i| (i * 3 + 1, i)).collect();
        d.insert_from_host(&pairs[..2000]).unwrap();
        assert!(d.quarantined().is_empty());

        // kill GPU 3 mid-run, then keep operating
        d.set_fault_plan(FaultPlan::default().with_kill(3));
        d.insert_from_host(&pairs[2000..]).unwrap();
        assert_eq!(d.quarantined(), vec![3]);
        let stats = d.degraded_stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.repartitions, 1);
        assert!(stats.migrated_keys > 0, "GPU 3 held keys before the kill");

        // every key — including those migrated off GPU 3 — still answers
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = d.try_retrieve_from_host(&keys).unwrap().values;
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(res[i], Some(p.1), "key {} lost after quarantine", p.0);
        }
        // conservation: the live multiset is exactly the inserted multiset
        assert_eq!(multiset(pairs), multiset(d.live_snapshot()));
        // GPU 3 holds nothing live
        assert_eq!(d.len(), 4000);
    }

    #[test]
    fn transient_launch_failures_retry_and_recover() {
        // moderate transient failure rate: retries happen, nothing dies
        let plan = FaultPlan::default().with_seed(11).with_launch_fail(0.3);
        let d = node_with(Config::default().with_fault(plan), 4);
        let pairs: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 5 + 3, i)).collect();
        let rep = d.insert_from_host(&pairs).unwrap();
        assert!(d.quarantined().is_empty(), "30% transient should not kill");
        let stats = d.degraded_stats();
        assert!(stats.launch_retries > 0, "no retries at 30% failure rate");
        assert!(stats.backoff_time > 0.0);
        assert!(rep.time_of(CascadeStage::Backoff) > 0.0);
        assert_eq!(multiset(pairs), multiset(d.live_snapshot()));
    }

    #[test]
    fn transfer_drops_retry_and_are_billed() {
        let plan = FaultPlan::default().with_seed(7).with_transfer_drop(0.4);
        let d = node_with(Config::default().with_fault(plan), 4);
        let pairs: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 11 + 5, i)).collect();
        d.insert_from_host(&pairs).unwrap();
        let stats = d.degraded_stats();
        assert!(stats.transfer_retries > 0, "no drops at 40% rate");
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = d.try_retrieve_from_host(&keys).unwrap().values;
        assert!(res.iter().all(Option::is_some));
    }

    #[test]
    fn last_gpu_loss_is_a_typed_error() {
        let d = node_with(Config::default(), 2);
        d.insert_from_host(&[(1, 10), (2, 20)]).unwrap();
        d.set_fault_plan(FaultPlan::default().with_launch_fail(1.0));
        // both GPUs fail permanently: first one quarantines, the second
        // has no survivor left
        let err = d.insert_from_host(&[(3, 30)]).unwrap_err();
        assert!(
            matches!(err, InsertError::DeviceLost { .. }),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn replay_hint_names_fault_and_schedule() {
        let d = node_with(
            Config::default()
                .with_fault(FaultPlan::default().with_seed(42).with_transfer_drop(0.25)),
            2,
        );
        let hint = d.replay_hint();
        assert!(hint.contains("WD_FAULT="), "{hint}");
        assert!(hint.contains("WD_FAULT_SEED=42"), "{hint}");
        assert!(hint.contains("WD_SCHED"), "{hint}");
    }

    #[test]
    fn straggler_slows_the_cascade_without_changing_results() {
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 13 + 7, i)).collect();
        let healthy = node_with(Config::default(), 4);
        let h_rep = healthy.insert_from_host(&pairs).unwrap();
        let slow = node_with(
            Config::default()
                .with_fault(FaultPlan::default().with_straggler(2, 4.0, 0.0)),
            4,
        );
        let s_rep = slow.insert_from_host(&pairs).unwrap();
        assert!(
            s_rep.total_time() > h_rep.total_time(),
            "straggler should slow the cascade: {} vs {}",
            s_rep.total_time(),
            h_rep.total_time()
        );
        assert_eq!(multiset(pairs), multiset(slow.live_snapshot()));
    }

    #[test]
    fn erase_under_kill_still_tombstones_everything() {
        let mut d = node_with(Config::default(), 4);
        let pairs: Vec<(u32, u32)> = (0..1000u32).map(|i| (i * 7 + 2, i)).collect();
        d.insert_from_host(&pairs).unwrap();
        d.set_fault_plan(FaultPlan::default().with_kill(1));
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let del = d.try_erase_from_host(&keys).unwrap();
        assert_eq!(del.erased, 1000, "migrated keys must still be erasable");
        assert!(
            del.hits.iter().all(|&h| h),
            "hits survive the quarantine restart"
        );
        assert!(d.is_empty());
        assert_eq!(d.quarantined(), vec![1]);
    }
}
