//! The probing sequence: where each outer attempt's windows live.
//!
//! Fig. 3 structure: the **outer** loop re-hashes (`h ← hash(d, p)`), the
//! **inner** loop slides a `|g|`-slot window across the warp-sized span
//! `[h, h + 32)`, and the group probes window slots in parallel. This
//! module computes the window bases; the kernels own the intra-window
//! ballot/CAS mechanics.
//!
//! The probing sequence depends only on `(key, seed, scheme)` — *not* on
//! the group size — so a map written with `|g| = 8` can be queried with
//! `|g| = 2`: both traverse the same span sequence slot-by-slot ("the
//! inner probing loop ensures a consistent probing scheme in case the
//! size of g is varied over time", §IV-A).

use crate::config::ProbingScheme;
use hashes::{DoubleHash, FastMod32, HashFamily};

/// Width of one outer attempt's span in slots (a traditional warp).
pub const SPAN: u64 = 32;

/// Slots per 32-byte memory sector (probe starts align to this).
pub const SECTOR_SLOTS: u64 = 4;

/// `(base + r) % cap` for a window-local lane offset: `base` is already
/// reduced modulo `cap` and `r` is a lane rank (< 32 ≤ cap), so a single
/// conditional subtraction is bit-identical to the modulo without the
/// hardware division every probed slot would otherwise pay.
#[inline]
pub(crate) fn wrap_slot(base: usize, r: usize, cap: usize) -> usize {
    debug_assert!(base < cap && r < cap);
    let s = base + r;
    if s >= cap {
        s - cap
    } else {
        s
    }
}

/// Probing-sequence generator for one map configuration.
#[derive(Debug, Clone, Copy)]
pub struct Prober {
    dh: DoubleHash,
    scheme: ProbingScheme,
    capacity: u64,
    /// Division-free `% capacity` (bit-identical to `%`; the probing hot
    /// path reduces several values per window, and a hardware `div` per
    /// reduction dominates the simulated kernel's host cost).
    fm: FastMod32,
}

impl Prober {
    /// Creates a prober over a table of `capacity` slots.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(dh: DoubleHash, scheme: ProbingScheme, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert_eq!(
            capacity % SPAN as usize,
            0,
            "capacity must be a whole number of 32-slot spans"
        );
        Self {
            dh,
            scheme,
            capacity: capacity as u64,
            fm: FastMod32::new(capacity as u64),
        }
    }

    /// Base slot of outer attempt `p` for `key`, reduced mod capacity and
    /// **aligned down to a 4-slot (32-byte sector) boundary**. Sector
    /// alignment is what gives the coalesced window load its minimal
    /// transaction count — a `|g| ≤ 4` window then never straddles two
    /// sectors, and a `|g| = 8/16/32` window touches exactly 2/4/8. The
    /// granularity is deliberately the *sector*, not the span: aligning
    /// to the whole 32-slot span would funnel every key of a span onto
    /// the same start slot and front-load the span (32-way clustering);
    /// sector alignment costs at most 3 slots of clustering while keeping
    /// the probing sequence group-size independent (capacities are
    /// rounded to a multiple of 32 by the map, so alignment survives the
    /// modulo).
    #[inline]
    #[must_use]
    pub fn span_base(&self, key: u32, p: u32) -> u64 {
        let raw = match self.scheme {
            // chaotic jumps: double hashing across spans (Eq. 3 at span
            // granularity)
            ProbingScheme::Hybrid => u64::from(self.dh.member(p, key)),
            // consecutive spans (Eq. 1 at span granularity)
            ProbingScheme::Linear => u64::from(self.dh.h(key)) + u64::from(p) * SPAN,
            // quadratically advancing spans (Eq. 2 at span granularity)
            ProbingScheme::Quadratic => {
                u64::from(self.dh.h(key)) + u64::from(p) * u64::from(p) * SPAN
            }
        };
        let base = self.fm.rem(raw);
        base - base % SECTOR_SLOTS // SECTOR_SLOTS is a power of two: free
    }

    /// Base slot of window `q` (of `window` slots) within attempt `p` —
    /// line 7 of Fig. 3: `h + q·|g|`, reduced mod capacity.
    #[inline]
    #[must_use]
    pub fn window_base(&self, key: u32, p: u32, q: u32, window: u32) -> u64 {
        // span_base is already reduced and q·|g| < SPAN ≤ capacity: one
        // conditional subtraction replaces the modulo
        self.fm
            .add_rem(self.span_base(key, p), u64::from(q) * u64::from(window))
    }

    /// Flat sequence of the first `n` *slot* indices probed for `key` —
    /// group-size independent (used by tests to certify consistency).
    #[must_use]
    pub fn slot_sequence(&self, key: u32, n: usize) -> Vec<u64> {
        (0..)
            .flat_map(|p| {
                let base = self.span_base(key, p);
                (0..SPAN).map(move |o| (base + o) % self.capacity)
            })
            .take(n)
            .collect()
    }

    /// Table capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn prober(scheme: ProbingScheme, capacity: usize) -> Prober {
        Prober::new(DoubleHash::from_seed(7), scheme, capacity)
    }

    #[test]
    fn linear_spans_are_consecutive() {
        let p = prober(ProbingScheme::Linear, 1 << 20);
        let k = 42;
        let b0 = p.span_base(k, 0);
        assert_eq!(p.span_base(k, 1), (b0 + 32) % (1 << 20));
        assert_eq!(p.span_base(k, 2), (b0 + 64) % (1 << 20));
    }

    #[test]
    fn quadratic_spans_grow_quadratically() {
        let p = prober(ProbingScheme::Quadratic, 1 << 20);
        let k = 42;
        let b0 = p.span_base(k, 0);
        assert_eq!(p.span_base(k, 1), (b0 + 32) % (1 << 20));
        assert_eq!(p.span_base(k, 2), (b0 + 128) % (1 << 20));
        assert_eq!(p.span_base(k, 3), (b0 + 288) % (1 << 20));
    }

    #[test]
    fn hybrid_spans_jump_chaotically() {
        let p = prober(ProbingScheme::Hybrid, 1 << 20);
        let k = 42;
        let diffs: Vec<i64> = (0..4)
            .map(|a| p.span_base(k, a + 1) as i64 - p.span_base(k, a) as i64)
            .collect();
        // double hashing: constant stride mod capacity, but not ±32
        assert!(diffs.iter().all(|&d| d.unsigned_abs() > 32));
    }

    #[test]
    fn window_bases_tile_the_span() {
        let p = prober(ProbingScheme::Hybrid, 4096);
        let k = 9;
        let base = p.span_base(k, 0);
        for (g, q_count) in [(8u32, 4u32), (4, 8), (32, 1)] {
            for q in 0..q_count {
                assert_eq!(p.window_base(k, 0, q, g), (base + u64::from(q * g)) % 4096);
            }
        }
    }

    #[test]
    fn slot_sequence_is_group_size_independent_by_construction() {
        let p = prober(ProbingScheme::Hybrid, 512);
        let seq = p.slot_sequence(5, 96);
        assert_eq!(seq.len(), 96);
        // reconstruct via windows of size 8 and compare
        let mut via_windows = Vec::new();
        'outer: for attempt in 0.. {
            for q in 0..4 {
                let base = p.window_base(5, attempt, q, 8);
                for r in 0..8 {
                    via_windows.push((base + r) % 512);
                    if via_windows.len() == 96 {
                        break 'outer;
                    }
                }
            }
        }
        assert_eq!(seq, via_windows);
    }

    proptest! {
        #[test]
        fn bases_always_in_range(key: u32, p in 0u32..100, spans in 1usize..300) {
            let cap = spans * 32;
            for scheme in [ProbingScheme::Hybrid, ProbingScheme::Linear, ProbingScheme::Quadratic] {
                let pr = prober(scheme, cap);
                prop_assert!(pr.span_base(key, p) < cap as u64);
                prop_assert!(pr.window_base(key, p, 3, 8) < cap as u64);
            }
        }

        #[test]
        fn sequence_deterministic(key: u32) {
            let a = prober(ProbingScheme::Hybrid, 1024).slot_sequence(key, 64);
            let b = prober(ProbingScheme::Hybrid, 1024).slot_sequence(key, 64);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = prober(ProbingScheme::Hybrid, 0);
    }
}
