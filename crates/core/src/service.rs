//! The unified request/response front door — one vocabulary for every
//! map backend.
//!
//! Historically each backend spoke its own dialect: `insert_pairs`
//! returned `Result<InsertOutcome, InsertError>`, `retrieve` a bare
//! `(Vec<Option<u32>>, KernelStats)` tuple, the host-sided cascades
//! `(_, CascadeReport)` tuples, and erase panicked on fault exhaustion.
//! This module defines the single vocabulary that replaces all of them:
//!
//! * [`Op`] / [`Response`] — one request/response pair for puts, gets and
//!   deletes, whatever the backend;
//! * [`OpReport`] — one cost report subsuming both [`KernelStats`]
//!   (single-GPU launches) and [`CascadeReport`] (multi-GPU cascades);
//! * [`OpError`] — one error type unifying [`InsertError`] and
//!   [`RetrieveError`], so fault-mode callers never hit a panic;
//! * [`MapService`] — the trait the wd-serve coalescer is generic over,
//!   implemented by [`crate::GpuHashMap`], [`crate::ShardedHashMap`] and
//!   [`crate::DistributedHashMap`].
//!
//! ## Coalescing contract
//!
//! [`MapService::execute`] turns a mixed op stream into batched kernel
//! launches while staying *response-identical* to sequential execution:
//! it cuts the stream into maximal same-kind segments and additionally
//! splits a put or delete segment before a duplicate key. Within such a
//! segment the batched kernels are per-key independent (distinct keys
//! probe disjoint logical slots; §IV-A lets inserts and queries of
//! different keys race freely), so the batched responses equal the
//! sequential ones bit for bit. Duplicate gets coalesce freely — reads
//! do not interfere. The wd-serve equivalence suite proves this across
//! seeds × schedules × fault plans.

use crate::errors::{InsertError, RetrieveError};
use crate::stats::{CascadeReport, CascadeStage, DegradedStats, StageTiming};
use gpu_sim::{CounterSnapshot, KernelStats, OutOfMemory};
use interconnect::TransferError;
use std::collections::HashSet;

/// One small request against a map service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Store `value` under `key` (duplicate keys update in place).
    Put {
        /// Key to store under.
        key: u32,
        /// Value to store.
        value: u32,
    },
    /// Look up `key`.
    Get {
        /// Key to look up.
        key: u32,
    },
    /// Tombstone `key`.
    Delete {
        /// Key to tombstone.
        key: u32,
    },
}

impl Op {
    /// The key the op addresses.
    #[must_use]
    pub fn key(&self) -> u32 {
        match *self {
            Op::Put { key, .. } | Op::Get { key } | Op::Delete { key } => key,
        }
    }

    /// Whether the op mutates the map.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Get { .. })
    }
}

/// The response to one [`Op`], in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Response {
    /// The put was applied.
    Put,
    /// Get result: the stored value, if the key was present.
    Get {
        /// `Some(value)` on a hit, `None` on a miss.
        value: Option<u32>,
    },
    /// Delete result: whether a live entry was tombstoned.
    Delete {
        /// `true` iff the key was present (and is now gone).
        hit: bool,
    },
}

/// One cost report for any operation on any backend.
///
/// Subsumes both per-launch [`KernelStats`] (single-GPU backends, where
/// `counters` is populated and `stages` is empty) and [`CascadeReport`]
/// (multi-GPU cascades, where `stages` carries the per-phase breakdown).
/// Reports merge additively, so a coalesced flush spanning several
/// batches accumulates into one report.
#[derive(Debug, Clone, Default)]
pub struct OpReport {
    /// Elements processed.
    pub elements: u64,
    /// Kernel launches attributed to the operation (0 when unknown, e.g.
    /// inside an opaque cascade).
    pub launches: u64,
    /// Total modeled time in seconds.
    pub time: f64,
    /// Portion of `time` spent in fault-retry exponential backoff
    /// (always ≤ `time`; zero on healthy runs).
    pub backoff_time: f64,
    /// Summed access-pattern counters, where the backend exposes them.
    pub counters: CounterSnapshot,
    /// Per-phase cascade breakdown, where the backend is a cascade.
    pub stages: Vec<StageTiming>,
}

impl OpReport {
    /// Wraps one kernel launch's stats as a report over `elements` ops.
    #[must_use]
    pub fn from_kernel(stats: &KernelStats, elements: u64) -> Self {
        Self {
            elements,
            launches: 1,
            time: stats.sim_time,
            backoff_time: 0.0,
            counters: stats.counters,
            stages: Vec::new(),
        }
    }

    /// Wraps a cascade's timing report.
    #[must_use]
    pub fn from_cascade(report: &CascadeReport) -> Self {
        Self {
            elements: report.elements,
            launches: 0,
            time: report.total_time(),
            backoff_time: report.time_of(CascadeStage::Backoff),
            counters: CounterSnapshot::default(),
            stages: report.stages.clone(),
        }
    }

    /// Accumulates another report (times add — operations on one service
    /// are serialized).
    pub fn merge(&mut self, other: &OpReport) {
        self.elements += other.elements;
        self.launches += other.launches;
        self.time += other.time;
        self.backoff_time += other.backoff_time;
        self.counters = self.counters.merged(other.counters);
        self.stages.extend(other.stages.iter().copied());
    }

    /// Operation rate over the report's modeled time.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        if self.time == 0.0 {
            0.0
        } else {
            self.elements as f64 / self.time
        }
    }

    /// Total modeled time extrapolated to `scale`× the element count.
    ///
    /// With a cascade breakdown the variable parts scale and the fixed
    /// launch overheads do not (the [`CascadeReport::modeled_time`]
    /// rule); without one the flat total scales linearly.
    #[must_use]
    pub fn modeled_time(&self, scale: f64) -> f64 {
        if self.stages.is_empty() {
            self.time * scale
        } else {
            self.stages.iter().map(|s| s.scaled_time(scale)).sum()
        }
    }

    /// Operation rate at modeled scale.
    #[must_use]
    pub fn modeled_ops_per_sec(&self, scale: f64) -> f64 {
        let t = self.modeled_time(scale);
        if t == 0.0 {
            0.0
        } else {
            self.elements as f64 * scale / t
        }
    }

    /// Accumulated time of one cascade phase kind (zero when the backend
    /// exposes no stage breakdown).
    #[must_use]
    pub fn time_of(&self, stage: CascadeStage) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.time)
            .sum()
    }
}

/// The unified error of the front-door API: every failure mode of every
/// backend, typed. No front-door path panics under an armed fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// One or more pairs exhausted the probing scheme — rebuild with a
    /// fresh hash function.
    ProbingExhausted {
        /// Number of pairs that could not be placed.
        failed: u64,
    },
    /// A scratch allocation for the operation failed.
    OutOfMemory(OutOfMemory),
    /// An interconnect transfer exhausted its retry budget with no
    /// failover avenue left.
    Transfer(TransferError),
    /// A GPU (or shard site) exhausted its launch retry budget with no
    /// survivor to take over.
    DeviceLost {
        /// The lost device's index.
        device: usize,
    },
    /// Re-homing a quarantined GPU's partition failed.
    Migration(InsertError),
    /// A cascade invariant broke (a WarpDrive bug, not an
    /// environmental failure). Typed so a serving process can fail the
    /// one op and keep serving instead of panicking.
    Internal {
        /// The violated invariant, verbatim.
        detail: &'static str,
    },
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::ProbingExhausted { failed } => {
                write!(f, "{failed} pair(s) exhausted the probing scheme")
            }
            OpError::OutOfMemory(e) => write!(f, "operation scratch allocation failed: {e}"),
            OpError::Transfer(e) => write!(f, "unrecoverable transfer failure: {e}"),
            OpError::DeviceLost { device } => {
                write!(f, "GPU {device} lost: launch retry budget exhausted, no failover target")
            }
            OpError::Migration(e) => write!(f, "partition migration failed: {e}"),
            OpError::Internal { detail } => write!(f, "internal invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for OpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpError::Transfer(e) => Some(e),
            OpError::Migration(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InsertError> for OpError {
    fn from(e: InsertError) -> Self {
        match e {
            InsertError::ProbingExhausted { failed } => OpError::ProbingExhausted { failed },
            InsertError::OutOfMemory(o) => OpError::OutOfMemory(o),
            InsertError::Transfer(t) => OpError::Transfer(t),
            InsertError::DeviceLost { device } => OpError::DeviceLost { device },
            InsertError::Internal { detail } => OpError::Internal { detail },
        }
    }
}

impl From<RetrieveError> for OpError {
    fn from(e: RetrieveError) -> Self {
        match e {
            RetrieveError::Transfer(t) => OpError::Transfer(t),
            RetrieveError::DeviceLost { device } => OpError::DeviceLost { device },
            RetrieveError::Migration(i) => OpError::Migration(i),
        }
    }
}

impl From<OutOfMemory> for OpError {
    fn from(e: OutOfMemory) -> Self {
        OpError::OutOfMemory(e)
    }
}

impl From<crate::errors::BuildError> for OpError {
    fn from(e: crate::errors::BuildError) -> Self {
        match e {
            crate::errors::BuildError::OutOfMemory(o) => OpError::OutOfMemory(o),
            // a resize target inherits a positive capacity from the source
            // table, so this arm marks a bug, not an environmental failure
            crate::errors::BuildError::ZeroCapacity => OpError::Internal {
                detail: "zero-capacity table requested",
            },
        }
    }
}

/// Typed result of a bulk put.
#[derive(Debug, Clone)]
pub struct PutResponse {
    /// Pairs that claimed a previously vacant slot.
    pub new_slots: u64,
    /// Pairs that updated an already-present key in place.
    pub updates: u64,
    /// Claims that reclaimed a tombstoned slot (subset of `new_slots`).
    pub reclaimed: u64,
    /// Cost report.
    pub report: OpReport,
}

/// Typed result of a bulk get, values in input order.
#[derive(Debug, Clone)]
pub struct GetResponse {
    /// `values[i]` answers `keys[i]`: `Some(v)` on a hit, `None` miss.
    pub values: Vec<Option<u32>>,
    /// Cost report.
    pub report: OpReport,
}

/// Typed result of a multi-map get-all, value vectors in input order.
#[derive(Debug, Clone)]
pub struct GetAllResponse {
    /// `values[i]` holds every value stored under `keys[i]`.
    pub values: Vec<Vec<u32>>,
    /// Cost report.
    pub report: OpReport,
}

/// Typed result of a bulk delete, hits in input order.
#[derive(Debug, Clone)]
pub struct DeleteResponse {
    /// `hits[i]` is `true` iff `keys[i]` was present (and is now gone).
    pub hits: Vec<bool>,
    /// Number of keys found and tombstoned (`hits` popcount).
    pub erased: u64,
    /// Cost report.
    pub report: OpReport,
}

/// Typed result of a device-sided multi-GPU get: per-GPU result vectors
/// in the original per-GPU order.
#[derive(Debug, Clone)]
pub struct PerGpuGetResponse {
    /// `values[g][i]` answers `per_gpu_keys[g][i]`.
    pub values: Vec<Vec<Option<u32>>>,
    /// Cost report.
    pub report: OpReport,
}

/// Typed result of a device-sided multi-GPU delete: per-GPU hit vectors
/// in the original per-GPU order.
#[derive(Debug, Clone)]
pub struct PerGpuDeleteResponse {
    /// `hits[g][i]` is `true` iff `per_gpu_keys[g][i]` was tombstoned.
    pub hits: Vec<Vec<bool>>,
    /// Total keys found and tombstoned.
    pub erased: u64,
    /// Cost report.
    pub report: OpReport,
}

/// The backend abstraction the wd-serve coalescer is generic over: bulk
/// typed put/get/delete plus the occupancy and degradation signals
/// admission control needs.
///
/// Every method takes `&mut self` — a service owns its backend
/// exclusively, which *is* the §IV-A global barrier: no kernel of one
/// batch can race a kernel of another, so deletions need no further
/// synchronization. (The underlying maps still expose the finer-grained
/// `&self` insert/query APIs for toolchain embedding.)
pub trait MapService {
    /// Applies a batch of puts. Duplicate keys within one batch race
    /// (last writer wins on the kernel's event horizon) — callers that
    /// need sequential semantics split batches, as
    /// [`MapService::execute`] does.
    ///
    /// # Errors
    /// Any [`OpError`]; probing exhaustion is an error even though the
    /// non-colliding pairs were applied.
    fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError>;

    /// Looks up a batch of keys, results in input order.
    ///
    /// # Errors
    /// Fault-mode failures once every failover avenue is exhausted.
    fn get_batch(&mut self, keys: &[u32]) -> Result<GetResponse, OpError>;

    /// Tombstones a batch of keys, per-key hits in input order.
    ///
    /// # Errors
    /// Fault-mode failures once every failover avenue is exhausted.
    fn delete_batch(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError>;

    /// Live (non-tombstone) entries.
    fn live_len(&self) -> u64;

    /// Total slots across the backend.
    fn slot_capacity(&self) -> u64;

    /// Load factor α = live entries / capacity.
    fn occupancy(&self) -> f64 {
        let cap = self.slot_capacity();
        if cap == 0 {
            0.0
        } else {
            self.live_len() as f64 / cap as f64
        }
    }

    /// Degraded-mode counters (all-zero for backends without a chaos
    /// layer).
    fn degraded(&self) -> DegradedStats {
        DegradedStats::default()
    }

    /// Slot occupancy split into live entries and tombstones. Backends
    /// without tombstone accounting report every occupied slot as live.
    fn occupancy_split(&self) -> crate::Occupancy {
        crate::Occupancy {
            live: self.live_len(),
            tombstones: 0,
            capacity: self.slot_capacity(),
        }
    }

    /// Resize state of the backend (always `Stable` for fixed-capacity
    /// backends).
    fn resize_state(&self) -> crate::ResizeState {
        crate::ResizeState::Stable
    }

    /// Asks the backend to start growing. Fixed-capacity backends return
    /// `Ok(false)` ("cannot comply — keep shedding"); resizable ones
    /// start (or continue) an incremental migration and return whether a
    /// new one was started.
    ///
    /// # Errors
    /// Allocation failure of the resize target.
    fn request_grow(&mut self) -> Result<bool, OpError> {
        Ok(false)
    }

    /// Asks the backend to start a same-capacity compaction (tombstone
    /// purge). Same contract as [`MapService::request_grow`].
    ///
    /// # Errors
    /// Allocation failure of the compaction target.
    fn request_compact(&mut self) -> Result<bool, OpError> {
        Ok(false)
    }

    /// Executes a mixed op stream, returning one response per op in
    /// submission order plus the merged cost report.
    ///
    /// Coalesces maximal same-kind segments into single batches, but
    /// cuts a put or delete segment before a duplicate key so batched
    /// execution stays response-identical to sequential execution (see
    /// the module docs for the argument). Gets coalesce unconditionally.
    ///
    /// # Errors
    /// Propagates the first failing batch's [`OpError`]; earlier
    /// segments stay applied (same as a sequential caller stopping at
    /// the first error).
    fn execute(&mut self, ops: &[Op]) -> Result<(Vec<Response>, OpReport), OpError> {
        let mut responses = Vec::with_capacity(ops.len());
        let mut report = OpReport::default();
        let mut start = 0usize;
        let mut seen: HashSet<u32> = HashSet::new();
        let flush = |svc: &mut Self,
                     seg: &[Op],
                     responses: &mut Vec<Response>,
                     report: &mut OpReport|
         -> Result<(), OpError> {
            if seg.is_empty() {
                return Ok(());
            }
            match seg[0] {
                Op::Put { .. } => {
                    let pairs: Vec<(u32, u32)> = seg
                        .iter()
                        .map(|op| match *op {
                            Op::Put { key, value } => (key, value),
                            _ => unreachable!("segments are same-kind"),
                        })
                        .collect();
                    let r = svc.put_batch(&pairs)?;
                    responses.extend(std::iter::repeat_n(Response::Put, pairs.len()));
                    report.merge(&r.report);
                }
                Op::Get { .. } => {
                    let keys: Vec<u32> = seg.iter().map(Op::key).collect();
                    let r = svc.get_batch(&keys)?;
                    responses.extend(r.values.into_iter().map(|value| Response::Get { value }));
                    report.merge(&r.report);
                }
                Op::Delete { .. } => {
                    let keys: Vec<u32> = seg.iter().map(Op::key).collect();
                    let r = svc.delete_batch(&keys)?;
                    responses.extend(r.hits.into_iter().map(|hit| Response::Delete { hit }));
                    report.merge(&r.report);
                }
            }
            Ok(())
        };
        for (i, op) in ops.iter().enumerate() {
            let kind_changed = i > start
                && std::mem::discriminant(op) != std::mem::discriminant(&ops[start]);
            let dup_write = op.is_write() && !kind_changed && i > start && seen.contains(&op.key());
            if kind_changed || dup_write {
                flush(self, &ops[start..i], &mut responses, &mut report)?;
                start = i;
                seen.clear();
            }
            if op.is_write() {
                seen.insert(op.key());
            }
        }
        flush(self, &ops[start..], &mut responses, &mut report)?;
        Ok((responses, report))
    }
}

/// Lowers a YCSB-style mixed stream onto front-door [`Op`]s: reads
/// become gets, updates become puts, and each read-modify-write expands
/// into a get immediately followed by a put of the same key (the
/// dependent pair YCSB F models). The output is therefore up to twice as
/// long as the input; feed it to [`MapService::execute`], whose
/// duplicate-key segmentation keeps the expansion response-identical to
/// sequential execution.
#[must_use]
pub fn lower_mixed(ops: &[workloads::ycsb::MixedOp]) -> Vec<Op> {
    use workloads::ycsb::MixedOp;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match *op {
            MixedOp::Read { key } => out.push(Op::Get { key }),
            MixedOp::Update { key, value } => out.push(Op::Put { key, value }),
            MixedOp::ReadModifyWrite { key, value } => {
                out.push(Op::Get { key });
                out.push(Op::Put { key, value });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_report_merges_additively() {
        let mut a = OpReport {
            elements: 10,
            launches: 1,
            time: 1.0,
            backoff_time: 0.25,
            counters: CounterSnapshot {
                transactions: 5,
                ..CounterSnapshot::default()
            },
            stages: vec![],
        };
        let b = OpReport {
            elements: 20,
            launches: 2,
            time: 2.0,
            backoff_time: 0.0,
            counters: CounterSnapshot {
                transactions: 7,
                ..CounterSnapshot::default()
            },
            stages: vec![],
        };
        a.merge(&b);
        assert_eq!(a.elements, 30);
        assert_eq!(a.launches, 3);
        assert!((a.time - 3.0).abs() < 1e-12);
        assert!((a.backoff_time - 0.25).abs() < 1e-12);
        assert_eq!(a.counters.transactions, 12);
        assert!((a.ops_per_sec() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn from_cascade_extracts_backoff() {
        let mut c = CascadeReport::new(100);
        c.push(CascadeStage::Insert, 1.0, 0);
        c.push(CascadeStage::Backoff, 0.5, 0);
        let r = OpReport::from_cascade(&c);
        assert_eq!(r.elements, 100);
        assert!((r.time - 1.5).abs() < 1e-12);
        assert!((r.backoff_time - 0.5).abs() < 1e-12);
        assert_eq!(r.stages.len(), 2);
    }

    #[test]
    fn op_error_conversions_cover_every_variant() {
        let e: OpError = InsertError::ProbingExhausted { failed: 3 }.into();
        assert!(matches!(e, OpError::ProbingExhausted { failed: 3 }));
        let t = TransferError {
            src: 0,
            dst: 1,
            attempts: 2,
        };
        let e: OpError = RetrieveError::Transfer(t).into();
        assert_eq!(e, OpError::Transfer(t));
        let e: OpError = RetrieveError::Migration(InsertError::DeviceLost { device: 1 }).into();
        assert!(matches!(e, OpError::Migration(_)));
        assert!(e.to_string().contains("migration"));
    }

    /// A trivial in-memory MapService used to pin down `execute`'s
    /// segmentation behavior independent of the GPU backends.
    #[derive(Default)]
    struct ModelService {
        map: std::collections::HashMap<u32, u32>,
        batches: Vec<(char, usize)>,
    }

    impl MapService for ModelService {
        fn put_batch(&mut self, pairs: &[(u32, u32)]) -> Result<PutResponse, OpError> {
            self.batches.push(('p', pairs.len()));
            let mut new_slots = 0;
            for &(k, v) in pairs {
                if self.map.insert(k, v).is_none() {
                    new_slots += 1;
                }
            }
            Ok(PutResponse {
                new_slots,
                updates: pairs.len() as u64 - new_slots,
                reclaimed: 0,
                report: OpReport {
                    elements: pairs.len() as u64,
                    ..OpReport::default()
                },
            })
        }

        fn get_batch(&mut self, keys: &[u32]) -> Result<GetResponse, OpError> {
            self.batches.push(('g', keys.len()));
            Ok(GetResponse {
                values: keys.iter().map(|k| self.map.get(k).copied()).collect(),
                report: OpReport {
                    elements: keys.len() as u64,
                    ..OpReport::default()
                },
            })
        }

        fn delete_batch(&mut self, keys: &[u32]) -> Result<DeleteResponse, OpError> {
            self.batches.push(('d', keys.len()));
            let hits: Vec<bool> = keys.iter().map(|k| self.map.remove(k).is_some()).collect();
            let erased = hits.iter().filter(|&&h| h).count() as u64;
            Ok(DeleteResponse {
                hits,
                erased,
                report: OpReport {
                    elements: keys.len() as u64,
                    ..OpReport::default()
                },
            })
        }

        fn live_len(&self) -> u64 {
            self.map.len() as u64
        }

        fn slot_capacity(&self) -> u64 {
            1 << 20
        }
    }

    #[test]
    fn execute_coalesces_same_kind_runs() {
        let mut svc = ModelService::default();
        let ops = vec![
            Op::Put { key: 1, value: 10 },
            Op::Put { key: 2, value: 20 },
            Op::Get { key: 1 },
            Op::Get { key: 9 },
            Op::Delete { key: 1 },
            Op::Delete { key: 2 },
        ];
        let (resp, report) = svc.execute(&ops).unwrap();
        assert_eq!(svc.batches, vec![('p', 2), ('g', 2), ('d', 2)]);
        assert_eq!(
            resp,
            vec![
                Response::Put,
                Response::Put,
                Response::Get { value: Some(10) },
                Response::Get { value: None },
                Response::Delete { hit: true },
                Response::Delete { hit: true },
            ]
        );
        assert_eq!(report.elements, 6);
    }

    #[test]
    fn execute_splits_put_segments_on_duplicate_keys() {
        let mut svc = ModelService::default();
        let ops = vec![
            Op::Put { key: 7, value: 1 },
            Op::Put { key: 8, value: 2 },
            Op::Put { key: 7, value: 3 }, // duplicate → new batch
            Op::Get { key: 7 },
        ];
        let (resp, _) = svc.execute(&ops).unwrap();
        assert_eq!(svc.batches, vec![('p', 2), ('p', 1), ('g', 1)]);
        // sequential semantics: the later put wins
        assert_eq!(resp[3], Response::Get { value: Some(3) });
    }

    #[test]
    fn execute_keeps_duplicate_gets_in_one_batch() {
        let mut svc = ModelService::default();
        svc.map.insert(5, 50);
        let ops = vec![Op::Get { key: 5 }, Op::Get { key: 5 }, Op::Get { key: 5 }];
        let (resp, _) = svc.execute(&ops).unwrap();
        assert_eq!(svc.batches, vec![('g', 3)]);
        assert!(resp
            .iter()
            .all(|r| *r == Response::Get { value: Some(50) }));
    }

    #[test]
    fn execute_splits_delete_segments_on_duplicate_keys() {
        let mut svc = ModelService::default();
        svc.map.insert(3, 30);
        let ops = vec![Op::Delete { key: 3 }, Op::Delete { key: 3 }];
        let (resp, _) = svc.execute(&ops).unwrap();
        assert_eq!(svc.batches, vec![('d', 1), ('d', 1)]);
        assert_eq!(
            resp,
            vec![Response::Delete { hit: true }, Response::Delete { hit: false }]
        );
    }

    #[test]
    fn lower_mixed_expands_rmw_into_get_then_put() {
        use workloads::ycsb::MixedOp;
        let mixed = vec![
            MixedOp::Read { key: 1 },
            MixedOp::ReadModifyWrite { key: 2, value: 9 },
            MixedOp::Update { key: 3, value: 4 },
        ];
        assert_eq!(
            lower_mixed(&mixed),
            vec![
                Op::Get { key: 1 },
                Op::Get { key: 2 },
                Op::Put { key: 2, value: 9 },
                Op::Put { key: 3, value: 4 },
            ]
        );
    }

    #[test]
    fn lowered_rmw_reads_the_pre_write_value() {
        use workloads::ycsb::MixedOp;
        let mut svc = ModelService::default();
        svc.map.insert(7, 70);
        let ops = lower_mixed(&[MixedOp::ReadModifyWrite { key: 7, value: 71 }]);
        let (resp, _) = svc.execute(&ops).unwrap();
        // the read half sees the old value; the modify half lands after
        assert_eq!(resp[0], Response::Get { value: Some(70) });
        assert_eq!(svc.map.get(&7), Some(&71));
    }

    #[test]
    fn execute_empty_stream_is_empty() {
        let mut svc = ModelService::default();
        let (resp, report) = svc.execute(&[]).unwrap();
        assert!(resp.is_empty());
        assert_eq!(report.elements, 0);
        assert!(svc.batches.is_empty());
    }
}
