//! Asynchronous overlapping of host-sided cascades (Figs. 5 and 11).
//!
//! A host-sided operation over a large dataset is issued as a stream of
//! batches; each batch's cascade H2D → MST → INS (or H2D → MST → QRY →
//! MST⁻¹ → D2H) is sequential, but the stages of different batches
//! overlap because they occupy different hardware resources: the PCIe
//! bus (up and down are full duplex), the NVLink fabric and the GPUs'
//! video memory. The user picks the number of CPU threads; batches are
//! issued round-robin, and within a thread batches stay in order.
//!
//! Functionally the batches execute one after another (correctness does
//! not depend on the overlap); the *timing* overlay is computed on
//! simulated resource timelines by [`interconnect::PipelineSim`].

use crate::distributed::DistributedHashMap;
use crate::errors::InsertError;
use crate::stats::{CascadeReport, CascadeStage};
use interconnect::{PipelineSim, Stage};

/// Pipeline resource indices (the bars of Fig. 11, matching the Fig. 5
/// legend: H2D = PCIe bus, MST = NVLink network, INS = video memory).
pub mod resource {
    /// PCIe host→device direction (PCIe is full duplex; retrieval is
    /// still capped at ≈55% of the aggregate because each batch crosses
    /// the bus twice with 8-byte words both ways).
    pub const PCIE_UP: usize = 0;
    /// PCIe device→host direction.
    pub const PCIE_DOWN: usize = 1;
    /// NVLink fabric (multisplit + transposition phases).
    pub const NVLINK: usize = 2;
    /// Video memory / SMs (insert & query kernels).
    pub const VRAM: usize = 3;
    /// Number of resources.
    pub const COUNT: usize = 4;
}

/// Result of an overlapped operation.
#[derive(Debug, Clone)]
pub struct OverlapReport {
    /// Makespan with the requested number of threads.
    pub makespan: f64,
    /// Makespan of the fully sequential issue (`threads = 1`) of the same
    /// batches — the `Ins1`/`Ret1` baseline of Fig. 11.
    pub sequential: f64,
    /// Accumulated busy time per resource (see [`resource`]).
    pub busy: Vec<f64>,
    /// Number of batches.
    pub batches: usize,
    /// Elements processed.
    pub elements: u64,
    /// Per-batch cascade reports (functional truth).
    pub cascades: Vec<CascadeReport>,
}

impl OverlapReport {
    /// Fractional time saved by overlapping vs sequential issue.
    #[must_use]
    pub fn saving(&self) -> f64 {
        if self.sequential == 0.0 {
            0.0
        } else {
            1.0 - self.makespan / self.sequential
        }
    }

    /// Aggregate rate at the overlapped makespan.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.elements as f64 / self.makespan
        }
    }
}

/// Maps a cascade report to pipeline stages on the four resources,
/// extrapolating each stage to `scale`× its functional element count.
fn stages_of(report: &CascadeReport, scale: f64) -> Vec<Stage> {
    let mut out = Vec::new();
    let mut push = |resource: usize, duration: f64| {
        if duration > 0.0 {
            out.push(Stage { resource, duration });
        }
    };
    // Consecutive same-resource phases merge naturally by being scheduled
    // back-to-back; order must follow the cascade.
    for s in &report.stages {
        let t = s.scaled_time(scale);
        match s.stage {
            CascadeStage::H2D => push(resource::PCIE_UP, t),
            // MST = multisplit + transposition; Fig. 5 bins it as "mainly
            // NVLink"
            CascadeStage::Multisplit | CascadeStage::Transpose | CascadeStage::TransposeBack => {
                push(resource::NVLINK, t)
            }
            CascadeStage::Insert | CascadeStage::Query | CascadeStage::Scatter => {
                push(resource::VRAM, t);
            }
            CascadeStage::D2H => push(resource::PCIE_DOWN, t),
            // Backoff waits stem from retried transfers and launches; the
            // cascade is blocked on the fabric while they drain, so they
            // occupy the NVLink timeline. Healthy cascades never contain
            // this stage, leaving the pipeline plan untouched. After a
            // quarantine the subsequent cascades' reports already reflect
            // the degraded node (fewer GPUs, re-spread batches), so the
            // scheduler re-plans around the lost resource for free.
            CascadeStage::Backoff => push(resource::NVLINK, t),
        }
    }
    out
}

impl DistributedHashMap {
    /// Inserts `pairs` in batches of `batch_size` with `threads`
    /// overlapping streams (the paper's `Ins1`/`Ins2`/`Ins4` variants).
    ///
    /// # Errors
    /// Propagates the first batch failure.
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or `threads == 0`.
    pub fn insert_overlapped(
        &self,
        pairs: &[(u32, u32)],
        batch_size: usize,
        threads: usize,
    ) -> Result<OverlapReport, InsertError> {
        assert!(batch_size > 0 && threads > 0);
        let mut cascades = Vec::new();
        for chunk in pairs.chunks(batch_size) {
            cascades.push(self.insert_from_host(chunk)?);
        }
        Ok(self.overlay(cascades, pairs.len() as u64, threads, 1.0))
    }

    /// [`DistributedHashMap::insert_overlapped`] with each batch's stage
    /// durations extrapolated to `scale`× the functional batch size (the
    /// Fig. 11 harness runs 2²⁴-element paper batches as scaled-down
    /// functional batches).
    ///
    /// # Errors
    /// Propagates the first batch failure.
    pub fn insert_overlapped_scaled(
        &self,
        pairs: &[(u32, u32)],
        batch_size: usize,
        threads: usize,
        scale: f64,
    ) -> Result<OverlapReport, InsertError> {
        assert!(batch_size > 0 && threads > 0);
        let mut cascades = Vec::new();
        for chunk in pairs.chunks(batch_size) {
            cascades.push(self.insert_from_host(chunk)?);
        }
        Ok(self.overlay(cascades, pairs.len() as u64, threads, scale))
    }

    /// Retrieves `keys` in batches with overlapping streams
    /// (`Ret1`/`Ret2`/`Ret4`). Returns results in the original order.
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or `threads == 0`.
    #[must_use]
    pub fn retrieve_overlapped(
        &self,
        keys: &[u32],
        batch_size: usize,
        threads: usize,
    ) -> (Vec<Option<u32>>, OverlapReport) {
        assert!(batch_size > 0 && threads > 0);
        let mut cascades = Vec::new();
        let mut results = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(batch_size) {
            let (r, rep) = self
                .retrieve_from_host_impl(chunk)
                .expect("scratch for overlapped retrieve");
            results.extend(r);
            cascades.push(rep);
        }
        let report = self.overlay(cascades, keys.len() as u64, threads, 1.0);
        (results, report)
    }

    /// [`DistributedHashMap::retrieve_overlapped`] at modeled scale
    /// (cf. [`DistributedHashMap::insert_overlapped_scaled`]).
    ///
    /// # Panics
    /// Panics if `batch_size == 0` or `threads == 0`.
    #[must_use]
    pub fn retrieve_overlapped_scaled(
        &self,
        keys: &[u32],
        batch_size: usize,
        threads: usize,
        scale: f64,
    ) -> (Vec<Option<u32>>, OverlapReport) {
        assert!(batch_size > 0 && threads > 0);
        let mut cascades = Vec::new();
        let mut results = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(batch_size) {
            let (r, rep) = self
                .retrieve_from_host_impl(chunk)
                .expect("scratch for overlapped retrieve");
            results.extend(r);
            cascades.push(rep);
        }
        let report = self.overlay(cascades, keys.len() as u64, threads, scale);
        (results, report)
    }

    /// Computes the overlapped and sequential makespans of a batch stream.
    fn overlay(
        &self,
        cascades: Vec<CascadeReport>,
        elements: u64,
        threads: usize,
        scale: f64,
    ) -> OverlapReport {
        let stage_lists: Vec<Vec<Stage>> = cascades.iter().map(|c| stages_of(c, scale)).collect();
        let overlapped = PipelineSim::new(resource::COUNT).run(&stage_lists, threads);
        let sequential = PipelineSim::new(resource::COUNT).run(&stage_lists, 1);
        OverlapReport {
            makespan: overlapped.makespan,
            sequential: sequential.makespan,
            busy: overlapped.busy,
            batches: cascades.len(),
            elements,
            cascades,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use gpu_sim::Device;
    use interconnect::Topology;
    use std::sync::Arc;

    fn node(m: usize) -> DistributedHashMap {
        let devices: Vec<Arc<Device>> = (0..m)
            .map(|i| Arc::new(Device::with_words(i, 1 << 17)))
            .collect();
        DistributedHashMap::new(devices, 4096, Config::default(), Topology::p100_quad(m)).unwrap()
    }

    #[test]
    fn overlapped_insert_is_faster_and_correct() {
        let d = node(4);
        let pairs: Vec<(u32, u32)> = (0..8000u32).map(|i| (i * 19 + 11, i)).collect();
        let rep = d.insert_overlapped(&pairs, 1000, 4).unwrap();
        assert_eq!(rep.batches, 8);
        assert!(rep.makespan < rep.sequential, "no overlap benefit");
        assert!(rep.saving() > 0.15, "saving {:.3}", rep.saving());
        assert_eq!(d.len(), 8000);
    }

    #[test]
    fn overlapped_retrieve_preserves_order() {
        let d = node(2);
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 23 + 1, i + 7)).collect();
        d.insert_overlapped(&pairs, 500, 2).unwrap();
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let (results, rep) = d.retrieve_overlapped(&keys, 300, 4);
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(results[i], Some(p.1));
        }
        assert!(rep.saving() > 0.0);
        assert!(rep.ops_per_sec() > 0.0);
    }

    #[test]
    fn single_thread_equals_sequential() {
        let d = node(2);
        let pairs: Vec<(u32, u32)> = (0..1000u32).map(|i| (i * 29 + 5, i)).collect();
        let rep = d.insert_overlapped(&pairs, 250, 1).unwrap();
        assert!((rep.makespan - rep.sequential).abs() < 1e-12);
        assert_eq!(rep.saving(), 0.0);
    }

    #[test]
    fn busy_times_cover_all_stages() {
        let d = node(4);
        let pairs: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 31 + 9, i)).collect();
        let rep = d.insert_overlapped(&pairs, 1000, 2).unwrap();
        assert!(rep.busy[resource::PCIE_UP] > 0.0);
        assert!(rep.busy[resource::NVLINK] > 0.0);
        assert!(rep.busy[resource::VRAM] > 0.0);
    }
}
