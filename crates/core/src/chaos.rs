//! Graceful degradation for the multi-GPU cascades under fault injection.
//!
//! The chaos layer (DESIGN.md §6.3) threads a deterministic
//! [`gpu_sim::FaultPlan`] through the distributed cascades: transient
//! kernel-launch failures and dropped transfers are retried with the
//! exponential backoff of [`gpu_sim::RetryPolicy`]; a GPU that exhausts
//! its retry budget is **quarantined** — its partition is re-split across
//! the survivors via the same multisplit path healthy cascades use, and
//! every subsequent operation routes around it through a [`Router`].
//!
//! All fault decisions are stateless functions of
//! `(seed, site, coordinates, attempt)`, so any failure replays
//! bit-for-bit from the `WD_FAULT` / `WD_FAULT_SEED` pair printed with
//! it (composable with the `WD_SCHED_*` scheduler hints — see
//! [`gpu_sim::FaultPlan::replay_hint_with`]).

use gpu_sim::FaultPlan;
use hashes::PartitionFn;

/// Launch-site tags distinguishing the fault rolls of the cascades'
/// kernel families (transfer sites live in [`gpu_sim::fault::site`]).
pub mod launch_site {
    /// Per-GPU multisplit passes.
    pub const MULTISPLIT: u64 = 0x00c0_de01;
    /// Hash-table insert kernels.
    pub const INSERT: u64 = 0x00c0_de02;
    /// Hash-table query kernels.
    pub const QUERY: u64 = 0x00c0_de03;
    /// Erase (tombstoning) kernels.
    pub const ERASE: u64 = 0x00c0_de04;
    /// Sharded-map routing + shard kernels.
    pub const SHARD: u64 = 0x00c0_de05;
}

/// Fault-aware key router: primary partition function plus a
/// deterministic re-split of quarantined partitions across the
/// survivors.
///
/// Healthy keys (primary GPU live) route exactly as the plain partition
/// function does — with an empty quarantine mask the router *is* the
/// partition function, so the fault-off path is unchanged. A key whose
/// primary GPU is quarantined is re-split by an independent fallback
/// hash over the live GPUs, so a lost partition spreads evenly instead
/// of dogpiling one survivor.
#[derive(Debug, Clone)]
pub struct Router {
    primary: PartitionFn,
    fallback: PartitionFn,
    mask: u32,
    live: Vec<u32>,
}

impl Router {
    /// Builds a router over `primary`'s `m` partitions with the given
    /// quarantine `mask` (bit `g` set ⇒ GPU `g` is quarantined).
    ///
    /// # Panics
    /// Panics if the mask quarantines every GPU.
    #[must_use]
    pub fn new(primary: PartitionFn, fallback: PartitionFn, mask: u32) -> Self {
        let live: Vec<u32> = (0..primary.m).filter(|&g| mask & (1 << g) == 0).collect();
        assert!(!live.is_empty(), "router needs at least one live GPU");
        Self {
            primary,
            fallback,
            mask,
            live,
        }
    }

    /// The GPU that owns key `k` under the current quarantine mask.
    #[must_use]
    pub fn route(&self, k: u32) -> u32 {
        let p = self.primary.part(k);
        if self.mask & (1 << p) == 0 {
            p
        } else {
            self.live[self.fallback.part(k) as usize % self.live.len()]
        }
    }

    /// The quarantine mask this router was built with.
    #[must_use]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Number of live GPUs.
    #[must_use]
    pub fn num_live(&self) -> usize {
        self.live.len()
    }

    /// Live GPU indices in ascending order.
    #[must_use]
    pub fn live(&self) -> &[u32] {
        &self.live
    }

    /// This router with GPU `j` additionally masked, or `None` if that
    /// would leave no live GPU. Used by the premature-failover mutation
    /// double to compute where a batch *would* land after a failover.
    #[must_use]
    pub fn also_masking(&self, j: usize) -> Option<Router> {
        let mask = self.mask | (1 << j);
        if (0..self.primary.m).all(|g| mask & (1 << g) != 0) {
            return None;
        }
        Some(Router::new(self.primary, self.fallback, mask))
    }
}

/// Mutable chaos state of a distributed map, behind one lock: the armed
/// plan, the quarantine mask and the degraded-mode counters.
#[derive(Debug)]
pub(crate) struct ChaosState {
    /// The active fault plan (initially `Config::fault`, overridable at
    /// runtime via `DistributedHashMap::set_fault_plan`).
    pub plan: FaultPlan,
    /// Bit `g` set ⇒ GPU `g` is quarantined.
    pub mask: u32,
    /// Degraded-mode counters.
    pub stats: crate::stats::DegradedStats,
}

impl ChaosState {
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            mask: 0,
            stats: crate::stats::DegradedStats::default(),
        }
    }
}

/// Applies `plan`'s per-device straggler model to a kernel time at the
/// orchestration layer: a straggling device's kernels run `factor`×
/// slower plus a fixed stall. Exactly `t` for non-straggling devices —
/// no float op touches the healthy path, preserving bit-identity.
pub(crate) fn straggled(plan: &FaultPlan, device: usize, t: f64) -> f64 {
    let f = plan.straggle_factor(device);
    let s = plan.launch_stall(device);
    if f > 1.0 || s > 0.0 {
        t * f + s
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(mask: u32) -> Router {
        Router::new(PartitionFn::new(4, 1), PartitionFn::new(4, 2), mask)
    }

    #[test]
    fn empty_mask_is_the_primary_partition() {
        let r = router(0);
        let p = PartitionFn::new(4, 1);
        for k in 0..10_000u32 {
            assert_eq!(r.route(k), p.part(k));
        }
        assert_eq!(r.num_live(), 4);
    }

    #[test]
    fn quarantined_partition_respreads_over_survivors() {
        let r = router(0b0100); // GPU 2 quarantined
        let p = PartitionFn::new(4, 1);
        let mut fallback_counts = [0u32; 4];
        for k in 0..40_000u32 {
            let t = r.route(k);
            assert_ne!(t, 2, "key {k} routed to a quarantined GPU");
            if p.part(k) == 2 {
                fallback_counts[t as usize] += 1;
            } else {
                assert_eq!(t, p.part(k), "live key {k} re-routed");
            }
        }
        // the lost partition spreads over all three survivors, roughly
        // evenly (each ≥ half its fair share)
        let spread: u32 = fallback_counts.iter().sum();
        for &g in r.live() {
            assert!(
                fallback_counts[g as usize] > spread / 6,
                "survivor {g} got {fallback_counts:?}"
            );
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let a = router(0b0001);
        let b = router(0b0001);
        for k in 0..1000u32 {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    fn also_masking_runs_out_of_gpus() {
        let r = router(0b0111);
        assert_eq!(r.num_live(), 1);
        assert!(r.also_masking(3).is_none());
        let r = router(0b0011);
        let r2 = r.also_masking(2).unwrap();
        assert_eq!(r2.live(), &[3]);
    }

    #[test]
    #[should_panic(expected = "at least one live GPU")]
    fn full_mask_rejected() {
        let _ = router(0b1111);
    }

    #[test]
    fn straggled_is_identity_when_disarmed() {
        let plan = FaultPlan::default();
        let t = 1.234e-3;
        assert_eq!(straggled(&plan, 0, t).to_bits(), t.to_bits());
        let plan = FaultPlan::default().with_straggler(1, 3.0, 1e-4);
        assert_eq!(straggled(&plan, 0, t).to_bits(), t.to_bits());
        assert!((straggled(&plan, 1, t) - (3.0 * t + 1e-4)).abs() < 1e-15);
    }
}
