//! Per-operation history recording for linearizability checking.
//!
//! A [`HistoryRecorder`] attached to a map stamps every logical operation
//! (one coalesced group's insert / retrieve / erase) with an invocation
//! and a response timestamp from a shared logical clock, plus the
//! operation's observed outcome. The resulting [`OpEvent`] list is a
//! *history* in the Herlihy–Wing sense; [`crate::linearize`] searches it
//! for a valid linearization.
//!
//! Recording is opt-in and zero-cost when off: kernels carry an
//! `Option<&HistoryRecorder>` that is `None` unless a recorder was
//! attached via [`crate::GpuHashMap::set_recorder`] (or the multimap /
//! distributed equivalents), and the only per-op cost with recording on
//! is two relaxed `fetch_add`s and one mutex push — none of which is
//! billed as modeled device traffic.
//!
//! Under a stepwise [`gpu_sim::Schedule`] exactly one group executes
//! between preemption points, so timestamps and event order are a pure
//! function of the schedule seed: replaying a seed reproduces the history
//! bit-for-bit.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// The invocation side of an operation: what was asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Single-value insert of `value` (duplicate keys update in place).
    Insert {
        /// Value to store.
        value: u32,
    },
    /// Multi-map insert of `value` (duplicate keys accumulate).
    InsertMulti {
        /// Value to append.
        value: u32,
    },
    /// Single-value retrieve.
    Retrieve,
    /// Multi-map retrieve of all values under the key.
    RetrieveAll,
    /// Erase (tombstone) of the key.
    Erase,
}

/// The response side of an operation: what it reported.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpResponse {
    /// Insert succeeded; `new_slot` is whether a vacant slot was claimed
    /// (as opposed to updating an already-present key).
    Inserted {
        /// `true` iff the pair claimed a previously vacant slot.
        new_slot: bool,
    },
    /// Insert exhausted its probing budget.
    InsertFailed,
    /// Retrieve hit: the stored value.
    Found {
        /// The value observed.
        value: u32,
    },
    /// Retrieve miss.
    NotFound,
    /// Multi-map retrieve: all values under the key, sorted ascending.
    FoundAll {
        /// The observed values, sorted.
        values: Vec<u32>,
    },
    /// Erase response: whether the key was present (and is now gone).
    Erased {
        /// `true` iff a live entry was tombstoned.
        hit: bool,
    },
}

/// One completed operation of a recorded history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEvent {
    /// The key operated on.
    pub key: u32,
    /// What was asked.
    pub kind: OpKind,
    /// What was reported.
    pub response: OpResponse,
    /// Logical invocation timestamp (taken before the op's first table
    /// access).
    pub invoked: u64,
    /// Logical response timestamp (taken after the op's outcome is
    /// decided).
    pub responded: u64,
}

impl OpEvent {
    /// Real-time precedence: `self` responded before `other` was invoked.
    /// Two ops where neither precedes the other are concurrent.
    #[must_use]
    pub fn precedes(&self, other: &OpEvent) -> bool {
        self.responded < other.invoked
    }
}

/// Records per-operation invocation/response events against a shared
/// logical clock. Attach one (via `Arc`) to any number of maps; the
/// shared clock keeps cross-map real-time order consistent.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: AtomicU64,
    events: Mutex<Vec<OpEvent>>,
}

impl HistoryRecorder {
    /// A fresh recorder with an empty history and clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps an invocation; pass the returned timestamp to
    /// [`HistoryRecorder::complete`].
    #[must_use]
    pub fn invoke(&self) -> u64 {
        self.clock.fetch_add(1, SeqCst)
    }

    /// Stamps the response and appends the completed event.
    pub fn complete(&self, key: u32, kind: OpKind, response: OpResponse, invoked: u64) {
        let responded = self.clock.fetch_add(1, SeqCst);
        self.events.lock().push(OpEvent {
            key,
            kind,
            response,
            invoked,
            responded,
        });
    }

    /// Records one migrated key as a legal erase→insert pair: an
    /// `Erase { hit: true }` on the source table immediately followed by
    /// an `Insert { new_slot }` of the same value into the target, with
    /// adjacent timestamps. Incremental resize (and the chaos `Router`'s
    /// quarantine migration) use this so the Wing–Gong checker validates
    /// table movement like any other history: the pair preserves the
    /// key's last-written value across the move.
    pub fn record_migration_pair(&self, key: u32, value: u32, new_slot: bool) {
        let erase_inv = self.invoke();
        self.complete(key, OpKind::Erase, OpResponse::Erased { hit: true }, erase_inv);
        let insert_inv = self.invoke();
        self.complete(
            key,
            OpKind::Insert { value },
            OpResponse::Inserted { new_slot },
            insert_inv,
        );
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the history so far.
    #[must_use]
    pub fn events(&self) -> Vec<OpEvent> {
        self.events.lock().clone()
    }

    /// Drains the history (the clock keeps running).
    #[must_use]
    pub fn take(&self) -> Vec<OpEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_strictly_increasing() {
        let rec = HistoryRecorder::new();
        let i1 = rec.invoke();
        rec.complete(1, OpKind::Retrieve, OpResponse::NotFound, i1);
        let i2 = rec.invoke();
        rec.complete(
            1,
            OpKind::Insert { value: 9 },
            OpResponse::Inserted { new_slot: true },
            i2,
        );
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].invoked < ev[0].responded);
        assert!(ev[0].responded < ev[1].invoked);
        assert!(ev[0].precedes(&ev[1]));
        assert!(!ev[1].precedes(&ev[0]));
    }

    #[test]
    fn migration_pair_is_erase_then_insert_of_same_value() {
        let rec = HistoryRecorder::new();
        let i = rec.invoke();
        rec.complete(
            5,
            OpKind::Insert { value: 42 },
            OpResponse::Inserted { new_slot: true },
            i,
        );
        rec.record_migration_pair(5, 42, true);
        let ev = rec.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[1].kind, OpKind::Erase);
        assert_eq!(ev[1].response, OpResponse::Erased { hit: true });
        assert_eq!(ev[2].kind, OpKind::Insert { value: 42 });
        assert!(ev[1].precedes(&ev[2]), "erase must precede the re-insert");
    }

    #[test]
    fn take_drains_but_keeps_clock() {
        let rec = HistoryRecorder::new();
        let i = rec.invoke();
        rec.complete(7, OpKind::Erase, OpResponse::Erased { hit: false }, i);
        assert_eq!(rec.take().len(), 1);
        assert!(rec.is_empty());
        let i2 = rec.invoke();
        assert!(i2 >= 2, "clock must not reset on take");
    }
}
