//! Wing–Gong linearizability checker over recorded histories.
//!
//! The checker implements the classic Wing–Gong search: a history is
//! linearizable iff some total order of its operations (1) respects real
//! time — an op that responded before another was invoked comes first —
//! and (2) is a legal sequential execution of the object. Keys of an
//! open-addressing map are independent, so the search decomposes into one
//! sub-history per key, each checked against *last-write-wins register*
//! semantics (single-value maps) or *multiset register* semantics
//! (multi-maps).
//!
//! Sequential LWW-register semantics per key:
//!
//! * `Insert{v}` → `Inserted{new_slot}` is legal iff `new_slot` equals
//!   "the key was absent"; the state becomes `Some(v)`.
//! * `Retrieve` → `Found{v}` is legal iff the state is `Some(v)`;
//!   `NotFound` iff the state is `None`.
//! * `Erase` → `Erased{hit}` is legal iff `hit` equals "the key was
//!   present"; the state becomes `None`.
//! * `InsertFailed` (probing exhausted) leaves the state unchanged.
//!
//! The search memoizes on (remaining-operation set, register state), so
//! histories of concurrent identical ops don't explode factorially. At
//! most 128 operations per key are supported — recorded test histories
//! stay far below that.
//!
//! # Parallelism
//!
//! Per-key sub-histories are independent by construction, so
//! [`check_linearizable`] and [`check_linearizable_multi`] fan the
//! per-key searches across the rayon pool once a history is large enough
//! to amortize the spawn cost ([`PARALLEL_THRESHOLD`] operations).
//! Verdicts are **identical** to the serial path: every key is checked
//! regardless of other keys' outcomes and the reported violation is
//! always the smallest offending key's (the same deterministic choice the
//! serial scan makes). The always-serial entry points
//! [`check_linearizable_serial`] / [`check_linearizable_multi_serial`]
//! exist for differential testing and for callers already saturating the
//! thread pool.

use crate::history::{OpEvent, OpKind, OpResponse};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Histories with fewer total operations than this are checked serially
/// even via the parallel entry points: scoped-thread spawn costs more
/// than the whole search at this size.
const PARALLEL_THRESHOLD: usize = 64;

/// Evidence that a history is not linearizable.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key whose sub-history admits no linearization.
    pub key: u32,
    /// That key's complete sub-history (sorted by invocation).
    pub ops: Vec<OpEvent>,
    /// Human-readable summary.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "history not linearizable for key {}: {}", self.key, self.detail)?;
        for op in &self.ops {
            writeln!(
                f,
                "  [{:>4},{:>4}] {:?} -> {:?}",
                op.invoked, op.responded, op.kind, op.response
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Checks a single-value map history (LWW register per key), fanning the
/// independent per-key searches across the rayon pool for large
/// histories.
///
/// # Errors
/// Returns the smallest offending key's sub-history when no
/// linearization exists.
pub fn check_linearizable(history: &[OpEvent]) -> Result<(), Violation> {
    check_by_key(history, &None::<u32>, apply_single, history.len() >= PARALLEL_THRESHOLD)
}

/// Checks a multi-map history (multiset register per key), fanning the
/// independent per-key searches across the rayon pool for large
/// histories.
///
/// # Errors
/// Returns the smallest offending key's sub-history when no
/// linearization exists.
pub fn check_linearizable_multi(history: &[OpEvent]) -> Result<(), Violation> {
    check_by_key(history, &Vec::<u32>::new(), apply_multi, history.len() >= PARALLEL_THRESHOLD)
}

/// [`check_linearizable`], forced onto the calling thread. Verdicts are
/// identical to the parallel path by construction; this entry point
/// exists for differential testing and for callers that are themselves
/// a rayon worker.
///
/// # Errors
/// Returns the smallest offending key's sub-history when no
/// linearization exists.
pub fn check_linearizable_serial(history: &[OpEvent]) -> Result<(), Violation> {
    check_by_key(history, &None::<u32>, apply_single, false)
}

/// [`check_linearizable_multi`], forced onto the calling thread (see
/// [`check_linearizable_serial`]).
///
/// # Errors
/// Returns the smallest offending key's sub-history when no
/// linearization exists.
pub fn check_linearizable_multi_serial(history: &[OpEvent]) -> Result<(), Violation> {
    check_by_key(history, &Vec::<u32>::new(), apply_multi, false)
}

/// Sequential LWW-register step; `None` means the (op, response) pair is
/// illegal in `state`.
fn apply_single(state: &Option<u32>, op: &OpEvent) -> Option<Option<u32>> {
    match (&op.kind, &op.response) {
        (OpKind::Insert { value }, OpResponse::Inserted { new_slot }) => {
            (*new_slot == state.is_none()).then_some(Some(*value))
        }
        (OpKind::Insert { .. }, OpResponse::InsertFailed) => Some(*state),
        (OpKind::Retrieve, OpResponse::Found { value }) => {
            (*state == Some(*value)).then_some(*state)
        }
        (OpKind::Retrieve, OpResponse::NotFound) => state.is_none().then_some(*state),
        (OpKind::Erase, OpResponse::Erased { hit }) => {
            (*hit == state.is_some()).then_some(None)
        }
        _ => None, // mixed-up kind/response — never legal
    }
}

/// Sequential multiset-register step (state is the sorted value multiset).
#[allow(clippy::ptr_arg)] // the generic search wants Fn(&S, _) with S = Vec<u32>
fn apply_multi(state: &Vec<u32>, op: &OpEvent) -> Option<Vec<u32>> {
    match (&op.kind, &op.response) {
        (OpKind::InsertMulti { value }, OpResponse::Inserted { new_slot: true }) => {
            let mut next = state.clone();
            let at = next.partition_point(|&v| v < *value);
            next.insert(at, *value);
            Some(next)
        }
        (OpKind::InsertMulti { .. }, OpResponse::InsertFailed) => Some(state.clone()),
        (OpKind::RetrieveAll, OpResponse::FoundAll { values }) => {
            (values == state).then(|| state.clone())
        }
        _ => None,
    }
}

fn check_by_key<S, F>(
    history: &[OpEvent],
    initial: &S,
    apply: F,
    parallel: bool,
) -> Result<(), Violation>
where
    S: Clone + Eq + Hash + Send + Sync,
    F: Fn(&S, &OpEvent) -> Option<S> + Sync,
{
    let mut per_key: HashMap<u32, Vec<OpEvent>> = HashMap::new();
    for ev in history {
        per_key.entry(ev.key).or_default().push(ev.clone());
    }
    // sorted keys: the smallest offending key is the deterministic
    // violation choice on both the serial and the parallel path
    let mut buckets: Vec<(u32, Vec<OpEvent>)> = per_key.into_iter().collect();
    buckets.sort_unstable_by_key(|(key, _)| *key);
    for (key, ops) in &mut buckets {
        ops.sort_by_key(|op| op.invoked);
        assert!(
            ops.len() <= 128,
            "linearizability checker supports at most 128 ops per key (key {key} has {})",
            ops.len()
        );
    }
    let check_one = |(key, ops): &(u32, Vec<OpEvent>)| -> Option<Violation> {
        if search(ops, initial.clone(), &apply) {
            None
        } else {
            Some(Violation {
                key: *key,
                ops: ops.clone(),
                detail: "no operation order consistent with real time yields these responses"
                    .to_owned(),
            })
        }
    };
    let first = if parallel && buckets.len() > 1 {
        // every key is checked (no early exit) — the verdict and the
        // chosen violation still match the serial scan because the
        // order-preserving collect lets us take the smallest key's
        buckets
            .par_iter()
            .map(check_one)
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .next()
    } else {
        buckets.iter().map(check_one).find(Option::is_some).flatten()
    };
    match first {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Wing–Gong search: DFS over linearization prefixes. A remaining op may
/// be linearized next iff its invocation precedes every remaining op's
/// response (otherwise some completed op would be ordered after it).
fn search<S, F>(ops: &[OpEvent], initial: S, apply: &F) -> bool
where
    S: Clone + Eq + Hash,
    F: Fn(&S, &OpEvent) -> Option<S>,
{
    let full: u128 = if ops.len() == 128 {
        u128::MAX
    } else {
        (1u128 << ops.len()) - 1
    };
    let mut memo: HashSet<(u128, S)> = HashSet::new();
    dfs(ops, full, initial, apply, &mut memo)
}

fn dfs<S, F>(
    ops: &[OpEvent],
    remaining: u128,
    state: S,
    apply: &F,
    memo: &mut HashSet<(u128, S)>,
) -> bool
where
    S: Clone + Eq + Hash,
    F: Fn(&S, &OpEvent) -> Option<S>,
{
    if remaining == 0 {
        return true;
    }
    if !memo.insert((remaining, state.clone())) {
        return false; // already explored this configuration
    }
    let min_resp = iter_bits(remaining)
        .map(|i| ops[i].responded)
        .min()
        .expect("non-empty remaining set");
    for i in iter_bits(remaining) {
        // real-time rule: i can go first only if nothing remaining
        // responded before i was invoked
        if ops[i].invoked > min_resp {
            continue;
        }
        if let Some(next) = apply(&state, &ops[i]) {
            if dfs(ops, remaining & !(1u128 << i), next, apply, memo) {
                return true;
            }
        }
    }
    false
}

fn iter_bits(mut mask: u128) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(i)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: u32, kind: OpKind, response: OpResponse, invoked: u64, responded: u64) -> OpEvent {
        OpEvent {
            key,
            kind,
            response,
            invoked,
            responded,
        }
    }

    #[test]
    fn sequential_round_trip_is_linearizable() {
        let h = vec![
            ev(1, OpKind::Insert { value: 10 }, OpResponse::Inserted { new_slot: true }, 0, 1),
            ev(1, OpKind::Retrieve, OpResponse::Found { value: 10 }, 2, 3),
            ev(1, OpKind::Erase, OpResponse::Erased { hit: true }, 4, 5),
            ev(1, OpKind::Retrieve, OpResponse::NotFound, 6, 7),
        ];
        check_linearizable(&h).unwrap();
    }

    #[test]
    fn stale_read_after_response_is_flagged() {
        // insert responded at t=1, yet a later retrieve misses: illegal
        let h = vec![
            ev(5, OpKind::Insert { value: 1 }, OpResponse::Inserted { new_slot: true }, 0, 1),
            ev(5, OpKind::Retrieve, OpResponse::NotFound, 2, 3),
        ];
        let v = check_linearizable(&h).unwrap_err();
        assert_eq!(v.key, 5);
        assert_eq!(v.ops.len(), 2);
    }

    #[test]
    fn concurrent_retrieve_may_see_either_state() {
        // retrieve overlaps the insert: both Found and NotFound are legal
        for resp in [OpResponse::NotFound, OpResponse::Found { value: 3 }] {
            let h = vec![
                ev(2, OpKind::Insert { value: 3 }, OpResponse::Inserted { new_slot: true }, 0, 5),
                ev(2, OpKind::Retrieve, resp, 1, 4),
            ];
            check_linearizable(&h).unwrap();
        }
    }

    #[test]
    fn two_new_slots_without_erase_is_flagged() {
        // the duplicate-slot anomaly the CAS re-check prevents: two
        // concurrent inserts of one key both claim fresh slots
        let h = vec![
            ev(9, OpKind::Insert { value: 1 }, OpResponse::Inserted { new_slot: true }, 0, 4),
            ev(9, OpKind::Insert { value: 2 }, OpResponse::Inserted { new_slot: true }, 1, 5),
        ];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn concurrent_same_key_inserts_one_claim_many_updates_ok() {
        // the racing-batch shape: one NewSlot, the rest updates, all
        // concurrent
        let mut h = vec![ev(
            7,
            OpKind::Insert { value: 0 },
            OpResponse::Inserted { new_slot: true },
            0,
            20,
        )];
        for i in 1..10u32 {
            h.push(ev(
                7,
                OpKind::Insert { value: i },
                OpResponse::Inserted { new_slot: false },
                u64::from(i),
                20 + u64::from(i),
            ));
        }
        check_linearizable(&h).unwrap();
    }

    #[test]
    fn erase_conflicting_hit_report_is_flagged() {
        let h = vec![
            ev(3, OpKind::Insert { value: 4 }, OpResponse::Inserted { new_slot: true }, 0, 1),
            ev(3, OpKind::Erase, OpResponse::Erased { hit: false }, 2, 3),
        ];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn keys_are_independent() {
        // a violation on key 1 is reported even among clean key-2 traffic
        let h = vec![
            ev(2, OpKind::Insert { value: 8 }, OpResponse::Inserted { new_slot: true }, 0, 1),
            ev(1, OpKind::Retrieve, OpResponse::Found { value: 1 }, 2, 3),
            ev(2, OpKind::Retrieve, OpResponse::Found { value: 8 }, 4, 5),
        ];
        let v = check_linearizable(&h).unwrap_err();
        assert_eq!(v.key, 1);
    }

    #[test]
    fn multimap_multiset_semantics() {
        let h = vec![
            ev(1, OpKind::InsertMulti { value: 5 }, OpResponse::Inserted { new_slot: true }, 0, 1),
            ev(1, OpKind::InsertMulti { value: 5 }, OpResponse::Inserted { new_slot: true }, 2, 3),
            ev(
                1,
                OpKind::RetrieveAll,
                OpResponse::FoundAll { values: vec![5, 5] },
                4,
                5,
            ),
        ];
        check_linearizable_multi(&h).unwrap();
        // losing one of the duplicates is a violation
        let bad = vec![
            h[0].clone(),
            h[1].clone(),
            ev(
                1,
                OpKind::RetrieveAll,
                OpResponse::FoundAll { values: vec![5] },
                4,
                5,
            ),
        ];
        assert!(check_linearizable_multi(&bad).is_err());
    }

    #[test]
    fn concurrent_multimap_read_sees_a_prefix() {
        // retrieve concurrent with the second insert: [5] and [5,6] legal,
        // [6] alone is not (first insert already responded)
        for (vals, ok) in [
            (vec![5], true),
            (vec![5, 6], true),
            (vec![6], false),
            (vec![], false),
        ] {
            let h = vec![
                ev(1, OpKind::InsertMulti { value: 5 }, OpResponse::Inserted { new_slot: true }, 0, 1),
                ev(1, OpKind::InsertMulti { value: 6 }, OpResponse::Inserted { new_slot: true }, 2, 6),
                ev(
                    1,
                    OpKind::RetrieveAll,
                    OpResponse::FoundAll { values: vals.clone() },
                    3,
                    5,
                ),
            ];
            assert_eq!(
                check_linearizable_multi(&h).is_ok(),
                ok,
                "values {vals:?} expected ok={ok}"
            );
        }
    }

    #[test]
    fn memoization_handles_many_identical_concurrent_ops() {
        // 60 fully concurrent inserts of one key, one new_slot: the memo
        // keeps this polynomial instead of 60! orders
        let mut h = vec![ev(
            1,
            OpKind::Insert { value: 0 },
            OpResponse::Inserted { new_slot: true },
            0,
            1000,
        )];
        for i in 1..60u64 {
            h.push(ev(
                1,
                OpKind::Insert { value: i as u32 },
                OpResponse::Inserted { new_slot: false },
                i,
                1000 + i,
            ));
        }
        check_linearizable(&h).unwrap();
    }
}
