//! The deletion kernel (tombstoning).
//!
//! Deletion replaces a live entry with the TOMBSTONE sentinel via CAS.
//! §IV-A's safety rule applies: insertions and queries may be issued
//! concurrently with each other, but deletions must be separated from
//! them by a global barrier — [`crate::GpuHashMap`] enforces this by
//! taking `&mut self` for [`crate::GpuHashMap::erase`], making the barrier
//! a compile-time fact (exclusive access ⇒ no concurrent kernel).

use crate::config::Layout;
use crate::entry::{is_empty_slot, key_of, EMPTY, TOMBSTONE};
use crate::history::{HistoryRecorder, OpKind, OpResponse};
use crate::insert::{soa_is_empty, soa_key_of};
use crate::map::TableRef;
use crate::probing::Prober;
use gpu_sim::{DevSlice, Device, GroupCtx, KernelStats, LaunchOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// Result of a bulk erase.
#[derive(Debug, Clone)]
pub struct EraseOutcome {
    /// Kernel stats.
    pub stats: KernelStats,
    /// Number of keys found and tombstoned.
    pub erased: u64,
    /// Per-key outcome in input order: `hits[i]` is `true` iff input
    /// key `i` was found and tombstoned (`erased` is its popcount).
    pub hits: Vec<bool>,
}

#[allow(clippy::too_many_arguments)] // kernel ABI: device + table + knobs
pub(crate) fn erase_kernel(
    dev: &Device,
    table: &TableRef,
    input: DevSlice,
    n: usize,
    prober: &Prober,
    p_max: u32,
    opts: LaunchOptions,
    recorder: Option<&HistoryRecorder>,
) -> EraseOutcome {
    let erased = AtomicU64::new(0);
    let hits: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let stats = dev.launch(
        "warpdrive_erase",
        n,
        table.group_size,
        opts,
        |ctx: &GroupCtx| {
            let invoked = recorder.map(HistoryRecorder::invoke);
            let key = key_of(ctx.read_stream(input, ctx.group_id()));
            let hit = match table.layout {
                Layout::Aos => erase_one_aos(ctx, table, prober, p_max, key),
                Layout::Soa => erase_one_soa(ctx, table, prober, p_max, key),
            };
            if hit {
                erased.fetch_add(1, Relaxed);
                hits[ctx.group_id()].store(true, Relaxed);
            }
            if let (Some(rec), Some(invoked)) = (recorder, invoked) {
                rec.complete(key, OpKind::Erase, OpResponse::Erased { hit }, invoked);
            }
        },
    );
    EraseOutcome {
        stats,
        erased: erased.load(Relaxed),
        hits: hits.into_iter().map(AtomicBool::into_inner).collect(),
    }
}

fn erase_one_aos(ctx: &GroupCtx, table: &TableRef, prober: &Prober, p_max: u32, key: u32) -> bool {
    let g = ctx.size().get();
    let cap = table.capacity;
    let data = table.aos_slice();
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let mut window = ctx.read_window(data, base);
            loop {
                let hit = ctx.ballot(|r| key_of(window.lane(r)) == key);
                if let Some(r) = GroupCtx::ffs(hit) {
                    let idx = crate::probing::wrap_slot(base, r as usize, cap);
                    if ctx.cas(data, idx, window.lane(r), TOMBSTONE).is_ok() {
                        return true;
                    }
                    // racing update changed the word; reload and retry
                    window = ctx.reload_window(data, base);
                    continue;
                }
                if ctx.any(|r| is_empty_slot(window.lane(r))) {
                    return false; // key is not in the map
                }
                break; // window full of other keys → next window
            }
        }
    }
    false
}

fn erase_one_soa(ctx: &GroupCtx, table: &TableRef, prober: &Prober, p_max: u32, key: u32) -> bool {
    let g = ctx.size().get();
    let cap = table.capacity;
    let keys = table.soa_keys();
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let window = ctx.read_window(keys, base);
            let hit = ctx.ballot(|r| soa_key_of(window.lane(r)) == Some(key));
            if let Some(r) = GroupCtx::ffs(hit) {
                let idx = crate::probing::wrap_slot(base, r as usize, cap);
                // exclusive access (global barrier) makes a plain CAS
                // against the known key word sufficient
                if ctx.cas(keys, idx, window.lane(r), TOMBSTONE).is_ok() {
                    // restore the value-word sentinel so a reclaiming
                    // insert re-enters the publication protocol (see
                    // `insert_one_soa`)
                    ctx.write(table.soa_values(), idx, EMPTY);
                    return true;
                }
                return false;
            }
            if ctx.any(|r| soa_is_empty(window.lane(r))) {
                return false;
            }
        }
    }
    false
}
