//! Error types of the public API.

use gpu_sim::OutOfMemory;
use interconnect::TransferError;

/// Errors while constructing a hash map.
#[derive(Debug)]
pub enum BuildError {
    /// The table (plus auxiliary buffers) does not fit the device's VRAM —
    /// the very limitation the multi-GPU scheme removes.
    OutOfMemory(OutOfMemory),
    /// Capacity of zero requested.
    ZeroCapacity,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::OutOfMemory(e) => write!(f, "hash table allocation failed: {e}"),
            BuildError::ZeroCapacity => write!(f, "hash table capacity must be positive"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::OutOfMemory(e) => Some(e),
            BuildError::ZeroCapacity => None,
        }
    }
}

impl From<OutOfMemory> for BuildError {
    fn from(e: OutOfMemory) -> Self {
        BuildError::OutOfMemory(e)
    }
}

/// Errors during bulk insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// One or more pairs exhausted `p_max` probing attempts (Fig. 3,
    /// line 26). The paper's remedy is invalidation and reconstruction
    /// with a distinct hash function — see
    /// [`crate::GpuHashMap::rebuild_with_fresh_hash`]. With a
    /// [`crate::ResizePolicy`] armed, the load-factor watermark
    /// normally triggers incremental growth or compaction *before* the
    /// probing scheme can saturate, so this error marks either a
    /// disabled policy or a table whose growth allocation failed.
    ProbingExhausted {
        /// Number of pairs that could not be placed.
        failed: u64,
    },
    /// A scratch allocation for the operation failed.
    OutOfMemory(OutOfMemory),
    /// An interconnect transfer exhausted its retry budget (fault
    /// injection, see [`gpu_sim::FaultPlan`]). Surfaced only when the
    /// failing link's endpoints could not be quarantined — with
    /// survivors available the cascade re-routes instead.
    Transfer(TransferError),
    /// A GPU exhausted its kernel-launch retry budget and no survivor
    /// remained to take over its partition.
    DeviceLost {
        /// The lost device's index.
        device: usize,
    },
    /// A cascade invariant broke (e.g. a retry loop exhausted its
    /// round budget without a quarantine). This is a bug in WarpDrive,
    /// not an environmental failure — but a fault path that promised a
    /// typed error must not panic a serving process over it.
    Internal {
        /// The violated invariant, verbatim.
        detail: &'static str,
    },
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::ProbingExhausted { failed } => {
                write!(f, "{failed} pair(s) exhausted the probing scheme")
            }
            InsertError::OutOfMemory(e) => write!(f, "insertion scratch allocation failed: {e}"),
            InsertError::Transfer(e) => write!(f, "unrecoverable transfer failure: {e}"),
            InsertError::DeviceLost { device } => {
                write!(f, "GPU {device} lost: launch retry budget exhausted, no failover target")
            }
            InsertError::Internal { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for InsertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InsertError::Transfer(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransferError> for InsertError {
    fn from(e: TransferError) -> Self {
        InsertError::Transfer(e)
    }
}

/// Errors during fault-aware retrieval (see
/// [`crate::DistributedHashMap::try_retrieve_device_sided`]). Healthy
/// retrieval is infallible; these arise only under an armed
/// [`gpu_sim::FaultPlan`] once every failover avenue is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrieveError {
    /// An interconnect transfer exhausted its retry budget with no
    /// survivor to quarantine the failing endpoint onto.
    Transfer(TransferError),
    /// A GPU exhausted its launch retry budget and no survivor remained.
    DeviceLost {
        /// The lost device's index.
        device: usize,
    },
    /// Re-inserting a quarantined GPU's partition into the survivors
    /// failed (e.g. probing exhaustion on an overloaded survivor).
    Migration(InsertError),
}

impl std::fmt::Display for RetrieveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrieveError::Transfer(e) => write!(f, "unrecoverable transfer failure: {e}"),
            RetrieveError::DeviceLost { device } => {
                write!(f, "GPU {device} lost: launch retry budget exhausted, no failover target")
            }
            RetrieveError::Migration(e) => write!(f, "partition migration failed: {e}"),
        }
    }
}

impl std::error::Error for RetrieveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetrieveError::Transfer(e) => Some(e),
            RetrieveError::Migration(e) => Some(e),
            RetrieveError::DeviceLost { .. } => None,
        }
    }
}

impl From<InsertError> for RetrieveError {
    fn from(e: InsertError) -> Self {
        match e {
            InsertError::Transfer(t) => RetrieveError::Transfer(t),
            InsertError::DeviceLost { device } => RetrieveError::DeviceLost { device },
            other => RetrieveError::Migration(other),
        }
    }
}

impl From<OutOfMemory> for InsertError {
    fn from(e: OutOfMemory) -> Self {
        InsertError::OutOfMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = BuildError::ZeroCapacity;
        assert!(e.to_string().contains("positive"));
        let e = InsertError::ProbingExhausted { failed: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn fault_variants_display_and_convert() {
        let t = TransferError {
            src: 1,
            dst: 2,
            attempts: 4,
        };
        let i: InsertError = t.into();
        assert!(i.to_string().contains("transfer"));
        let r: RetrieveError = i.into();
        assert_eq!(r, RetrieveError::Transfer(t));
        let r: RetrieveError = InsertError::DeviceLost { device: 3 }.into();
        assert!(r.to_string().contains("GPU 3"));
        let r: RetrieveError = InsertError::ProbingExhausted { failed: 2 }.into();
        assert!(matches!(r, RetrieveError::Migration(_)));
    }

    #[test]
    fn oom_conversions_preserve_detail() {
        let oom = OutOfMemory {
            requested_words: 10,
            available_words: 5,
        };
        let b: BuildError = oom.into();
        assert!(b.to_string().contains("10"));
        let i: InsertError = oom.into();
        assert!(i.to_string().contains("10"));
    }
}
