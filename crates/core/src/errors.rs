//! Error types of the public API.

use gpu_sim::OutOfMemory;

/// Errors while constructing a hash map.
#[derive(Debug)]
pub enum BuildError {
    /// The table (plus auxiliary buffers) does not fit the device's VRAM —
    /// the very limitation the multi-GPU scheme removes.
    OutOfMemory(OutOfMemory),
    /// Capacity of zero requested.
    ZeroCapacity,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::OutOfMemory(e) => write!(f, "hash table allocation failed: {e}"),
            BuildError::ZeroCapacity => write!(f, "hash table capacity must be positive"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::OutOfMemory(e) => Some(e),
            BuildError::ZeroCapacity => None,
        }
    }
}

impl From<OutOfMemory> for BuildError {
    fn from(e: OutOfMemory) -> Self {
        BuildError::OutOfMemory(e)
    }
}

/// Errors during bulk insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// One or more pairs exhausted `p_max` probing attempts (Fig. 3,
    /// line 26). The paper's remedy is invalidation and reconstruction
    /// with a distinct hash function — see
    /// [`crate::GpuHashMap::rebuild_with_fresh_hash`].
    ProbingExhausted {
        /// Number of pairs that could not be placed.
        failed: u64,
    },
    /// A scratch allocation for the operation failed.
    OutOfMemory(OutOfMemory),
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::ProbingExhausted { failed } => {
                write!(f, "{failed} pair(s) exhausted the probing scheme")
            }
            InsertError::OutOfMemory(e) => write!(f, "insertion scratch allocation failed: {e}"),
        }
    }
}

impl std::error::Error for InsertError {}

impl From<OutOfMemory> for InsertError {
    fn from(e: OutOfMemory) -> Self {
        InsertError::OutOfMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = BuildError::ZeroCapacity;
        assert!(e.to_string().contains("positive"));
        let e = InsertError::ProbingExhausted { failed: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn oom_conversions_preserve_detail() {
        let oom = OutOfMemory {
            requested_words: 10,
            available_words: 5,
        };
        let b: BuildError = oom.into();
        assert!(b.to_string().contains("10"));
        let i: InsertError = oom.into();
        assert!(i.to_string().contains("10"));
    }
}
