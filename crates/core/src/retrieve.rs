//! The retrieval (query) kernel.
//!
//! "Queries are performed in a similar way whereby the atomic swap is not
//! required" (§IV-A). One coalesced group retrieves one key: windows are
//! probed in the exact slot order of insertion; a ballot finds the key,
//! and an EMPTY sentinel anywhere in a window proves absence (a tombstone
//! does *not* — deleted slots may have been probed past by an earlier
//! insertion, so the probe must continue through them).
//!
//! Output convention: `out[i] = pack(key, value)` on a hit, [`EMPTY`] on a
//! miss. The input carries the key in the *high* 32 bits of each word; the
//! low bits are caller payload (the distributed cascade routes origin
//! indices through them) and are ignored here.

use crate::config::{Layout, Mutations};
use crate::entry::{is_empty_slot, key_of, value_of, EMPTY};
use crate::history::{HistoryRecorder, OpKind, OpResponse};
use crate::insert::{soa_hit, soa_is_empty, soa_key_of};
use crate::map::TableRef;
use crate::probing::Prober;
use gpu_sim::{DevSlice, Device, GroupCtx, KernelStats, LaunchOptions};

/// Launches the retrieval kernel for the `n` query words in `input`,
/// writing one result word per query to `out`.
#[allow(clippy::too_many_arguments)] // kernel ABI: device + table + knobs
pub(crate) fn retrieve_kernel(
    dev: &Device,
    table: &TableRef,
    input: DevSlice,
    out: DevSlice,
    n: usize,
    prober: &Prober,
    p_max: u32,
    opts: LaunchOptions,
    muts: Mutations,
    recorder: Option<&HistoryRecorder>,
) -> KernelStats {
    dev.launch(
        "warpdrive_retrieve",
        n,
        table.group_size,
        opts,
        |ctx: &GroupCtx| {
            let invoked = recorder.map(HistoryRecorder::invoke);
            // MUTATION DOUBLE (`broken_window_overrun`): read the query
            // one group past our own — the last group runs off the end of
            // the input buffer, which memcheck reports and contains.
            let qidx = if muts.window_overrun {
                ctx.group_id() + 1
            } else {
                ctx.group_id()
            };
            let query = ctx.read_stream(input, qidx);
            let key = key_of(query);
            let result = match table.layout {
                Layout::Aos => retrieve_one_aos(ctx, table, prober, p_max, key),
                Layout::Soa => retrieve_one_soa(ctx, table, prober, p_max, key),
            };
            if let (Some(rec), Some(invoked)) = (recorder, invoked) {
                let response = if result == EMPTY {
                    OpResponse::NotFound
                } else {
                    OpResponse::Found {
                        value: value_of(result),
                    }
                };
                rec.complete(key, OpKind::Retrieve, response, invoked);
            }
            ctx.write_stream(out, ctx.group_id(), result);
        },
    )
}

fn retrieve_one_aos(
    ctx: &GroupCtx,
    table: &TableRef,
    prober: &Prober,
    p_max: u32,
    key: u32,
) -> u64 {
    let g = ctx.size().get();
    let data = table.aos_slice();
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let window = ctx.read_window(data, base);
            // hit check first: the window may contain both our key and an
            // EMPTY slot when racing with inserts of unrelated keys
            let hit = ctx.ballot(|r| key_of(window.lane(r)) == key);
            if let Some(r) = GroupCtx::ffs(hit) {
                return window.lane(r);
            }
            if ctx.any(|r| is_empty_slot(window.lane(r))) {
                return EMPTY; // insertion would have claimed this slot
            }
        }
    }
    EMPTY // probing exhausted: definitively absent under p_max
}

fn retrieve_one_soa(
    ctx: &GroupCtx,
    table: &TableRef,
    prober: &Prober,
    p_max: u32,
    key: u32,
) -> u64 {
    let g = ctx.size().get();
    let keys = table.soa_keys();
    let values = table.soa_values();
    let cap = table.capacity;
    for p in 0..p_max {
        for q in 0..ctx.size().windows_per_warp() {
            let base = prober.window_base(key, p, q, g) as usize;
            let window = ctx.read_window(keys, base);
            let hit = ctx.ballot(|r| soa_key_of(window.lane(r)) == Some(key));
            if let Some(r) = GroupCtx::ffs(hit) {
                // the Fig. 1 SOA cost: a second, uncoalesced access to
                // fetch the value word — annotated shared: it races with
                // last-writer-wins updates by design
                let idx = crate::probing::wrap_slot(base, r as usize, cap);
                return soa_hit(key, ctx.read_shared(values, idx));
            }
            if ctx.any(|r| soa_is_empty(window.lane(r))) {
                return EMPTY;
            }
        }
    }
    EMPTY
}
