//! Cascade timing reports.
//!
//! Multi-GPU operations are *cascades* of globally-barriered phases
//! (§IV-B): multisplit → transposition → insert for insertion, and
//! multisplit → transposition → query → transposition for retrieval,
//! optionally bracketed by PCIe transfers. Each phase's simulated time is
//! recorded so the harnesses can print both aggregate rates (Figs. 9–10)
//! and the per-stage decomposition (Fig. 11).

use serde::{Deserialize, Serialize};

/// A cascade phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CascadeStage {
    /// Host → device PCIe transfer.
    H2D,
    /// Per-GPU multisplit (video memory).
    Multisplit,
    /// All-to-all partition transposition (NVLink).
    Transpose,
    /// Hash-table insertion kernels.
    Insert,
    /// Hash-table query kernels.
    Query,
    /// Result routing back to the origin GPUs (NVLink).
    TransposeBack,
    /// Result scatter into origin order (video memory).
    Scatter,
    /// Device → host PCIe transfer.
    D2H,
    /// Exponential-backoff waits accumulated by fault-injection retries
    /// (see [`gpu_sim::RetryPolicy`]). Absent from healthy cascades —
    /// the fault-off path never pushes this stage, keeping its reports
    /// byte-identical to pre-chaos behaviour.
    Backoff,
}

/// One timed phase.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StageTiming {
    /// Which phase.
    pub stage: CascadeStage,
    /// Simulated seconds (max over GPUs for per-GPU phases — the phases
    /// are separated by global barriers).
    pub time: f64,
    /// Bytes moved by the phase, where meaningful (transfers), else 0.
    pub bytes: u64,
    /// Fixed (size-independent) launch-overhead portion of `time`. Used
    /// by scaled-down experiments: per-element cost extrapolates
    /// linearly, this part does not.
    pub overhead: f64,
}

impl StageTiming {
    /// The stage's time extrapolated to `scale`× the element count.
    #[must_use]
    pub fn scaled_time(&self, scale: f64) -> f64 {
        (self.time - self.overhead).max(0.0) * scale + self.overhead
    }
}

/// Timing report of one cascade over a batch of elements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeReport {
    /// Phases in execution order.
    pub stages: Vec<StageTiming>,
    /// Elements processed.
    pub elements: u64,
}

impl CascadeReport {
    /// Builds a report.
    #[must_use]
    pub fn new(elements: u64) -> Self {
        Self {
            stages: Vec::new(),
            elements,
        }
    }

    /// Appends a phase with no fixed-overhead component.
    pub fn push(&mut self, stage: CascadeStage, time: f64, bytes: u64) {
        self.push_with_overhead(stage, time, bytes, 0.0);
    }

    /// Appends a phase, recording the launch-overhead portion of `time`.
    pub fn push_with_overhead(
        &mut self,
        stage: CascadeStage,
        time: f64,
        bytes: u64,
        overhead: f64,
    ) {
        self.stages.push(StageTiming {
            stage,
            time,
            bytes,
            overhead,
        });
    }

    /// Total cascade time extrapolated to `scale`× the element count
    /// (variable parts scale, fixed overheads do not).
    #[must_use]
    pub fn modeled_time(&self, scale: f64) -> f64 {
        self.stages.iter().map(|s| s.scaled_time(scale)).sum()
    }

    /// Operation rate at modeled scale.
    #[must_use]
    pub fn modeled_ops_per_sec(&self, scale: f64) -> f64 {
        let t = self.modeled_time(scale);
        if t == 0.0 {
            0.0
        } else {
            self.elements as f64 * scale / t
        }
    }

    /// Total cascade time (phases are globally barriered, so they add).
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.stages.iter().map(|s| s.time).sum()
    }

    /// Aggregate operation rate.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let t = self.total_time();
        if t == 0.0 {
            0.0
        } else {
            self.elements as f64 / t
        }
    }

    /// Accumulated time of one phase kind (a cascade may, e.g., transpose
    /// twice).
    #[must_use]
    pub fn time_of(&self, stage: CascadeStage) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.time)
            .sum()
    }

    /// Fraction of total time spent in a phase kind.
    #[must_use]
    pub fn fraction_of(&self, stage: CascadeStage) -> f64 {
        let t = self.total_time();
        if t == 0.0 {
            0.0
        } else {
            self.time_of(stage) / t
        }
    }

    /// Merges another report (e.g. successive batches of one stream):
    /// element counts and per-stage times accumulate.
    pub fn absorb(&mut self, other: &CascadeReport) {
        self.elements += other.elements;
        for s in &other.stages {
            self.push_with_overhead(s.stage, s.time, s.bytes, s.overhead);
        }
    }
}

/// A table's slot occupancy split into live entries and tombstones.
///
/// Open addressing never un-probes a tombstone: a deleted slot still
/// lengthens every probe sequence crossing it, so *effective* load — the
/// number the resize watermark must watch — counts both. Reporting the
/// split (rather than one blended fraction) is what lets callers tell
/// "genuinely full, grow" apart from "tombstone-heavy, compact".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Slots holding a live key-value pair.
    pub live: u64,
    /// Slots holding a tombstone (deleted, still probed past).
    pub tombstones: u64,
    /// Total slots.
    pub capacity: u64,
}

impl Occupancy {
    /// Fraction of slots holding live entries.
    #[must_use]
    pub fn live_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.live as f64 / self.capacity as f64
        }
    }

    /// Fraction of slots that cost a probe: live **plus** tombstones.
    /// This is the load factor that predicts probe lengths and the one
    /// the resize watermark compares against.
    #[must_use]
    pub fn effective_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            (self.live + self.tombstones) as f64 / self.capacity as f64
        }
    }

    /// Fraction of slots wasted on tombstones.
    #[must_use]
    pub fn tombstone_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.tombstones as f64 / self.capacity as f64
        }
    }
}

/// Degraded-mode counters of a [`crate::DistributedHashMap`]: what fault
/// injection cost and what graceful degradation did about it. All-zero
/// on healthy runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradedStats {
    /// Kernel launches that failed transiently and were retried.
    pub launch_retries: u64,
    /// Interconnect transfers that were dropped and re-sent.
    pub transfer_retries: u64,
    /// Total simulated seconds spent in exponential backoff.
    pub backoff_time: f64,
    /// GPUs quarantined after exhausting their retry budget.
    pub quarantined: u32,
    /// Keys re-inserted into survivors when their GPU was quarantined.
    pub migrated_keys: u64,
    /// Partition re-splits performed (one per quarantine event).
    pub repartitions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_stats_default_is_all_zero() {
        let s = DegradedStats::default();
        assert_eq!(s.launch_retries, 0);
        assert_eq!(s.transfer_retries, 0);
        assert_eq!(s.backoff_time, 0.0);
        assert_eq!(s.quarantined, 0);
        assert_eq!(s.migrated_keys, 0);
        assert_eq!(s.repartitions, 0);
    }

    #[test]
    fn occupancy_fractions_count_tombstones_toward_effective_load() {
        let o = Occupancy {
            live: 40,
            tombstones: 20,
            capacity: 100,
        };
        assert!((o.live_fraction() - 0.40).abs() < 1e-12);
        assert!((o.effective_fraction() - 0.60).abs() < 1e-12);
        assert!((o.tombstone_fraction() - 0.20).abs() < 1e-12);
        let empty = Occupancy::default();
        assert_eq!(empty.live_fraction(), 0.0);
        assert_eq!(empty.effective_fraction(), 0.0);
    }

    #[test]
    fn backoff_stage_accumulates_like_any_other() {
        let mut r = CascadeReport::new(10);
        r.push(CascadeStage::Insert, 1.0, 0);
        r.push(CascadeStage::Backoff, 0.25, 0);
        assert!((r.time_of(CascadeStage::Backoff) - 0.25).abs() < 1e-12);
        assert!((r.total_time() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn totals_and_fractions() {
        let mut r = CascadeReport::new(1000);
        r.push(CascadeStage::Multisplit, 0.02, 0);
        r.push(CascadeStage::Transpose, 0.03, 4096);
        r.push(CascadeStage::Insert, 0.95, 0);
        assert!((r.total_time() - 1.0).abs() < 1e-12);
        assert!((r.ops_per_sec() - 1000.0).abs() < 1e-9);
        assert!((r.fraction_of(CascadeStage::Transpose) - 0.03).abs() < 1e-12);
        assert_eq!(r.time_of(CascadeStage::Query), 0.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = CascadeReport::new(10);
        a.push(CascadeStage::Insert, 1.0, 0);
        let mut b = CascadeReport::new(20);
        b.push(CascadeStage::Insert, 2.0, 0);
        a.absorb(&b);
        assert_eq!(a.elements, 30);
        assert!((a.time_of(CascadeStage::Insert) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let r = CascadeReport::new(0);
        assert_eq!(r.ops_per_sec(), 0.0);
        assert_eq!(r.fraction_of(CascadeStage::H2D), 0.0);
    }
}
