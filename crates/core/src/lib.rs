//! # WarpDrive — massively parallel hashing on (simulated) multi-GPU nodes
//!
//! A faithful Rust reproduction of *"WarpDrive: Massively Parallel Hashing
//! on Multi-GPU Nodes"* (Jünger, Hundt, Schmidt — IPDPS 2018), running on
//! the software SIMT substrate of the [`gpu_sim`] crate (no physical GPU
//! required; see DESIGN.md for the substitution argument).
//!
//! The crate provides the paper's three contributions:
//!
//! 1. **Subwarp-cooperative probing** ([`GpuHashMap`]) — an open-addressing
//!    hash map whose hybrid probing scheme combines *linear probing within
//!    a coalesced group window* of `|g| ∈ {1,…,32}` consecutive slots with
//!    *chaotic (double-hashed) probing across windows*; insertion follows
//!    the Fig. 3 kernel verbatim: coalesced window load → vacancy ballot →
//!    leader CAS → group notification.
//! 2. **Multi-GPU distribution** ([`DistributedHashMap`]) — the
//!    *distributed multisplit transposition* cascades of §IV-B: each GPU
//!    multisplits its elements by the partition function `p(k)`, the m×m
//!    partition table is transposed with all-to-all NVLink communication,
//!    and each GPU owns exactly the keys with `p(k) = i`.
//! 3. **Asynchronous overlap** ([`async_pipe`]) — host-sided cascades whose
//!    H2D → MST → INS stages of consecutive batches overlap on independent
//!    hardware resources (Figs. 5, 11).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use gpu_sim::{Device, DeviceSpec};
//! use warpdrive::{Config, GpuHashMap};
//!
//! let dev = Arc::new(Device::with_words(0, 1 << 16));
//! let map = GpuHashMap::new(dev, 1024, Config::default()).unwrap();
//! map.insert_pairs(&[(7, 70), (8, 80)]).unwrap();
//! let resp = map.try_retrieve(&[7, 8, 9]).unwrap();
//! assert_eq!(resp.values, vec![Some(70), Some(80), None]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod async_pipe;
pub mod cache;
pub mod chaos;
pub mod config;
pub mod delete;
pub mod distributed;
pub mod entry;
pub mod errors;
pub mod history;
pub mod host_ops;
pub mod insert;
pub mod linearize;
pub mod map;
pub mod multimap;
pub mod probing;
pub mod resize;
pub mod retrieve;
pub mod service;
pub mod sharded;
pub mod stats;

pub use adaptive::{recommend_group_size, AdaptiveHashMap};
pub use cache::{CachePolicy, CacheStats, CachedMap};
pub use chaos::Router;
pub use config::{Config, Layout, ProbingScheme};
pub use distributed::DistributedHashMap;
pub use entry::{key_of, pack, value_of, EMPTY, RESERVED_KEY, TOMBSTONE};
pub use errors::{BuildError, InsertError, RetrieveError};
pub use history::{HistoryRecorder, OpEvent, OpKind, OpResponse};
pub use linearize::{
    check_linearizable, check_linearizable_multi, check_linearizable_multi_serial,
    check_linearizable_serial, Violation,
};
pub use map::GpuHashMap;
pub use multimap::GpuMultiMap;
pub use service::{
    lower_mixed, DeleteResponse, GetAllResponse, GetResponse, MapService, Op, OpError, OpReport,
    PerGpuDeleteResponse, PerGpuGetResponse, PutResponse, Response,
};
pub use resize::{ResizeMode, ResizePolicy, ResizeState};
pub use sharded::ShardedHashMap;
pub use stats::{CascadeReport, CascadeStage, DegradedStats, Occupancy};

/// Re-export of the group-size type used throughout the public API.
pub use gpu_sim::GroupSize;

/// Re-export of the deterministic fault-injection plan (see
/// [`Config::fault`] and DESIGN.md §6.3 "Chaos testing").
pub use gpu_sim::FaultPlan;

/// Re-export of the retry/backoff policy governing fault recovery (see
/// [`Config::retry`]).
pub use gpu_sim::RetryPolicy;

/// Re-export of the typed transfer-failure error surfaced by the
/// fault-aware cascades.
pub use interconnect::TransferError;

/// Re-export of the kernel-launch schedule selector (see
/// [`Config::schedule`] and the "Testing & determinism" section of
/// DESIGN.md).
pub use gpu_sim::Schedule;
