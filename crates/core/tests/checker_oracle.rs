//! Differential oracle for the parallel linearizability checker: the
//! rayon fan-out over per-key sub-histories must return the *same
//! verdict* as the serial scan — accept for accept, reject for reject,
//! and the same (smallest) offending key with the same sub-history — on
//! arbitrary histories, legal or garbage, at every worker count.
//!
//! Histories are decoded from raw entropy tuples, so they cover illegal
//! kind/response pairings and causally impossible response patterns as
//! well as legal traces. Sizes straddle the checker's internal
//! serial/parallel threshold so both code paths run; total length stays
//! under the 128-ops-per-key checker bound even if every op lands on one
//! key.

use proptest::prelude::*;
use warpdrive::{
    check_linearizable, check_linearizable_multi, check_linearizable_multi_serial,
    check_linearizable_serial, OpEvent, OpKind, OpResponse, Violation,
};

/// Verdict normalized for comparison: `Ok` or the offending key plus its
/// sub-history (the `detail` string is static).
fn verdict(r: &Result<(), Violation>) -> Result<(), (u32, Vec<OpEvent>)> {
    match r {
        Ok(()) => Ok(()),
        Err(v) => Err((v.key, v.ops.clone())),
    }
}

/// Raw entropy for one generated op: key, kind/response selector, value,
/// invocation jitter, response span.
type RawOp = (u32, u64, u32, u64, u64);

/// Decodes entropy into a single-map op — kind and response drawn
/// independently, so illegal pairings occur and must be rejected
/// identically on both paths.
fn decode_single(i: usize, &(key, sel, value, jitter, span): &RawOp) -> OpEvent {
    let kind = match sel % 3 {
        0 => OpKind::Insert { value },
        1 => OpKind::Retrieve,
        _ => OpKind::Erase,
    };
    let response = match (sel / 3) % 5 {
        0 => OpResponse::Inserted {
            new_slot: sel & 1 == 0,
        },
        1 => OpResponse::InsertFailed,
        2 => OpResponse::Found { value },
        3 => OpResponse::NotFound,
        _ => OpResponse::Erased { hit: sel & 1 == 0 },
    };
    let invoked = (i as u64) * 2 + jitter;
    OpEvent {
        key,
        kind,
        response,
        invoked,
        responded: invoked + 1 + span,
    }
}

/// Decodes entropy into a multi-map op.
fn decode_multi(i: usize, &(key, sel, value, jitter, span): &RawOp) -> OpEvent {
    let kind = match sel % 2 {
        0 => OpKind::InsertMulti { value: value % 4 },
        _ => OpKind::RetrieveAll,
    };
    let response = match (sel / 2) % 3 {
        0 => OpResponse::Inserted {
            new_slot: sel & 1 == 0,
        },
        1 => OpResponse::InsertFailed,
        _ => {
            let mut values: Vec<u32> = (0..(sel / 8) % 4).map(|k| (value + k as u32) % 4).collect();
            values.sort_unstable();
            OpResponse::FoundAll { values }
        }
    };
    let invoked = (i as u64) * 2 + jitter;
    OpEvent {
        key,
        kind,
        response,
        invoked,
        responded: invoked + 1 + span,
    }
}

proptest! {
    /// Single-map verdicts: serial == parallel on arbitrary histories.
    #[test]
    fn single_map_serial_and_parallel_verdicts_agree(
        raw in proptest::collection::vec((0u32..10, 0u64..1024, 0u32..6, 0u64..4, 0u64..12), 0..120),
    ) {
        let history: Vec<OpEvent> =
            raw.iter().enumerate().map(|(i, op)| decode_single(i, op)).collect();
        let serial = check_linearizable_serial(&history);
        let parallel = check_linearizable(&history);
        prop_assert_eq!(
            verdict(&serial),
            verdict(&parallel),
            "serial and parallel verdicts diverged on {} ops",
            history.len()
        );
    }

    /// Multi-map verdicts: serial == parallel on arbitrary histories.
    #[test]
    fn multi_map_serial_and_parallel_verdicts_agree(
        raw in proptest::collection::vec((0u32..10, 0u64..1024, 0u32..6, 0u64..4, 0u64..12), 0..120),
    ) {
        let history: Vec<OpEvent> =
            raw.iter().enumerate().map(|(i, op)| decode_multi(i, op)).collect();
        let serial = check_linearizable_multi_serial(&history);
        let parallel = check_linearizable_multi(&history);
        prop_assert_eq!(
            verdict(&serial),
            verdict(&parallel),
            "serial and parallel verdicts diverged on {} ops",
            history.len()
        );
    }
}

/// Worker-count sweep: the verdict is invariant under
/// `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8} (the shim reads the variable per
/// call, so each check below runs at exactly the set width). Env
/// mutation is confined to this one test; the verdict-equality invariant
/// keeps it harmless to any concurrently running property above.
#[test]
fn verdicts_invariant_across_thread_counts() {
    // deterministic pseudo-random histories, sized past the parallel
    // threshold, with a violation planted in half of them
    let mut histories: Vec<(bool, Vec<OpEvent>)> = Vec::new();
    for seed in 0u64..8 {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut h = Vec::new();
        for i in 0..96u64 {
            let key = (next() % 12) as u32;
            let value = (next() % 6) as u32;
            let invoked = i + next() % 4;
            let responded = invoked + 1 + next() % 9;
            let (kind, response) = match next() % 4 {
                0 => (OpKind::Insert { value }, OpResponse::Inserted { new_slot: next() % 2 == 0 }),
                1 => (OpKind::Retrieve, OpResponse::Found { value }),
                2 => (OpKind::Retrieve, OpResponse::NotFound),
                _ => (OpKind::Erase, OpResponse::Erased { hit: next() % 2 == 0 }),
            };
            h.push(OpEvent { key, kind, response, invoked, responded });
        }
        let plant_violation = seed % 2 == 1;
        if plant_violation {
            // two sequential inserts both claiming fresh slots: never legal
            h.push(OpEvent {
                key: 3,
                kind: OpKind::Insert { value: 1 },
                response: OpResponse::Inserted { new_slot: true },
                invoked: 200,
                responded: 201,
            });
            h.push(OpEvent {
                key: 3,
                kind: OpKind::Insert { value: 2 },
                response: OpResponse::Inserted { new_slot: true },
                invoked: 202,
                responded: 203,
            });
        }
        histories.push((plant_violation, h));
    }
    for threads in ["1", "2", "4", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        for (i, (planted, h)) in histories.iter().enumerate() {
            let serial = check_linearizable_serial(h);
            let parallel = check_linearizable(h);
            assert_eq!(
                verdict(&serial),
                verdict(&parallel),
                "history {i}: verdicts diverged at RAYON_NUM_THREADS={threads}"
            );
            if *planted {
                assert!(parallel.is_err(), "history {i}: planted violation missed");
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}
