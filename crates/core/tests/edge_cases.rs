//! Edge-case coverage for the warpdrive crate: boundary sizes, extreme
//! values, failure paths and recovery — the inputs a downstream user will
//! eventually throw at the library.

use interconnect::Topology;
use std::sync::Arc;
use warpdrive::{
    pack, Config, DistributedHashMap, GpuHashMap, GpuMultiMap, InsertError, Layout, ShardedHashMap,
};

fn device(words: usize) -> Arc<gpu_sim::Device> {
    Arc::new(gpu_sim::Device::with_words(0, words))
}

#[test]
fn empty_batches_are_noops() {
    let mut map = GpuHashMap::new(device(1 << 12), 256, Config::default()).unwrap();
    let out = map.insert_pairs(&[]).unwrap();
    assert_eq!(out.new_slots, 0);
    let res = map.try_retrieve(&[]).unwrap().values;
    assert!(res.is_empty());
    assert_eq!(map.try_erase(&[]).unwrap().erased, 0);
    assert!(map.is_empty());
}

#[test]
fn capacity_rounds_up_to_spans() {
    let map = GpuHashMap::new(device(1 << 12), 1, Config::default()).unwrap();
    assert_eq!(map.capacity(), 32);
    let map = GpuHashMap::new(device(1 << 12), 33, Config::default()).unwrap();
    assert_eq!(map.capacity(), 64);
}

#[test]
fn extreme_key_and_value_bits_round_trip() {
    let map = GpuHashMap::new(device(1 << 12), 64, Config::default()).unwrap();
    // key 0, max legal key, value 0 and value u32::MAX all survive
    let pairs = [(0u32, 0u32), (0xFFFF_FFFE, u32::MAX), (1, 0x8000_0000)];
    map.insert_pairs(&pairs).unwrap();
    for (k, v) in pairs {
        assert_eq!(map.get(k), Some(v), "key {k:#x}");
    }
}

#[test]
#[should_panic(expected = "reserved")]
#[cfg_attr(not(debug_assertions), ignore = "the guard is a debug_assert")]
fn reserved_key_panics_in_debug() {
    let map = GpuHashMap::new(device(1 << 12), 64, Config::default()).unwrap();
    let _ = map.insert_pairs(&[(u32::MAX, 1)]);
}

#[test]
fn tiny_p_max_fails_fast_and_recovers() {
    let cfg = Config {
        p_max: 1, // one span only: 32 slots reachable per key
        ..Config::default()
    };
    let map = GpuHashMap::new(device(1 << 13), 96, cfg).unwrap();
    // overfill one span's worth of keys: some must fail
    let pairs: Vec<(u32, u32)> = (0..96u32).map(|i| (i + 1, i)).collect();
    match map.insert_pairs(&pairs) {
        Ok(_) => { /* possible if hashing spread perfectly */ }
        Err(InsertError::ProbingExhausted { failed }) => {
            assert!(failed > 0);
            // the placed subset is still fully retrievable
            let placed = map.len();
            let res = map.try_retrieve(&(1..=96).collect::<Vec<u32>>()).unwrap().values;
            assert_eq!(res.iter().filter(|r| r.is_some()).count() as u64, placed);
        }
        Err(e) => panic!("unexpected {e}"),
    }
}

#[test]
fn interleaved_erase_insert_query_cycles() {
    let mut map = GpuHashMap::new(device(1 << 14), 512, Config::default()).unwrap();
    for round in 0..6u32 {
        let base = round * 100;
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (base + i + 1, round)).collect();
        map.insert_pairs(&pairs).unwrap();
        if round % 2 == 1 {
            // erase the previous round entirely
            let victims: Vec<u32> = (0..100).map(|i| base - 100 + i + 1).collect();
            assert_eq!(map.try_erase(&victims).unwrap().erased, 100);
        }
    }
    // rounds 0,2,4 were erased by 1,3,5 → rounds 1,3,5 + none of 0,2,4?
    // erasures happen on odd rounds against the preceding even round
    assert_eq!(map.len(), 300);
    // 300 entries were tombstoned, but later rounds' inserts reclaim any
    // tombstone they probe into, so the pending count is at most 300
    assert!(map.tombstones() <= 300, "got {}", map.tombstones());
    assert_eq!(map.get(1), None); // round 0, erased
    assert_eq!(map.get(101), Some(1)); // round 1, alive
                                       // rebuild compacts and preserves
    map.rebuild_with_fresh_hash().unwrap();
    assert_eq!(map.len(), 300);
    assert_eq!(map.get(101), Some(1));
}

#[test]
fn soa_and_aos_agree_on_everything() {
    let pairs: Vec<(u32, u32)> = (0..700u32).map(|i| (i * 13 + 1, i ^ 0xbeef)).collect();
    let keys: Vec<u32> = pairs.iter().map(|p| p.0).chain([42]).collect();
    let mut results = Vec::new();
    for layout in [Layout::Aos, Layout::Soa] {
        let mut map =
            GpuHashMap::new(device(1 << 13), 1024, Config::default().with_layout(layout)).unwrap();
        map.insert_pairs(&pairs).unwrap();
        map.try_erase(&[pairs[0].0, pairs[1].0]).unwrap();
        map.insert_pairs(&[(pairs[2].0, 777)]).unwrap();
        let res = map.try_retrieve(&keys).unwrap().values;
        results.push(res);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn multimap_empty_and_absent_keys() {
    let map = GpuMultiMap::new(device(1 << 12), 128, Config::default()).unwrap();
    let res = map.try_retrieve_all(&[5]).unwrap().values;
    assert!(res[0].is_empty());
    assert_eq!(map.count(5), 0);
    map.insert_pairs(&[]).unwrap();
    assert!(map.is_empty());
}

#[test]
fn distributed_two_and_three_gpu_nodes() {
    for m in [2usize, 3] {
        let devices: Vec<_> = (0..m)
            .map(|i| Arc::new(gpu_sim::Device::with_words(i, 1 << 15)))
            .collect();
        let dmap =
            DistributedHashMap::new(devices, 2048, Config::default(), Topology::p100_quad(m))
                .unwrap();
        let pairs: Vec<(u32, u32)> = (0..2500u32).map(|i| (i * 11 + 1, i)).collect();
        dmap.insert_from_host(&pairs).unwrap();
        assert_eq!(dmap.len(), 2500, "m = {m}");
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let res = dmap.try_retrieve_from_host(&keys).unwrap().values;
        assert!(res.iter().all(Option::is_some), "m = {m}");
    }
}

#[test]
fn distributed_handles_empty_and_skewed_gpu_batches() {
    let devices: Vec<_> = (0..4)
        .map(|i| Arc::new(gpu_sim::Device::with_words(i, 1 << 15)))
        .collect();
    let dmap =
        DistributedHashMap::new(devices, 2048, Config::default(), Topology::p100_quad(4)).unwrap();
    // everything on GPU 0, nothing elsewhere
    let words: Vec<u64> = (0..1000u32).map(|i| pack(i * 3 + 1, i)).collect();
    let rep = dmap
        .insert_device_sided(&[words, Vec::new(), Vec::new(), Vec::new()])
        .unwrap();
    assert_eq!(dmap.len(), 1000);
    assert!(rep.total_time() > 0.0);
    // query entirely from GPU 3
    let keys: Vec<u32> = (0..1000u32).map(|i| i * 3 + 1).collect();
    let res = dmap
        .try_retrieve_device_sided(&[Vec::new(), Vec::new(), Vec::new(), keys])
        .unwrap()
        .values;
    assert!(res[3].iter().all(Option::is_some));
}

#[test]
fn sharded_map_single_shard_degenerates_to_plain() {
    let sharded = ShardedHashMap::new(device(1 << 13), 1024, 1, Config::default()).unwrap();
    let pairs: Vec<(u32, u32)> = (0..900u32).map(|i| (i + 1, i)).collect();
    sharded.insert_pairs(&pairs).unwrap();
    assert_eq!(sharded.num_shards(), 1);
    let res = sharded
        .try_retrieve(&pairs.iter().map(|p| p.0).collect::<Vec<_>>())
        .unwrap()
        .values;
    assert!(res.iter().all(Option::is_some));
}

#[test]
fn overlapped_batch_size_larger_than_input() {
    let devices: Vec<_> = (0..4)
        .map(|i| Arc::new(gpu_sim::Device::with_words(i, 1 << 15)))
        .collect();
    let dmap =
        DistributedHashMap::new(devices, 2048, Config::default(), Topology::p100_quad(4)).unwrap();
    let pairs: Vec<(u32, u32)> = (0..100u32).map(|i| (i + 1, i)).collect();
    let rep = dmap.insert_overlapped(&pairs, 10_000, 4).unwrap();
    assert_eq!(rep.batches, 1);
    assert_eq!(rep.saving(), 0.0); // one batch cannot overlap with itself
    assert_eq!(dmap.len(), 100);
}

#[test]
fn group_size_can_change_between_batches() {
    let mut map = GpuHashMap::new(device(1 << 13), 1024, Config::default()).unwrap();
    let pairs: Vec<(u32, u32)> = (0..800u32).map(|i| (i + 1, i)).collect();
    for (i, chunk) in pairs.chunks(200).enumerate() {
        map.set_group_size(gpu_sim::GroupSize::new([1u32, 4, 16, 32][i]));
        map.insert_pairs(chunk).unwrap();
    }
    map.set_group_size(gpu_sim::GroupSize::new(2));
    let res = map
        .try_retrieve(&pairs.iter().map(|p| p.0).collect::<Vec<_>>())
        .unwrap()
        .values;
    assert!(res.iter().all(Option::is_some));
}
