//! Shared helpers for the WarpDrive examples and integration tests.
//!
//! The interesting code lives in the top-level `examples/` and `tests/`
//! directories (wired into this package via explicit `[[example]]` /
//! `[[test]]` path entries); this small library only provides the bits
//! they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

/// Reads a `u64` environment knob, falling back to `default` when the
/// variable is unset or unparsable. Shared by the sweep-breadth knobs
/// below (proptest case counts have their own `PROPTEST_CASES`).
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Number of stepwise-schedule seeds the concurrency sweeps run per
/// (layout × group size) cell. Override with `WD_SWEEP_SEEDS` — raise it
/// for a deeper overnight hunt, lower it for a quick smoke pass.
#[must_use]
pub fn sweep_seeds() -> u64 {
    env_u64("WD_SWEEP_SEEDS", 32)
}

/// Seed budget for proving the mutation double is caught (defaults to
/// the sweep budget). Override with `WD_MUTATION_SEEDS`.
#[must_use]
pub fn mutation_seeds() -> u64 {
    env_u64("WD_MUTATION_SEEDS", sweep_seeds())
}

/// Global sweep-breadth multiplier: seed counts and workload sizes in
/// the schedule/chaos/equivalence sweeps scale linearly with it.
/// Override with `WD_SWEEP_SCALE` (default 1) — the instrument-speed
/// overhaul (epoch racecheck, chunked dispatch, parallel checker) is
/// what makes `WD_SWEEP_SCALE=10` affordable. `0` is clamped to 1.
#[must_use]
pub fn sweep_scale() -> u64 {
    env_u64("WD_SWEEP_SCALE", 1).max(1)
}

/// Scales a baseline count by [`sweep_scale`].
#[must_use]
pub fn scaled(baseline: u64) -> u64 {
    baseline.saturating_mul(sweep_scale())
}

/// Builds a simulated quad-P100 node sized for experiments of `n`
/// elements per GPU: per-GPU pool = table capacity + staging room.
#[must_use]
pub fn quad_node(capacity_per_gpu: usize, n_per_gpu: usize) -> Vec<Arc<gpu_sim::Device>> {
    (0..4)
        .map(|i| {
            Arc::new(gpu_sim::Device::with_words(
                i,
                capacity_per_gpu + 8 * n_per_gpu + 4096,
            ))
        })
        .collect()
}

/// Encodes a DNA base to its 2-bit code.
///
/// # Panics
/// Panics on non-ACGT input.
#[must_use]
pub fn base_code(b: u8) -> u32 {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        _ => panic!("not a DNA base: {}", b as char),
    }
}

/// Packs the `k`-mer starting at `pos` of `seq` into 2-bit codes
/// (k ≤ 15 keeps it within a 30-bit key, leaving the reserved key free).
///
/// # Panics
/// Panics if the window exceeds the sequence or `k > 15`.
#[must_use]
pub fn encode_kmer(seq: &[u8], pos: usize, k: usize) -> u32 {
    assert!(k <= 15, "k must fit a 4-byte key (k <= 15)");
    assert!(pos + k <= seq.len(), "k-mer window out of range");
    seq[pos..pos + k]
        .iter()
        .fold(0u32, |acc, &b| (acc << 2) | base_code(b))
}

/// Deterministic synthetic DNA sequence of length `len`.
#[must_use]
pub fn synthetic_dna(len: usize, seed: u64) -> Vec<u8> {
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    (0..len as u64)
        .map(|i| BASES[(hashes::fmix64(seed ^ i.wrapping_mul(0x9e37_79b9)) & 3) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmer_encoding_round_trips_structure() {
        let seq = b"ACGTACGTACGT";
        let k = 4;
        let a = encode_kmer(seq, 0, k); // ACGT
        let b = encode_kmer(seq, 4, k); // ACGT again
        let c = encode_kmer(seq, 1, k); // CGTA
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, 0b00_01_10_11);
    }

    #[test]
    fn synthetic_dna_is_deterministic_acgt() {
        let d1 = synthetic_dna(1000, 7);
        let d2 = synthetic_dna(1000, 7);
        assert_eq!(d1, d2);
        assert!(d1.iter().all(|b| b"ACGT".contains(b)));
        // all four bases appear
        for b in b"ACGT" {
            assert!(d1.contains(b));
        }
    }

    #[test]
    #[should_panic(expected = "k <= 15")]
    fn oversized_k_rejected() {
        let _ = encode_kmer(&[b'A'; 40], 0, 16);
    }
}
