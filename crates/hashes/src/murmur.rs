//! MurmurHash3 integer finalizers ("fmix") as listed in the paper (§V-A).
//!
//! These are the avalanche finalizers from Austin Appleby's MurmurHash3.
//! Each is a bijection on its word size: every step (xorshift by a constant,
//! multiplication by an odd constant) is invertible, so the composition is
//! an index permutation — a property the paper relies on to build translated
//! hash-function variants.

/// MurmurHash3 32-bit finalizer, verbatim from the paper's listing.
///
/// ```
/// # use hashes::murmur::fmix32;
/// assert_ne!(fmix32(1), fmix32(2));
/// assert_eq!(fmix32(0), 0); // 0 is the fixed point of fmix32
/// ```
#[inline]
#[must_use]
pub const fn fmix32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x85eb_ca6b);
    x ^= x >> 13;
    x = x.wrapping_mul(0xc2b2_ae35);
    x ^= x >> 16;
    x
}

/// Inverse of [`fmix32`]; useful in tests to certify bijectivity.
#[inline]
#[must_use]
pub const fn fmix32_inverse(mut x: u32) -> u32 {
    x ^= x >> 16;
    // modular inverses of the odd multipliers (mod 2^32)
    x = x.wrapping_mul(0x7ed1_b41d); // inverse of 0xc2b2ae35
    x ^= (x >> 13) ^ (x >> 26);
    x = x.wrapping_mul(0xa5cb_9243); // inverse of 0x85ebca6b
    x ^= x >> 16;
    x
}

/// MurmurHash3 64-bit finalizer.
///
/// Used for hashing packed 64-bit key-value words and for seeding.
#[inline]
#[must_use]
pub const fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmix32_is_bijective_on_samples() {
        // round-trip through the explicit inverse on a spread of inputs
        for i in 0..10_000u32 {
            let x = i.wrapping_mul(0x9e37_79b9);
            assert_eq!(fmix32_inverse(fmix32(x)), x, "x={x:#x}");
        }
    }

    #[test]
    fn fmix32_known_vectors() {
        // vectors cross-checked against the reference C implementation
        assert_eq!(fmix32(0), 0);
        assert_eq!(fmix32(1), 0x514e_28b7);
        assert_eq!(fmix32(0xdead_beef), 0x0de5_c6a9);
        assert_eq!(fmix32(u32::MAX), 0x81f1_6f39);
    }

    #[test]
    fn fmix64_distinct_on_small_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(fmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn fmix64_known_fixed_point() {
        assert_eq!(fmix64(0), 0);
        assert_ne!(fmix64(1), 1);
    }
}
