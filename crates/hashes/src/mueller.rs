//! Mueller integer hash functions as listed in the paper (§V-A).
//!
//! Thomas Mueller's construction uses the same xorshift/odd-multiply recipe
//! as the MurmurHash3 finalizer but with a single repeated multiplier. It
//! exhibits comparable avalanche behaviour and is likewise a bijection on
//! `u32` so translated variants stay permutations.

/// Mueller 32-bit hash, verbatim from the paper's listing.
#[inline]
#[must_use]
pub const fn mueller32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x045d_9f3b);
    x ^= x >> 16;
    x = x.wrapping_mul(0x045d_9f3b);
    x ^= x >> 16;
    x
}

/// Inverse of [`mueller32`] (used by tests to certify bijectivity).
#[inline]
#[must_use]
pub const fn mueller32_inverse(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x119d_e1f3); // modular inverse of 0x045d9f3b
    x ^= x >> 16;
    x = x.wrapping_mul(0x119d_e1f3);
    x ^= x >> 16;
    x
}

/// Mueller 64-bit hash (the 64-bit variant from the same source).
#[inline]
#[must_use]
pub const fn mueller64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mueller32_round_trips() {
        for i in 0..10_000u32 {
            let x = i.wrapping_mul(0x9e37_79b9).wrapping_add(7);
            assert_eq!(mueller32_inverse(mueller32(x)), x, "x={x:#x}");
        }
    }

    #[test]
    fn mueller32_zero_fixed_point() {
        assert_eq!(mueller32(0), 0);
        assert_ne!(mueller32(1), 1);
    }

    #[test]
    fn mueller64_no_collisions_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mueller64(i)), "collision at {i}");
        }
    }
}
