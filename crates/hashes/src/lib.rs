//! Hash-function families for the WarpDrive reproduction.
//!
//! The paper (§V-A) uses two 4-byte hash functions with strong avalanche
//! properties that additionally act as *isomorphisms* (bijections) on the
//! space of 32-bit integers:
//!
//! * the integer finalizer of Appleby's MurmurHash3 ([`murmur::fmix32`]),
//! * the similar construction by Mueller ([`mueller::mueller32`]).
//!
//! Because both are index permutations, *translated* variants
//! `h̃_y(x) = h(x + y)` retain the bijectivity, which the paper exploits to
//! derive fresh hash functions after an insertion failure. That scheme is
//! captured by [`family::Translated`].
//!
//! §II of the paper also discusses the theory of probing guarantees:
//! pair-wise independent hash functions give expected *logarithmic* time for
//! linear probing while 5-wise independent functions (constructible with
//! *tabulation hashing*) give expected constant time. We implement
//! tabulation hashing in [`tabulation`] so the probing ablations can compare
//! hash families, not just probing schemes.
//!
//! Everything here is `no_std`-style pure arithmetic (no allocation except
//! tabulation tables) and is shared by the device kernels, the multisplit
//! partition function and the CPU baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avalanche;
pub mod family;
pub mod fastmod;
pub mod mueller;
pub mod murmur;
pub mod tabulation;

pub use family::{DoubleHash, HashFamily, HashFn32, Hasher32, PartitionFn, Translated};
pub use fastmod::FastMod32;
pub use mueller::{mueller32, mueller64};
pub use murmur::{fmix32, fmix64};
pub use tabulation::Tabulation32;
