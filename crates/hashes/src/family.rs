//! Hash-function families, translated variants and partition functions.
//!
//! The probing schemes in the core crate need three capabilities from a
//! hash family (paper §II, §IV-A, §IV-B):
//!
//! 1. a *primary* hash `h(k)` selecting the initial probing window,
//! 2. a *secondary* hash `g(k)` supplying the chaotic (double-hashing) step,
//! 3. a way to derive a *fresh* function after an insertion failure — the
//!    paper rebuilds the table "with a distinct hash function", realised
//!    here by the translated variant `h̃_y(x) = h(x + y)` which preserves
//!    the bijectivity of the base permutation.
//!
//! The multi-GPU layer additionally needs a *partition* function
//! `p(k) ∈ {0..m-1}` assigning each key a unique GPU (paper §IV-B). We
//! derive it from the upper bits of a finalizer so it is independent from
//! the table-index bits used by `h`.

use crate::{mueller32, murmur::fmix32, Tabulation32};

/// A 32-bit hash function usable inside device kernels.
///
/// Object-safe so kernels can be generic over boxed families; all provided
/// implementations are cheap pure functions.
pub trait Hasher32: Send + Sync {
    /// Hashes a 32-bit key to a 32-bit value.
    fn hash(&self, x: u32) -> u32;
}

/// Built-in hash function selection (serde-friendly plain enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashFn32 {
    /// MurmurHash3 integer finalizer (paper listing, default).
    Murmur,
    /// Mueller hash (paper listing).
    Mueller,
    /// Identity — pathological choice kept for tests/ablations showing
    /// primary clustering.
    Identity,
}

impl HashFn32 {
    /// Applies the selected function.
    #[inline]
    #[must_use]
    pub const fn apply(self, x: u32) -> u32 {
        match self {
            HashFn32::Murmur => fmix32(x),
            HashFn32::Mueller => mueller32(x),
            HashFn32::Identity => x,
        }
    }
}

impl Hasher32 for HashFn32 {
    #[inline]
    fn hash(&self, x: u32) -> u32 {
        self.apply(x)
    }
}

impl Hasher32 for Tabulation32 {
    #[inline]
    fn hash(&self, x: u32) -> u32 {
        Tabulation32::hash(self, x)
    }
}

/// Translated hash `h̃_y(x) = h(x ⊞ y)`.
///
/// Since the base functions are index permutations, translation yields a
/// distinct member of the same family (paper §V-A). Used to re-seed the
/// table after a failed insertion run and to derive the independent
/// outer-probe hashes `hash(d, p)` of the Fig. 3 pseudocode.
#[derive(Debug, Clone, Copy)]
pub struct Translated {
    /// Base function being translated.
    pub base: HashFn32,
    /// Additive translation applied before the base function.
    pub offset: u32,
}

impl Hasher32 for Translated {
    #[inline]
    fn hash(&self, x: u32) -> u32 {
        self.base.apply(x.wrapping_add(self.offset))
    }
}

/// A double-hashing pair `(h, g)` driving the hybrid probing scheme.
///
/// `h` positions the first window; `g` supplies the chaotic stride between
/// windows. `g` is forced odd so it is co-prime with power-of-two
/// capacities and the probe sequence visits every window.
#[derive(Debug, Clone, Copy)]
pub struct DoubleHash {
    /// Primary hash function.
    pub primary: Translated,
    /// Secondary (stride) hash function.
    pub secondary: Translated,
}

impl DoubleHash {
    /// Standard pair used by WarpDrive: murmur primary, mueller secondary,
    /// both translated by a seed so rebuilds get a fresh family member.
    #[must_use]
    pub fn from_seed(seed: u32) -> Self {
        Self {
            primary: Translated {
                base: HashFn32::Murmur,
                offset: seed,
            },
            secondary: Translated {
                base: HashFn32::Mueller,
                offset: seed.wrapping_mul(0x9e37_79b9).wrapping_add(1),
            },
        }
    }

    /// Primary hash of a key.
    #[inline]
    #[must_use]
    pub fn h(&self, k: u32) -> u32 {
        self.primary.hash(k)
    }

    /// Secondary stride of a key; always odd (never zero).
    #[inline]
    #[must_use]
    pub fn g(&self, k: u32) -> u32 {
        self.secondary.hash(k) | 1
    }
}

/// A family of hash functions indexed by an attempt number.
///
/// `member(p)` yields the hash used for outer probing attempt `p`
/// (`hash(d, p)` in Fig. 3 of the paper).
pub trait HashFamily: Send + Sync {
    /// Returns the `p`-th member of the family applied to `k`.
    fn member(&self, p: u32, k: u32) -> u32;
}

impl HashFamily for DoubleHash {
    /// Double hashing: `s(k, p) = h(k) + p·g(k)` (paper Eq. 3), evaluated
    /// per outer window.
    #[inline]
    fn member(&self, p: u32, k: u32) -> u32 {
        self.h(k).wrapping_add(p.wrapping_mul(self.g(k)))
    }
}

/// The partition (hash) function `p(k) ∈ {0..m-1}` of §IV-B assigning each
/// key a unique GPU.
///
/// Derived from the *upper* bits of a seeded finalizer so that it is
/// statistically independent of the low bits used for table indexing —
/// otherwise every key on GPU `i` would hash into the same residue class of
/// the local table.
#[derive(Debug, Clone, Copy)]
pub struct PartitionFn {
    /// Number of partitions (GPUs).
    pub m: u32,
    seed: u32,
}

impl PartitionFn {
    /// Creates a partition function over `m ≥ 1` parts.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: u32, seed: u32) -> Self {
        assert!(m > 0, "partition function needs at least one part");
        Self { m, seed }
    }

    /// Modulo partitioning `p(k) = k mod m` as used in the Fig. 4 example.
    #[must_use]
    pub fn modulo(m: u32) -> Self {
        assert!(m > 0, "partition function needs at least one part");
        Self { m, seed: u32::MAX }
    }

    /// GPU identifier for key `k`.
    #[inline]
    #[must_use]
    pub fn part(&self, k: u32) -> u32 {
        if self.seed == u32::MAX {
            k % self.m
        } else {
            // multiply-shift on the hashed key: unbiased for m << 2^32
            let h = fmix32(k.wrapping_add(self.seed));
            ((u64::from(h) * u64::from(self.m)) >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn translated_differs_from_base() {
        let t = Translated {
            base: HashFn32::Murmur,
            offset: 17,
        };
        let mut diff = 0;
        for k in 0..1000u32 {
            if t.hash(k) != fmix32(k) {
                diff += 1;
            }
        }
        assert!(diff > 990, "translation should change almost all outputs");
    }

    #[test]
    fn double_hash_stride_is_odd() {
        let dh = DoubleHash::from_seed(3);
        for k in 0..5000u32 {
            assert_eq!(dh.g(k) & 1, 1);
        }
    }

    #[test]
    fn double_hash_family_members_differ() {
        let dh = DoubleHash::from_seed(0);
        let k = 12345;
        let h0 = dh.member(0, k);
        let h1 = dh.member(1, k);
        let h2 = dh.member(2, k);
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
        // stride is constant between consecutive members (double hashing)
        assert_eq!(h1.wrapping_sub(h0), h2.wrapping_sub(h1));
    }

    #[test]
    fn partition_fn_modulo_matches_paper_example() {
        // Fig. 4 caption: p(k) = k mod 4
        let p = PartitionFn::modulo(4);
        for k in 0..64 {
            assert_eq!(p.part(k), k % 4);
        }
    }

    #[test]
    fn partition_fn_is_balanced() {
        let m = 4;
        let p = PartitionFn::new(m, 11);
        let n = 40_000u32;
        let mut counts = vec![0u32; m as usize];
        for k in 0..n {
            counts[p.part(fmix32(k)) as usize] += 1;
        }
        let expect = n / m;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - f64::from(expect)).abs() / f64::from(expect);
            assert!(dev < 0.05, "partition {i} imbalanced: {c} vs {expect}");
        }
    }

    proptest! {
        #[test]
        fn partition_always_in_range(k: u32, m in 1u32..64, seed: u32) {
            let p = PartitionFn::new(m, seed);
            prop_assert!(p.part(k) < m);
        }

        #[test]
        fn hash_fns_are_deterministic(k: u32) {
            prop_assert_eq!(HashFn32::Murmur.apply(k), HashFn32::Murmur.apply(k));
            prop_assert_eq!(HashFn32::Mueller.apply(k), HashFn32::Mueller.apply(k));
        }

        #[test]
        fn double_hash_seeds_give_distinct_functions(k: u32) {
            let a = DoubleHash::from_seed(1);
            let b = DoubleHash::from_seed(2);
            // not a strict inequality for every k, but h must differ for
            // *some* k; check a derived triple to keep the property cheap
            let ka = (a.h(k), a.g(k), a.member(3, k));
            let kb = (b.h(k), b.g(k), b.member(3, k));
            // at minimum the pair of triples cannot be equal for all keys;
            // flag the (astronomically unlikely) full match only
            prop_assume!(ka != kb);
            prop_assert!(true);
        }
    }
}
