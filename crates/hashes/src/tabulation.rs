//! Tabulation-based hashing.
//!
//! §II of the paper cites Thorup & Zhang: linear probing with a merely
//! pair-wise independent hash function only guarantees expected logarithmic
//! operation time, while a 5-wise independent family guarantees expected
//! constant time, and such families can be constructed with *tabulation
//! hashing*. Simple tabulation (one random table per input byte, XOR of the
//! looked-up words) is 3-wise independent but is known to behave like a
//! 5-wise independent family for linear probing (Pătraşcu & Thorup), which
//! is the property the paper appeals to.
//!
//! We provide [`Tabulation32`] so the hash-family ablation
//! (`ablation_hash`) can compare multiplicative finalizers against
//! tabulation on real probe-length distributions.

use rand::{Rng, SeedableRng};

/// Simple tabulation hashing over 32-bit keys: four 256-entry tables of
/// random 32-bit words, one per key byte, combined with XOR.
#[derive(Clone)]
pub struct Tabulation32 {
    tables: Box<[[u32; 256]; 4]>,
}

impl Tabulation32 {
    /// Builds the four random tables from a seed (deterministic per seed).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tables = Box::new([[0u32; 256]; 4]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = rng.gen();
            }
        }
        Self { tables }
    }

    /// Hashes a 32-bit key by XOR-ing the per-byte table entries.
    #[inline]
    #[must_use]
    pub fn hash(&self, x: u32) -> u32 {
        let b = x.to_le_bytes();
        self.tables[0][b[0] as usize]
            ^ self.tables[1][b[1] as usize]
            ^ self.tables[2][b[2] as usize]
            ^ self.tables[3][b[3] as usize]
    }
}

impl std::fmt::Debug for Tabulation32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tabulation32").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Tabulation32::new(42);
        let b = Tabulation32::new(42);
        let c = Tabulation32::new(43);
        assert_eq!(a.hash(0xdead_beef), b.hash(0xdead_beef));
        assert_ne!(a.hash(0xdead_beef), c.hash(0xdead_beef));
    }

    #[test]
    fn spreads_sequential_keys() {
        // sequential keys must not land in sequential buckets
        let t = Tabulation32::new(7);
        let c = 1024u32;
        let mut hits = vec![0u32; c as usize];
        for k in 0..4096u32 {
            hits[(t.hash(k) % c) as usize] += 1;
        }
        let max = *hits.iter().max().unwrap();
        // expected 4 per bucket; a badly broken table would cluster
        assert!(max < 20, "max bucket occupancy {max}");
    }

    #[test]
    fn three_wise_independence_smoke() {
        // XOR of hashes of three distinct keys should itself look uniform:
        // check bit balance over many triples.
        let t = Tabulation32::new(99);
        let mut ones = [0u32; 32];
        let n = 2000u32;
        for i in 0..n {
            let v = t.hash(i) ^ t.hash(i + 1) ^ t.hash(i + 2);
            for (bit, one) in ones.iter_mut().enumerate() {
                *one += (v >> bit) & 1;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            let frac = f64::from(count) / f64::from(n);
            assert!((0.40..=0.60).contains(&frac), "bit {bit} biased: {frac:.3}");
        }
    }
}
