//! Division-free modulo reduction (Lemire, Kaser & Kurz, "Faster
//! remainder by direct computation", 2019).
//!
//! Table capacities are runtime values, so every `hash % capacity` on the
//! probing hot path compiles to a hardware `div` — tens of cycles on the
//! host CPUs the simulator actually runs on, several times per probed
//! window. For 32-bit operands the remainder can instead be computed
//! *exactly* with one wrapping 64-bit multiply and the high half of a
//! 64×64 product: with `M = ⌈2⁶⁴ / d⌉`, `n mod d = ⌊((M·n mod 2⁶⁴) · d) /
//! 2⁶⁴⌋` for all `n, d < 2³²`. The result is bit-identical to `n % d` —
//! the simulator's counters and replay hints cannot tell the difference —
//! only the cycle count changes.

/// Precomputed fast-modulo context for a fixed divisor.
///
/// The fast path is exact for dividends up to [`u32::MAX`]; larger
/// dividends (or divisors above `u32::MAX`, where the magic constant
/// cannot be represented) transparently fall back to hardware `%`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastMod32 {
    d: u64,
    /// `⌈2⁶⁴ / d⌉ mod 2⁶⁴` — wraps to 0 for `d = 1`, which still yields
    /// the correct remainder (always 0) through the same formula.
    magic: u64,
    /// Whether `d` admits the 32-bit fast path at all.
    fast: bool,
}

impl FastMod32 {
    /// Precomputes the reduction context for divisor `d`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "modulo by zero");
        let fast = d <= u64::from(u32::MAX);
        let magic = if fast {
            (u64::MAX / d).wrapping_add(1)
        } else {
            0
        };
        Self { d, magic, fast }
    }

    /// The divisor.
    #[inline]
    #[must_use]
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// `n % d`, division-free when both fit 32 bits.
    #[inline]
    #[must_use]
    pub fn rem(&self, n: u64) -> u64 {
        if self.fast && n <= u64::from(u32::MAX) {
            let lowbits = self.magic.wrapping_mul(n);
            ((u128::from(lowbits) * u128::from(self.d)) >> 64) as u64
        } else {
            n % self.d
        }
    }

    /// `(a + b) % d` for already-reduced `a < d` and small `b < d`: a
    /// single conditional subtraction, no multiply at all. This is the
    /// inner-loop form — window offsets and probe increments are always
    /// bounded by the span width, far below any legal capacity.
    #[inline]
    #[must_use]
    pub fn add_rem(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.d && b < self.d);
        let s = a + b;
        if s >= self.d {
            s - self.d
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hardware_modulo_exhaustively_on_edges() {
        for d in [
            1u64,
            2,
            3,
            7,
            31,
            32,
            1000,
            65536,
            (1 << 20) - 1,
            u64::from(u32::MAX),
        ] {
            let f = FastMod32::new(d);
            for n in [
                0u64,
                1,
                d - 1,
                d,
                d + 1,
                2 * d.min(1 << 31),
                12_345_678,
                u64::from(u32::MAX) - 1,
                u64::from(u32::MAX),
            ] {
                assert_eq!(f.rem(n), n % d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn randomized_agreement() {
        // deterministic LCG sweep — no external RNG
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let n = x >> 32;
            let d = (x & 0xFFFF_FFFF).max(1);
            let f = FastMod32::new(d);
            assert_eq!(f.rem(n), n % d, "n={n} d={d}");
        }
    }

    #[test]
    fn wide_dividends_fall_back() {
        let f = FastMod32::new(1000);
        assert_eq!(f.rem(u64::MAX), u64::MAX % 1000);
        assert_eq!(f.rem(1u64 << 40), (1u64 << 40) % 1000);
    }

    #[test]
    fn wide_divisors_fall_back() {
        let d = u64::from(u32::MAX) + 17;
        let f = FastMod32::new(d);
        assert_eq!(f.rem(123), 123);
        assert_eq!(f.rem(u64::MAX), u64::MAX % d);
    }

    #[test]
    fn add_rem_wraps_once() {
        let f = FastMod32::new(100);
        assert_eq!(f.add_rem(99, 1), 0);
        assert_eq!(f.add_rem(50, 49), 99);
        assert_eq!(f.add_rem(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "modulo by zero")]
    fn zero_divisor_rejected() {
        let _ = FastMod32::new(0);
    }
}
