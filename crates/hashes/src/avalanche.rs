//! Avalanche quality measurement for hash functions.
//!
//! The paper selects murmur/mueller because both "exhibit favorable
//! avalanche properties" (§V-A): flipping any single input bit should flip
//! each output bit with probability ≈ 1/2. This module quantifies that so
//! the hash ablation can report avalanche bias alongside throughput, and so
//! tests can guard against regressions in the hand-written constants.

use crate::Hasher32;

/// Result of an avalanche sweep: probability estimates that output bit `j`
/// flips when input bit `i` flips.
#[derive(Debug, Clone)]
pub struct AvalancheMatrix {
    /// `flip[i][j]` = fraction of trials where flipping input bit `i`
    /// flipped output bit `j`.
    pub flip: Vec<[f64; 32]>,
    /// Number of trials per input bit.
    pub trials: u32,
}

impl AvalancheMatrix {
    /// Worst absolute deviation from the ideal 0.5 flip probability.
    #[must_use]
    pub fn max_bias(&self) -> f64 {
        self.flip
            .iter()
            .flat_map(|row| row.iter())
            .map(|p| (p - 0.5).abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute deviation from 0.5 across the whole matrix.
    #[must_use]
    pub fn mean_bias(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in &self.flip {
            for p in row {
                sum += (p - 0.5).abs();
                n += 1;
            }
        }
        sum / n as f64
    }
}

/// Measures the avalanche matrix of `h` with `trials` pseudo-random probes
/// per input bit (deterministic: probes derive from a Weyl sequence).
#[must_use]
pub fn avalanche<H: Hasher32 + ?Sized>(h: &H, trials: u32) -> AvalancheMatrix {
    let mut flip = vec![[0.0f64; 32]; 32];
    for bit in 0..32u32 {
        let mut counts = [0u32; 32];
        let mut x = 0x1234_5678u32;
        for _ in 0..trials {
            x = x.wrapping_add(0x9e37_79b9); // Weyl sequence probe stream
            let d = h.hash(x) ^ h.hash(x ^ (1 << bit));
            for (j, count) in counts.iter_mut().enumerate() {
                *count += (d >> j) & 1;
            }
        }
        for j in 0..32 {
            flip[bit as usize][j] = f64::from(counts[j]) / f64::from(trials);
        }
    }
    AvalancheMatrix { flip, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashFn32, Tabulation32};

    #[test]
    fn murmur_has_good_avalanche() {
        let m = avalanche(&HashFn32::Murmur, 2000);
        assert!(m.max_bias() < 0.10, "max bias {}", m.max_bias());
        assert!(m.mean_bias() < 0.02, "mean bias {}", m.mean_bias());
    }

    #[test]
    fn mueller_has_good_avalanche() {
        let m = avalanche(&HashFn32::Mueller, 2000);
        assert!(m.max_bias() < 0.10, "max bias {}", m.max_bias());
    }

    #[test]
    fn tabulation_has_good_avalanche() {
        let t = Tabulation32::new(5);
        let m = avalanche(&t, 2000);
        // per-bit deltas depend on a single byte's table pair, so simple
        // tabulation's strict avalanche is coarser than the finalizers'
        assert!(m.max_bias() < 0.25, "max bias {}", m.max_bias());
        assert!(m.mean_bias() < 0.05, "mean bias {}", m.mean_bias());
    }

    #[test]
    fn identity_has_terrible_avalanche() {
        let m = avalanche(&HashFn32::Identity, 500);
        // identity flips exactly the input bit: bias is maximal
        assert!(m.max_bias() > 0.45, "max bias {}", m.max_bias());
    }
}
