//! Sampling with replacement from the 4-byte key space.

use crate::{value_for_index, Pair};
use hashes::fmix64;
use rayon::prelude::*;

/// Uniform i.i.d. key sampler (counter-based, so generation is
/// deterministic, seekable and embarrassingly parallel).
#[derive(Debug, Clone, Copy)]
pub struct UniformKeys {
    seed: u64,
}

impl UniformKeys {
    /// Creates a sampler for a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The `i`-th sampled key. Counter-based RNG: `fmix64` over the
    /// (seed, index) pair has full 64-bit avalanche, and we fold to 32
    /// bits. The reserved key `u32::MAX` is remapped to 0 — a bias of
    /// 2⁻³² that no statistic in the paper can observe.
    #[inline]
    #[must_use]
    pub fn key_at(&self, i: u64) -> u32 {
        let k = fmix64(
            self.seed
                .wrapping_add(i.wrapping_mul(0xa076_1d64_78bd_642f)),
        ) as u32;
        if k == u32::MAX {
            0
        } else {
            k
        }
    }

    /// Generates `n` pairs in parallel.
    #[must_use]
    pub fn pairs(&self, n: usize) -> Vec<Pair> {
        let this = *self;
        (0..n as u64)
            .into_par_iter()
            .map(|i| (this.key_at(i), value_for_index(this.seed, i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expected_unique_fraction;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(
            UniformKeys::new(5).pairs(100),
            UniformKeys::new(5).pairs(100)
        );
        assert_ne!(
            UniformKeys::new(5).pairs(100),
            UniformKeys::new(6).pairs(100)
        );
    }

    #[test]
    fn unique_fraction_matches_bootstrap_ratio_on_small_space() {
        // emulate the birthday statistics by folding keys into a small
        // space and comparing against the analytic bootstrap ratio
        let g = UniformKeys::new(11);
        let space = 1u64 << 16;
        let n = 1usize << 16;
        let distinct: HashSet<u32> = (0..n as u64)
            .map(|i| g.key_at(i) & (space as u32 - 1))
            .collect();
        let measured = distinct.len() as f64 / n as f64;
        let expected = expected_unique_fraction(n as u64, space);
        assert!(
            (measured - expected).abs() < 0.01,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn keys_cover_the_space_evenly() {
        let g = UniformKeys::new(3);
        let mut buckets = [0u32; 16];
        let n = 64_000u64;
        for i in 0..n {
            buckets[(g.key_at(i) >> 28) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        for (b, &c) in buckets.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {b}: {c} vs {expect}");
        }
    }

    #[test]
    fn reserved_key_remapped() {
        // cannot easily force fmix64 to produce u32::MAX; assert the
        // remapping logic directly on the branch
        let g = UniformKeys::new(0);
        for i in 0..100_000u64 {
            assert_ne!(g.key_at(i), u32::MAX);
        }
    }
}
