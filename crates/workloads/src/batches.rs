//! Batch decomposition for the out-of-core cascades.
//!
//! Host-sided insertion and retrieval operate on batches of 2²⁴ packed
//! pairs (128 MB) in the paper (§V-C); the async pipeline overlaps the
//! H2D → MST → INS stages of consecutive batches. This module slices a
//! workload into such batches and carries per-batch metadata.

use crate::Pair;

/// One batch of key-value pairs flowing through a cascade.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch index within the stream.
    pub index: usize,
    /// The pairs of this batch.
    pub pairs: Vec<Pair>,
}

impl Batch {
    /// Size in bytes when packed as 64-bit AOS words (what travels over
    /// PCIe).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.pairs.len() as u64) * 8
    }
}

/// Splits `pairs` into batches of at most `batch_size` elements,
/// preserving order (the last batch may be short).
///
/// # Panics
/// Panics if `batch_size == 0`.
#[must_use]
pub fn batches_of(pairs: &[Pair], batch_size: usize) -> Vec<Batch> {
    assert!(batch_size > 0, "batch size must be positive");
    pairs
        .chunks(batch_size)
        .enumerate()
        .map(|(index, chunk)| Batch {
            index,
            pairs: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_preserving_order_and_tail() {
        let pairs: Vec<Pair> = (0..10u32).map(|i| (i, i * 2)).collect();
        let batches = batches_of(&pairs, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].pairs.len(), 4);
        assert_eq!(batches[2].pairs.len(), 2);
        assert_eq!(batches[1].index, 1);
        let flat: Vec<Pair> = batches.iter().flat_map(|b| b.pairs.clone()).collect();
        assert_eq!(flat, pairs);
    }

    #[test]
    fn bytes_counts_packed_words() {
        let pairs: Vec<Pair> = (0..3u32).map(|i| (i, i)).collect();
        let b = &batches_of(&pairs, 8)[0];
        assert_eq!(b.bytes(), 24);
    }

    #[test]
    fn empty_input_gives_no_batches() {
        assert!(batches_of(&[], 16).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        let _ = batches_of(&[(1, 2)], 0);
    }
}
