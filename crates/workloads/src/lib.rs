//! Workload generators reproducing the paper's three key distributions
//! (§V-A):
//!
//! * **Unique** — up to 2³² keys sampled *without* replacement from the
//!   4-byte key space, "equivalent to a Fisher–Yates shuffle of an
//!   ascending integer sequence". We realise the shuffle with a Feistel
//!   bijection over `u32` ([`unique`]) so it needs O(1) memory instead of a
//!   16 GiB permutation table.
//! * **Uniform** — keys drawn *with* replacement; the expected unique
//!   fraction follows the bootstrap ratio `1 − e^{−n/2³²}` ([`uniform`]).
//! * **Zipf** — key multiplicities follow a power law with damping
//!   exponent `s > 1`; the paper uses `s = 1 + 10⁻⁶` ([`zipf`]).
//!
//! Values are arbitrary 4 bytes; we derive them deterministically from the
//! key index so tests can predict the *last-writer-wins* outcome for
//! duplicate keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batches;
pub mod drift;
pub mod uniform;
pub mod unique;
pub mod ycsb;
pub mod zipf;

pub use batches::{batches_of, Batch};
pub use drift::DriftingZipf;
pub use uniform::UniformKeys;
pub use unique::UniqueKeys;
pub use ycsb::{MixedOp, Ycsb, YcsbMix};
pub use zipf::Zipf;

use serde::{Deserialize, Serialize};

/// A key-value pair as fed to the hash map: 4-byte key, 4-byte value.
pub type Pair = (u32, u32);

/// The paper's key distributions, selectable by experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Sampling without replacement (all keys distinct).
    Unique,
    /// Sampling with replacement from the full 4-byte space.
    Uniform,
    /// Power-law multiplicities with exponent `s`.
    Zipf {
        /// Exponential damping coefficient (`s > 1`); the paper uses
        /// `1 + 10⁻⁶`.
        s: f64,
    },
}

impl Distribution {
    /// The paper's Zipf configuration.
    #[must_use]
    pub fn paper_zipf() -> Self {
        Distribution::Zipf { s: 1.0 + 1e-6 }
    }

    /// Generates `n` key-value pairs with the given seed.
    ///
    /// Keys never equal `u32::MAX` (reserved for the hash map's EMPTY /
    /// TOMBSTONE sentinels); values are `fmix64`-derived from the pair
    /// index so duplicate keys carry distinct values.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Pair> {
        match *self {
            Distribution::Unique => UniqueKeys::new(seed).pairs(n),
            Distribution::Uniform => UniformKeys::new(seed).pairs(n),
            Distribution::Zipf { s } => Zipf::new(s, u64::from(u32::MAX), seed).pairs(n),
        }
    }

    /// Short label used in benchmark tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Unique => "unique",
            Distribution::Uniform => "uniform",
            Distribution::Zipf { .. } => "zipf",
        }
    }
}

/// Value deterministically associated with the `i`-th generated pair.
/// Exposed so tests can recompute expected values.
#[must_use]
pub fn value_for_index(seed: u64, i: u64) -> u32 {
    // avoid the all-ones value so tests can use it as a miss marker
    (hashes::fmix64(seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15))) as u32) & 0x7fff_ffff
}

/// Expected fraction of *distinct* keys when drawing `n` samples uniformly
/// with replacement from a space of `space` keys — the bootstrap ratio
/// `(1 − e^{−n/space})·space/n` quoted in §V-B.
#[must_use]
pub fn expected_unique_fraction(n: u64, space: u64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let ratio = n as f64 / space as f64;
    (1.0 - (-ratio).exp()) / ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_distribution() {
        let u = Distribution::Unique.generate(1000, 1);
        let mut keys: Vec<u32> = u.iter().map(|p| p.0).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 1000, "unique keys must not repeat");

        let z = Distribution::paper_zipf().generate(10_000, 1);
        let mut zk: Vec<u32> = z.iter().map(|p| p.0).collect();
        zk.sort_unstable();
        zk.dedup();
        assert!(zk.len() < 10_000, "zipf must produce duplicates");
    }

    #[test]
    fn no_sentinel_keys_generated() {
        for d in [
            Distribution::Unique,
            Distribution::Uniform,
            Distribution::paper_zipf(),
        ] {
            let pairs = d.generate(5_000, 7);
            assert!(
                pairs.iter().all(|&(k, _)| k != u32::MAX),
                "{} produced the reserved key",
                d.label()
            );
        }
    }

    #[test]
    fn bootstrap_ratio_matches_paper_number() {
        // §V-B: drawing 2^27 keys out of 2^32 with replacement gives
        // ≈ 98.5% unique keys
        let frac = expected_unique_fraction(1 << 27, 1 << 32);
        assert!((frac - 0.985).abs() < 0.002, "got {frac}");
    }

    #[test]
    fn values_are_deterministic_and_distinct_per_index() {
        assert_eq!(value_for_index(1, 0), value_for_index(1, 0));
        assert_ne!(value_for_index(1, 0), value_for_index(1, 1));
        assert_ne!(value_for_index(1, 5), value_for_index(2, 5));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Distribution::Unique.label(), "unique");
        assert_eq!(Distribution::paper_zipf().label(), "zipf");
    }
}
