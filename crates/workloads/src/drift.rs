//! Time-varying Zipf: a power-law key stream whose hot set drifts.
//!
//! Real serving traffic is skewed *and* non-stationary: the most popular
//! keys this minute are not the most popular keys ten minutes from now
//! (trending items, cache-busting deploys, diurnal shifts). The static
//! [`Zipf`] generator pins rank 1 to one key forever; this module rotates
//! the rank → key mapping on a configurable period instead.
//!
//! Op index `i` belongs to epoch `i / period`. Within an epoch the stream
//! is exactly a [`Zipf`] stream; across an epoch boundary the ranks are
//! re-scattered through a *fresh* Feistel permutation keyed by the epoch
//! number, so the entire hot set jumps to previously-cold keys at once.
//! Everything stays counter-based — `key_at(i)` is a pure function of
//! `(seed, i)` — so generation is embarrassingly parallel, bit-identical
//! across thread counts, and replayable from the seed alone.

use crate::unique::UniqueKeys;
use crate::zipf::Zipf;
use crate::{value_for_index, Pair};
use hashes::fmix64;
use rayon::prelude::*;

/// A Zipf(s) key stream over `n` ranks whose rank → key permutation is
/// re-drawn every `period` ops.
#[derive(Debug, Clone, Copy)]
pub struct DriftingZipf {
    zipf: Zipf,
    seed: u64,
    period: u64,
}

impl DriftingZipf {
    /// Creates a drifting sampler: exponent `s`, `n` ranks, and a fresh
    /// hot set every `period` ops.
    ///
    /// # Panics
    /// Panics on the [`Zipf::new`] domain violations (`s ≤ 0`, `s == 1`,
    /// `n == 0`, `n > 2³²`) or `period == 0`.
    #[must_use]
    pub fn new(s: f64, n: u64, seed: u64, period: u64) -> Self {
        assert!(period >= 1, "drift period must be at least one op");
        Self {
            zipf: Zipf::new(s, n, seed),
            seed,
            period,
        }
    }

    /// The drift epoch op `i` belongs to.
    #[inline]
    #[must_use]
    pub fn epoch_of(&self, i: u64) -> u64 {
        i / self.period
    }

    /// Ops per epoch.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The key holding rank `r` during `epoch` — rank 1 of epoch e and
    /// rank 1 of epoch e+1 are (almost surely) different keys.
    #[must_use]
    pub fn key_for_rank_at(&self, epoch: u64, r: u64) -> u32 {
        let perm = UniqueKeys::new(fmix64(
            self.seed ^ 0xd21f_7e11_0dd5_ca1e ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ));
        perm.key_at((r & 0xffff_ffff) as u32)
    }

    /// The key of the `i`-th op: Zipf-sampled rank, mapped through the
    /// op's epoch permutation.
    #[must_use]
    pub fn key_at(&self, i: u64) -> u32 {
        self.key_for_rank_at(self.epoch_of(i), self.zipf.rank_at(i))
    }

    /// Generates `count` pairs in parallel (counter-based, so the result
    /// is independent of the worker count).
    #[must_use]
    pub fn pairs(&self, count: usize) -> Vec<Pair> {
        let this = *self;
        (0..count as u64)
            .into_par_iter()
            .map(|i| (this.key_at(i), value_for_index(this.seed, i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn within_an_epoch_the_stream_is_plain_zipf() {
        let d = DriftingZipf::new(1.5, 1 << 16, 9, 10_000);
        let z = Zipf::new(1.5, 1 << 16, 9);
        for i in 0..5_000 {
            // same ranks as the static sampler; only the key map differs
            assert_eq!(d.zipf.rank_at(i), z.rank_at(i));
            assert_eq!(d.epoch_of(i), 0);
        }
    }

    #[test]
    fn hot_set_jumps_at_the_epoch_boundary() {
        let d = DriftingZipf::new(1.5, 1 << 20, 3, 512);
        let hot = |epoch: u64| -> HashSet<u32> {
            (1..=64u64).map(|r| d.key_for_rank_at(epoch, r)).collect()
        };
        let (e0, e1) = (hot(0), hot(1));
        let overlap = e0.intersection(&e1).count();
        assert!(
            overlap <= 1,
            "epochs share {overlap} of 64 hot keys — hot set failed to drift"
        );
        // ...and the boundary is exactly where configured
        assert_eq!(d.epoch_of(511), 0);
        assert_eq!(d.epoch_of(512), 1);
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = DriftingZipf::new(1.2, 1 << 16, 7, 100).pairs(1000);
        let b = DriftingZipf::new(1.2, 1 << 16, 7, 100).pairs(1000);
        let c = DriftingZipf::new(1.2, 1 << 16, 8, 100).pairs(1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn no_reserved_key_in_any_epoch() {
        let d = DriftingZipf::new(1.2, 1 << 16, 1, 64);
        assert!(d.pairs(4_096).iter().all(|&(k, _)| k != u32::MAX));
    }

    #[test]
    #[should_panic(expected = "period must be at least one op")]
    fn zero_period_rejected() {
        let _ = DriftingZipf::new(1.2, 100, 0, 0);
    }
}
