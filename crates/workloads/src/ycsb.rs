//! YCSB-style mixed operation streams.
//!
//! The paper benchmarks bulk insert-then-retrieve phases (§V-A); real
//! key-value traffic interleaves reads and writes. This module generates
//! the four core YCSB mixes over our 4-byte key space:
//!
//! | mix | reads | writes | write kind |
//! |-----|-------|--------|------------|
//! | A   | 50%   | 50%    | update |
//! | B   | 95%   | 5%     | update |
//! | C   | 100%  | —      | — |
//! | F   | 50%   | 50%    | read-modify-write |
//!
//! Keys come from a [`DriftingZipf`] sampler (a drift period of
//! [`u64::MAX`] makes the hot set stationary, i.e. classic YCSB), and the
//! op kind for index `i` is a counter-based hash roll — `op_at(i)` is a
//! pure function of `(seed, i)`, so streams are bit-deterministic per
//! seed at any thread count and any generation order.
//!
//! The generator is backend-agnostic: a [`MixedOp`] names the intent
//! (read / update / read-modify-write) and consumers lower it onto their
//! own op vocabulary (`warpdrive::service::lower_mixed` turns a stream
//! into front-door `Op`s, expanding each RMW into a get + put).

use crate::drift::DriftingZipf;
use crate::value_for_index;
use hashes::fmix64;
use rayon::prelude::*;

/// One operation of a mixed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixedOp {
    /// Look up `key`.
    Read {
        /// Key to look up.
        key: u32,
    },
    /// Blind write: store `value` under `key`.
    Update {
        /// Key to write.
        key: u32,
        /// Value to store.
        value: u32,
    },
    /// Read `key`, then write `value` back under it (YCSB F's
    /// dependent read-write pair).
    ReadModifyWrite {
        /// Key to read and rewrite.
        key: u32,
        /// Value the modify phase stores.
        value: u32,
    },
}

impl MixedOp {
    /// The key the op addresses.
    #[must_use]
    pub fn key(&self) -> u32 {
        match *self {
            MixedOp::Read { key }
            | MixedOp::Update { key, .. }
            | MixedOp::ReadModifyWrite { key, .. } => key,
        }
    }

    /// Whether the op writes.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, MixedOp::Read { .. })
    }
}

/// The four core YCSB mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// 50% read / 50% update — the write-heavy session store.
    A,
    /// 95% read / 5% update — the read-mostly photo tag store.
    B,
    /// 100% read — the static profile cache.
    C,
    /// 50% read / 50% read-modify-write — the user-record workload.
    F,
}

impl YcsbMix {
    /// Reads per thousand ops.
    #[must_use]
    pub fn read_per_mille(self) -> u32 {
        match self {
            YcsbMix::A | YcsbMix::F => 500,
            YcsbMix::B => 950,
            YcsbMix::C => 1000,
        }
    }

    /// Whether the write half is read-modify-write instead of a blind
    /// update.
    #[must_use]
    pub fn writes_are_rmw(self) -> bool {
        matches!(self, YcsbMix::F)
    }

    /// Lowercase label used in benchmark tables ("a".."f").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "a",
            YcsbMix::B => "b",
            YcsbMix::C => "c",
            YcsbMix::F => "f",
        }
    }

    /// All four mixes, in table order.
    pub const ALL: [YcsbMix; 4] = [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::F];
}

/// A deterministic YCSB-style op stream: mix × skew × drift × seed.
#[derive(Debug, Clone, Copy)]
pub struct Ycsb {
    mix: YcsbMix,
    keys: DriftingZipf,
    seed: u64,
}

impl Ycsb {
    /// A stream with a stationary hot set (classic YCSB): `mix` over
    /// `records` keys with Zipf exponent `s`.
    ///
    /// # Panics
    /// Propagates the [`DriftingZipf::new`] domain panics.
    #[must_use]
    pub fn new(mix: YcsbMix, s: f64, records: u64, seed: u64) -> Self {
        Self::with_drift(mix, s, records, seed, u64::MAX)
    }

    /// A stream whose hot set drifts every `period` ops.
    ///
    /// # Panics
    /// Propagates the [`DriftingZipf::new`] domain panics.
    #[must_use]
    pub fn with_drift(mix: YcsbMix, s: f64, records: u64, seed: u64, period: u64) -> Self {
        Self {
            mix,
            keys: DriftingZipf::new(s, records, seed, period),
            seed,
        }
    }

    /// The key sampler (exposed so load phases can enumerate the key
    /// universe of each drift epoch via
    /// [`DriftingZipf::key_for_rank_at`]).
    #[must_use]
    pub fn keys(&self) -> &DriftingZipf {
        &self.keys
    }

    /// The stream's mix.
    #[must_use]
    pub fn mix(&self) -> YcsbMix {
        self.mix
    }

    /// The `i`-th op of the stream — a pure function of `(self, i)`.
    #[must_use]
    pub fn op_at(&self, i: u64) -> MixedOp {
        let key = self.keys.key_at(i);
        let roll = (fmix64(self.seed ^ roll_tweak(i)) % 1000) as u32;
        if roll < self.mix.read_per_mille() {
            MixedOp::Read { key }
        } else {
            let value = value_for_index(self.seed, i);
            if self.mix.writes_are_rmw() {
                MixedOp::ReadModifyWrite { key, value }
            } else {
                MixedOp::Update { key, value }
            }
        }
    }

    /// Generates `count` ops in parallel (order and content independent
    /// of the worker count).
    #[must_use]
    pub fn ops(&self, count: usize) -> Vec<MixedOp> {
        let this = *self;
        (0..count as u64).into_par_iter().map(|i| this.op_at(i)).collect()
    }
}

/// Counter tweak for the kind roll, domain-separated from the key and
/// value streams.
#[inline]
fn roll_tweak(i: u64) -> u64 {
    0x9c5b_01d5_7e11_ab1e ^ i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_hit_their_advertised_ratios() {
        for (mix, lo, hi) in [
            (YcsbMix::A, 450, 550),
            (YcsbMix::B, 920, 980),
            (YcsbMix::C, 1000, 1000),
            (YcsbMix::F, 450, 550),
        ] {
            let ops = Ycsb::new(mix, 1.2, 1 << 16, 42).ops(10_000);
            let reads = ops.iter().filter(|o| !o.is_write()).count();
            let per_mille = reads * 1000 / ops.len();
            assert!(
                (lo..=hi).contains(&per_mille),
                "{}: {per_mille}‰ reads outside [{lo}, {hi}]",
                mix.label()
            );
        }
    }

    #[test]
    fn f_writes_are_rmw_and_a_writes_are_blind() {
        let f = Ycsb::new(YcsbMix::F, 1.2, 1 << 12, 1).ops(2_000);
        assert!(f
            .iter()
            .filter(|o| o.is_write())
            .all(|o| matches!(o, MixedOp::ReadModifyWrite { .. })));
        let a = Ycsb::new(YcsbMix::A, 1.2, 1 << 12, 1).ops(2_000);
        assert!(a
            .iter()
            .filter(|o| o.is_write())
            .all(|o| matches!(o, MixedOp::Update { .. })));
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = Ycsb::new(YcsbMix::A, 1.2, 1 << 16, 5).ops(2_000);
        let b = Ycsb::new(YcsbMix::A, 1.2, 1 << 16, 5).ops(2_000);
        let c = Ycsb::new(YcsbMix::A, 1.2, 1 << 16, 6).ops(2_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn drift_changes_keys_but_not_the_kind_sequence() {
        let stationary = Ycsb::new(YcsbMix::B, 1.5, 1 << 16, 9);
        let drifting = Ycsb::with_drift(YcsbMix::B, 1.5, 1 << 16, 9, 256);
        let (s_ops, d_ops) = (stationary.ops(1_000), drifting.ops(1_000));
        // the kind roll is independent of the key stream
        for (s, d) in s_ops.iter().zip(&d_ops) {
            assert_eq!(s.is_write(), d.is_write());
        }
        // ... but epoch ≥ 1 keys differ (fresh permutation)
        assert!(
            s_ops[256..].iter().zip(&d_ops[256..]).any(|(s, d)| s.key() != d.key()),
            "drift produced an identical key stream"
        );
    }

    #[test]
    fn zipf_head_dominates_reads() {
        let g = Ycsb::new(YcsbMix::C, 1.5, 1 << 20, 3);
        let hot = g.keys().key_for_rank_at(0, 1);
        let ops = g.ops(20_000);
        let hot_share = ops.iter().filter(|o| o.key() == hot).count();
        assert!(
            hot_share > 2_000,
            "rank-1 key appears only {hot_share}/20000 times at s = 1.5"
        );
    }
}
