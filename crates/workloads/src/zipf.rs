//! Zipf-distributed keys by rejection-inversion sampling.
//!
//! "The multiplicity of a key with rank k is smaller than the one of the
//! most common key by a factor of k^{-s} where s > 1" (§V-A, citing
//! Adamic & Huberman). We sample ranks with the rejection-inversion
//! method of Hörmann & Derflinger ("Rejection-inversion to generate
//! variates from monotone discrete distributions", 1996) — O(1) per
//! sample with no precomputed tables, numerically stable even for the
//! paper's near-critical exponent `s = 1 + 10⁻⁶` over 2³² ranks.
//!
//! A sampled *rank* is then mapped to an actual 4-byte key through the
//! same Feistel permutation the unique generator uses, so hot keys are
//! scattered over the key space instead of clustering near zero (which
//! would otherwise interact with weak hash functions in the ablations).

use crate::{unique::UniqueKeys, value_for_index, Pair};
use hashes::fmix64;
use rayon::prelude::*;

/// Zipf(s) sampler over ranks `1..=n`, mapped to scattered 4-byte keys.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    s: f64,
    n: u64,
    seed: u64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
    perm: UniqueKeys,
}

impl Zipf {
    /// Creates a sampler with exponent `s > 0` over `n ≥ 1` ranks.
    ///
    /// # Panics
    /// Panics for `s ≤ 0`, `s == 1` (the harmonic edge case is excluded —
    /// the paper uses `s = 1 + 10⁻⁶`), `n == 0`, or `n > 2³²`:
    /// [`Zipf::key_for_rank`] maps ranks through a 32-bit permutation, so
    /// any larger domain would silently alias distinct ranks above 2³²
    /// onto the keys of ranks below it.
    #[must_use]
    pub fn new(s: f64, n: u64, seed: u64) -> Self {
        assert!(
            s > 0.0 && (s - 1.0).abs() > f64::EPSILON,
            "need s > 0, s ≠ 1"
        );
        assert!(n >= 1, "need at least one rank");
        assert!(
            n <= 1 << 32,
            "Zipf supports at most 2^32 ranks: key_for_rank maps ranks through \
             a 32-bit permutation, so n = {n} would alias distinct ranks onto one key"
        );
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Self {
            s,
            n,
            seed,
            h_x1,
            h_n,
            threshold,
            perm: UniqueKeys::new(seed ^ 0x5ee7_ed1e),
        }
    }

    /// Samples the rank for the `i`-th element (counter-based: the `j`-th
    /// rejection retry for element `i` consumes deterministic uniform
    /// variate `u(i, j)`, so generation stays parallel and reproducible).
    #[must_use]
    pub fn rank_at(&self, i: u64) -> u64 {
        for retry in 0u64.. {
            let bits = fmix64(
                self.seed
                    ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ retry.wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
            );
            // uniform in (0, 1)
            let r = ((bits >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
            let u = self.h_n + r * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = (x + 0.5) as u64;
            let k = k.clamp(1, self.n);
            if k as f64 - x <= self.threshold
                || u >= h_integral(k as f64 + 0.5, self.s) - h(k as f64, self.s)
            {
                return k;
            }
        }
        unreachable!("rejection sampling terminates with probability 1")
    }

    /// The key for rank `r`: ranks are scattered through a Feistel
    /// permutation so rank 1 is not key 1.
    ///
    /// Ranks are reduced to 32 bits before the permutation; that is
    /// collision-free exactly because [`Zipf::new`] caps `n` at 2³² —
    /// ranks run `1..=n`, so the only wrapped rank (2³² → 0) lands on a
    /// permutation index no smaller rank occupies.
    #[inline]
    #[must_use]
    pub fn key_for_rank(&self, r: u64) -> u32 {
        self.perm.key_at((r & 0xffff_ffff) as u32)
    }

    /// Generates `n` pairs in parallel.
    #[must_use]
    pub fn pairs(&self, count: usize) -> Vec<Pair> {
        let this = *self;
        (0..count as u64)
            .into_par_iter()
            .map(|i| {
                let rank = this.rank_at(i);
                (this.key_for_rank(rank), value_for_index(this.seed, i))
            })
            .collect()
    }
}

/// H(x) = ∫ x^{-s} dx = x^{1-s}/(1-s), shifted to H(1) = 0; computed via
/// `log`/`expm1` helpers for stability near s = 1.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// h(x) = x^{-s}.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of `h_integral`.
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // numerical round-off: clamp to the domain boundary
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// ln(1+x)/x, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// (e^x − 1)/x, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 + x * x / 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn ranks_stay_in_domain() {
        let z = Zipf::new(1.2, 1000, 5);
        for i in 0..50_000 {
            let r = z.rank_at(i);
            assert!((1..=1000).contains(&r));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1.5, 1 << 20, 9);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000 {
            *counts.entry(z.rank_at(i)).or_default() += 1;
        }
        let c1 = counts.get(&1).copied().unwrap_or(0);
        let c2 = counts.get(&2).copied().unwrap_or(0);
        assert!(c1 > c2, "rank 1 ({c1}) must beat rank 2 ({c2})");
        // for s = 1.5 the head holds a large constant share
        assert!(c1 > 15_000, "rank-1 share too small: {c1}");
    }

    #[test]
    fn multiplicity_follows_power_law() {
        // check count(rank) ≈ count(1) · rank^{-s} on the head
        let s = 1.5;
        let z = Zipf::new(s, 1 << 16, 3);
        let mut counts: HashMap<u64, f64> = HashMap::new();
        let n = 200_000;
        for i in 0..n {
            *counts.entry(z.rank_at(i)).or_default() += 1.0;
        }
        let c1 = counts[&1];
        for rank in [2u64, 4, 8] {
            let expected = c1 * (rank as f64).powf(-s);
            let got = counts.get(&rank).copied().unwrap_or(0.0);
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.15, "rank {rank}: got {got}, expected {expected}");
        }
    }

    #[test]
    fn near_critical_exponent_is_stable() {
        // the paper's configuration: s = 1 + 1e-6 over the 4-byte space
        let z = Zipf::new(1.0 + 1e-6, u64::from(u32::MAX), 1);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..20_000 {
            let r = z.rank_at(i);
            assert!(r >= 1 && r <= u64::from(u32::MAX));
            distinct.insert(r);
        }
        // with s ≈ 1 mass is spread: many distinct ranks, but still
        // noticeably fewer than samples (duplicates exist)
        assert!(distinct.len() > 10_000);
        assert!(distinct.len() < 20_000);
    }

    #[test]
    fn keys_scatter_ranks() {
        let z = Zipf::new(1.5, 1000, 2);
        let k1 = z.key_for_rank(1);
        let k2 = z.key_for_rank(2);
        assert_ne!(k1, 1);
        assert_ne!(k1, k2);
        assert_ne!(k1, u32::MAX);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Zipf::new(1.2, 1 << 20, 7).pairs(500);
        let b = Zipf::new(1.2, 1 << 20, 7).pairs(500);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "s ≠ 1")]
    fn exponent_one_rejected() {
        let _ = Zipf::new(1.0, 100, 0);
    }

    #[test]
    #[should_panic(expected = "at most 2^32 ranks")]
    fn rank_domains_beyond_the_permutation_are_rejected() {
        // regression: key_for_rank masks ranks to 32 bits, so pre-fix this
        // constructor silently aliased rank 2^32 + 1 onto rank 1's key
        let _ = Zipf::new(1.2, (1u64 << 32) + 1, 0);
    }

    #[test]
    fn full_32_bit_rank_domain_is_collision_free_at_the_boundary() {
        // n = 2^32 is the largest legal domain; the one wrapped rank
        // (2^32 → permutation index 0) must not collide with any other
        let z = Zipf::new(1.2, 1u64 << 32, 11);
        let boundary = z.key_for_rank(1u64 << 32);
        for r in [1u64, 2, 3, (1 << 32) - 1] {
            assert_ne!(
                boundary,
                z.key_for_rank(r),
                "rank 2^32 aliases rank {r}"
            );
        }
    }
}
