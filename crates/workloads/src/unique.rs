//! Sampling without replacement via a Feistel bijection.
//!
//! The paper's unique distribution is "equivalent to a Fisher–Yates
//! shuffle of an ascending integer sequence" over the full 4-byte space.
//! Materialising that shuffle costs 16 GiB; instead we build a keyed
//! 4-round Feistel network on the two 16-bit halves of a `u32`. A Feistel
//! network is a bijection for any round function, so `feistel(0..n)`
//! enumerates `n` distinct keys — exactly a pseudo-random permutation
//! prefix, in O(1) memory and trivially parallel.
//!
//! The key `u32::MAX` is reserved by the hash map (EMPTY/TOMBSTONE
//! sentinels); we exclude it by *cycle-walking*: if the permutation emits
//! the reserved key we apply it again. Cycle-walking a permutation over a
//! closed excluded set stays a bijection on the complement.

use crate::{value_for_index, Pair};
use hashes::fmix32;
use rayon::prelude::*;

/// A keyed pseudo-random permutation of the `u32` key space (minus the
/// reserved key `u32::MAX`).
#[derive(Debug, Clone, Copy)]
pub struct UniqueKeys {
    round_keys: [u32; 4],
    seed: u64,
}

impl UniqueKeys {
    /// Builds the permutation for a seed (deterministic per seed).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let a = fmix32(seed as u32 ^ 0x243f_6a88);
        let b = fmix32((seed >> 32) as u32 ^ 0x85a3_08d3);
        Self {
            round_keys: [a, b, a.rotate_left(13) ^ b, fmix32(a ^ b)],
            seed,
        }
    }

    /// The `i`-th key of the permutation.
    #[inline]
    #[must_use]
    pub fn key_at(&self, i: u32) -> u32 {
        let mut k = self.feistel(i);
        // cycle-walk past the reserved sentinel key
        while k == u32::MAX {
            k = self.feistel(k);
        }
        k
    }

    #[inline]
    fn feistel(&self, x: u32) -> u32 {
        let mut l = (x >> 16) as u16;
        let mut r = (x & 0xffff) as u16;
        for rk in self.round_keys {
            let f = (fmix32(u32::from(r) ^ rk) & 0xffff) as u16;
            let new_r = l ^ f;
            l = r;
            r = new_r;
        }
        (u32::from(l) << 16) | u32::from(r)
    }

    /// Generates the first `n` pairs of the permutation in parallel.
    ///
    /// # Panics
    /// Panics if `n` exceeds the 2³² − 1 available distinct keys.
    #[must_use]
    pub fn pairs(&self, n: usize) -> Vec<Pair> {
        assert!(
            n <= (u32::MAX as usize),
            "cannot sample {n} keys without replacement from a 2^32-1 space"
        );
        let this = *self;
        (0..n as u32)
            .into_par_iter()
            .map(|i| (this.key_at(i), value_for_index(this.seed, u64::from(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn all_keys_distinct() {
        let g = UniqueKeys::new(42);
        let pairs = g.pairs(100_000);
        let keys: HashSet<u32> = pairs.iter().map(|p| p.0).collect();
        assert_eq!(keys.len(), 100_000);
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = UniqueKeys::new(1).pairs(1000);
        let b = UniqueKeys::new(1).pairs(1000);
        let c = UniqueKeys::new(2).pairs(1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_look_shuffled_not_ascending() {
        let g = UniqueKeys::new(3);
        let ascending = (0..1000).filter(|&i| g.key_at(i) == i).count();
        assert!(ascending < 5, "{ascending} fixed points is suspicious");
        // spread across the 32-bit space: top byte should take many values
        let top_bytes: HashSet<u8> = (0..4096).map(|i| (g.key_at(i) >> 24) as u8).collect();
        assert!(top_bytes.len() > 200, "only {} top bytes", top_bytes.len());
    }

    #[test]
    fn reserved_key_never_emitted() {
        // the feistel preimage of u32::MAX would be the only offender;
        // scan a window plus verify cycle-walking logic directly
        let g = UniqueKeys::new(7);
        for i in 0..200_000u32 {
            assert_ne!(g.key_at(i), u32::MAX);
        }
    }

    proptest! {
        #[test]
        fn feistel_is_injective_on_pairs(a: u32, b: u32, seed: u64) {
            prop_assume!(a != b);
            let g = UniqueKeys::new(seed);
            prop_assert_ne!(g.feistel(a), g.feistel(b));
        }
    }
}
