//! Interconnection-network model of the paper's evaluation node (Fig. 6).
//!
//! The multi-GPU cascades of §IV-B are bandwidth-bound: the all-to-all
//! transposition is limited by the NVLink fabric and host-sided operations
//! by the PCIe switches. This crate models exactly the topology of the
//! Mogon II node — four Tesla P100s, an augmented fully-connected NVLink
//! graph with 20 GB/s bidirectional links, and two PCIe switches of
//! 12 GB/s each serving one GPU pair — and provides:
//!
//! * [`Topology`] — the link graph with per-pair NVLink bandwidth and
//!   per-switch PCIe bandwidth,
//! * [`alltoall`] — transfer-time estimation for the m×m partition-table
//!   transposition,
//! * [`hostlink`] — H2D/D2H batch transfer costs including switch
//!   contention,
//! * [`pipeline`] — the deterministic resource-timeline scheduler behind
//!   the asynchronous overlapping cascades (Figs. 5 and 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alltoall;
pub mod fault;
pub mod hostlink;
pub mod pipeline;
pub mod topology;

pub use alltoall::{alltoall_time, alltoall_time_faulted, AllToAllReport};
pub use fault::{FaultedTransfer, TransferError};
pub use hostlink::{broadcast_h2d_time, d2h_time, d2h_time_faulted, h2d_time, h2d_time_faulted};
pub use pipeline::{PipelineReport, PipelineSim, Stage};
pub use topology::Topology;
